"""A2 — Ablation: resynchronisation-buffer sizing vs flag density.

The paper claims "an extremely low resynchronisation buffer and
backpressure scheme" suffice.  This ablation sweeps payload escape
density from 0 to 1 (worst case) and records the buffer's high-water
mark and the achieved rates: the buffer never needs more than its
structural minimum of 3 words regardless of traffic, because
backpressure throttles intake instead of buffering the burst.
"""

from conftest import emit

from repro.analysis import measure_escape_throughput
from repro.core.config import P5Config
from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.rtl import Channel, Simulator, StreamSink, StreamSource, beats_from_bytes
from repro.workloads import flag_density_payload

DENSITIES = (0.0, 0.01, 0.1, 0.25, 0.5, 1.0)
PAYLOAD = 12_000


def run_density(density: float):
    payload = flag_density_payload(PAYLOAD, density, seed=7)
    c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(payload, 4))
    unit = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=PAYLOAD * 20,
    )
    return {
        "density": density,
        "high_water": unit.max_resync_occupancy,
        "carry_high_water": unit.max_carry_occupancy,
        "in_rate": unit.bytes_in / sim.cycle,
        "out_rate": unit.bytes_out / sim.cycle,
        "stalls": unit.stalled_cycles,
    }


def sweep():
    return [run_density(d) for d in DENSITIES]


def test_ablation_a2_buffer(benchmark):
    rows = benchmark(sweep)
    lines = [
        f"{'density':>8} {'resync hw (words)':>18} {'carry hw (B)':>13} "
        f"{'in B/cyc':>9} {'out B/cyc':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r['density']:>8.2f} {r['high_water']:>18} "
            f"{r['carry_high_water']:>13} {r['in_rate']:>9.3f} "
            f"{r['out_rate']:>10.3f}"
        )
    lines.append("")
    lines.append("buffer demand is flat at <= 3 words (12 bytes) even at the")
    lines.append("all-flag worst case: backpressure, not memory, absorbs the")
    lines.append("expansion — the paper's low-memory claim")
    emit("Ablation A2 — resync buffer vs escape density", "\n".join(lines))

    assert all(r["high_water"] <= 3 for r in rows)
    # Output rate stays near line rate across the sweep.
    assert all(r["out_rate"] > 3.8 for r in rows)
    # Intake degrades smoothly to half at density 1.0.
    assert rows[-1]["in_rate"] < 2.1
    assert rows[0]["in_rate"] > 3.9
