"""A3 — Ablation: CRC engine implementations.

The paper uses the Pei–Zukowski parallel matrix (its reference [3])
because a serial LFSR cannot keep up with 4 bytes/cycle.  This
ablation compares the three software engines on equal work and checks
the structural facts that motivate the hardware choice: matrix steps
per frame scale as 1/W, and the XOR-forest cost read off the real
matrices grows sublinearly in W (which is why wide CRC is cheap
relative to the byte sorter).
"""

from conftest import emit

from repro.crc import CRC32, BitSerialCrc, ParallelCrc, TableCrc, build_matrices
from repro.synth.primitives import xor_tree_luts
from repro.workloads import random_payload

PAYLOAD = random_payload(4096, seed=3)


def test_ablation_a3_bitserial(benchmark):
    engine = BitSerialCrc(CRC32)
    result = benchmark(engine.compute, PAYLOAD)
    assert result == TableCrc(CRC32).compute(PAYLOAD)


def test_ablation_a3_table(benchmark):
    engine = TableCrc(CRC32)
    result = benchmark(engine.compute, PAYLOAD)
    assert result == BitSerialCrc(CRC32).compute(PAYLOAD)


def test_ablation_a3_matrix_w8(benchmark):
    engine = ParallelCrc(CRC32, 8)
    result = benchmark(engine.compute, PAYLOAD)
    assert result == TableCrc(CRC32).compute(PAYLOAD)


def test_ablation_a3_matrix_w32(benchmark):
    engine = ParallelCrc(CRC32, 32)
    result = benchmark(engine.compute, PAYLOAD)
    assert result == TableCrc(CRC32).compute(PAYLOAD)


def test_ablation_a3_structure(benchmark):
    def analyse():
        rows = []
        for width in (8, 16, 32, 64):
            matrices = build_matrices(CRC32, width)
            fanins = matrices.xor_fanin_per_output()
            luts = sum(xor_tree_luts(int(f)) for f in fanins)
            steps = (len(PAYLOAD) * 8 + width - 1) // width
            rows.append((width, steps, float(fanins.mean()),
                         int(fanins.max()), luts))
        return rows

    rows = benchmark(analyse)
    lines = [
        f"{'W bits':>7} {'steps/4KB':>10} {'avg fanin':>10} "
        f"{'max fanin':>10} {'tree LUTs':>10}"
    ]
    for width, steps, mean_f, max_f, luts in rows:
        lines.append(
            f"{width:>7} {steps:>10} {mean_f:>10.1f} {max_f:>10} {luts:>10}"
        )
    lines.append("")
    lines.append("steps fall as 1/W (hardware cycles per frame) while the")
    lines.append("XOR forest grows ~linearly: wide CRC is cheap, so the byte")
    lines.append("sorter, not the CRC, dominates the 32-bit P5's area")
    emit("Ablation A3 — CRC engine structure", "\n".join(lines))

    by_width = {w: (s, l) for w, s, _, _, l in rows}
    assert by_width[32][0] * 4 == by_width[8][0]          # steps scale 1/W
    assert by_width[32][1] < 8 * by_width[8][1]           # LUTs sublinear in 4x
