"""A4 — Ablation: programmable escape-set size (ACCM cost).

The escape set is programmable (flag + escape + any ACCM-selected
control octets).  Each extra escapable octet costs one more comparator
per lane in the detect stage *and* reduces sustained intake on
payloads containing those octets (each occurrence expands the
stream).  This ablation sweeps the ACCM from empty (the SONET case the
paper optimises) to the full async default (all 32 control octets).
"""

from conftest import emit

from repro.analysis import measure_escape_throughput
from repro.core.config import P5Config
from repro.synth import escape_generate_area
from repro.workloads import random_payload

ACCM_SIZES = (0, 4, 8, 16, 32)


def sweep():
    payload = random_payload(20_000, seed=5)
    rows = []
    for count in ACCM_SIZES:
        mask = (1 << count) - 1
        config = P5Config(width_bits=32, accm_mask=mask)
        area = escape_generate_area(config)
        thr = measure_escape_throughput(payload, config)
        density = len(config.escape_octets) / 256
        rows.append((count, len(config.escape_octets), area.luts,
                     thr.input_bytes_per_cycle, density))
    return rows


def test_ablation_a4_escape_set(benchmark):
    rows = benchmark(sweep)
    lines = [
        f"{'ACCM octets':>12} {'escape set':>11} {'escgen LUTs':>12} "
        f"{'in B/cyc':>9} {'escape density':>15}"
    ]
    for count, set_size, luts, rate, density in rows:
        lines.append(
            f"{count:>12} {set_size:>11} {luts:>12} {rate:>9.3f} "
            f"{density:>15.4f}"
        )
    lines.append("")
    lines.append("the SONET configuration (empty ACCM) the paper targets is")
    lines.append("both the smallest detect stage and the highest intake rate;")
    lines.append("the async default costs ~linear LUTs and ~13% intake on")
    lines.append("uniform random payloads")
    emit("Ablation A4 — escape-set size (ACCM programmability)", "\n".join(lines))

    by_count = {c: (l, r) for c, _, l, r, _ in rows}
    assert by_count[32][0] > by_count[0][0]          # area grows
    assert by_count[32][1] < by_count[0][1]          # intake shrinks
    # Expected intake at density d is W/(1+d): check the model tracks it.
    expected = 4 / (1 + 34 / 256)
    assert abs(by_count[32][1] - expected) < 0.1
