"""A1 — Ablation: escape pipeline depth vs clock rate and latency.

The paper chose 4 stages for the 32-bit unit.  This ablation sweeps
the depth and shows the trade: a shallow (combinational) sorter has a
deep logic cone that cannot close 78.125 MHz, while pipelining buys
f_max at the cost of fill latency only — throughput is unaffected.
"""

from conftest import emit

from repro.analysis import measure_escape_latency, measure_escape_throughput
from repro.core.config import P5Config
from repro.synth import escape_generate_area, get_device
from repro.synth.timing import analyze_timing
from repro.workloads import random_payload

DEPTHS = (2, 3, 4, 5, 6)


def sweep():
    cfg = P5Config.thirty_two_bit()
    payload = random_payload(8_000, seed=1)
    rows = []
    device = get_device("XC2V1000-6")
    for depth in DEPTHS:
        latency = measure_escape_latency(cfg, pipeline_stages=depth)
        # Fewer pipeline stages = more logic per stage: model the cone
        # concentration by scaling the per-stage depth inversely.
        netlist = escape_generate_area(cfg, pipeline_stages=depth)
        base_levels = netlist.depth
        levels = max(2, round(base_levels * 4 / depth))
        fmax = device.fmax_mhz(levels, post_layout=True)
        thr = measure_escape_throughput(
            payload, P5Config(width_bits=32, resync_depth_words=3)
        )
        rows.append((depth, latency, levels, fmax, thr))
    return rows


def test_ablation_a1_pipeline_depth(benchmark):
    rows = benchmark(sweep)
    lines = [
        f"{'stages':>7} {'fill cyc':>9} {'fill ns':>8} {'levels/stage':>13} "
        f"{'fmax MHz':>9} {'meets 78.125':>13} {'line Gbps':>10}"
    ]
    for depth, lat, levels, fmax, thr in rows:
        lines.append(
            f"{depth:>7} {lat.fill_cycles:>9} {lat.fill_ns:>8.1f} "
            f"{levels:>13} {fmax:>9.1f} {str(fmax >= 78.125):>13} "
            f"{thr.line_gbps:>10.3f}"
        )
    lines.append("")
    lines.append("the paper's choice (4 stages) is the shallowest depth that")
    lines.append("closes 78.125 MHz on Virtex-II with margin")
    emit("Ablation A1 — pipeline depth trade-off", "\n".join(lines))

    by_depth = {d: (lat, lv, fmax) for d, lat, lv, fmax, _ in rows}
    # Latency = depth, exactly.
    assert all(by_depth[d][0].fill_cycles == d for d in DEPTHS)
    # A 2-stage (barely pipelined) sorter cannot close timing.
    assert by_depth[2][2] < 78.125
    # The paper's 4-stage point closes with margin.
    assert by_depth[4][2] >= 78.125
