"""B1 — baseline comparison: HDLC-like framing (the paper's choice)
vs GFP (ITU-T G.7041), the era's competing layer-2 for IP over SONET.

Two axes:

1. **Overhead vs payload content** — HDLC's escape mechanism makes its
   overhead payload-dependent (the very problem the P5's byte sorter
   solves), with a 2x adversarial worst case; GFP's is a constant
   8-12 bytes per frame.  The crossover: HDLC wins on clean payloads
   of any size (1 flag + 4 FCS < 12 bytes), GFP wins as escape density
   grows past ~1-2 %.
2. **Delineation robustness** — a single bit error in a GFP core
   header is *corrected* by the cHEC; the same hit on an HDLC flag
   merges two frames (both lost to FCS).
"""

from conftest import emit

from repro.gfp import GfpDelineator, GfpFrame, idle_frame
from repro.hdlc import Delineator, HdlcFramer
from repro.workloads import flag_density_payload, random_payload

DENSITIES = (0.0, 0.008, 0.02, 0.05, 0.2, 1.0)
PAYLOAD = 1500
FRAMES = 30


def overhead_sweep():
    rows = []
    for density in DENSITIES:
        payload = flag_density_payload(PAYLOAD, density, seed=11)
        hdlc_wire = HdlcFramer().encode(payload)
        gfp_wire = GfpFrame(payload).encode()
        rows.append(
            (density, len(hdlc_wire) - PAYLOAD, len(gfp_wire) - PAYLOAD)
        )
    return rows


def robustness_trial():
    payloads = [random_payload(200, seed=i) for i in range(FRAMES)]
    # HDLC: back-to-back frames share flags (the line-rate case); flip
    # the shared flag between frames 10 and 11 — they merge into one
    # FCS-failing pseudo-frame.
    hdlc = HdlcFramer()
    hdlc_wire = bytearray(hdlc.encode_stream(payloads))
    offset = len(hdlc.encode_stream(payloads[:10])) - 1
    hdlc_wire[offset] ^= 0x01          # the shared flag byte
    hdlc_rx = Delineator(framer=HdlcFramer())
    hdlc_got = len(hdlc_rx.push_bytes(bytes(hdlc_wire)))

    # GFP: flip one bit in frame 10's core header.
    gfp_wire = bytearray(
        idle_frame() * 4 + b"".join(GfpFrame(p).encode() for p in payloads)
    )
    offset = 16 + sum(GfpFrame(p).wire_length for p in payloads[:10])
    gfp_wire[offset] ^= 0x01
    gfp_rx = GfpDelineator()
    gfp_got = len(gfp_rx.feed(bytes(gfp_wire)))
    return hdlc_got, gfp_got, gfp_rx.stats.corrected_headers


def test_baseline_b1_overhead(benchmark):
    rows = benchmark(overhead_sweep)
    lines = [
        f"{'escape density':>15} {'HDLC overhead':>14} {'GFP overhead':>13} {'winner':>8}"
    ]
    for density, hdlc_ov, gfp_ov in rows:
        winner = "HDLC" if hdlc_ov < gfp_ov else "GFP"
        lines.append(
            f"{density:>15.3f} {hdlc_ov:>12} B {gfp_ov:>11} B {winner:>8}"
        )
    lines.append("")
    lines.append(f"per {PAYLOAD}-byte frame. HDLC = 2 flags + 4 FCS + escapes")
    lines.append("(payload-dependent); GFP = constant 12 B (core+type+pFCS).")
    lines.append("the crossover sits near 0.5% escape density — uniform random")
    lines.append("traffic (0.8%) already favours GFP at this MTU, and the")
    lines.append("adversarial all-flag case costs HDLC a full 2x")
    emit("Baseline B1 — HDLC vs GFP framing overhead", "\n".join(lines))

    by_density = {d: (h, g) for d, h, g in rows}
    assert by_density[0.0][0] < by_density[0.0][1]        # clean: HDLC wins
    assert by_density[1.0][0] > PAYLOAD                   # adversarial: ~2x
    assert all(g == 12 for _, _, g in rows)               # GFP constant


def test_baseline_b1_robustness(benchmark):
    hdlc_got, gfp_got, corrected = benchmark(robustness_trial)
    lines = [
        f"one bit error in a frame-delimiting header, {FRAMES} frames sent:",
        f"  HDLC: {hdlc_got}/{FRAMES} recovered "
        f"(flag destroyed -> adjacent frames merge and fail FCS)",
        f"  GFP : {gfp_got}/{FRAMES} recovered "
        f"({corrected} header corrected by the cHEC syndrome)",
    ]
    emit("Baseline B1 — delineation robustness", "\n".join(lines))
    assert gfp_got == FRAMES and corrected == 1
    assert hdlc_got <= FRAMES - 2
