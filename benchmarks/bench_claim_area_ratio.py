"""C3 — Area scaling: the 32-bit system is ~11x the 8-bit system,
driven by the byte sorter's decision logic, not by the 4x datapath.

Sweeps the area model over widths 8/16/32/64 (the 64-bit point is our
extension — what an OC-96 P5 would cost) and breaks the 32-bit system
down by module group.
"""

from conftest import emit

from repro.core.config import P5Config
from repro.synth import escape_generate_area, system_area


def sweep():
    systems = {w: system_area(P5Config(width_bits=w)) for w in (8, 16, 32, 64)}
    escapes = {
        w: escape_generate_area(P5Config(width_bits=w)) for w in (8, 16, 32, 64)
    }
    return systems, escapes


def test_claim_c3_area_ratio(benchmark):
    systems, escapes = benchmark(sweep)
    base = systems[8].luts
    lines = [f"{'width':>6} {'sys LUTs':>9} {'vs 8-bit':>9} {'escgen LUTs':>12}"]
    for w, netlist in systems.items():
        lines.append(
            f"{w:>6} {netlist.luts:>9} {netlist.luts / base:>8.1f}x "
            f"{escapes[w].luts:>12}"
        )
    lines.append("")
    lines.append("32-bit system by module group:")
    lines.append(systems[32].table())
    lines.append("")
    lines.append("paper: 32-bit system ~11x the 8-bit system; growth 'mainly")
    lines.append("       due to the byte sorter and buffering mechanisms'")
    emit("Claim C3 — area ratio sweep", "\n".join(lines))

    ratio = systems[32].luts / systems[8].luts
    assert 9 <= ratio <= 13
    # Quadratic trend continues: 64-bit much more than 2x the 32-bit.
    assert systems[64].luts > 2.5 * systems[32].luts
