"""C4 — Critical path: 6 LUT levels on both device families; the
Virtex-II advantage is per-level technology delay, not layout."""

from conftest import emit

from repro.core.config import P5Config
from repro.synth import analyze_timing, get_device, system_area

DEVICES = ("XCV600-4", "XC2V1000-6")


def measure():
    netlist = system_area(P5Config.thirty_two_bit())
    return netlist, {d: analyze_timing(netlist, get_device(d)) for d in DEVICES}


def test_claim_c4_critical_path(benchmark):
    netlist, reports = benchmark(measure)
    lines = [
        f"{'device':<12} {'family':<10} {'levels':>7} "
        f"{'fmax pre':>9} {'fmax post':>10} {'meets 78.125':>13}"
    ]
    for name, t in reports.items():
        lines.append(
            f"{name:<12} {t.family:<10} {t.levels:>7} "
            f"{t.fmax_pre_mhz:>8.1f}M {t.fmax_post_mhz:>9.1f}M "
            f"{str(t.meets(78.125)):>13}"
        )
    lines.append("")
    lines.append("paper: 'the critical path is the same for each device and")
    lines.append("        in each case passes through 6 [LUTs]'; speedup is")
    lines.append("        technological, not placement")
    emit("Claim C4 — critical path analysis", "\n".join(lines))

    virtex, virtex2 = reports["XCV600-4"], reports["XC2V1000-6"]
    assert virtex.levels == virtex2.levels == 6
    assert virtex2.fmax_post_mhz > virtex.fmax_post_mhz
    assert virtex2.meets(78.125) and not virtex.meets(78.125)
