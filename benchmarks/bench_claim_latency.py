"""C2 — Latency: the 4-stage escape pipeline delays first data by
4 cycles ~ 50 ns; flow is continuous afterwards."""

from conftest import emit

from repro.analysis import measure_escape_latency, measure_escape_throughput
from repro.core import P5Config
from repro.workloads import random_payload


def measure():
    cfg32 = P5Config.thirty_two_bit()
    lat32 = measure_escape_latency(cfg32)
    lat8 = measure_escape_latency(P5Config.eight_bit())
    thr = measure_escape_throughput(random_payload(40_000, seed=1), cfg32)
    return lat8, lat32, thr


def test_claim_c2_latency(benchmark):
    lat8, lat32, thr = benchmark(measure)
    body = (
        f"{'design':<10} {'stages':>7} {'fill cycles':>12} {'fill ns':>9}\n"
        f"{'8-bit':<10} {lat8.pipeline_stages:>7} {lat8.fill_cycles:>12} "
        f"{lat8.fill_ns:>9.1f}\n"
        f"{'32-bit':<10} {lat32.pipeline_stages:>7} {lat32.fill_cycles:>12} "
        f"{lat32.fill_ns:>9.1f}\n\n"
        f"paper: '4 pipelined stages ... delayed by 4 clock cycles, "
        f"approximately 50ns.\n        Subsequent data flow is continuous'\n"
        f"steady-state output: {thr.output_bytes_per_cycle:.4f} bytes/cycle "
        f"(ideal 4.0)"
    )
    emit("Claim C2 — pipeline fill latency", body)
    assert lat32.fill_cycles == 4
    assert 50 <= lat32.fill_ns <= 52
    assert thr.output_bytes_per_cycle > 0.99 * 4
