"""C1 — Throughput: 625 Mbps (8-bit) and 2.5 Gbps (32-bit) at 78.125 MHz.

Measures sustained bytes/cycle through the cycle-accurate escape
pipeline across widths and payload types, and through the complete
duplex P5 system on IMIX traffic.
"""

from conftest import emit

from repro.analysis import measure_escape_throughput
from repro.core import P5Config, run_duplex_exchange
from repro.workloads import all_flags_payload, ppp_frame_contents, random_payload

PAYLOAD_BYTES = 20_000


def sweep():
    rows = []
    for width in (8, 16, 32, 64):
        config = P5Config(width_bits=width)
        for label, payload in (
            ("random", random_payload(PAYLOAD_BYTES, seed=1)),
            ("all-flags", all_flags_payload(PAYLOAD_BYTES // 2)),
        ):
            report = measure_escape_throughput(payload, config)
            rows.append((width, label, report))
    return rows


def test_claim_c1_escape_throughput(benchmark):
    rows = benchmark(sweep)
    lines = [
        f"{'width':>6} {'payload':>10} {'in B/cyc':>9} {'line Gbps':>10} {'util':>6}"
    ]
    for width, label, r in rows:
        lines.append(
            f"{width:>6} {label:>10} {r.input_bytes_per_cycle:>9.3f} "
            f"{r.line_gbps:>10.3f} {r.utilization:>6.3f}"
        )
    lines.append("")
    lines.append("paper: 8-bit = 625 Mbps, 32-bit = 2.5 Gbps @ 78.125 MHz;")
    lines.append("       32 bits processed every clock cycle")
    emit("Claim C1 — line-rate throughput", "\n".join(lines))

    by_key = {(w, l): r for w, l, r in rows}
    assert abs(by_key[(8, "random")].line_gbps - 0.625) < 0.02
    assert abs(by_key[(32, "random")].line_gbps - 2.5) < 0.05
    assert by_key[(32, "random")].utilization > 0.99
    # Worst case: line rate held, intake halved.
    assert by_key[(32, "all-flags")].line_gbps > 2.4
    assert by_key[(32, "all-flags")].input_gbps < 1.3


def test_claim_c1_system_level(benchmark):
    frames = ppp_frame_contents(10, seed=2)

    def run():
        return run_duplex_exchange(
            frames, [], P5Config.thirty_two_bit(), timeout=600_000
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    wire_bytes = sum(
        ch.pushes for ch in [result.a.tx.phy_out]
    ) * 4  # words x 4 bytes upper bound
    payload_bytes = sum(len(f) for f in frames)
    gbps = payload_bytes * 8 * 78.125e6 / result.cycles / 1e9
    emit(
        "Claim C1 — duplex system throughput (IMIX)",
        f"{len(frames)} IMIX frames, {payload_bytes} content bytes in "
        f"{result.cycles} cycles\n"
        f"=> goodput {gbps:.3f} Gbps of the 2.5 Gbps line @ 78.125 MHz",
    )
    assert result.all_good()
    assert gbps > 1.5   # goodput after flags/FCS/stuffing overhead
