"""D1 — derived figure: IP goodput vs datagram size through the P5.

The paper reports raw line rates; a systems reader's next question is
"what does IP actually get?"  This bench measures end-to-end goodput
through the cycle-accurate duplex system for fixed datagram sizes
(40 / 576 / 1500 — the IMIX components) at both widths, and compares
against the analytic efficiency model.
"""

from conftest import emit

from repro.analysis import ip_over_sonet_efficiency
from repro.core import P5Config, run_duplex_exchange
from repro.ipv4 import Ipv4Datagram
from repro.ppp.frame import PPPFrame
from repro.workloads import random_payload

SIZES = (40, 576, 1500)
FRAMES_PER_POINT = 12


def frames_of_size(size: int, seed: int):
    payload = random_payload(size - 20, seed=seed)
    datagram = Ipv4Datagram.build(0x0A000001, 0x0A000002, payload)
    content = PPPFrame(protocol=0x0021, information=datagram.encode()).encode()
    return [content] * FRAMES_PER_POINT


def sweep():
    rows = []
    for width in (8, 32):
        config = P5Config(width_bits=width)
        for size in SIZES:
            frames = frames_of_size(size, seed=size)
            result = run_duplex_exchange(frames, [], config, timeout=2_000_000)
            ip_bits = size * 8 * FRAMES_PER_POINT
            goodput = ip_bits * config.clock_hz / result.cycles / 1e9
            rows.append((width, size, result.cycles, goodput,
                         config.line_rate_bps / 1e9))
    return rows


def test_derived_goodput_vs_size(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'width':>6} {'datagram':>9} {'cycles':>8} {'IP goodput':>11} "
        f"{'line':>6} {'efficiency':>11} {'analytic':>9}"
    ]
    for width, size, cycles, goodput, line in rows:
        analytic = ip_over_sonet_efficiency(size, 48).ppp_efficiency
        lines.append(
            f"{width:>6} {size:>9} {cycles:>8} {goodput:>10.3f}G "
            f"{line:>5.2f}G {goodput / line:>10.1%} {analytic:>9.1%}"
        )
    lines.append("")
    lines.append("small packets pay the per-frame overheads (header, FCS,")
    lines.append("flags, pipeline boundaries); 1500-byte datagrams reach")
    lines.append(">90% of the line at both widths")
    emit("Derived figure D1 — IP goodput vs datagram size", "\n".join(lines))

    by_key = {(w, s): g for w, s, _, g, _ in rows}
    # Monotone in size at both widths.
    for width in (8, 32):
        assert by_key[(width, 40)] < by_key[(width, 576)] < by_key[(width, 1500)]
    # Large packets approach the line rate.
    assert by_key[(32, 1500)] > 0.9 * 2.5
    assert by_key[(8, 1500)] > 0.9 * 0.625
    # The 32-bit advantage is the full 4x for every size.
    for size in SIZES:
        assert 3.5 <= by_key[(32, size)] / by_key[(8, size)] <= 4.5
