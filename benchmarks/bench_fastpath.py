"""P1 — Fastpath trajectory: the two-engine speedup on standard traffic.

Times the vectorised frame-level engine against the cycle-accurate
P5 loopback on the imix workload (the exact computation behind
``repro bench`` / ``BENCH_fastpath.json``) and asserts the recorded
floor: the fastpath must stay at least 20x faster frame-for-frame
while remaining differentially equivalent.
"""

from conftest import emit

from repro.fastpath.bench import DEFAULT_SPEEDUP_FLOOR, run_bench


def test_fastpath_speedup_trajectory(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench(frames=30, workloads=("imix",)),
        rounds=1,
        iterations=1,
    )
    imix = report["workloads"]["imix"]
    lines = [
        f"{'engine':>10} {'frames/s':>12} {'MB/s':>10}",
        f"{'cycle':>10} {imix['cycle']['frames_per_s']:>12.1f} "
        f"{imix['cycle']['mb_per_s']:>10.2f}",
        f"{'fastpath':>10} {imix['fastpath']['frames_per_s']:>12.1f} "
        f"{imix['fastpath']['mb_per_s']:>10.2f}",
        "",
        f"speedup {imix['speedup_frames_per_s']:.1f}x "
        f"(floor {DEFAULT_SPEEDUP_FLOOR:.0f}x), differential "
        f"{'ok' if imix['differential_ok'] else 'FAIL'}",
    ]
    emit("Perf P1 — fastpath vs cycle engine", "\n".join(lines))

    assert imix["differential_ok"], imix["differential_mismatches"]
    assert imix["speedup_frames_per_s"] >= DEFAULT_SPEEDUP_FLOOR
    assert report["ok"]
