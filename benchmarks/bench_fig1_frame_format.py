"""F1 — Paper Figure 1: the PPP frame format.

Regenerates the field layout (flag / address / control / protocol /
payload / FCS / flag) from a live encode, and verifies every field
width the figure annotates — including the 1-vs-2-byte protocol and
2-vs-4-byte FCS variability the figure calls out.
"""

from conftest import emit

from repro.crc import CRC16_X25, CRC32
from repro.hdlc import HdlcFramer
from repro.hdlc.constants import ESC_OCTET, ESCAPE_XOR, FLAG_OCTET
from repro.ppp import PPPFrame
from repro.utils.bits import hexdump


def build_layouts():
    payload = bytes([0x31, 0x33, FLAG_OCTET, 0x96])   # the paper's example bytes
    rows = []
    for label, pfc, spec in (
        ("2-byte protocol, FCS-32", False, CRC32),
        ("1-byte protocol (PFC), FCS-16", True, CRC16_X25),
    ):
        content = PPPFrame(protocol=0x0021, information=payload).encode(pfc=pfc)
        wire = HdlcFramer(spec).encode(content)
        rows.append((label, content, wire, spec))
    return payload, rows


def test_fig1(benchmark):
    payload, rows = benchmark(build_layouts)
    lines = [
        "Bytes:   1     1      1        1|2        var     2|4     1",
        "       Flag  Addr  Control  Protocol   Payload   FCS    Flag",
        "",
    ]
    for label, content, wire, spec in rows:
        lines.append(f"{label}:")
        lines.append(hexdump(wire))
        lines.append("")
    emit("Figure 1 — The PPP frame format", "\n".join(lines))

    full, compressed = rows
    # Field-by-field check of the uncompressed frame.
    wire = full[2]
    assert wire[0] == FLAG_OCTET and wire[-1] == FLAG_OCTET  # flags
    assert wire[1] == 0xFF and wire[2] == 0x03           # address, control
    assert wire[3:5] == b"\x00\x21"                      # protocol
    # Payload contains the flag octet, which must appear stuffed on the wire.
    assert bytes([ESC_OCTET, FLAG_OCTET ^ ESCAPE_XOR]) in wire
    # FCS sizes: decoded content identical under both configurations.
    for label, content, w, spec in rows:
        assert HdlcFramer(spec).decode(w).content == content
