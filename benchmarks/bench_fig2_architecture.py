"""F2–F4 — Paper Figures 2-4: the P5 block architecture.

Regenerates the block diagrams as a module-hierarchy walk of the live
system: Figure 2 (Transmitter / Protocol OAM / Receiver behind the uP
interface), Figure 3 (TX: Control -> CRC -> Escape Generate) and
Figure 4 (RX: Escape Detect -> CRC -> Control), and verifies that the
pipeline order of the executable model matches the figures.
"""

from conftest import emit

from repro.core import P5Config, P5System


def build_system():
    system = P5System(P5Config.thirty_two_bit())
    tx_chain = [m.name.split(".")[-1] for m in system.tx.modules]
    rx_chain = [m.name.split(".")[-1] for m in system.rx.modules]
    return system, tx_chain, rx_chain


def test_fig2_to_fig4(benchmark):
    system, tx_chain, rx_chain = benchmark(build_system)
    regs = system.oam.regs.dump()
    body = (
        "Figure 2 — system:\n"
        "  Microprocessor Interface\n"
        "        |            |           |\n"
        "  PPP Transmitter  Protocol OAM  PPP Receiver\n"
        "        |                        |\n"
        "       PHY ---------------------PHY\n\n"
        f"Figure 3 — transmitter pipeline: {' -> '.join(tx_chain)}\n"
        f"Figure 4 — receiver pipeline:    {' -> '.join(rx_chain)}\n\n"
        "Protocol OAM register map:\n" + regs
    )
    emit("Figures 2-4 — P5 architecture", body)
    # Figure 3: data path traverses Control, CRC, Escape Generate.
    assert tx_chain == ["source", "crcgen", "escgen", "flags"]
    # Figure 4: the mirror image.
    assert rx_chain == ["delin", "escdet", "crcchk", "sink"]
    # Figure 2: the OAM exposes control AND status for both directions.
    assert "CTRL" in regs and "RX_FRAMES_OK" in regs and "TX_FRAMES" in regs
