"""F5 — Paper Figure 5: the Escape Generate data-organisation problem.

"7E 12 34 56 -> 7D 5E 12 34 | 56(extra byte)": stuffing one flag turns
4 bytes into 5, so one byte spills into the next transfer.  This bench
replays exactly that word through the cycle-accurate 32-bit unit and
prints the lane-level timing diagram the figure drew by hand.
"""

from conftest import emit

from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.hdlc.constants import ESC_OCTET, ESCAPE_XOR, FLAG_OCTET
from repro.rtl import (
    Channel,
    Simulator,
    StreamSink,
    StreamSource,
    TraceRecorder,
    beats_from_bytes,
)


def run_figure5():
    data = bytes([FLAG_OCTET, 0x12, 0x34, 0x56])
    c_in, c_out = Channel("escgen.in", capacity=2), Channel("escgen.out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(data, 4))
    unit = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    trace = TraceRecorder([c_in, c_out])
    sim.add_observer(trace.sample)
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=100,
    )
    return sink, trace


def test_fig5(benchmark):
    sink, trace = benchmark(run_figure5)
    body = (
        "input word :  7E 12 34 56\n"
        "output     :  7D 5E 12 34  +  56 -- -- --   (extra byte)\n\n"
        + trace.render()
    )
    emit("Figure 5 — Escape Generate data organisation", body)
    assert sink.data() == bytes(
        [ESC_OCTET, FLAG_OCTET ^ ESCAPE_XOR, 0x12, 0x34, 0x56]
    )
    # The spill: a full first word and a 1-valid second word.
    assert [b.n_valid for b in sink.beats] == [4, 1]
    assert sink.beats[0].render().startswith("7D 5E 12 34")
