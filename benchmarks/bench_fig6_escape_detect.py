"""F6 — Paper Figure 6: the Escape Detect data-organisation problem.

"7D 5E 12 34 -> 7E 12 34 (empty)": deleting the escape opens a bubble,
which must be filled by the first byte of the *next* incoming word.
This bench replays the figure through the cycle-accurate unit and
shows the bubble being filled.
"""

from conftest import emit

from repro.core.escape_pipeline import PipelinedEscapeDetect
from repro.hdlc.constants import ESC_OCTET, ESCAPE_XOR, FLAG_OCTET
from repro.rtl import (
    Channel,
    Simulator,
    StreamSink,
    StreamSource,
    TraceRecorder,
    beats_from_bytes,
)


def run_figure6():
    # The figure's word followed by a second word to fill the bubble.
    data = bytes([ESC_OCTET, FLAG_OCTET ^ ESCAPE_XOR,
                  0x12, 0x34, 0x56, 0x57, 0x58, 0x59])
    c_in, c_out = Channel("escdet.in", capacity=2), Channel("escdet.out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(data, 4))
    unit = PipelinedEscapeDetect("det", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    trace = TraceRecorder([c_in, c_out])
    sim.add_observer(trace.sample)
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=100,
    )
    return unit, sink, trace


def test_fig6(benchmark):
    unit, sink, trace = benchmark(run_figure6)
    body = (
        "input words:  7D 5E 12 34 | 56 57 58 59\n"
        "after delete: 7E 12 34 __  (bubble)\n"
        "output     :  7E 12 34 56 | 57 58 59    (bubble filled)\n\n"
        + trace.render()
    )
    emit("Figure 6 — Escape Detect data organisation", body)
    assert sink.data() == bytes(
        [FLAG_OCTET, 0x12, 0x34, 0x56, 0x57, 0x58, 0x59]
    )
    # The first output word is FULL: the next word's byte filled the bubble.
    assert sink.beats[0].n_valid == 4
    assert sink.beats[0].render().startswith("7E 12 34 56")
    assert unit.octets_deleted == 1
