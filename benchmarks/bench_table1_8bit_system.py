"""T1 — Paper Table 1: the 8-bit P5 implementation.

Paper anchors (reconstructed from utilization percentages): ~179 LUTs
(12 % of XCV50-4, 35 % of XC2V40-6) and ~84 FFs, pre- and post-layout,
with f_max comfortably above the 78.125 MHz requirement on both
families at this width.
"""

from conftest import emit

from repro.core.config import P5Config
from repro.synth import synthesize, system_area
from repro.synth.report import format_table

DEVICES = ("XCV50-4", "XC2V40-6")


def build_reports():
    netlist = system_area(P5Config.eight_bit())
    return netlist, [synthesize(netlist, d) for d in DEVICES]


def test_table1(benchmark):
    netlist, reports = benchmark(build_reports)
    emit(
        "Table 1 — P5 8-bit implementation",
        format_table("8-Bit System", reports)
        + f"\n\npaper anchors: ~179 LUTs / ~84 FFs"
        + f"\nmodel:          {netlist.luts} LUTs / {netlist.ffs} FFs",
    )
    for report in reports:
        assert report.timing.meets(78.125), "625 Mbps needs 78.125 MHz"
    assert 140 <= netlist.luts <= 260
