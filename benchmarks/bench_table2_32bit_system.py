"""T2 — Paper Table 2: the 32-bit P5 implementation.

Paper anchors: ~2230 LUTs pre-layout (16 % of XCV600-4, 20 % of
XC2V1000-6), FFs in the 680-850 band, and — the conclusion's headline —
timing closure at 78.125 MHz only on Virtex-II.
"""

from conftest import emit

from repro.core.config import P5Config
from repro.synth import synthesize, system_area
from repro.synth.report import format_table

DEVICES = ("XCV600-4", "XC2V1000-6")


def build_reports():
    netlist = system_area(P5Config.thirty_two_bit())
    return netlist, [synthesize(netlist, d) for d in DEVICES]


def test_table2(benchmark):
    netlist, reports = benchmark(build_reports)
    virtex, virtex2 = reports
    emit(
        "Table 2 — P5 32-bit implementation",
        format_table("32-Bit System", reports)
        + "\n\npaper anchors: ~2230 LUTs pre-layout; ~25% of an XC2V1000;"
        + "\n               78.125 MHz met on Virtex-II only"
        + f"\nmodel:          {netlist.luts} LUTs / {netlist.ffs} FFs; "
        + f"{virtex2.lut_pct:.0f}% of XC2V1000; "
        + f"Virtex {virtex.timing.fmax_post_mhz:.0f} MHz / "
        + f"Virtex-II {virtex2.timing.fmax_post_mhz:.0f} MHz",
    )
    assert not virtex.timing.meets(78.125)
    assert virtex2.timing.meets(78.125)
    assert 1800 <= netlist.luts <= 2600
