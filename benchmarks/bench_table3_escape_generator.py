"""T3 — Paper Table 3: Escape Generate module, 32-bit vs 8-bit on the
XC2V40.

Paper values: 32-bit 492 LUTs (96 %) / 168 FFs (32 %); 8-bit 22 LUTs
(4 %) / 6 FFs (~1 %) — "25 times more combinational logic and 28 times
as many flip-flops".
"""

from conftest import emit

from repro.core.config import P5Config
from repro.synth import escape_generate_area, synthesize


def build_reports():
    eg8 = escape_generate_area(P5Config.eight_bit())
    eg32 = escape_generate_area(P5Config.thirty_two_bit())
    return (
        eg8,
        eg32,
        synthesize(eg8, "XC2V40-6"),
        synthesize(eg32, "XC2V40-6", allow_overflow=True),
    )


def test_table3(benchmark):
    eg8, eg32, rep8, rep32 = benchmark(build_reports)
    lut_ratio = eg32.luts / eg8.luts
    ff_ratio = eg32.ffs / eg8.ffs
    body = (
        f"{'design':<22} {'LUTs':>12} {'FFs':>12}\n"
        f"{'32-bit (paper)':<22} {'492 (96%)':>12} {'168 (32%)':>12}\n"
        f"{'32-bit (model)':<22} "
        f"{f'{eg32.luts} ({rep32.lut_pct:.0f}%)':>12} "
        f"{f'{eg32.ffs} ({rep32.ff_pct:.0f}%)':>12}\n"
        f"{'8-bit  (paper)':<22} {'22 (4%)':>12} {'6 (~1%)':>12}\n"
        f"{'8-bit  (model)':<22} "
        f"{f'{eg8.luts} ({rep8.lut_pct:.0f}%)':>12} "
        f"{f'{eg8.ffs} ({rep8.ff_pct:.0f}%)':>12}\n"
        f"\nratios: {lut_ratio:.1f}x LUTs (paper ~25x), "
        f"{ff_ratio:.1f}x FFs (paper ~28x)"
    )
    emit("Table 3 — Escape Generate implementation (XC2V40-6)", body)
    assert eg8.luts == 22 and eg8.ffs == 6
    assert abs(eg32.luts - 492) / 492 < 0.05
    assert 20 <= lut_ratio <= 28 and 24 <= ff_ratio <= 32
