"""Shared helpers for the benchmark/reproduction harness.

Every module regenerates one table or figure from the paper (see
DESIGN.md's experiment index).  Conventions:

* the paper-style table/trace is printed with :func:`emit` so it is
  visible with ``pytest benchmarks/ --benchmark-only -s`` and collected
  into EXPERIMENTS.md;
* the pytest-benchmark fixture times the *computation that produces
  the artefact* so regressions in the model itself are caught.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print one reproduction artefact with a recognisable banner."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n", file=sys.stderr)
