#!/usr/bin/env python
"""Dual-stack PPP with CHAP: multiple network protocols on one link.

RFC 1661 (paper section 2): "PPP is designed to allow the simultaneous
use of multiple network-layer protocols."  This example brings up one
link that:

1. authenticates with CHAP (MD5 challenge/response — the secret never
   crosses the wire);
2. negotiates IPCP *and* IPV6CP side by side;
3. interleaves IPv4 and IPv6 datagrams over the same HDLC framing —
   the P5 datapath is protocol-agnostic, so only the PPP protocol
   field differs.

Run:  python examples/dual_stack.py
"""

from repro.ipv4 import Ipv4Datagram
from repro.ipv6 import Ipv6Datagram, format_ipv6
from repro.ppp import IpcpConfig, LcpConfig, PppEndpoint, connect_endpoints
from repro.ppp.chap import ChapAuthenticator, ChapPeer
from repro.ppp.ipcp import format_ipv4, parse_ipv4
from repro.ppp.ipv6cp import Ipv6cp
from repro.ppp.protocol_numbers import PROTO_IPV4, PROTO_IPV6


def main() -> None:
    core = PppEndpoint(
        "core-router",
        LcpConfig(),
        IpcpConfig(local_address=parse_ipv4("10.6.0.1"),
                   assign_peer=parse_ipv4("10.6.0.2")),
        magic_seed=1,
        auth_server=ChapAuthenticator({b"edge-router": b"0ptic4l"}, seed=7),
    )
    edge = PppEndpoint(
        "edge-router",
        LcpConfig(),
        IpcpConfig(local_address=0),
        magic_seed=2,
        auth_client=ChapPeer(b"edge-router", b"0ptic4l"),
    )
    v6_core = core.add_ncp(Ipv6cp(seed=11))
    v6_edge = edge.add_ncp(Ipv6cp(seed=22))

    rounds = connect_endpoints(core, edge)
    for _ in range(5):   # let IPV6CP finish alongside
        edge.receive_wire(core.pump())
        core.receive_wire(edge.pump())

    print(f"link up in {rounds} rounds")
    print(f"  CHAP: authenticated peer = "
          f"{core.auth_server.authenticated.decode()}")
    print(f"  IPv4: core {format_ipv4(core.ipcp.config.local_address)}, "
          f"edge {edge.ipcp.local_address_str} (assigned)")
    print(f"  IPv6: core {format_ipv6(v6_core.link_local_address())}")
    print(f"        edge {format_ipv6(v6_edge.link_local_address())}")
    assert core.protocol_ready(PROTO_IPV4) and core.protocol_ready(PROTO_IPV6)

    # Interleave both stacks over the single link.
    sent = []
    for i in range(6):
        if i % 2 == 0:
            datagram = Ipv4Datagram.build(
                parse_ipv4("10.6.0.1"), parse_ipv4("10.6.0.2"),
                f"v4 sample {i}".encode(), identification=i,
            )
            core.send_datagram(datagram.encode(), PROTO_IPV4)
            sent.append((PROTO_IPV4, f"v4 sample {i}"))
        else:
            datagram6 = Ipv6Datagram.build(
                v6_core.link_local_address(), v6_edge.link_local_address(),
                f"v6 sample {i}".encode(),
            )
            core.send_datagram(datagram6.encode(), PROTO_IPV6)
            sent.append((PROTO_IPV6, f"v6 sample {i}"))
    edge.receive_wire(core.pump())

    print("\ninterleaved delivery at the edge:")
    received = []
    while edge.datagrams_in:
        protocol, payload = edge.datagrams_in.popleft()
        if protocol == PROTO_IPV4:
            text = Ipv4Datagram.decode(payload).payload.decode()
        else:
            text = Ipv6Datagram.decode(payload).payload.decode()
        received.append((protocol, text))
        print(f"  0x{protocol:04X}: {text}")

    assert received == sent, "both stacks must interleave in order"
    print("\ndual_stack OK: CHAP + IPv4 + IPv6 simultaneously on one link.")


if __name__ == "__main__":
    main()
