#!/usr/bin/env python
"""Gigabit IP over SDH/SONET — the paper's title, end to end.

Brings up a full PPP link (LCP + IPCP negotiation) whose physical
layer is a real STS-48c/STM-16 path: SONET framing with section/line/
path overhead, both scramblers, BIP monitoring, and the RFC 2615
PPP-over-SONET payload mapping.  Then streams IMIX IPv4 traffic and
reports the efficiency stack from the optical line rate down to IP
goodput.

Run:  python examples/ip_over_sonet.py
"""

from repro.analysis import ip_over_sonet_efficiency
from repro.ipv4 import Ipv4Datagram
from repro.ppp import IpcpConfig, LcpConfig, PppEndpoint
from repro.ppp.frame import PPPFrame
from repro.ppp.ipcp import parse_ipv4
from repro.sonet import PppOverSonet, rate_for
from repro.workloads import PacketStream


def pump_over_sonet(endpoint: PppEndpoint, path: PppOverSonet) -> bytes:
    """Endpoint -> HDLC wire -> re-map onto the SONET path -> line."""
    wire = endpoint.pump()
    if wire:
        for frame in endpoint.tx_framer.decode_stream(wire):
            path.queue_frame(frame.content)
    return path.next_line_frame()


def deliver_from_sonet(endpoint: PppEndpoint, path: PppOverSonet, line: bytes) -> None:
    for content in path.receive_line(line):
        endpoint.receive_wire(endpoint.rx_framer.encode(content))


def main() -> None:
    rate = rate_for(48)
    print(f"physical layer: {rate.name} / {rate.oc_name} / {rate.sdh_name}")
    print(f"  gross line rate   : {rate.line_rate_bps / 1e9:.5f} Gbps")
    print(f"  SPE payload rate  : {rate.payload_rate_bps / 1e9:.5f} Gbps")

    # Two PPP endpoints and two unidirectional SONET paths.
    a = PppEndpoint(
        "A",
        LcpConfig(mru=4470),   # classic POS MTU
        IpcpConfig(local_address=parse_ipv4("10.48.0.1"),
                   assign_peer=parse_ipv4("10.48.0.2")),
        magic_seed=1,
    )
    b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=2)
    path_ab, path_ba = PppOverSonet(48), PppOverSonet(48)

    a.open(); b.open(); a.lower_up(); b.lower_up()
    sonet_frames = 0
    while not (a.network_ready() and b.network_ready()):
        deliver_from_sonet(b, path_ab, pump_over_sonet(a, path_ab))
        deliver_from_sonet(a, path_ba, pump_over_sonet(b, path_ba))
        sonet_frames += 2
        if sonet_frames > 100:
            raise RuntimeError("link failed to come up")
    print(f"\nlink up after {sonet_frames} SONET frames "
          f"({sonet_frames * 125} us of line time)")
    print(f"  A address: {a.ipcp.local_address_str}, peer MRU {a.lcp.negotiated_mru()}")
    print(f"  B address: {b.ipcp.local_address_str} (assigned by A via IPCP)")

    # Stream IMIX traffic A -> B.
    stream = PacketStream(src="10.48.0.1", dst="10.48.0.2", seed=7)
    datagrams = stream.datagrams(200)
    for datagram in datagrams:
        a.send_datagram(datagram.encode())
    received = 0
    for _ in range(40):   # 40 x 125us = 5 ms of line time
        deliver_from_sonet(b, path_ab, pump_over_sonet(a, path_ab))
        received = len(b.datagrams_in)
        if received == len(datagrams):
            break
    print(f"\ndelivered {received}/{len(datagrams)} datagrams")
    # Verify checksums survive the whole stack.
    ok = sum(
        1 for _, payload in b.datagrams_in
        if Ipv4Datagram.decode(payload).header.dst == parse_ipv4("10.48.0.2")
    )
    print(f"IPv4 header checksums verified: {ok}/{received}")

    print("\nSONET section monitoring (B side of the A->B path):")
    c = path_ab.sonet_counters
    print(f"  frames {c.frames_ok}, B1 errors {c.b1_errors}, "
          f"B2 {c.b2_errors}, B3 {c.b3_errors}, OOF {c.oof_events}")

    print("\nefficiency stack (analytic, per datagram size):")
    print(f"  {'size':>6} {'SONET':>7} {'PPP':>7} {'total':>7} {'IP Gbps':>8}")
    for size in (40, 576, 1500):
        eff = ip_over_sonet_efficiency(size, 48)
        print(f"  {size:>6} {eff.sonet_efficiency:>6.1%} {eff.ppp_efficiency:>6.1%} "
              f"{eff.total_efficiency:>6.1%} {eff.ppp_goodput_bps / 1e9:>8.3f}")

    assert received == len(datagrams)
    print("\nip_over_sonet OK: gigabit IP over SDH/SONET, byte-exact.")


if __name__ == "__main__":
    main()
