#!/usr/bin/env python
"""LCP option negotiation, FCS re-programming and loopback detection.

Walks through the control-plane features behind the P5's
"programmability" claim:

1. a full LCP negotiation with MRU, magic numbers, PFC/ACFC and the
   RFC 1570 FCS-Alternatives option (switching the running link from
   the default 16-bit FCS wire format to the P5's 32-bit CRC);
2. the RFC 1661 negotiation automaton's timeout/retry behaviour;
3. loopback detection via magic numbers — the classic SONET facility
   loopback scenario.

Run:  python examples/lcp_negotiation.py
"""

from repro.crc import CRC16_X25
from repro.ppp import (
    IpcpConfig,
    LcpConfig,
    PppEndpoint,
    connect_endpoints,
)
from repro.ppp.control import Code, ControlPacket
from repro.ppp.fsm import State
from repro.ppp.ipcp import parse_ipv4
from repro.ppp.lcp import Lcp
from repro.ppp.options import FCS_32


def negotiation_walkthrough() -> None:
    print("1) full negotiation with FCS-Alternatives")
    a = PppEndpoint(
        "A",
        LcpConfig(mru=4470, request_pfc=True, request_acfc=True,
                  fcs_flags=FCS_32),
        IpcpConfig(local_address=parse_ipv4("10.1.0.1"),
                   assign_peer=parse_ipv4("10.1.0.2")),
        fcs_spec=CRC16_X25,           # links start on the RFC 1662 default
        magic_seed=101,
    )
    b = PppEndpoint(
        "B",
        LcpConfig(fcs_flags=FCS_32),
        IpcpConfig(local_address=0),
        fcs_spec=CRC16_X25,
        magic_seed=202,
    )
    rounds = connect_endpoints(a, b)
    print(f"   link opened in {rounds} exchange rounds")
    print(f"   A negotiated: MRU {a.lcp.negotiated_mru()} (peer side), "
          f"PFC {a.lcp.peer_accepted_pfc()}, ACFC {a.lcp.peer_accepted_acfc()}")
    print(f"   FCS switched: A transmits FCS-{a.tx_framer.fcs_spec.width}, "
          f"B receives FCS-{b.rx_framer.fcs_spec.width}")
    print(f"   B was assigned {b.ipcp.local_address_str} via IPCP nak")
    a.send_datagram(b"datagram under the new FCS")
    b.receive_wire(a.pump())
    assert b.datagrams_in.popleft()[1] == b"datagram under the new FCS"
    assert a.tx_framer.fcs_spec.width == 32


def timeout_retry_demo() -> None:
    print("\n2) restart timer: requests are re-sent until Max-Configure")
    lcp = Lcp(magic_seed=7)
    lcp.fsm.open()
    lcp.fsm.up()
    sent = len(lcp.drain_outbox())
    ticks = 0
    while lcp.state is State.REQ_SENT:
        lcp.fsm.tick()
        ticks += 1
        sent += len(lcp.drain_outbox())
    print(f"   {sent} Configure-Requests sent over {ticks} timeouts, "
          f"then gave up in state {lcp.state.name}")
    assert lcp.state is State.STOPPED
    assert sent == 1 + lcp.fsm.max_configure


def loopback_demo() -> None:
    print("\n3) loopback detection (facility loopback on the SONET span)")
    lcp = Lcp(magic_seed=33)
    lcp.fsm.open()
    lcp.fsm.up()
    naks = 0
    for _ in range(5):
        # Everything we transmit comes straight back at us.
        for raw in lcp.drain_outbox():
            packet = ControlPacket.decode(raw)
            if packet.code == Code.CONFIGURE_REQUEST:
                lcp.receive_packet(raw)
        naks = lcp.magic.loop_evidence
        if lcp.magic.looped:
            break
        lcp.fsm.tick()
    print(f"   own magic number seen {lcp.magic.loop_evidence} times -> "
          f"looped = {lcp.magic.looped}")
    assert lcp.magic.looped, "the loop must be detected"


def main() -> None:
    negotiation_walkthrough()
    timeout_retry_demo()
    loopback_demo()
    print("\nlcp_negotiation OK: negotiation, reprogramming and loopback "
          "detection all verified.")


if __name__ == "__main__":
    main()
