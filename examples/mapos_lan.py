#!/usr/bin/env python
"""MAPOS over the P5: the programmable-address claim in action.

The paper makes the HDLC address field programmable "so that it is
compatible with MAPOS systems" (RFC 2171): a multi-access SONET LAN
where a switch forwards frames by station address.  This example
builds a four-station MAPOS LAN, programs each station's P5 with its
assigned address via the OAM register, and runs unicast, broadcast and
multicast traffic through the switch — every hop crossing a real
cycle-accurate P5 datapath.

Run:  python examples/mapos_lan.py
"""

from repro.core import P5Config, P5System
from repro.core.oam import ADDR_STATION_ADDRESS
from repro.core.p5 import PhyWire
from repro.mapos import (
    BROADCAST_ADDRESS,
    MAPOS_PROTO_IP,
    MaposFrame,
    MaposSwitch,
    group_address,
)
from repro.rtl import Simulator


class MaposStation:
    """One station: a P5 system programmed with a MAPOS address."""

    def __init__(self, port_number: int, switch: MaposSwitch) -> None:
        self.port = switch.attach(port_number)
        # The P5's programmable address register takes the assigned value.
        self.p5 = P5System(
            P5Config.thirty_two_bit(address=self.port.address),
            name=f"station{port_number}",
        )
        self.p5.oam.write(ADDR_STATION_ADDRESS, self.port.address)
        self.received = []

    def send(self, destination: int, payload: bytes) -> None:
        frame = MaposFrame(destination, MAPOS_PROTO_IP, payload)
        self.p5.submit(frame.encode())

    def collect(self) -> None:
        for content, good in self.p5.received()[len(self.received):]:
            if good:
                self.received.append(MaposFrame.decode(content))


def main() -> None:
    switch = MaposSwitch()
    stations = {n: MaposStation(n, switch) for n in (1, 2, 3, 4)}
    print("MAPOS LAN: 4 stations behind one switch")
    for n, station in stations.items():
        print(f"  port {n}: address 0x{station.port.address:02X}, "
              f"P5 programmed via OAM "
              f"(readback 0x{station.p5.oam.read(ADDR_STATION_ADDRESS):02X})")

    # Multicast group for stations 2 and 4.
    video_group = group_address(9)
    switch.join_group(2, video_group)
    switch.join_group(4, video_group)

    # Traffic: unicast 1->3, broadcast from 2, multicast from 1.
    stations[1].send(stations[3].port.address, b"unicast: hello station 3")
    stations[2].send(BROADCAST_ADDRESS, b"broadcast: link status ping")
    stations[1].send(video_group, b"multicast: video chunk 0001")

    # Each station's TX datapath wires into the switch; the switch's
    # per-port inboxes wire back into the destination's RX datapath.
    # Run each hop's cycle-accurate simulation to completion.
    for n, station in stations.items():
        sink_frames = _drain_tx(station)
        for content in sink_frames:
            frame = MaposFrame.decode(content)
            for dest_port in switch.ingress(n, frame):
                _inject_rx(stations[dest_port], content)
    for station in stations.values():
        station.collect()

    print("\ndelivery matrix:")
    for n, station in stations.items():
        for frame in station.received:
            print(f"  station {n} <- addr 0x{frame.address:02X}: "
                  f"{frame.information.decode()}")

    assert [f.information for f in stations[3].received] == [
        b"unicast: hello station 3",
        b"broadcast: link status ping",
    ]
    assert [f.information for f in stations[2].received] == [
        b"multicast: video chunk 0001",
    ]
    # Station 1's frames are switched before station 2's, so port 4
    # sees the multicast first.
    assert [f.information for f in stations[4].received] == [
        b"multicast: video chunk 0001",
        b"broadcast: link status ping",
    ]
    assert stations[1].received == [
        f for f in stations[1].received if f.information.startswith(b"broadcast")
    ]
    print(f"\nswitch: {switch.frames_switched} switched, "
          f"{switch.frames_dropped} dropped")
    print("mapos_lan OK: programmable addressing verified through the P5.")


def _drain_tx(station: MaposStation):
    """Run the station's TX pipeline until its wire is fully emitted."""
    from repro.core.rx import P5Receiver
    from repro.hdlc import HdlcFramer

    tx = station.p5.tx
    from repro.rtl import StreamSink

    sink = StreamSink("wire", tx.phy_out)
    sim = Simulator(tx.modules + [sink], tx.channels)
    sim.run_until(lambda: not tx.busy and not tx.phy_out.can_pop, timeout=200_000)
    framer = HdlcFramer(station.p5.config.fcs)
    return [f.content for f in framer.decode_stream(sink.data())]


def _inject_rx(station: MaposStation, content: bytes) -> None:
    """Run the destination's RX pipeline over the re-framed wire."""
    from repro.hdlc import HdlcFramer
    from repro.rtl import StreamSource, beats_from_bytes

    rx = station.p5.rx
    wire = HdlcFramer(station.p5.config.fcs).encode(content)
    src = StreamSource(
        f"wire>{station.port.number}", rx.phy_in,
        beats_from_bytes(wire, station.p5.config.width_bytes, frame_marks=False),
    )
    sim = Simulator([src] + rx.modules, rx.channels)
    sim.run_until(
        lambda: src.done and not any(ch.can_pop for ch in rx.channels)
        and rx.escape.idle,
        timeout=200_000,
    )


if __name__ == "__main__":
    main()
