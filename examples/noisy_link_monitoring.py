#!/usr/bin/env python
"""Error injection and OAM monitoring on a degraded optical span.

Sweeps the line BER from clean to severe and shows what each layer's
monitoring sees: SONET B1/B3 parity violations, HDLC FCS failures and
aborts, and the end-to-end delivery ratio — the operational picture a
NOC would read off the P5's Protocol OAM counters.  Also demonstrates
LCP echo (link-quality probing) surviving moderate noise.

Run:  python examples/noisy_link_monitoring.py
"""

from repro.phy import BitErrorLine
from repro.ppp import IpcpConfig, LcpConfig, PppEndpoint, connect_endpoints
from repro.ppp.ipcp import parse_ipv4
from repro.sonet import PppOverSonet
from repro.workloads import PacketStream

BER_SWEEP = (0.0, 1e-7, 1e-6, 1e-5, 1e-4)
N_FRAMES = 100


def run_at_ber(ber: float) -> dict:
    path = PppOverSonet(12)
    line = BitErrorLine(ber, seed=int(ber * 1e9) + 5)
    frames = PacketStream(seed=11).frame_contents(N_FRAMES)
    for frame in frames:
        path.queue_frame(frame)
    delivered = []
    for _ in range(60):
        delivered += path.receive_line(line.transmit(path.next_line_frame()))
        if not path.tx_backlog_frames and not delivered_missing(path):
            break
    sonet, hdlc = path.sonet_counters, path.hdlc_stats
    return {
        "ber": ber,
        "observed_ber": line.observed_ber,
        "delivered": sum(1 for d in delivered if d in frames),
        "b1": sonet.b1_errors,
        "b3": sonet.b3_errors,
        "oof": sonet.oof_events,
        "fcs": hdlc.fcs_errors,
        "aborts": hdlc.aborts,
    }


def delivered_missing(path: PppOverSonet) -> bool:
    return path.tx_backlog_frames > 0


def main() -> None:
    print(f"{'BER':>9} {'observed':>10} {'delivered':>10} {'B1':>5} "
          f"{'B3':>5} {'OOF':>5} {'FCS err':>8} {'aborts':>7}")
    results = [run_at_ber(ber) for ber in BER_SWEEP]
    for r in results:
        print(f"{r['ber']:>9.0e} {r['observed_ber']:>10.2e} "
              f"{r['delivered']:>7}/{N_FRAMES} {r['b1']:>5} {r['b3']:>5} "
              f"{r['oof']:>5} {r['fcs']:>8} {r['aborts']:>7}")

    clean, worst = results[0], results[-1]
    assert clean["delivered"] == N_FRAMES and clean["fcs"] == 0
    assert worst["delivered"] < N_FRAMES
    assert worst["b1"] > 0, "SONET section monitoring must see the errors"

    # Link-quality probing: LCP echo over a mildly noisy link.
    print("\nLCP echo probing over a direct link:")
    a = PppEndpoint("A", LcpConfig(),
                    IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                               assign_peer=parse_ipv4("10.0.0.2")),
                    magic_seed=1)
    b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=2)
    connect_endpoints(a, b)
    probes = 20
    for _ in range(probes):
        a.lcp.send_echo_request(b"lqm-probe")
        b.receive_wire(a.pump())
        a.receive_wire(b.pump())
    print(f"  sent {probes} Echo-Requests, received "
          f"{a.lcp.echo_replies_seen} Echo-Replies "
          f"({a.lcp.echo_replies_seen / probes:.0%} round-trip success)")
    assert a.lcp.echo_replies_seen == probes
    print("\nnoisy_link_monitoring OK: every injected error was observed "
          "by some monitor,\nand no corrupted frame was delivered as good.")


if __name__ == "__main__":
    main()
