#!/usr/bin/env python
"""1+1 protection switching: IP traffic surviving a fibre cut.

Real OC-48 links (the paper's deployment target) run protected: the
head end bridges every frame onto a working and a protection fibre;
the tail end selects whichever is healthy via the K1/K2 overhead
bytes.  This example streams PPP/IP traffic over a protected span,
cuts the working fibre mid-stream, and shows the selector switching to
protection within one frame — with zero frames lost, because both
fibres carry the same bridged signal.

Run:  python examples/protected_ring.py
"""

from repro.hdlc import Delineator, HdlcFramer
from repro.sonet import SonetFramer, SonetRxFramer
from repro.sonet.aps import ApsRequest, ProtectionSelector
from repro.workloads import ppp_frame_contents


def main() -> None:
    n = 12
    tx = SonetFramer(n)
    selector = ProtectionSelector(
        SonetRxFramer(n, oof_threshold=1),
        SonetRxFramer(n, oof_threshold=1),
    )
    delineator = Delineator(framer=HdlcFramer())

    frames = ppp_frame_contents(400, seed=3)
    hdlc = HdlcFramer()
    stream = bytearray()
    for content in frames:
        stream += hdlc.encode(content)

    payload_per_frame = tx.payload_bytes_per_frame
    recovered = []
    cut_at = 8
    print(f"streaming {len(frames)} PPP frames over protected {tx.rate.oc_name}; "
          f"working fibre cut at frame {cut_at}\n")
    frame_no = 0
    while stream or frame_no < cut_at + 6:
        frame_no += 1
        chunk = bytes(stream[:payload_per_frame])
        del stream[:payload_per_frame]
        if len(chunk) < payload_per_frame:
            chunk += b"\x7e" * (payload_per_frame - len(chunk))
        wire = tx.build(chunk)
        working = wire if frame_no < cut_at else bytes(len(wire))  # the cut
        payload = selector.receive_frame(working, wire)
        before = len(delineator.frames)
        delineator.push_bytes(payload)
        recovered += [f.content for f in delineator.frames[before:]]
        marker = ""
        if selector.switch_events and selector.switch_events[-1][0] == frame_no:
            _, target, kind = selector.switch_events[-1]
            marker = f"  <-- APS switch to {target} ({kind.name})"
        if frame_no <= cut_at + 3 or marker:
            print(f"  frame {frame_no:2d}: active={selector.active:<10} "
                  f"K1=0x{selector.k1_byte():02X} "
                  f"recovered={len(recovered):3d}{marker}")
        if not stream and frame_no >= cut_at + 6 and len(recovered) == len(frames):
            break

    print(f"\nrecovered {len(recovered)}/{len(frames)} PPP frames, "
          f"FCS errors: {delineator.stats.fcs_errors}")
    assert recovered == frames, "the bridged protection path loses nothing"
    assert selector.active == "protection"
    assert any(k is ApsRequest.SIGNAL_FAIL for _, _, k in selector.switch_events)
    print("protected_ring OK: fibre cut absorbed with zero frame loss.")


if __name__ == "__main__":
    main()
