#!/usr/bin/env python
"""Quickstart: push real IP packets through the cycle-accurate P5.

Builds two 32-bit P5 systems (the paper's 2.5 Gbps configuration),
cross-connects them, transmits ten IPv4-in-PPP frames in each
direction and reads the results back through the Protocol OAM register
map — the whole paper in ~40 lines of API.

Run:  python examples/quickstart.py
"""

from repro import P5Config, run_duplex_exchange
from repro.core.oam import ADDR_RX_FRAMES_OK, ADDR_TX_FRAMES
from repro.workloads import ppp_frame_contents


def main() -> None:
    config = P5Config.thirty_two_bit()
    print(f"configuration: {config.describe()}")

    frames_ab = ppp_frame_contents(10, seed=1)   # IMIX IPv4 traffic
    frames_ba = ppp_frame_contents(10, seed=2)
    result = run_duplex_exchange(frames_ab, frames_ba, config, timeout=2_000_000)

    print(f"\nexchange completed in {result.cycles} clock cycles "
          f"({result.cycles / config.clock_hz * 1e6:.1f} us at "
          f"{config.clock_hz / 1e6:.3f} MHz)")
    print(f"A->B delivered {len(result.b_received)} frames, "
          f"all FCS-good: {all(ok for _, ok in result.b_received)}")
    print(f"B->A delivered {len(result.a_received)} frames, "
          f"all FCS-good: {all(ok for _, ok in result.a_received)}")

    payload_bits = sum(len(f) for f in frames_ab) * 8
    gbps = payload_bits * config.clock_hz / result.cycles / 1e9
    print(f"goodput: {gbps:.2f} Gbps of the "
          f"{config.line_rate_bps / 1e9:.2f} Gbps line")

    # The host's view: OAM registers.
    oam_a, oam_b = result.a.oam, result.b.oam
    print("\nProtocol OAM (station A):")
    print(f"  TX_FRAMES     = {oam_a.read(ADDR_TX_FRAMES)}")
    print(f"  RX_FRAMES_OK  = {oam_a.read(ADDR_RX_FRAMES_OK)}")
    print(f"  irq asserted  = {oam_a.irq_asserted}")
    print("\nfull register dump (station B):")
    print(oam_b.regs.dump())

    assert [c for c, _ in result.b_received] == frames_ab
    assert [c for c, _ in result.a_received] == frames_ba
    print("\nquickstart OK: every frame delivered byte-exact.")


if __name__ == "__main__":
    main()
