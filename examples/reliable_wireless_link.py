#!/usr/bin/env python
"""PPP numbered mode (RFC 1663): reliable transmission on a noisy link.

Paper section 2, on the PPP control field: "PPP may be configured via
the LCP to use sequence numbers and acknowledgements for reliable data
transmission.  This is of particular use in noisy environments such as
wireless networks."

This example runs the same datagram burst over a lossy channel twice:

* in the default **unnumbered mode** (UI frames) — losses are final;
* in **numbered mode** — the LAPB-style window/REJ/timeout machinery
  recovers every frame, at the cost of retransmissions.

Run:  python examples/reliable_wireless_link.py
"""

import numpy as np

from repro.ppp.reliable import NumberedModeLink

N_MESSAGES = 200
LOSS_RATE = 0.15


def make_messages():
    return [f"telemetry sample {i:04d}".encode() for i in range(N_MESSAGES)]


def unnumbered_run(seed: int) -> int:
    """Default mode: each frame is sent once; losses are unrecoverable."""
    rng = np.random.default_rng(seed)
    delivered = 0
    for _ in make_messages():
        if rng.random() >= LOSS_RATE:
            delivered += 1
    return delivered


def numbered_run(seed: int):
    """Numbered mode: go-back-N over the same loss process."""
    rng = np.random.default_rng(seed)
    sender, receiver = NumberedModeLink("air-tx"), NumberedModeLink("air-rx")
    messages = make_messages()
    for message in messages:
        sender.send(message)
    ticks = 0
    while not (sender.all_acknowledged and len(receiver.delivered) == len(messages)):
        ticks += 1
        if ticks > 5000:
            raise RuntimeError("link did not converge")
        for control, payload in sender.drain_outbox():
            if rng.random() >= LOSS_RATE:
                receiver.receive(control, payload)
        for control, payload in receiver.drain_outbox():
            if rng.random() >= LOSS_RATE:
                sender.receive(control, payload)
        sender.tick()
        receiver.tick()
    return receiver, sender, ticks


def main() -> None:
    print(f"channel: {LOSS_RATE:.0%} frame loss, {N_MESSAGES} datagrams\n")

    plain = unnumbered_run(seed=42)
    print("unnumbered (default UI) mode:")
    print(f"  delivered {plain}/{N_MESSAGES} "
          f"({plain / N_MESSAGES:.0%}) — losses are final\n")

    receiver, sender, ticks = numbered_run(seed=42)
    stats = sender.stats
    print("numbered (RFC 1663) mode:")
    print(f"  delivered {len(receiver.delivered)}/{N_MESSAGES} (100%) "
          f"in {ticks} timer periods")
    print(f"  I-frames sent {stats.i_sent}, retransmitted {stats.i_resent} "
          f"({stats.i_resent / stats.i_sent:.1%} overhead)")
    print(f"  REJs received {stats.rej_received}, timeouts {stats.timeouts}")
    print(f"  receiver: {receiver.stats.out_of_sequence} out-of-sequence "
          f"events, {receiver.stats.rej_sent} REJs sent")

    assert receiver.delivered == make_messages(), "order must be preserved"
    assert plain < N_MESSAGES, "the lossy channel must actually lose frames"
    print("\nreliable_wireless_link OK: numbered mode delivered everything, "
          "in order.")


if __name__ == "__main__":
    main()
