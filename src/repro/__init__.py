"""repro — a reproduction of "A Programmable and Highly Pipelined PPP
Architecture for Gigabit IP over SDH/SONET" (Toal & Sezer, IPPS 2003).

The package implements the paper's P5 packet processor as a
cycle-accurate architectural model, together with every substrate the
design depends on: the full PPP protocol suite (RFC 1661/1662 and
friends), three cross-checked CRC engines including the word-parallel
Pei–Zukowski matrices, an SDH/SONET transmission system with the
RFC 1619/2615 payload mappings, MAPOS framing, PHY error models, and
an FPGA synthesis cost model that regenerates the paper's Tables 1–3.

Quick start::

    from repro import P5Config, run_duplex_exchange
    from repro.workloads import ppp_frame_contents

    frames = ppp_frame_contents(10, seed=1)
    result = run_duplex_exchange(frames, [], P5Config.thirty_two_bit())
    assert result.all_good()

See ``examples/`` for full scenarios and ``benchmarks/`` for the
table/figure reproductions.
"""

from repro._version import __version__
from repro.errors import ReproError
from repro.core import (
    P5Config,
    P5Receiver,
    P5System,
    P5Transmitter,
    PipelinedEscapeDetect,
    PipelinedEscapeGenerate,
    ProtocolOam,
    run_duplex_exchange,
)
from repro.crc import CRC16_X25, CRC32, BitSerialCrc, ParallelCrc, TableCrc
from repro.hdlc import Delineator, HdlcFramer, stuff, unstuff
from repro.ppp import (
    Ipcp,
    IpcpConfig,
    Lcp,
    LcpConfig,
    PppEndpoint,
    PPPFrame,
    connect_endpoints,
)
from repro.sonet import PppOverSonet, SonetFramer, SonetRxFramer

__all__ = [
    "__version__",
    "ReproError",
    # the P5 core
    "P5Config",
    "P5System",
    "P5Transmitter",
    "P5Receiver",
    "PipelinedEscapeGenerate",
    "PipelinedEscapeDetect",
    "ProtocolOam",
    "run_duplex_exchange",
    # CRC
    "CRC16_X25",
    "CRC32",
    "BitSerialCrc",
    "TableCrc",
    "ParallelCrc",
    # HDLC
    "HdlcFramer",
    "Delineator",
    "stuff",
    "unstuff",
    # PPP
    "PPPFrame",
    "PppEndpoint",
    "connect_endpoints",
    "Lcp",
    "LcpConfig",
    "Ipcp",
    "IpcpConfig",
    # SONET
    "SonetFramer",
    "SonetRxFramer",
    "PppOverSonet",
]
