"""Measurement and analysis over the cycle-accurate model.

* :mod:`repro.analysis.throughput` — bytes/cycle and Gbps from duplex
  runs (claim C1: 625 Mbps / 2.5 Gbps at 78.125 MHz);
* :mod:`repro.analysis.latency` — pipeline fill latency (claim C2:
  4 cycles ≈ 50 ns through the 32-bit escape unit);
* :mod:`repro.analysis.expansion` — stuffing expansion statistics,
  analytic and empirical (sizes the resynchronisation buffer);
* :mod:`repro.analysis.efficiency` — end-to-end line efficiency of
  IP over PPP over SONET.
"""

from repro.analysis.throughput import ThroughputReport, measure_escape_throughput
from repro.analysis.latency import LatencyReport, measure_escape_latency
from repro.analysis.expansion import (
    expected_expansion,
    measure_expansion,
    worst_case_expansion,
)
from repro.analysis.efficiency import EfficiencyBreakdown, ip_over_sonet_efficiency

__all__ = [
    "ThroughputReport",
    "measure_escape_throughput",
    "LatencyReport",
    "measure_escape_latency",
    "expected_expansion",
    "measure_expansion",
    "worst_case_expansion",
    "EfficiencyBreakdown",
    "ip_over_sonet_efficiency",
]
