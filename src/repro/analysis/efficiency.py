"""End-to-end line efficiency: IP over PPP/HDLC over SONET.

Combines every overhead between an IP payload and the optical line:
SONET section/line/path overhead, HDLC flags + FCS + PPP header, and
the stochastic stuffing expansion — producing the derived "how much of
OC-48 is actually IP" figure the examples report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.expansion import UNIFORM_RANDOM_DENSITY, expected_expansion
from repro.sonet.rates import StsRate, payload_capacity_bytes

__all__ = ["EfficiencyBreakdown", "ip_over_sonet_efficiency"]


@dataclass(frozen=True)
class EfficiencyBreakdown:
    """Where the line rate goes, stage by stage."""

    sts_level: int
    datagram_bytes: int
    line_rate_bps: float
    sonet_payload_bps: float
    ppp_goodput_bps: float

    @property
    def sonet_efficiency(self) -> float:
        return self.sonet_payload_bps / self.line_rate_bps

    @property
    def ppp_efficiency(self) -> float:
        """PPP goodput as a fraction of the SONET payload."""
        return self.ppp_goodput_bps / self.sonet_payload_bps

    @property
    def total_efficiency(self) -> float:
        return self.ppp_goodput_bps / self.line_rate_bps


def ip_over_sonet_efficiency(
    datagram_bytes: int,
    sts_level: int = 48,
    *,
    escape_density: float = UNIFORM_RANDOM_DENSITY,
    fcs_octets: int = 4,
    header_octets: int = 4,   # address + control + 2-byte protocol
    flag_octets: int = 1,     # one shared flag per frame
) -> EfficiencyBreakdown:
    """Compute the efficiency stack for ``datagram_bytes`` IP packets.

    Per frame, the wire carries::

        flags + stuffed(header + datagram + FCS)

    and stuffing applies to header+payload+FCS at the given density.
    """
    if datagram_bytes < 20:
        raise ValueError("IP datagrams are at least 20 bytes")
    rate = StsRate(sts_level)
    sonet_payload_bps = payload_capacity_bytes(sts_level) * 8 * 8000
    content = header_octets + datagram_bytes + fcs_octets
    wire_per_frame = flag_octets + content * expected_expansion(escape_density)
    goodput_fraction = datagram_bytes / wire_per_frame
    return EfficiencyBreakdown(
        sts_level=sts_level,
        datagram_bytes=datagram_bytes,
        line_rate_bps=rate.line_rate_bps,
        sonet_payload_bps=sonet_payload_bps,
        ppp_goodput_bps=sonet_payload_bps * goodput_fraction,
    )
