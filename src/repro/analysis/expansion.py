"""Stuffing-expansion statistics — sizing the resynchronisation buffer.

Every escapable octet costs one extra octet on the wire, so a payload
with escape-octet density ``p`` expands by factor ``1 + p`` in
expectation, with worst case 2.0 (all-flag payload).  The empirical
measurement cross-checks the generators and drives ablation A2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdlc.byte_stuffing import stuff

__all__ = [
    "expected_expansion",
    "worst_case_expansion",
    "measure_expansion",
    "ExpansionSample",
]

#: Escape-octet density of uniformly random bytes: 2 of 256 values.
UNIFORM_RANDOM_DENSITY = 2 / 256


def expected_expansion(density: float) -> float:
    """Analytic expansion factor for escape density ``density``."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    return 1.0 + density


def worst_case_expansion() -> float:
    """The adversarial bound: every octet escaped."""
    return 2.0


@dataclass(frozen=True)
class ExpansionSample:
    """Measured expansion of one payload."""

    payload_bytes: int
    stuffed_bytes: int

    @property
    def factor(self) -> float:
        return self.stuffed_bytes / self.payload_bytes if self.payload_bytes else 1.0


def measure_expansion(payload: bytes) -> ExpansionSample:
    """Stuff ``payload`` and report the observed expansion."""
    return ExpansionSample(len(payload), len(stuff(payload)))
