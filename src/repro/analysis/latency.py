"""Pipeline-fill latency measurement.

Claim C2: "the process is divided up into 4 pipelined stages ... The
first data transmitted is therefore delayed by 4 clock cycles,
approximately 50ns.  Subsequent data flow is continuous."  (4 cycles
at 78.125 MHz is 51.2 ns.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import P5Config
from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.rtl.module import Channel
from repro.rtl.pipeline import StreamSink, StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator

__all__ = ["LatencyReport", "measure_escape_latency"]


@dataclass(frozen=True)
class LatencyReport:
    """First-word latency through the escape pipeline."""

    width_bits: int
    pipeline_stages: int
    clock_hz: float
    fill_cycles: int          # intake of first word -> first output push

    @property
    def fill_ns(self) -> float:
        return self.fill_cycles / self.clock_hz * 1e9


def measure_escape_latency(
    config: P5Config,
    *,
    pipeline_stages: int = None,
    payload: bytes = None,
) -> LatencyReport:
    """Measure cycles from first-word intake to first-word emission."""
    w = config.width_bytes
    stages = pipeline_stages if pipeline_stages is not None else (
        4 if w > 1 else 2
    )
    data = payload if payload is not None else bytes(range(1, 8 * w + 1))
    c_in = Channel("in", capacity=2)
    c_out = Channel("out", capacity=2)
    source = StreamSource("src", c_in, beats_from_bytes(data, w))
    unit = PipelinedEscapeGenerate(
        "escgen",
        c_in,
        c_out,
        width_bytes=w,
        escapes=config.escape_octets,
        pipeline_stages=stages,
        resync_depth_words=config.resync_depth_words,
    )
    sink = StreamSink("sink", c_out)
    sim = Simulator([source, unit, sink], [c_in, c_out])

    intake_cycle = {}

    def watch(cycle: int) -> None:
        if "in" not in intake_cycle and unit.words_in > 0:
            intake_cycle["in"] = cycle
        if "out" not in intake_cycle and unit.words_out > 0:
            intake_cycle["out"] = cycle

    sim.add_observer(watch)
    sim.run_until(lambda: "out" in intake_cycle, timeout=10_000)
    return LatencyReport(
        width_bits=config.width_bits,
        pipeline_stages=stages,
        clock_hz=config.clock_hz,
        fill_cycles=intake_cycle["out"] - intake_cycle["in"] + 1,
    )
