"""Throughput measurement on the cycle-accurate datapath.

The paper's headline: "Making use of a 32-bit bus, the system had to
operate at a frequency of at least [78.125 MHz].  It is imperative
that at this speed the system is able to process 32 bits every clock
cycle."  :func:`measure_escape_throughput` drives the escape pipeline
at full input rate and reports the sustained bytes/cycle, which times
the configured clock gives the achieved bit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import P5Config
from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.rtl.module import Channel
from repro.rtl.pipeline import StreamSink, StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator

__all__ = ["ThroughputReport", "measure_escape_throughput"]


@dataclass(frozen=True)
class ThroughputReport:
    """Sustained-rate measurement over one pipeline run."""

    width_bits: int
    clock_hz: float
    payload_bytes: int
    output_bytes: int
    cycles: int

    @property
    def input_bytes_per_cycle(self) -> float:
        return self.payload_bytes / self.cycles

    @property
    def output_bytes_per_cycle(self) -> float:
        return self.output_bytes / self.cycles

    @property
    def input_gbps(self) -> float:
        """Payload rate achieved at the configured clock."""
        return self.input_bytes_per_cycle * 8 * self.clock_hz / 1e9

    @property
    def line_gbps(self) -> float:
        """Stuffed line rate achieved at the configured clock."""
        return self.output_bytes_per_cycle * 8 * self.clock_hz / 1e9

    @property
    def utilization(self) -> float:
        """Fraction of the W-bytes-every-cycle ideal achieved."""
        ideal = self.width_bits / 8
        return max(self.input_bytes_per_cycle, self.output_bytes_per_cycle) / ideal


def measure_escape_throughput(
    payload: bytes,
    config: P5Config,
    *,
    timeout: int = 5_000_000,
) -> ThroughputReport:
    """Stream ``payload`` (one frame) through Escape Generate at line rate."""
    w = config.width_bytes
    c_in = Channel("in", capacity=2)
    c_out = Channel("out", capacity=2)
    source = StreamSource("src", c_in, beats_from_bytes(payload, w))
    unit = PipelinedEscapeGenerate(
        "escgen",
        c_in,
        c_out,
        width_bytes=w,
        escapes=config.escape_octets,
        pipeline_stages=4 if w > 1 else 2,
        resync_depth_words=config.resync_depth_words,
    )
    sink = StreamSink("sink", c_out)
    sim = Simulator([source, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: source.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=timeout,
    )
    return ThroughputReport(
        width_bits=config.width_bits,
        clock_hz=config.clock_hz,
        payload_bytes=len(payload),
        output_bytes=len(sink.data()),
        cycles=sim.cycle,
    )
