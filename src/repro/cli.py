"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``info``
    Package and configuration summary.
``tables``
    Regenerate the paper's Tables 1–3 from the synthesis model.
``throughput``
    Measure escape-pipeline throughput at a given width.
``latency``
    Measure pipeline fill latency at a given width.
``trace``
    Run the Figure 5 scenario and dump a VCD waveform.
``lint``
    Static design-rule checks: graph DRC over the shipped topologies
    plus the ready/valid AST lint over the source tree.
``sta``
    Static timing, buffer-sizing and deadlock analysis over the
    canonical duplex topologies, held to the paper's latency budgets
    (see :mod:`repro.sta`).
``faults``
    Seeded fault-injection campaigns over the loopback datapath with
    recovery-invariant checking (see :mod:`repro.faults`).
``resilience``
    Supervised redundant-link chaos soak: two P5 lanes under an
    APS-style 1+1 selector, a recovery ladder, and graceful fastpath
    degradation (see :mod:`repro.resilience`).
``bench``
    Two-engine benchmark: the cycle-accurate P5 loopback vs. the
    frame-level fastpath on identical workloads, differentially
    verified, recorded in ``BENCH_fastpath.json`` (see
    :mod:`repro.fastpath`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "P5 — programmable pipelined PPP packet processor "
            "(Toal & Sezer, IPPS 2003) reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and configuration summary")

    sub.add_parser("tables", help="regenerate the paper's Tables 1-3")

    p_thr = sub.add_parser("throughput", help="escape-pipeline throughput")
    p_thr.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_thr.add_argument("--bytes", type=int, default=20_000, dest="nbytes")
    p_thr.add_argument(
        "--payload", choices=("random", "all-flags"), default="random"
    )
    p_thr.add_argument("--seed", type=int, default=1)

    p_lat = sub.add_parser("latency", help="pipeline fill latency")
    p_lat.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_lat.add_argument("--stages", type=int, default=None)

    p_trc = sub.add_parser("trace", help="run Figure 5 and dump a VCD")
    p_trc.add_argument("--out", default="figure5.vcd")

    p_dup = sub.add_parser("duplex", help="run a duplex P5 exchange")
    p_dup.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_dup.add_argument("--frames", type=int, default=10)
    p_dup.add_argument("--seed", type=int, default=1)

    p_lint = sub.add_parser("lint", help="static DRC + ready/valid AST lint")
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--path", action="append", default=None, dest="paths",
        help="file or directory to AST-lint (repeatable; default: the "
             "installed repro package source)",
    )
    p_lint.add_argument(
        "--no-graph", action="store_true",
        help="skip the graph DRC over the shipped topologies",
    )
    p_lint.add_argument(
        "--no-ast", action="store_true",
        help="skip the AST discipline lint",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )

    p_sta = sub.add_parser(
        "sta", help="static timing / buffer-sizing / deadlock analysis"
    )
    p_sta.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    p_sta.add_argument(
        "--clock-mhz", type=float, default=78.125,
        help="line clock for cycle-to-ns conversion (default: 78.125, "
             "the OC-48 word clock)",
    )
    p_sta.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )

    p_flt = sub.add_parser(
        "faults", help="layered fault-injection campaign with invariant checks"
    )
    p_flt.add_argument(
        "--campaign", choices=("quick", "smoke", "soak"), default="smoke",
        help="preset size: quick=24, smoke=208, soak=1000 faults "
             "(default: smoke)",
    )
    p_flt.add_argument(
        "--faults", type=int, default=None,
        help="override the preset fault count",
    )
    p_flt.add_argument("--seed", type=int, default=1)
    p_flt.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_flt.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_flt.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )

    p_res = sub.add_parser(
        "resilience",
        help="supervised redundant-link soak with APS failover under chaos",
    )
    p_res.add_argument(
        "--soak", action="store_true",
        help="run the chaos soak (the default action; flag kept for "
             "explicit CI invocations)",
    )
    p_res.add_argument(
        "--smoke", action="store_true",
        help="CI-sized soak (640 intervals x 16 frames, 24 chaos events)",
    )
    p_res.add_argument(
        "--intervals", type=int, default=None,
        help="override the interval count (default: 960, or 640 with --smoke)",
    )
    p_res.add_argument(
        "--events", type=int, default=None,
        help="override the chaos event count (default: 30, or 24 with --smoke)",
    )
    p_res.add_argument("--seed", type=int, default=1)
    p_res.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_res.add_argument(
        "--schedule", action="store_true",
        help="print the deterministic chaos schedule and exit (no soak)",
    )
    p_res.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="also write the structured event log as JSON to PATH",
    )
    p_res.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_res.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )

    p_bch = sub.add_parser(
        "bench", help="cycle-vs-fastpath benchmark with differential check"
    )
    p_bch.add_argument(
        "--frames", type=int, default=None,
        help="frames per workload (default: 150, or 40 with --smoke)",
    )
    p_bch.add_argument(
        "--smoke", action="store_true",
        help="small CI-sized run (fewer frames, same checks)",
    )
    p_bch.add_argument(
        "--floor", type=float, default=None,
        help="minimum imix fastpath/cycle speedup to pass (default: 20)",
    )
    p_bch.add_argument("--width", type=int, default=32, choices=(8, 16, 32, 64))
    p_bch.add_argument("--seed", type=int, default=0)
    p_bch.add_argument(
        "--workload", action="append", default=None, dest="workloads",
        choices=("imix", "random", "allflags"),
        help="restrict to one workload (repeatable; default: all)",
    )
    p_bch.add_argument(
        "--out", default="BENCH_fastpath.json",
        help="where to write the JSON record (default: BENCH_fastpath.json; "
             "'-' to skip the file)",
    )
    p_bch.add_argument(
        "--json", action="store_true",
        help="print the JSON record instead of the text summary",
    )

    return parser


def _cmd_info() -> int:
    from repro.core.config import P5Config
    from repro.sonet.rates import rate_for

    print(f"repro {__version__} — P5 reproduction (Toal & Sezer, IPPS 2003)")
    for config in (P5Config.eight_bit(), P5Config.thirty_two_bit()):
        print(" ", config.describe())
    rate = rate_for(48)
    print(f"  target transport: {rate.name} = {rate.line_rate_bps / 1e9:.5f} Gbps "
          f"({rate.sdh_name})")
    return 0


def _cmd_tables() -> int:
    from repro.core.config import P5Config
    from repro.synth import escape_generate_area, synthesize, system_area
    from repro.synth.report import format_table

    s8 = system_area(P5Config.eight_bit())
    print(format_table(
        "Table 1 — P5 8-bit implementation",
        [synthesize(s8, d) for d in ("XCV50-4", "XC2V40-6")],
    ))
    print()
    s32 = system_area(P5Config.thirty_two_bit())
    print(format_table(
        "Table 2 — P5 32-bit implementation",
        [synthesize(s32, d) for d in ("XCV600-4", "XC2V1000-6")],
    ))
    print()
    eg8 = escape_generate_area(P5Config.eight_bit())
    eg32 = escape_generate_area(P5Config.thirty_two_bit())
    print("Table 3 — Escape Generate (XC2V40-6)")
    print(f"  32-bit: {eg32.luts} LUTs / {eg32.ffs} FFs")
    print(f"   8-bit: {eg8.luts} LUTs / {eg8.ffs} FFs")
    print(f"  ratios: {eg32.luts / eg8.luts:.1f}x LUTs, "
          f"{eg32.ffs / eg8.ffs:.1f}x FFs (paper: ~25x / ~28x)")
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from repro.analysis import measure_escape_throughput
    from repro.core.config import P5Config
    from repro.workloads import all_flags_payload, random_payload

    payload = (
        random_payload(args.nbytes, seed=args.seed)
        if args.payload == "random"
        else all_flags_payload(args.nbytes)
    )
    config = P5Config(width_bits=args.width)
    report = measure_escape_throughput(payload, config)
    print(f"width {args.width} bits, payload {args.payload} x{args.nbytes}B")
    print(f"  input : {report.input_bytes_per_cycle:.3f} B/cycle "
          f"= {report.input_gbps:.3f} Gbps")
    print(f"  line  : {report.output_bytes_per_cycle:.3f} B/cycle "
          f"= {report.line_gbps:.3f} Gbps")
    print(f"  utilization of the W-bytes/cycle ideal: {report.utilization:.3f}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis import measure_escape_latency
    from repro.core.config import P5Config

    report = measure_escape_latency(
        P5Config(width_bits=args.width), pipeline_stages=args.stages
    )
    print(f"width {report.width_bits} bits, {report.pipeline_stages} stages:")
    print(f"  fill latency {report.fill_cycles} cycles "
          f"= {report.fill_ns:.1f} ns at {report.clock_hz / 1e6:.3f} MHz")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.escape_pipeline import PipelinedEscapeGenerate
    from repro.hdlc.constants import FLAG_OCTET
    from repro.rtl import Channel, Simulator, StreamSink, StreamSource, beats_from_bytes
    from repro.rtl.vcd import VcdWriter

    data = bytes([FLAG_OCTET, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE])
    c_in, c_out = Channel("escgen.in", capacity=2), Channel("escgen.out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(data, 4))
    unit = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    writer = VcdWriter([c_in, c_out])
    sim.add_observer(writer.sample)
    sim.run_until(lambda: src.done and unit.idle and not c_out.can_pop, timeout=100)
    writer.save(args.out)
    print(f"wrote {args.out}: {sim.cycle} cycles, "
          f"{len(writer.channels) * 3} signals")
    return 0


def _cmd_duplex(args: argparse.Namespace) -> int:
    from repro.core import P5Config, run_duplex_exchange
    from repro.workloads import ppp_frame_contents

    config = P5Config(width_bits=args.width)
    frames = ppp_frame_contents(args.frames, seed=args.seed)
    result = run_duplex_exchange(frames, frames, config, timeout=5_000_000)
    microseconds = result.cycles / config.clock_hz * 1e6
    print(f"{config.describe()}")
    print(f"exchanged {args.frames} frames each way in {result.cycles} cycles "
          f"({microseconds:.1f} us)")
    print(f"all FCS-good: {result.all_good()}")
    print(f"escapes inserted A->B: "
          f"{result.a.oam.regs.read_name('ESC_INSERTED')}")
    return 0 if result.all_good() else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from repro import lint

    findings: List[lint.Finding] = []
    if not args.no_graph:
        for name, modules, channels in lint.shipped_topologies():
            findings.extend(
                lint.lint_topology(modules, channels, topology_name=name)
            )
    if not args.no_ast:
        paths = args.paths
        if paths is None:
            paths = [pathlib.Path(__file__).resolve().parent]
        missing = [str(p) for p in paths if not pathlib.Path(p).exists()]
        if missing:
            print(f"repro lint: error: no such path: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        findings.extend(lint.lint_paths(paths))

    return _report_findings(findings, args)


def _report_findings(findings, args: argparse.Namespace) -> int:
    from repro import lint

    if args.format == "json":
        print(lint.render_json(findings))
    elif args.format == "sarif":
        print(lint.render_sarif(findings))
    else:
        print(lint.render_text(findings))
    if lint.has_errors(findings):
        return 1
    if args.strict and findings:
        return 1
    return 0


def _cmd_sta(args: argparse.Namespace) -> int:
    from repro import sta

    if args.clock_mhz <= 0:
        print("repro sta: error: --clock-mhz must be positive", file=sys.stderr)
        return 2
    findings = sta.canonical_findings(clock_hz=args.clock_mhz * 1e6)
    return _report_findings(findings, args)


_CAMPAIGN_PRESETS = {"quick": 24, "smoke": 208, "soak": 1000}


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro import faults

    count = args.faults if args.faults is not None else _CAMPAIGN_PRESETS[args.campaign]
    if count < 1:
        print("repro faults: error: --faults must be >= 1", file=sys.stderr)
        return 2
    config = faults.CampaignConfig(
        faults=count, seed=args.seed, width_bits=args.width
    )
    result = faults.run_campaign(config)
    if args.json or args.format == "json":
        print(faults.render_json(result))
    else:
        print(faults.render_text(result))
    return 0 if result.ok else 1


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.errors import LinkDownError
    from repro.resilience import LinkSupervisor, SupervisorConfig, chaos_schedule
    from repro.resilience.report import render_events_json, render_json, render_text

    intervals = args.intervals if args.intervals is not None else (
        640 if args.smoke else 960
    )
    events = args.events if args.events is not None else (
        24 if args.smoke else 30
    )
    if intervals < 1 or events < 2:
        print(
            "repro resilience: error: need --intervals >= 1 and --events >= 2",
            file=sys.stderr,
        )
        return 2
    config = SupervisorConfig(
        intervals=intervals,
        chaos_events=events,
        seed=args.seed,
        width_bits=args.width,
    )
    if args.schedule:
        for event in chaos_schedule(
            intervals=config.intervals,
            events=config.chaos_events,
            seed=config.seed,
            hold_off=config.hold_off,
            wait_to_restore=config.wait_to_restore,
        ):
            print(
                f"{event.interval:>5} {event.lane:<8} {event.kind:<9} "
                f"duration={event.duration} bits={event.bits}"
            )
        return 0
    supervisor = LinkSupervisor(config)
    try:
        result = supervisor.run_soak()
    except LinkDownError as exc:
        print(f"repro resilience: link down: {exc}", file=sys.stderr)
        for event in exc.events[-20:]:
            print("  " + event.render(), file=sys.stderr)
        return 1
    if args.events_out:
        with open(args.events_out, "w", encoding="utf-8") as handle:
            handle.write(render_events_json(result) + "\n")
    if args.json or args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
        if args.events_out:
            print(f"wrote {args.events_out}")
    return 0 if result.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import P5Config
    from repro.fastpath import bench

    frames = args.frames if args.frames is not None else (40 if args.smoke else 150)
    if frames < 1:
        print("repro bench: error: --frames must be >= 1", file=sys.stderr)
        return 2
    floor = args.floor if args.floor is not None else bench.DEFAULT_SPEEDUP_FLOOR
    report = bench.run_bench(
        frames=frames,
        workloads=args.workloads,
        floor=floor,
        config=P5Config(width_bits=args.width),
        seed=args.seed,
    )
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        print(bench.render_text(report))
        if args.out != "-":
            print(f"wrote {args.out}")
    return 0 if report["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "throughput":
        return _cmd_throughput(args)
    if args.command == "latency":
        return _cmd_latency(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "duplex":
        return _cmd_duplex(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sta":
        return _cmd_sta(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "resilience":
        return _cmd_resilience(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
