"""The P5 — Programmable Point-to-Point-Protocol Packet Processor.

This package is the paper's primary contribution, modelled at two
levels:

* **behavioural** (:mod:`repro.core.escape_gen`,
  :mod:`repro.core.escape_det`): word-at-a-time functional models used
  as golden references;
* **cycle-accurate** (:mod:`repro.core.escape_pipeline`,
  :mod:`repro.core.tx`, :mod:`repro.core.rx`,
  :mod:`repro.core.p5`): pipelined RTL-style models on the
  :mod:`repro.rtl` kernel reproducing the latency, throughput and
  backpressure behaviour of the 8-bit and 32-bit hardware designs.

The :mod:`repro.core.oam` module implements the Protocol OAM block:
the control/status register map and interrupt scheme through which a
host microprocessor programs the system.
"""

from repro.core.config import P5Config
from repro.core.sorter import ByteSorter
from repro.core.escape_gen import EscapeGenerator
from repro.core.escape_det import EscapeDetector
from repro.core.escape_pipeline import (
    PipelinedEscapeDetect,
    PipelinedEscapeGenerate,
)
from repro.core.crc_unit import CrcUnit
from repro.core.tx import P5Transmitter
from repro.core.rx import P5Receiver
from repro.core.oam import ProtocolOam
from repro.core.regmap import RegisterMap
from repro.core.p5 import P5System, run_duplex_exchange
from repro.core.memory import (
    DescriptorRing,
    DmaRxFrameSink,
    DmaTxFrameSource,
    SharedMemory,
)

__all__ = [
    "P5Config",
    "ByteSorter",
    "EscapeGenerator",
    "EscapeDetector",
    "PipelinedEscapeGenerate",
    "PipelinedEscapeDetect",
    "CrcUnit",
    "P5Transmitter",
    "P5Receiver",
    "ProtocolOam",
    "RegisterMap",
    "P5System",
    "run_duplex_exchange",
    "SharedMemory",
    "DescriptorRing",
    "DmaTxFrameSource",
    "DmaRxFrameSink",
]
