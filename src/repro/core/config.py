"""P5 system configuration — the programmable parameters.

The paper stresses *programmability*: the address field is
programmable (MAPOS compatibility), the FCS is selectable, and the
datapath width distinguishes the 625 Mbps (8-bit) from the 2.5 Gbps
(32-bit) instantiation.  :class:`P5Config` gathers every such knob;
the OAM register map exposes them to the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.crc import CRC32, CrcSpec
from repro.errors import ConfigError
from repro.hdlc.constants import DEFAULT_ADDRESS, ESC_OCTET, FLAG_OCTET

__all__ = ["P5Config"]

#: The paper's system clock: 2.5 Gbps / 32 bits = 78.125 MHz.
LINE_CLOCK_HZ = 78.125e6


@dataclass(frozen=True)
class P5Config:
    """Static configuration of one P5 instance.

    Attributes
    ----------
    width_bits:
        Datapath width: 8 (the commercial-baseline system) or 32 (the
        paper's gigabit design).  16 and 64 are accepted for the
        scaling ablations.
    fcs:
        FCS specification; CRC-32 is the paper's default "for
        accuracy purposes", CRC-16 remains programmable.
    address:
        Programmable HDLC address octet (0xFF = all-stations PPP;
        other values for MAPOS).
    accm_mask:
        Extra control octets to escape (0 on SONET links).
    resync_depth_words:
        Depth of the escape pipeline's resynchronisation buffer in
        datapath words.  The paper's claim is that a very small value
        suffices; 3 words (the structural minimum: one worst-case
        expansion job) is the default the A2 ablation validates.
    max_frame_octets:
        Oversize cut-off for the receive delineator, in frame-body
        octets on the wire.  A frame whose body exceeds this bound
        (the signature of a corrupted-away closing flag merging two
        frames) is dropped with an ``RX_OVERSIZE`` count and the
        delineator re-hunts to the next flag.  ``0`` (the default)
        disables the check.
    clock_hz:
        System clock for latency/throughput conversions (78.125 MHz
        gives the paper's 2.5 Gbps at 32 bits/cycle).
    """

    width_bits: int = 32
    fcs: CrcSpec = CRC32
    address: int = DEFAULT_ADDRESS
    accm_mask: int = 0
    resync_depth_words: int = 3
    max_frame_octets: int = 0
    clock_hz: float = LINE_CLOCK_HZ
    #: Programmable framing octets (HDLC defaults).  Exotic values
    #: support non-standard delineation experiments — the follow-on
    #: "programmable frame delineation" work of the same authors.
    flag_octet: int = FLAG_OCTET
    esc_octet: int = ESC_OCTET

    def __post_init__(self) -> None:
        if self.width_bits not in (8, 16, 32, 64):
            raise ConfigError(f"unsupported datapath width {self.width_bits}")
        if self.fcs.width not in (16, 32):
            raise ConfigError(f"FCS must be 16 or 32 bits, got {self.fcs.width}")
        if not 0 <= self.address <= 0xFF:
            raise ConfigError(f"address octet out of range: {self.address}")
        if self.accm_mask & ~0xFFFFFFFF:
            raise ConfigError("ACCM mask must fit in 32 bits")
        if self.resync_depth_words < 3:
            raise ConfigError(
                "resync buffer must hold at least 3 words (one worst-case job)"
            )
        if self.max_frame_octets and self.max_frame_octets < 4 * self.width_bytes:
            raise ConfigError(
                "max_frame_octets must be 0 (unbounded) or at least four "
                "datapath words (the delineator's oversize cut assumes a "
                "frame spans multiple words)"
            )
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        for name, octet in (("flag_octet", self.flag_octet), ("esc_octet", self.esc_octet)):
            if not 0 <= octet <= 0xFF:
                raise ConfigError(f"{name} out of range: {octet}")
        if self.flag_octet == self.esc_octet:
            raise ConfigError("flag and escape octets must differ")
        if (self.flag_octet ^ 0x20) in (self.flag_octet, self.esc_octet) or \
                (self.esc_octet ^ 0x20) in (self.flag_octet, self.esc_octet):
            raise ConfigError(
                "escaped forms (octet ^ 0x20) must not collide with the "
                "framing octets themselves"
            )

    @property
    def width_bytes(self) -> int:
        """Datapath width in byte lanes."""
        return self.width_bits // 8

    @property
    def escape_octets(self) -> FrozenSet[int]:
        """The programmable escape set: flag, escape, plus ACCM picks."""
        extra = {i for i in range(32) if (self.accm_mask >> i) & 1}
        return frozenset(extra | {self.flag_octet, self.esc_octet})

    @property
    def line_rate_bps(self) -> float:
        """Nominal full-rate line throughput: width x clock."""
        return self.width_bits * self.clock_hz

    @classmethod
    def eight_bit(cls, **overrides) -> "P5Config":
        """The 625 Mbps baseline configuration."""
        return cls(width_bits=8, **overrides)

    @classmethod
    def thirty_two_bit(cls, **overrides) -> "P5Config":
        """The 2.5 Gbps paper configuration."""
        return cls(width_bits=32, **overrides)

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"P5/{self.width_bits}-bit @ {self.clock_hz / 1e6:.3f} MHz "
            f"({self.line_rate_bps / 1e9:.3f} Gbps line rate), "
            f"FCS-{self.fcs.width}, address 0x{self.address:02X}, "
            f"resync {self.resync_depth_words} words"
        )
