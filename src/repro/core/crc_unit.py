"""The CRC unit — word-parallel FCS generation and checking.

"A highly efficient and optimised parallel CRC core has been
developed.  The CRC unit co-ordinates and synchronises data being fed
into the CRC core.  The CRC core computes a 32-bit Frame Check
Sequence FCS via an 8 x 32-bit parallel matrix (for the 8-bit P5) or
via a 32 x 32-bit parallel matrix (for the 32-bit P5)."

Two pipeline modules share the :class:`~repro.crc.parallel.ParallelCrc`
core (which in turn realises the Pei–Zukowski matrices):

* :class:`CrcGenerate` — transmit side: passes frame content through,
  accumulating the FCS one word per cycle, and appends the FCS
  trailer (least-significant octet first, per RFC 1662) at
  end-of-frame.
* :class:`CrcCheck` — receive side: verifies the FCS over the whole
  frame via the magic-residue method and strips the trailer,
  re-marking end-of-frame on the last content word.

``CrcUnit`` is a factory helper selecting the direction.
"""

from __future__ import annotations

from typing import List

from repro.crc import CrcSpec
from repro.crc.parallel import ParallelCrc
from repro.errors import FcsError, FramingError, RuntFrameError
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import WordBeat

__all__ = ["CrcGenerate", "CrcCheck", "CrcUnit"]


class CrcGenerate(Module):
    """Append the FCS to each frame, word-at-a-time.

    Latency: one cycle (a single output register) for pass-through
    words; the trailer words follow the content seamlessly because the
    internal repacker keeps the byte stream dense across the
    content/FCS boundary.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        spec: CrcSpec,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.spec = spec
        self.core = ParallelCrc(spec, width_bytes * 8)
        self._carry = bytearray()
        self._sof_pending = True
        self.frames_processed = 0

    @property
    def quiescent(self) -> bool:
        # Input-driven: the carry only moves when a beat arrives.
        return not self.inp.can_pop

    @property
    def fcs_octets(self) -> int:
        return self.spec.width // 8

    def capacity_needs(self):
        # The eof flush emits carry (<= W-1) + W content + FCS octets
        # in one burst; the room check in clock() demands this much.
        w = self.width_bytes
        words = (2 * w - 1 + self.fcs_octets) // w + 1
        return [(self.out, words, "end-of-frame content+FCS flush burst")]

    def timing_contract(self) -> TimingContract:
        w = self.width_bytes
        return TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Content streams through 1:1; the FCS trailer is
                    # per-frame overhead.
                    per_frame_octets=self.fcs_octets,
                    burst_words=(2 * w - 1 + self.fcs_octets) // w + 1,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        # Worst case one input word yields 2 output words (tail + FCS);
        # require room for both before consuming, else stall.
        beat: WordBeat = self.inp.peek()
        max_words = (len(self._carry) + beat.n_valid + self.fcs_octets) // self.width_bytes + 1
        if not self._room_for(max_words if beat.eof else 1):
            self.note_stall()
            return
        self.inp.pop()
        payload = beat.payload()
        self._absorb(payload)
        self._carry.extend(payload)
        if beat.eof:
            fcs = self.core.value()
            self._carry.extend(fcs.to_bytes(self.fcs_octets, "little"))
            self._emit_all(flush=True)
            self.core.reset()
            self.frames_processed += 1
        else:
            self._emit_all(flush=False)

    def _absorb(self, payload: bytes) -> None:
        if len(payload) == self.width_bytes:
            self.core.step(payload)
        elif payload:
            self.core.step_partial(payload)

    def _room_for(self, words: int) -> bool:
        return self.out.capacity - self.out.occupancy >= words

    def _emit_all(self, *, flush: bool) -> None:
        first = self._sof_pending
        while len(self._carry) >= self.width_bytes:
            word = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            eof = flush and not self._carry
            self.out.push(
                WordBeat.from_bytes(word, self.width_bytes, sof=first, eof=eof)
            )
            first = False
        if flush and self._carry:
            self.out.push(
                WordBeat.from_bytes(
                    bytes(self._carry), self.width_bytes, sof=first, eof=True
                )
            )
            self._carry.clear()
            first = False
        self._sof_pending = True if flush else first


class CrcCheck(Module):
    """Verify and strip the FCS on receive.

    The unit holds back the most recent ``fcs_octets`` bytes of the
    frame (they might be the trailer); everything older streams out.
    At end-of-frame the residue test decides good/bad, recorded in
    :attr:`frame_good` / the error counters for the OAM.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        spec: CrcSpec,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.spec = spec
        self.core = ParallelCrc(spec, width_bytes * 8)
        self._held = bytearray()          # content not yet released
        self._frame_octets = 0            # total absorbed this frame
        self._sof_pending = True
        self.frames_ok = 0
        self.fcs_errors = 0
        self.runt_frames = 0
        self.frame_results: List[bool] = []
        #: Verdicts only for frames actually released downstream
        #: (runts are swallowed), in release order — the sink pairs
        #: these with the eof-marked frames it assembles.
        self.released_results: List[bool] = []
        #: Typed records of every rejected frame (runt/FCS), in
        #: arrival order — mirrors ``WordDelineator.faults``.
        self.faults: List[FramingError] = []

    @property
    def quiescent(self) -> bool:
        # Input-driven: the holdback only moves when a beat arrives.
        return not self.inp.can_pop

    @property
    def fcs_octets(self) -> int:
        return self.spec.width // 8

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            # The holdback delays the first release until fcs_octets
            # of lookahead exist: fcs_octets + 1 cycles covers dense
            # input at any datapath width (tight at W=1).
            latency_cycles=self.fcs_octets + 1,
            outputs=(
                ChannelTiming(
                    self.out,
                    # The stripped FCS (and swallowed runts) contract
                    # the stream; nothing ever grows it.
                    min_expansion=0.0,
                    burst_words=2,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        beat: WordBeat = self.inp.peek()
        content = len(self._held) + beat.n_valid - self.fcs_octets
        if beat.eof:
            # Whole remaining content flushes this cycle; reserve at
            # least one word for the frame-closing eof beat even when
            # every content octet already streamed out.
            max_words = max(1, (content + self.width_bytes - 1) // self.width_bytes)
        else:
            max_words = max(0, content) // self.width_bytes
        if self.out.capacity - self.out.occupancy < max_words:
            self.note_stall()
            return
        self.inp.pop()
        payload = beat.payload()
        self._absorb(payload)
        self._held.extend(payload)
        self._frame_octets += len(payload)
        if beat.eof:
            self._finish_frame()
        else:
            self._release(flush=False)

    def _absorb(self, payload: bytes) -> None:
        if len(payload) == self.width_bytes:
            self.core.step(payload)
        elif payload:
            self.core.step_partial(payload)

    def _release(self, *, flush: bool) -> None:
        # Keep fcs_octets bytes back unless flushing a finished frame.
        limit = len(self._held) if flush else len(self._held) - self.fcs_octets
        emitted = 0
        while limit - emitted >= self.width_bytes:
            word = bytes(self._held[emitted : emitted + self.width_bytes])
            emitted += self.width_bytes
            eof = flush and emitted >= limit
            self.out.push(
                WordBeat.from_bytes(
                    word, self.width_bytes, sof=self._sof_pending, eof=eof
                )
            )
            self._sof_pending = False
        if flush and limit - emitted > 0:
            self.out.push(
                WordBeat.from_bytes(
                    bytes(self._held[emitted:limit]),
                    self.width_bytes,
                    sof=self._sof_pending,
                    eof=True,
                )
            )
            self._sof_pending = False
            emitted = limit
        elif flush and limit == 0:
            # Every content octet already streamed out eofless (the
            # held-back tail was exactly the FCS, e.g. a force-closed
            # abort fragment): close the frame on an all-invalid beat
            # so it cannot merge into the next one.
            w = self.width_bytes
            self.out.push(
                WordBeat((0,) * w, (False,) * w, sof=self._sof_pending, eof=True)
            )
            self._sof_pending = False
        del self._held[:emitted]

    def _finish_frame(self) -> None:
        good = False
        if self._frame_octets <= self.fcs_octets:
            # A true runt: the whole frame fits in the holdback, so
            # nothing has been released and it can vanish silently.
            self.runt_frames += 1
            self.faults.append(RuntFrameError(
                f"{self.name}: {self._frame_octets}-octet frame cannot hold "
                f"a {self.fcs_octets}-octet FCS"
            ))
            self._held.clear()
        else:
            residue = self.core.residue_value()
            good = residue == self.spec.residue
            if good:
                self.frames_ok += 1
            else:
                self.fcs_errors += 1
                self.faults.append(FcsError(
                    self.spec.residue, residue,
                    f"{self.name}: FCS residue 0x{residue:X} != "
                    f"magic 0x{self.spec.residue:X}",
                ))
            del self._held[-self.fcs_octets :]   # strip the trailer
            self._release(flush=True)
            self.released_results.append(good)
        self.frame_results.append(good)
        self.core.reset()
        self._frame_octets = 0
        self._sof_pending = True


def CrcUnit(
    name: str,
    inp: Channel,
    out: Channel,
    *,
    width_bytes: int,
    spec: CrcSpec,
    mode: str,
) -> Module:
    """Factory: ``mode='generate'`` (TX) or ``mode='check'`` (RX)."""
    if mode == "generate":
        return CrcGenerate(name, inp, out, width_bytes=width_bytes, spec=spec)
    if mode == "check":
        return CrcCheck(name, inp, out, width_bytes=width_bytes, spec=spec)
    raise ValueError(f"unknown CRC unit mode {mode!r}")
