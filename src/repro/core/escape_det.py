"""Behavioural Escape Detect — word-level golden model.

"The receiver block carries out the reverse of this Escape operation
... If an escape character is present then it must be deleted and the
next data byte XOR'd.  This means that instead of the system holding 4
bytes to process at this moment, there are suddenly only 3 bytes and
there is effectively a bubble appearing on the channel."

The awkward cross-word case is an escape octet in the *last* lane of a
word: the byte it modifies arrives in the next word, so the detector
carries one bit of state (``pending_xor``) between beats — state the
hardware holds in its stage-1 register.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from repro.core.sorter import ByteSorter
from repro.errors import FramingError
from repro.hdlc.constants import ESCAPE_XOR, ESC_OCTET, FLAG_OCTET
from repro.rtl.pipeline import WordBeat, beats_from_bytes

__all__ = ["EscapeDetector", "contract_word"]


def contract_word(
    beat: WordBeat,
    pending_xor: bool,
    esc_octet: int = ESC_OCTET,
    flag_octet: int = FLAG_OCTET,
) -> Tuple[bytes, bool, int]:
    """Destuff one word's valid lanes.

    Returns ``(bytes, new_pending_xor, escapes_deleted)``.
    ``pending_xor`` is True when the previous word ended in an escape
    octet whose target byte is the first valid lane of this word.
    """
    out = bytearray()
    deleted = 0
    for byte, ok in zip(beat.lanes, beat.valid):
        if not ok:
            continue
        if pending_xor:
            out.append(byte ^ ESCAPE_XOR)
            pending_xor = False
        elif byte == esc_octet:
            pending_xor = True          # delete: the bubble appears here
            deleted += 1
        elif byte == flag_octet:
            raise FramingError("flag octet reached Escape Detect (delineation bug)")
        else:
            out.append(byte)
    return bytes(out), pending_xor, deleted


class EscapeDetector:
    """Stateful word-level escape removal over whole frames."""

    def __init__(
        self,
        width_bytes: int,
        *,
        esc_octet: int = ESC_OCTET,
        flag_octet: int = FLAG_OCTET,
    ) -> None:
        self.width_bytes = width_bytes
        self.esc_octet = esc_octet
        self.flag_octet = flag_octet
        self.sorter = ByteSorter(width_bytes)
        self._pending_xor = False
        self._frame_open = False
        self.escapes_deleted = 0

    def feed(self, beat: WordBeat) -> List[WordBeat]:
        """Destuff one input word; return output words now complete."""
        contracted, self._pending_xor, deleted = contract_word(
            beat, self._pending_xor, self.esc_octet, self.flag_octet
        )
        self.escapes_deleted += deleted
        frame_start = not self._frame_open
        self._frame_open = True
        out = [
            WordBeat.from_bytes(word, self.width_bytes)
            for word in self.sorter.push(contracted)
        ]
        if beat.eof:
            if self._pending_xor:
                self._pending_xor = False
                self._frame_open = False
                self.sorter.reset()
                raise FramingError("frame ends in a dangling escape octet")
            self._frame_open = False
            tail = self.sorter.flush()
            if tail is not None:
                out.append(WordBeat.from_bytes(tail, self.width_bytes, eof=True))
            elif out:
                out[-1] = replace(out[-1], eof=True)
        if frame_start and out:
            out[0] = replace(out[0], sof=True)
        return out

    def process_frame(self, data: bytes) -> List[WordBeat]:
        """Destuff a whole (already delineated) frame body."""
        out: List[WordBeat] = []
        for beat in beats_from_bytes(data, self.width_bytes):
            out.extend(self.feed(beat))
        return out
