"""Behavioural Escape Generate — word-level golden model.

"Before data is transmitted, the Escape Generate module checks for the
presence of a flag character in a frame location in which it is not
expected.  For each flag character detected, the module inserts an
escape character and XORs the flag character with the value 0x20."

This model consumes a frame as :class:`~repro.rtl.pipeline.WordBeat`
words and produces the stuffed word stream, using the
:class:`~repro.core.sorter.ByteSorter` for realignment.  It defines
*what* the pipelined unit must compute; the cycle-accurate *when*
lives in :mod:`repro.core.escape_pipeline`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import FrozenSet, List

from repro.core.sorter import ByteSorter
from repro.hdlc.constants import ESCAPE_XOR, ESC_OCTET, FLAG_OCTET
from repro.rtl.pipeline import WordBeat, beats_from_bytes

__all__ = ["EscapeGenerator", "expand_word"]

_DEFAULT_ESCAPES = frozenset({FLAG_OCTET, ESC_OCTET})


def expand_word(
    beat: WordBeat,
    escapes: FrozenSet[int] = _DEFAULT_ESCAPES,
    esc_octet: int = ESC_OCTET,
) -> bytes:
    """Stuff one word's valid lanes: W bytes become W..2W bytes.

    This is the pure per-word combinational function of the hardware's
    detect+expand stages — the paper's "suddenly 5 bytes to transfer
    on a 32-bit channel" situation is exactly a 4-valid beat expanding
    to 5+ bytes here.
    """
    out = bytearray()
    for byte, ok in zip(beat.lanes, beat.valid):
        if not ok:
            continue
        if byte in escapes:
            out.append(esc_octet)
            out.append(byte ^ ESCAPE_XOR)
        else:
            out.append(byte)
    return bytes(out)


class EscapeGenerator:
    """Stateful word-level escape generation over whole frames.

    Use :meth:`process_frame` for one frame, or :meth:`feed` for
    streaming operation (end-of-frame is signalled in-band by the
    beat's ``eof`` mark, flushing the sorter).
    """

    def __init__(
        self,
        width_bytes: int,
        escapes: FrozenSet[int] = _DEFAULT_ESCAPES,
        esc_octet: int = ESC_OCTET,
    ) -> None:
        self.width_bytes = width_bytes
        self.escapes = escapes
        self.esc_octet = esc_octet
        self.sorter = ByteSorter(width_bytes)
        self._frame_open = False
        self.flags_escaped = 0

    def feed(self, beat: WordBeat) -> List[WordBeat]:
        """Stuff one input word; return the output words now complete."""
        expanded = expand_word(beat, self.escapes, self.esc_octet)
        self.flags_escaped += len(expanded) - beat.n_valid
        frame_start = not self._frame_open
        self._frame_open = True
        out = [
            WordBeat.from_bytes(word, self.width_bytes)
            for word in self.sorter.push(expanded)
        ]
        if beat.eof:
            self._frame_open = False
            tail = self.sorter.flush()
            if tail is not None:
                out.append(WordBeat.from_bytes(tail, self.width_bytes, eof=True))
            elif out:
                out[-1] = replace(out[-1], eof=True)
        if frame_start and out:
            out[0] = replace(out[0], sof=True)
        return out

    def process_frame(self, data: bytes) -> List[WordBeat]:
        """Stuff a whole frame given as raw bytes."""
        out: List[WordBeat] = []
        for beat in beats_from_bytes(data, self.width_bytes):
            out.extend(self.feed(beat))
        return out
