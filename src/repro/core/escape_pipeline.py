"""Cycle-accurate pipelined Escape Generate / Escape Detect units.

This module is the paper's core claim, reproduced at clock-cycle
granularity: the word-parallel transparency problem "has been solved
by devising a data reordering mechanism and by further pipelining the
unit ... the process is divided up into 4 pipelined stages with
buffering and decisional mechanisms implemented.  The first data
transmitted is therefore delayed by 4 clock cycles, approximately
50ns.  Subsequent data flow is continuous and efficient."

Pipeline structure (32-bit unit, ``pipeline_stages=4``)::

    stage 1      stage 2      stage 3              stage 4
    detect   ->  expand   ->  sort (carry reg) ->  emit (resync buf)
    (lane        (byte        (barrel shift        (output register +
     compare)     insert/      realignment)         backpressure)
                  delete)

In this model stages 1 and 2 are *registers holding the expanded job*
(their combinational work — lane comparison and byte insertion — is
computed once at intake, since only its timing, not its value, is
cycle-dependent), stage 3 merges the job into the carry register, and
stage 4 drains completed words through the resynchronisation buffer.
A job therefore takes exactly ``pipeline_stages`` cycles from intake
to first possible emission.

Backpressure: when the resynchronisation buffer cannot absorb the
words a job would complete, stage 3 refuses to consume and the stall
ripples back to the input — the mechanism that keeps the buffer
"extremely low" under the worst-case all-flag payload (where stuffing
doubles the stream and the unit *must* halve its intake rate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, List, Optional

from repro.core.escape_det import contract_word
from repro.core.escape_gen import expand_word
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.rtl.module import BufferBound, Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import WordBeat

__all__ = ["PipelinedEscapeGenerate", "PipelinedEscapeDetect"]

_DEFAULT_ESCAPES = frozenset({FLAG_OCTET, ESC_OCTET})


@dataclass
class _Job:
    """One word's worth of work travelling down the pipeline."""

    data: bytes      # expanded (gen) or contracted (det) octets
    eof: bool
    sof: bool


class _EscapePipelineBase(Module):
    """Shared skeleton of the generate and detect units."""

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        pipeline_stages: int = 4,
        resync_depth_words: int = 3,
    ) -> None:
        super().__init__(name)
        if pipeline_stages < 2:
            raise ValueError("the unit needs at least sort + emit stages (2)")
        # A single job can complete up to 3 words (carry W-1 + 2W new
        # bytes, plus an eof flush); the buffer must absorb one whole
        # job or the sort stage deadlocks against its own backpressure.
        if resync_depth_words < 3:
            raise ValueError(
                "resync buffer must hold at least 3 words (one worst-case job)"
            )
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.pipeline_stages = pipeline_stages
        self.resync_capacity = resync_depth_words
        # Stage registers between intake and the sort stage.
        self._regs: List[Optional[_Job]] = [None] * (pipeline_stages - 2)
        self._intake_job: Optional[_Job] = None   # two-stage units only
        self._carry = bytearray()
        self._resync: Deque[WordBeat] = deque()
        self._frame_open = False
        # Statistics the OAM exposes.
        self.resync_overflow_drops = 0
        self.max_resync_occupancy = 0
        self.max_carry_occupancy = 0
        self.words_in = 0
        self.words_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # ------------------------------------------------------------- per unit
    def _transform(self, beat: WordBeat) -> bytes:
        """Stage-1/2 combinational work (subclass hook)."""
        raise NotImplementedError

    def _on_eof_flush(self) -> None:
        """Subclass hook at frame end (error checks)."""

    # ------------------------------------------------------------ the clock
    def clock(self) -> None:
        self._emit_stage()
        self._sort_stage()
        self._shift_stage()
        self._intake_stage()

    def _emit_stage(self) -> None:
        """Stage 4: move one completed word to the output register."""
        if self._resync and self.out.can_push:
            beat = self._resync.popleft()
            self.out.push(beat)
            self.words_out += 1
            self.bytes_out += beat.n_valid
        elif self._resync:
            self.note_stall()

    def _sort_stage(self) -> None:
        """Stage 3: merge the oldest job into the carry register."""
        job = self._regs[-1] if self._regs else self._staged_input()
        if job is None:
            return
        produced = self._words_job_would_complete(job)
        if len(self._resync) + produced > self.resync_capacity:
            self.note_stall()
            return  # backpressure: leave the job in its register
        self._consume_oldest()
        sof_pending = job.sof
        self._carry.extend(job.data)
        if len(self._carry) > self.max_carry_occupancy:
            self.max_carry_occupancy = len(self._carry)
        while len(self._carry) >= self.width_bytes:
            word = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            self._push_resync(word, sof=sof_pending, eof=False)
            sof_pending = False
        if job.eof:
            self._on_eof_flush()
            if self._carry:
                self._push_resync(bytes(self._carry), sof=sof_pending, eof=True)
                self._carry.clear()
            elif self._resync:
                last = self._resync[-1]
                self._resync[-1] = WordBeat(
                    last.lanes, last.valid, sof=last.sof, eof=True
                )
            else:
                # Every remaining octet of the frame was a deleted
                # escape (e.g. a force-closed abort fragment ending in
                # a dangling escape): deliver the eof on an all-invalid
                # beat so this frame cannot merge into the next one.
                w = self.width_bytes
                self._resync.append(
                    WordBeat((0,) * w, (False,) * w, sof=sof_pending, eof=True)
                )

    def _push_resync(self, word: bytes, *, sof: bool, eof: bool) -> None:
        if len(self._resync) >= self.resync_capacity:
            # The sort stage pre-checks capacity, so this is a defensive
            # bound for fault campaigns: a register upset shrinking the
            # buffer must degrade to a counted drop, never an assertion.
            self.resync_overflow_drops += 1
            return
        beat = WordBeat.from_bytes(word, self.width_bytes, sof=sof, eof=eof)
        self._resync.append(beat)
        if len(self._resync) > self.max_resync_occupancy:
            self.max_resync_occupancy = len(self._resync)

    def _words_job_would_complete(self, job: _Job) -> int:
        total = len(self._carry) + len(job.data)
        words = total // self.width_bytes
        if job.eof and total % self.width_bytes:
            words += 1
        return words

    # For pipeline_stages == 2 there are no intermediate registers and
    # the sort stage reads the input channel directly.
    def _staged_input(self) -> Optional[_Job]:
        if self._regs:
            return self._regs[-1]
        if self._intake_job is None and self.inp.can_pop:
            beat = self.inp.pop()
            self._account_input(beat)
            self._intake_job = self._make_job(beat)
        return self._intake_job

    def _consume_oldest(self) -> None:
        if self._regs:
            self._regs[-1] = None
        else:
            self._intake_job = None

    def _shift_stage(self) -> None:
        """Advance jobs through the intermediate stage registers."""
        for i in range(len(self._regs) - 1, 0, -1):
            if self._regs[i] is None and self._regs[i - 1] is not None:
                self._regs[i] = self._regs[i - 1]
                self._regs[i - 1] = None

    def _intake_stage(self) -> None:
        """Stage 1: accept one input word if the first register is free."""
        if not self._regs:
            return  # two-stage unit: intake handled by the sort stage
        if self._regs[0] is None and self.inp.can_pop:
            beat = self.inp.pop()
            self._regs[0] = self._make_job(beat)
            self._account_input(beat)

    def _make_job(self, beat: WordBeat) -> _Job:
        sof = not self._frame_open
        self._frame_open = not beat.eof
        return _Job(data=self._transform(beat), eof=beat.eof, sof=sof)

    def _account_input(self, beat: WordBeat) -> None:
        self.words_in += 1
        self.bytes_in += beat.n_valid

    def _resync_bound(self) -> BufferBound:
        """The paper's "extremely low" buffer, as a checkable bound."""
        return BufferBound(
            name="resync",
            capacity=self.resync_capacity,
            # One worst-case job completes 3 words (carry W-1 octets +
            # 2W expanded octets + an eof flush); the sort stage's
            # pre-check keeps occupancy within whatever the buffer
            # holds, but below 3 it deadlocks against itself.
            min_required=3,
            peak_attr="max_resync_occupancy",
            why="one maximally expanded job (carry + 2W octets + eof flush)",
        )

    # ---------------------------------------------------------------- status
    @property
    def idle(self) -> bool:
        """No data anywhere in the unit."""
        return (
            not self._resync
            and not self._carry
            and self._intake_job is None
            and all(r is None for r in self._regs)
        )

    @property
    def quiescent(self) -> bool:
        # All four stages are empty and no word is waiting at the
        # intake: every stage function falls straight through.
        return not self.inp.can_pop and self.idle


class PipelinedEscapeGenerate(_EscapePipelineBase):
    """The transmit-side unit: insert escapes, word-parallel.

    The programmable escape set (flag + escape + ACCM picks) is the
    paper's programmability hook for this unit.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        escapes: FrozenSet[int] = _DEFAULT_ESCAPES,
        esc_octet: int = ESC_OCTET,
        pipeline_stages: int = 4,
        resync_depth_words: int = 3,
    ) -> None:
        super().__init__(
            name,
            inp,
            out,
            width_bytes=width_bytes,
            pipeline_stages=pipeline_stages,
            resync_depth_words=resync_depth_words,
        )
        self.escapes = escapes
        self.esc_octet = esc_octet
        self.octets_escaped = 0

    def _transform(self, beat: WordBeat) -> bytes:
        expanded = expand_word(beat, self.escapes, self.esc_octet)
        self.octets_escaped += len(expanded) - beat.n_valid
        return expanded

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            # "The first data transmitted is therefore delayed by 4
            # clock cycles, approximately 50ns": one cycle per stage
            # from intake to first emission.
            latency_cycles=self.pipeline_stages,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Stuffing at worst doubles every octet (all-flag
                    # payload); it never deletes.
                    max_expansion=2.0,
                ),
            ),
            buffers=(self._resync_bound(),),
        )


class PipelinedEscapeDetect(_EscapePipelineBase):
    """The receive-side unit: delete escapes, fill the bubbles.

    Holds the cross-word ``pending_xor`` state in its detect stage —
    the case of an escape octet in the last lane of a word.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        esc_octet: int = ESC_OCTET,
        flag_octet: int = FLAG_OCTET,
        pipeline_stages: int = 4,
        resync_depth_words: int = 3,
    ) -> None:
        super().__init__(
            name,
            inp,
            out,
            width_bytes=width_bytes,
            pipeline_stages=pipeline_stages,
            resync_depth_words=resync_depth_words,
        )
        self.esc_octet = esc_octet
        self.flag_octet = flag_octet
        self._pending_xor = False
        self.octets_deleted = 0
        self.dangling_escape_errors = 0

    def _transform(self, beat: WordBeat) -> bytes:
        contracted, self._pending_xor, deleted = contract_word(
            beat, self._pending_xor, self.esc_octet, self.flag_octet
        )
        self.octets_deleted += deleted
        if beat.eof and self._pending_xor:
            # Dangling escape at frame end: the control FSM is told via
            # the OAM; the truncated frame will fail its FCS anyway.
            self.dangling_escape_errors += 1
            self._pending_xor = False
        return contracted

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            # One cycle per stage, plus one: contraction can leave the
            # first job short of a full word, deferring the first
            # emission until the second job tops up the carry.
            latency_cycles=self.pipeline_stages + 1,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Destuffing only deletes; at worst every second
                    # octet is an escape and the stream halves.
                    max_expansion=1.0,
                    min_expansion=0.5,
                ),
            ),
            buffers=(self._resync_bound(),),
        )
