"""Shared memory and DMA descriptor rings — paper Figure 2's "Shared
Memory" block.

"Data is buffered before transmission and after reception in memory."
Real line cards structure that memory as descriptor rings: the host
writes frame buffers and ring descriptors; the hardware DMA engine
walks the ring at line rate, raising interrupts as descriptors
complete.  This module models that host interface:

* :class:`SharedMemory` — a flat byte array with bounds-checked
  read/write windows (the microprocessor bus's view);
* :class:`DescriptorRing` — a circular buffer of
  (address, length, flags) descriptors with OWN-bit handover;
* :class:`DmaTxFrameSource` / :class:`DmaRxFrameSink` — drop-in
  replacements for the queue-based TX source / RX sink that move
  frames between the rings and the datapath word streams, modelling
  the memory port's bandwidth (one word per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError, SimulationError
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import WordBeat

__all__ = [
    "SharedMemory",
    "Descriptor",
    "DescriptorRing",
    "DmaTxFrameSource",
    "DmaRxFrameSink",
]

#: Descriptor flag bits.
OWN_HW = 1 << 0       # descriptor belongs to the hardware
EOF_FLAG = 1 << 1     # buffer holds a complete frame
ERR_FLAG = 1 << 2     # receive error (bad FCS) — set by hardware


class SharedMemory:
    """A flat, bounds-checked byte memory shared by host and P5."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigError("memory size must be positive")
        self.size = size
        self._data = bytearray(size)
        self.reads = 0
        self.writes = 0

    def write(self, address: int, data: bytes) -> None:
        """Host or DMA write of ``data`` at ``address``."""
        self._check(address, len(data))
        self._data[address : address + len(data)] = data
        self.writes += 1

    def read(self, address: int, length: int) -> bytes:
        """Host or DMA read of ``length`` bytes at ``address``."""
        self._check(address, length)
        self.reads += 1
        return bytes(self._data[address : address + length])

    def _check(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise SimulationError(
                f"memory access [{address}, {address + length}) outside "
                f"0..{self.size}"
            )


@dataclass
class Descriptor:
    """One ring entry: a buffer window plus ownership/status flags."""

    address: int
    length: int
    flags: int = 0

    @property
    def hw_owned(self) -> bool:
        return bool(self.flags & OWN_HW)


class DescriptorRing:
    """A circular descriptor queue with OWN-bit handover.

    The host fills descriptors and sets ``OWN_HW``; the hardware
    consumes them in order and clears the bit when done (adding status
    flags on receive).  ``head`` is the hardware's cursor.
    """

    def __init__(self, entries: int) -> None:
        if entries < 2:
            raise ConfigError("a ring needs at least two descriptors")
        self.descriptors: List[Descriptor] = [
            Descriptor(0, 0, 0) for _ in range(entries)
        ]
        self.head = 0            # hardware cursor
        self.completed = 0

    def __len__(self) -> int:
        return len(self.descriptors)

    # -------------------------------------------------------------- host side
    def host_post(self, index: int, address: int, length: int, *, flags: int = 0) -> None:
        """Host fills descriptor ``index`` and hands it to hardware."""
        descriptor = self.descriptors[index]
        if descriptor.hw_owned:
            raise SimulationError(f"descriptor {index} is still hardware-owned")
        descriptor.address = address
        descriptor.length = length
        descriptor.flags = flags | OWN_HW

    def host_reclaim(self, index: int) -> Optional[Descriptor]:
        """Host checks a descriptor back; None while hardware owns it."""
        descriptor = self.descriptors[index]
        if descriptor.hw_owned:
            return None
        return descriptor

    # ---------------------------------------------------------- hardware side
    def hw_current(self) -> Optional[Descriptor]:
        """The descriptor under the hardware cursor, if hardware-owned."""
        descriptor = self.descriptors[self.head]
        return descriptor if descriptor.hw_owned else None

    def hw_complete(self, *, status: int = 0, length: Optional[int] = None) -> None:
        """Finish the current descriptor and advance the cursor."""
        descriptor = self.descriptors[self.head]
        if not descriptor.hw_owned:
            raise SimulationError("completing a descriptor the hardware does not own")
        if length is not None:
            descriptor.length = length
        descriptor.flags = (descriptor.flags | status) & ~OWN_HW
        self.head = (self.head + 1) % len(self.descriptors)
        self.completed += 1


class DmaTxFrameSource(Module):
    """Transmit DMA: walks the TX ring, streaming frames as word beats.

    Replaces :class:`repro.core.tx.TxFrameSource` behind the same
    output channel.  The memory port supplies one datapath word per
    cycle, so DMA never outruns the line.
    """

    def __init__(
        self,
        name: str,
        out: Channel,
        *,
        memory: SharedMemory,
        ring: DescriptorRing,
        width_bytes: int,
    ) -> None:
        super().__init__(name)
        self.out = self.writes(out)
        self.memory = memory
        self.ring = ring
        self.width_bytes = width_bytes
        self._cursor = 0           # byte offset within the open frame
        self.frames_fetched = 0
        self.enabled = True

    @property
    def busy(self) -> bool:
        return self.ring.hw_current() is not None

    def clock(self) -> None:
        if not self.enabled:
            return
        descriptor = self.ring.hw_current()
        if descriptor is None or not self.out.can_push:
            if descriptor is not None:
                self.note_stall()
            return
        remaining = descriptor.length - self._cursor
        take = min(self.width_bytes, remaining)
        chunk = self.memory.read(descriptor.address + self._cursor, take)
        self._cursor += take
        last = self._cursor >= descriptor.length
        self.out.push(
            WordBeat.from_bytes(
                chunk, self.width_bytes, sof=self._cursor == take, eof=last
            )
        )
        if last:
            self.ring.hw_complete()
            self.frames_fetched += 1
            self._cursor = 0

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            latency_cycles=1,
            outputs=(ChannelTiming(self.out),),
        )


class DmaRxFrameSink(Module):
    """Receive DMA: assembles beats into ring buffers with status.

    Replaces :class:`repro.core.rx.RxFrameSink`: each completed frame
    lands in the next hardware-owned RX descriptor's buffer, with
    ``EOF_FLAG`` (and ``ERR_FLAG`` on a failed FCS) in its flags and
    the actual length written back.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        crc,
        *,
        memory: SharedMemory,
        ring: DescriptorRing,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.crc = crc
        self.memory = memory
        self.ring = ring
        self._current = bytearray()
        self._verdict_cursor = 0
        self.frames_stored = 0
        self.frames_dropped_no_descriptor = 0

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        descriptor = self.ring.hw_current()
        if descriptor is None:
            # No buffer available: drop at the memory interface (the
            # overrun case a slow host provokes).
            beat = self.inp.pop()
            self._current += beat.payload()
            if beat.eof:
                self.frames_dropped_no_descriptor += 1
                self._verdict_cursor += 1
                self._current.clear()
            return
        beat = self.inp.pop()
        self._current += beat.payload()
        if not beat.eof:
            return
        frame = bytes(self._current)
        self._current.clear()
        verdicts = self.crc.released_results
        good = (
            verdicts[self._verdict_cursor]
            if self._verdict_cursor < len(verdicts)
            else False
        )
        self._verdict_cursor += 1
        stored = frame[: descriptor.length]   # truncate to the buffer
        self.memory.write(descriptor.address, stored)
        status = EOF_FLAG | (0 if good else ERR_FLAG)
        self.ring.hw_complete(status=status, length=len(stored))
        self.frames_stored += 1

    def timing_contract(self) -> TimingContract:
        return TimingContract(latency_cycles=1)

    def host_collect(self) -> List[Tuple[bytes, bool]]:
        """Host-side helper: reclaim all completed RX descriptors."""
        frames: List[Tuple[bytes, bool]] = []
        for index, descriptor in enumerate(self.ring.descriptors):
            if descriptor.hw_owned or not descriptor.flags & EOF_FLAG:
                continue
            data = self.memory.read(descriptor.address, descriptor.length)
            frames.append((data, not descriptor.flags & ERR_FLAG))
            descriptor.flags = 0   # consumed
        return frames
