"""The Protocol OAM block (paper Figure 2, centre).

"The Protocol OAM provides an efficient interface for control and
status information to be exchanged between an external microcontroller
and the internal Receiver and Transmitter blocks" — i.e. the
programmability of the P5.  This model exposes:

* **control registers** — transmitter/receiver enables and the
  programmable station address (the MAPOS hook);
* **status registers** — live counters pulled from the datapath
  modules (frames, FCS errors, escapes inserted/deleted, resync
  high-water marks);
* **interrupts** — a pending/mask pair with write-1-to-clear
  semantics; events are raised on frame reception, receive errors and
  transmit completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.regmap import Register, RegisterMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.p5 import P5System

__all__ = ["ProtocolOam", "IRQ_RX_FRAME", "IRQ_RX_ERROR", "IRQ_TX_DONE"]

# Interrupt bits.
IRQ_RX_FRAME = 1 << 0    # a good frame landed in receive memory
IRQ_RX_ERROR = 1 << 1    # FCS error / runt / dangling escape
IRQ_TX_DONE = 1 << 2     # the transmit queue drained

# Register addresses (word bus).
ADDR_CTRL = 0x00
ADDR_STATION_ADDRESS = 0x01
ADDR_IRQ_PENDING = 0x02
ADDR_IRQ_MASK = 0x03
ADDR_TX_FRAMES = 0x10
ADDR_RX_FRAMES_OK = 0x11
ADDR_RX_FCS_ERRORS = 0x12
ADDR_RX_RUNTS = 0x13
ADDR_RX_HUNT_DISCARDS = 0x14
ADDR_ESC_INSERTED = 0x15
ADDR_ESC_DELETED = 0x16
ADDR_RESYNC_HIGHWATER_TX = 0x17
ADDR_RESYNC_HIGHWATER_RX = 0x18
ADDR_DANGLING_ESCAPES = 0x19
ADDR_RX_ABORTS = 0x1A
ADDR_RX_OVERSIZE = 0x1B
ADDR_RESYNC_DROPS_RX = 0x1C
ADDR_FRAMING = 0x04            # [15:8] escape octet, [7:0] flag octet

CTRL_TX_ENABLE = 1 << 0
CTRL_RX_ENABLE = 1 << 1


class ProtocolOam:
    """Control/status bridge between a host and one P5 system."""

    def __init__(self, system: "P5System") -> None:
        self.system = system
        self.regs = RegisterMap()
        self._irq_pending = 0
        self._seen_rx_ok = 0
        self._seen_rx_err = 0
        self._tx_was_busy = False
        self._build_map()

    # --------------------------------------------------------------- wiring
    def _build_map(self) -> None:
        sys = self.system
        self.regs.add(
            Register(
                "CTRL",
                ADDR_CTRL,
                access="rw",
                reset=CTRL_TX_ENABLE | CTRL_RX_ENABLE,
                on_write=self._write_ctrl,
            )
        )
        self.regs.add(
            Register(
                "STATION_ADDRESS",
                ADDR_STATION_ADDRESS,
                access="rw",
                reset=sys.config.address,
            )
        )
        self.regs.add(
            Register(
                "IRQ_PENDING",
                ADDR_IRQ_PENDING,
                access="w1c",
                on_read=lambda: self._irq_pending,
                on_write=self._ack_irq,
            )
        )
        self.regs.add(Register("IRQ_MASK", ADDR_IRQ_MASK, access="rw", reset=0x7))
        self.regs.add(
            Register(
                "FRAMING",
                ADDR_FRAMING,
                access="rw",
                reset=(sys.config.esc_octet << 8) | sys.config.flag_octet,
                on_write=self._write_framing,
            )
        )

        counters = [
            ("TX_FRAMES", ADDR_TX_FRAMES, lambda: sys.tx.flags.frames_wrapped),
            ("RX_FRAMES_OK", ADDR_RX_FRAMES_OK, lambda: sys.rx.crc.frames_ok),
            ("RX_FCS_ERRORS", ADDR_RX_FCS_ERRORS, lambda: sys.rx.crc.fcs_errors),
            ("RX_RUNTS", ADDR_RX_RUNTS, lambda: sys.rx.crc.runt_frames),
            (
                "RX_HUNT_DISCARDS",
                ADDR_RX_HUNT_DISCARDS,
                lambda: sys.rx.delineator.octets_discarded_hunting,
            ),
            ("ESC_INSERTED", ADDR_ESC_INSERTED, lambda: sys.tx.escape.octets_escaped),
            ("ESC_DELETED", ADDR_ESC_DELETED, lambda: sys.rx.escape.octets_deleted),
            (
                "RESYNC_HIGHWATER_TX",
                ADDR_RESYNC_HIGHWATER_TX,
                lambda: sys.tx.escape.max_resync_occupancy,
            ),
            (
                "RESYNC_HIGHWATER_RX",
                ADDR_RESYNC_HIGHWATER_RX,
                lambda: sys.rx.escape.max_resync_occupancy,
            ),
            (
                "DANGLING_ESCAPES",
                ADDR_DANGLING_ESCAPES,
                lambda: sys.rx.escape.dangling_escape_errors,
            ),
            ("RX_ABORTS", ADDR_RX_ABORTS, lambda: sys.rx.delineator.aborts),
            (
                "RX_OVERSIZE",
                ADDR_RX_OVERSIZE,
                lambda: sys.rx.delineator.oversize_drops,
            ),
            (
                "RESYNC_DROPS_RX",
                ADDR_RESYNC_DROPS_RX,
                lambda: sys.rx.escape.resync_overflow_drops,
            ),
        ]
        for name, addr, provider in counters:
            self.regs.add(Register(name, addr, access="ro", on_read=provider))

    def _write_ctrl(self, value: int) -> None:
        self.system.tx.source.enabled = bool(value & CTRL_TX_ENABLE)
        # The receive path has no enable gate in this model; the bit is
        # stored for host readback.

    def _write_framing(self, value: int) -> None:
        """Live-reprogram the datapath's framing octets.

        This is the paper's programmability thesis taken to its
        logical end: the same silicon delineates any flag/escape pair
        (cf. the authors' follow-on work on programmable frame
        delineation).  Only safe on an idle link.
        """
        flag = value & 0xFF
        esc = (value >> 8) & 0xFF
        if flag == esc:
            return  # ignore nonsense writes, as hardware would
        sys = self.system
        escapes = frozenset(
            (set(sys.config.escape_octets) - {sys.config.flag_octet,
                                              sys.config.esc_octet})
            | {flag, esc}
        )
        sys.tx.escape.escapes = escapes
        sys.tx.escape.esc_octet = esc
        sys.tx.flags.flag_octet = flag
        sys.rx.delineator.flag_octet = flag
        sys.rx.delineator.esc_octet = esc
        sys.rx.escape.esc_octet = esc
        sys.rx.escape.flag_octet = flag

    def _ack_irq(self, _remaining: int) -> None:
        # w1c semantics already applied by RegisterMap on reg.value;
        # mirror into the live pending word.
        self._irq_pending = self.regs.register("IRQ_PENDING").value

    # ----------------------------------------------------------- interrupts
    def service(self) -> None:
        """Poll the datapath and raise edge-triggered interrupts.

        Call once per simulation quantum (the hardware equivalent is
        combinational event logic; polling granularity only affects
        interrupt latency, not which events are seen).
        """
        sys = self.system
        ok = sys.rx.crc.frames_ok
        err = (
            sys.rx.crc.fcs_errors
            + sys.rx.crc.runt_frames
            + sys.rx.delineator.aborts
            + sys.rx.delineator.oversize_drops
        )
        if ok > self._seen_rx_ok:
            self._raise(IRQ_RX_FRAME)
            self._seen_rx_ok = ok
        if err > self._seen_rx_err:
            self._raise(IRQ_RX_ERROR)
            self._seen_rx_err = err
        busy = sys.tx.busy
        if self._tx_was_busy and not busy:
            self._raise(IRQ_TX_DONE)
        self._tx_was_busy = busy

    def _raise(self, bit: int) -> None:
        self._irq_pending |= bit
        self.regs.register("IRQ_PENDING").value = self._irq_pending

    @property
    def irq_asserted(self) -> bool:
        """The level of the interrupt line to the host."""
        mask = self.regs.register("IRQ_MASK").value
        return bool(self._irq_pending & mask)

    # ------------------------------------------------------------- host API
    def read(self, address: int) -> int:
        """Host bus read."""
        return self.regs.read(address)

    def write(self, address: int, value: int) -> None:
        """Host bus write."""
        self.regs.write(address, value)
