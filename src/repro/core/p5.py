"""The top-level P5 system and duplex link harness (paper Figure 2).

A :class:`P5System` bundles one transmitter, one receiver and the
Protocol OAM.  :class:`PhyWire` models the physical link between two
systems (or a loopback on one); :func:`run_duplex_exchange` is the
standard harness the tests and throughput benchmarks use: two P5s,
cross-connected, exchanging real PPP frames cycle-accurately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import P5Config
from repro.core.oam import ProtocolOam
from repro.core.rx import P5Receiver
from repro.core.tx import P5Transmitter
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.simulator import Simulator

__all__ = ["PhyWire", "P5System", "DuplexResult", "run_duplex_exchange"]


class PhyWire(Module):
    """A registered physical hop moving one word per cycle.

    Models the PHY/fibre between transmitter and receiver: fixed
    one-cycle latency, no reordering, optional per-octet corruption
    hook (used by the error-injection tests via
    :mod:`repro.phy.line`).
    """

    def __init__(self, name: str, inp: Channel, out: Channel, *, corrupt=None) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.corrupt = corrupt
        self.words_moved = 0

    @property
    def quiescent(self) -> bool:
        # Nothing on the wire this cycle; a full far end is *not*
        # quiescent only because clock() would do nothing either way,
        # but an empty input is the only state-free guarantee.
        return not self.inp.can_pop

    def clock(self) -> None:
        if self.inp.can_pop and self.out.can_push:
            beat = self.inp.pop()
            if self.corrupt is not None:
                beat = self.corrupt(beat)
            self.out.push(beat)
            self.words_moved += 1

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            latency_cycles=1,
            outputs=(ChannelTiming(self.out),),
        )


class P5System:
    """One complete P5: TX + RX + OAM, sharing a configuration."""

    def __init__(self, config: Optional[P5Config] = None, *, name: str = "p5") -> None:
        self.config = config or P5Config()
        self.name = name
        self.tx = P5Transmitter(self.config, name=f"{name}.tx")
        self.rx = P5Receiver(self.config, name=f"{name}.rx")
        self.oam = ProtocolOam(self)

    @property
    def modules(self) -> List[Module]:
        return self.tx.modules + self.rx.modules

    @property
    def channels(self) -> List[Channel]:
        return self.tx.channels + self.rx.channels

    def submit(self, content: bytes) -> None:
        """Queue one frame's content for transmission."""
        self.tx.submit(content)

    def received(self) -> List[Tuple[bytes, bool]]:
        """Frames landed in receive memory, with FCS verdicts."""
        return self.rx.frames

    def idle(self) -> bool:
        """Nothing in flight anywhere in this system."""
        return (
            not self.tx.busy
            and not any(ch.can_pop for ch in self.channels)
            and self.rx.escape.idle
        )


@dataclass
class DuplexResult:
    """Outcome of :func:`run_duplex_exchange`."""

    cycles: int
    a_received: List[Tuple[bytes, bool]]
    b_received: List[Tuple[bytes, bool]]
    sim: Simulator
    a: P5System
    b: P5System

    def all_good(self) -> bool:
        return all(ok for _, ok in self.a_received) and all(
            ok for _, ok in self.b_received
        )


def build_duplex(
    config: Optional[P5Config] = None,
    *,
    corrupt_ab=None,
    corrupt_ba=None,
) -> Tuple[P5System, P5System, Simulator]:
    """Two P5 systems cross-connected by PhyWires, plus a simulator."""
    cfg = config or P5Config()
    a = P5System(cfg, name="A")
    b = P5System(cfg, name="B")
    wire_ab = PhyWire("phyAB", a.tx.phy_out, b.rx.phy_in, corrupt=corrupt_ab)
    wire_ba = PhyWire("phyBA", b.tx.phy_out, a.rx.phy_in, corrupt=corrupt_ba)
    modules = (
        a.tx.modules + [wire_ab] + b.rx.modules
        + b.tx.modules + [wire_ba] + a.rx.modules
    )
    channels = a.channels + b.channels
    sim = Simulator(modules, channels)
    sim.add_observer(lambda _cycle: (a.oam.service(), b.oam.service()))
    return a, b, sim


def run_duplex_exchange(
    a_frames: Sequence[bytes],
    b_frames: Sequence[bytes],
    config: Optional[P5Config] = None,
    *,
    timeout: int = 1_000_000,
    corrupt_ab=None,
    corrupt_ba=None,
) -> DuplexResult:
    """Exchange frame lists between two P5s and run until delivered.

    ``corrupt_ab``/``corrupt_ba`` pass straight to the two
    :class:`PhyWire` hops (see :func:`build_duplex`), e.g. a
    :func:`repro.phy.line.make_beat_corruptor` hook — note a corrupted
    exchange may then never satisfy the delivery condition, so pick a
    finite ``timeout`` and catch :class:`~repro.errors.SimulationError`.
    """
    a, b, sim = build_duplex(config, corrupt_ab=corrupt_ab, corrupt_ba=corrupt_ba)
    for content in a_frames:
        a.submit(content)
    for content in b_frames:
        b.submit(content)

    def delivered() -> bool:
        return (
            len(b.received()) >= len(a_frames)
            and len(a.received()) >= len(b_frames)
            and a.idle()
            and b.idle()
        )

    cycles = sim.run_until(delivered, timeout=timeout)
    return DuplexResult(
        cycles=cycles,
        a_received=a.received(),
        b_received=b.received(),
        sim=sim,
        a=a,
        b=b,
    )
