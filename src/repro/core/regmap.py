"""Register-map infrastructure for the Protocol OAM block.

"The exchange of status information between a µP (host computer) is
carried out via interrupts and a status/control register map."  This
module provides the generic map; :mod:`repro.core.oam` defines the
P5's actual registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigError

__all__ = ["Register", "RegisterMap"]


@dataclass
class Register:
    """One 32-bit register.

    Attributes
    ----------
    name / address:
        Symbolic name and word address on the microprocessor bus.
    access:
        ``"rw"`` host read/write, ``"ro"`` host read-only (status),
        ``"w1c"`` write-1-to-clear (interrupt pending style).
    reset:
        Value after reset.
    on_read:
        Optional provider called on host reads (live status values).
    on_write:
        Optional side-effect hook called with the new value.
    """

    name: str
    address: int
    access: str = "rw"
    reset: int = 0
    on_read: Optional[Callable[[], int]] = None
    on_write: Optional[Callable[[int], None]] = None
    value: int = field(init=False)

    def __post_init__(self) -> None:
        if self.access not in ("rw", "ro", "w1c"):
            raise ConfigError(f"unknown access mode {self.access!r}")
        self.value = self.reset & 0xFFFFFFFF


class RegisterMap:
    """An addressable bank of :class:`Register` objects."""

    def __init__(self) -> None:
        self._by_addr: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}

    def add(self, register: Register) -> Register:
        """Install a register; address and name must be unique."""
        if register.address in self._by_addr:
            raise ConfigError(f"address 0x{register.address:02X} already mapped")
        if register.name in self._by_name:
            raise ConfigError(f"register name {register.name!r} already mapped")
        self._by_addr[register.address] = register
        self._by_name[register.name] = register
        return register

    def register(self, name: str) -> Register:
        """Look up by symbolic name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no register named {name!r}") from None

    # ------------------------------------------------------------- host bus
    def read(self, address: int) -> int:
        """Host read cycle."""
        reg = self._lookup(address)
        if reg.on_read is not None:
            reg.value = reg.on_read() & 0xFFFFFFFF
        return reg.value

    def write(self, address: int, value: int) -> None:
        """Host write cycle; honours the access mode."""
        reg = self._lookup(address)
        value &= 0xFFFFFFFF
        if reg.access == "ro":
            return  # writes to status registers are ignored, as in HW
        if reg.access == "w1c":
            reg.value &= ~value & 0xFFFFFFFF
        else:
            reg.value = value
        if reg.on_write is not None:
            reg.on_write(reg.value)

    def read_name(self, name: str) -> int:
        """Convenience: read by symbolic name."""
        return self.read(self.register(name).address)

    def write_name(self, name: str, value: int) -> None:
        """Convenience: write by symbolic name."""
        self.write(self.register(name).address, value)

    def _lookup(self, address: int) -> Register:
        try:
            return self._by_addr[address]
        except KeyError:
            raise KeyError(f"no register at address 0x{address:02X}") from None

    def reset(self) -> None:
        """Return every register to its reset value."""
        for reg in self._by_addr.values():
            reg.value = reg.reset & 0xFFFFFFFF

    def dump(self) -> str:
        """Formatted register listing (debug/OAM console)."""
        lines = []
        for addr in sorted(self._by_addr):
            reg = self._by_addr[addr]
            value = self.read(addr)
            lines.append(f"0x{addr:02X} {reg.name:<20} {reg.access:<3} 0x{value:08X}")
        return "\n".join(lines)
