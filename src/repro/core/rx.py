"""The P5 Receiver (paper Figure 4).

Data path: **PHY → flag delineation → Escape Detect → CRC check →
Control (shared memory)**.  The delineator hunts for flag octets in
the unaligned wire stream, the Escape Detect unit deletes escapes and
fills the resulting bubbles, the CRC unit verifies and strips the
FCS, and the frame sink writes whole frames into receive memory with
their verdicts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import P5Config
from repro.core.crc_unit import CrcCheck
from repro.core.escape_pipeline import PipelinedEscapeDetect
from repro.hdlc.constants import FLAG_OCTET
from repro.rtl.module import Channel, Module
from repro.rtl.pipeline import WordBeat

__all__ = ["WordDelineator", "RxFrameSink", "P5Receiver"]


class WordDelineator(Module):
    """Flag hunting and frame delineation on word-wide data.

    The wire presents ``W`` arbitrary octets per cycle; flags may sit
    on any lane, frames may start mid-word and a single word can close
    one frame and open the next.  The module re-emits the *frame body*
    octets (flags stripped) as dense word beats with sof/eof marks.

    A one-word **holdback** keeps the most recent full word in the
    carry until more data (or the closing flag) arrives — otherwise a
    frame whose body length is an exact multiple of W would have
    already shipped its last word before the flag reveals it was the
    last, and the eof mark could not be attached.  Hardware has the
    same constraint and the same solution (a registered word of
    lookahead).
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        flag_octet: int = FLAG_OCTET,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.flag_octet = flag_octet
        self._carry = bytearray()      # body bytes of the open frame
        self._synced = False
        self._sof_pending = False
        self.octets_discarded_hunting = 0
        self.frames_delineated = 0
        self.empty_bodies = 0          # idle flags between frames

    def capacity_needs(self):
        # One PHY word of tiny frames can burst W+2 beats (the room
        # check in clock()); anything shallower deadlocks the hunt.
        return [(self.out, self.width_bytes + 2, "worst-case tiny-frame burst")]

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        # Worst case: a word full of tiny frames can emit up to W/3+2
        # beats; require generous room or stall the PHY word.
        if self.out.capacity - self.out.occupancy < self.width_bytes + 2:
            self.note_stall()
            return
        beat: WordBeat = self.inp.pop()
        for octet in beat.payload():
            self._consume_octet(octet)
        self._emit_words()

    def _consume_octet(self, octet: int) -> None:
        if not self._synced:
            if octet == self.flag_octet:
                self._synced = True
                self._sof_pending = True
            else:
                self.octets_discarded_hunting += 1
            return
        if octet == self.flag_octet:
            if self._carry:
                self._close_frame()
            else:
                self.empty_bodies += 1
            self._sof_pending = True
            return
        self._carry.append(octet)

    def _emit_words(self) -> None:
        # Strictly-greater-than: hold one word back (see class docs).
        while len(self._carry) > self.width_bytes:
            word = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            self.out.push(
                WordBeat.from_bytes(word, self.width_bytes, sof=self._sof_pending)
            )
            self._sof_pending = False

    def _close_frame(self) -> None:
        # Flush everything held back; may be up to 2W-? bytes if the
        # flag arrived right after a large fill — emit in word chunks.
        while self._carry:
            chunk = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            self.out.push(
                WordBeat.from_bytes(
                    chunk,
                    self.width_bytes,
                    sof=self._sof_pending,
                    eof=not self._carry,
                )
            )
            self._sof_pending = False
        self.frames_delineated += 1


class RxFrameSink(Module):
    """Control unit + shared-memory write port.

    Assembles beats into whole frames and pairs them with the CRC
    checker's verdicts.  ``frames`` holds ``(content, good)`` tuples —
    the paper's "receiver unpacketises and extracts the encapsulated
    datagram".
    """

    def __init__(self, name: str, inp: Channel, crc: CrcCheck) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.crc = crc
        self._current = bytearray()
        self.frames: List[Tuple[bytes, bool]] = []
        self._verdict_cursor = 0

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        beat: WordBeat = self.inp.pop()
        self._current += beat.payload()
        if beat.eof:
            verdicts = self.crc.released_results
            good = (
                verdicts[self._verdict_cursor]
                if self._verdict_cursor < len(verdicts)
                else False
            )
            self._verdict_cursor += 1
            self.frames.append((bytes(self._current), good))
            self._current.clear()

    def good_frames(self) -> List[bytes]:
        """Contents of frames that passed the FCS check."""
        return [content for content, good in self.frames if good]


class P5Receiver:
    """The complete receiver pipeline as a module/channel bundle."""

    def __init__(self, config: P5Config, *, name: str = "rx") -> None:
        self.config = config
        w = config.width_bytes
        self.phy_in = Channel(f"{name}.phy", capacity=4)
        # The delineator can burst many small beats from one PHY word
        # (see WordDelineator room check): size its output accordingly.
        self.ch_body = Channel(f"{name}.body", capacity=2 * w + 4)
        self.ch_clear = Channel(f"{name}.clear", capacity=6)
        self.ch_checked = Channel(f"{name}.checked", capacity=6)

        self.delineator = WordDelineator(
            f"{name}.delin", self.phy_in, self.ch_body,
            width_bytes=w, flag_octet=config.flag_octet,
        )
        self.escape = PipelinedEscapeDetect(
            f"{name}.escdet", self.ch_body, self.ch_clear,
            width_bytes=w,
            esc_octet=config.esc_octet,
            flag_octet=config.flag_octet,
            pipeline_stages=4 if config.width_bits > 8 else 2,
            resync_depth_words=config.resync_depth_words,
        )
        self.crc = CrcCheck(
            f"{name}.crcchk", self.ch_clear, self.ch_checked,
            width_bytes=w, spec=config.fcs,
        )
        self.sink = RxFrameSink(f"{name}.sink", self.ch_checked, self.crc)
        self.modules: List[Module] = [
            self.delineator, self.escape, self.crc, self.sink
        ]
        self.channels = [self.phy_in, self.ch_body, self.ch_clear, self.ch_checked]

    @property
    def frames(self) -> List[Tuple[bytes, bool]]:
        """All received frames with verdicts."""
        return self.sink.frames

    def good_frames(self) -> List[bytes]:
        return self.sink.good_frames()
