"""The P5 Receiver (paper Figure 4).

Data path: **PHY → flag delineation → Escape Detect → CRC check →
Control (shared memory)**.  The delineator hunts for flag octets in
the unaligned wire stream, the Escape Detect unit deletes escapes and
fills the resulting bubbles, the CRC unit verifies and strips the
FCS, and the frame sink writes whole frames into receive memory with
their verdicts.

Recovery hardening (exercised by :mod:`repro.faults`): the delineator
recognises the HDLC **abort sequence** (escape octet immediately
followed by a flag) and discards the aborted frame, enforces an
**oversize** bound so a corrupted-away closing flag cannot merge
frames indefinitely, and records every rejection as a typed
:class:`~repro.errors.FramingError` instance alongside the OAM
counters.  All error paths re-hunt to flag sync; none of them wedge
the pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import P5Config
from repro.core.crc_unit import CrcCheck
from repro.core.escape_pipeline import PipelinedEscapeDetect
from repro.errors import AbortError, FramingError, OversizeFrameError
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import StallPattern, WordBeat

__all__ = ["WordDelineator", "RxFrameSink", "P5Receiver"]


class WordDelineator(Module):
    """Flag hunting and frame delineation on word-wide data.

    The wire presents ``W`` arbitrary octets per cycle; flags may sit
    on any lane, frames may start mid-word and a single word can close
    one frame and open the next.  The module re-emits the *frame body*
    octets (flags stripped) as dense word beats with sof/eof marks.

    A one-word **holdback** keeps the most recent full word in the
    carry until more data (or the closing flag) arrives — otherwise a
    frame whose body length is an exact multiple of W would have
    already shipped its last word before the flag reveals it was the
    last, and the eof mark could not be attached.  Hardware has the
    same constraint and the same solution (a registered word of
    lookahead).

    Two error paths protect the downstream pipeline:

    * **abort** — a frame body ending in the escape octet when the
      closing flag arrives is the RFC 1662 abort sequence.  If nothing
      has shipped downstream yet the frame is discarded silently
      (counted in :attr:`aborts`); if part of it already shipped, the
      partial frame is closed with an eof so the next frame cannot be
      merged into it (it then fails its FCS check).
    * **oversize** — a body exceeding ``max_frame_octets`` (a merged
      frame after a corrupted closing flag) is cut, counted in
      :attr:`oversize_drops`, and the delineator re-enters the flag
      hunt, resynchronising at the next flag on the wire.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        flag_octet: int = FLAG_OCTET,
        esc_octet: int = ESC_OCTET,
        max_frame_octets: int = 0,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.flag_octet = flag_octet
        self.esc_octet = esc_octet
        self.max_frame_octets = max_frame_octets
        self._carry = bytearray()      # body bytes of the open frame
        self._synced = False
        self._sof_pending = False
        self._emitted = False          # open frame has beats downstream
        self._body_octets = 0          # body octets seen for the open frame
        self.octets_discarded_hunting = 0
        self.frames_delineated = 0
        self.empty_bodies = 0          # idle flags between frames
        self.aborts = 0
        self.oversize_drops = 0
        #: Typed records of every rejected frame (abort/oversize), in
        #: arrival order — the errors.py hierarchy as data, not raises.
        self.faults: List[FramingError] = []

    @property
    def quiescent(self) -> bool:
        # Input-driven: an empty PHY channel means clock() returns at
        # its first guard, whatever frame is half-delineated.
        return not self.inp.can_pop

    def capacity_needs(self):
        # One PHY word of tiny frames can burst W+2 beats (the room
        # check in clock()); anything shallower deadlocks the hunt.
        return [(self.out, self.width_bytes + 2, "worst-case tiny-frame burst")]

    def timing_contract(self) -> TimingContract:
        # Structural latency is 2 cycles (the one-word holdback), but
        # the *first* emission also waits for flag alignment — a
        # property of the traffic, not the structure — so the latency
        # is a steady-state figure, not a run-time bound.
        return TimingContract(
            latency_cycles=2,
            latency_is_bound=False,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Flags and hunt noise are stripped: the body can
                    # contract all the way to nothing (idle flag fill).
                    min_expansion=0.0,
                    burst_words=self.width_bytes + 2,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        # Worst case: a word full of tiny frames can emit up to W/3+2
        # beats; require generous room or stall the PHY word.
        if self.out.capacity - self.out.occupancy < self.width_bytes + 2:
            self.note_stall()
            return
        beat: WordBeat = self.inp.pop()
        for octet in beat.payload():
            self._consume_octet(octet)
        self._emit_words()

    def _consume_octet(self, octet: int) -> None:
        if not self._synced:
            if octet == self.flag_octet:
                self._synced = True
                self._sof_pending = True
            else:
                self.octets_discarded_hunting += 1
            return
        if octet == self.flag_octet:
            if self._carry and self._carry[-1] == self.esc_octet:
                self._abort_frame()
            elif self._carry or self._emitted:
                self._close_frame()
            else:
                self.empty_bodies += 1
            self._sof_pending = True
            return
        self._carry.append(octet)
        self._body_octets += 1
        if self.max_frame_octets and self._body_octets > self.max_frame_octets:
            self._oversize_frame()

    def _emit_words(self) -> None:
        # Strictly-greater-than: hold one word back (see class docs).
        while len(self._carry) > self.width_bytes:
            word = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            self.out.push(
                WordBeat.from_bytes(word, self.width_bytes, sof=self._sof_pending)
            )
            self._sof_pending = False
            self._emitted = True

    def _close_frame(self) -> None:
        # Flush everything held back; may be up to 2W-? bytes if the
        # flag arrived right after a large fill — emit in word chunks.
        while self._carry:
            chunk = bytes(self._carry[: self.width_bytes])
            del self._carry[: self.width_bytes]
            self.out.push(
                WordBeat.from_bytes(
                    chunk,
                    self.width_bytes,
                    sof=self._sof_pending,
                    eof=not self._carry,
                )
            )
            self._sof_pending = False
        self.frames_delineated += 1
        self._reset_frame()

    def _abort_frame(self) -> None:
        """RFC 1662 abort: ``<ESC> <FLAG>`` discards the frame in progress."""
        self.aborts += 1
        self.faults.append(AbortError(
            f"{self.name}: abort sequence after {self._body_octets} body octets"
        ))
        if self._emitted:
            # Part of the aborted frame already shipped: close it with
            # an eof (trailing escape and all) so the escape/CRC stages
            # cannot merge the next frame into it; it fails its FCS.
            self._close_frame()
        else:
            self._carry.clear()
            self._reset_frame()

    def _oversize_frame(self) -> None:
        """Oversize cut: drop the runaway frame and re-hunt for a flag."""
        self.oversize_drops += 1
        self.faults.append(OversizeFrameError(
            f"{self.name}: frame body exceeded {self.max_frame_octets} octets"
        ))
        if self._emitted:
            self._close_frame()
        else:
            self._carry.clear()
            self._reset_frame()
        # Everything until the next flag is un-frameable noise; the
        # hunt counter accounts for it as discarded octets.
        self._synced = False

    def _reset_frame(self) -> None:
        self._body_octets = 0
        self._emitted = False


class RxFrameSink(Module):
    """Control unit + shared-memory write port.

    Assembles beats into whole frames and pairs them with the CRC
    checker's verdicts.  ``frames`` holds ``(content, good)`` tuples —
    the paper's "receiver unpacketises and extracts the encapsulated
    datagram".

    The optional :attr:`stall` pattern models memory-bus contention on
    the write port (the fault campaigns' backpressure storms): on
    stalled cycles the sink deasserts ready and the stall ripples back
    up the pipeline, which must absorb it without losing a frame.
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        crc: CrcCheck,
        *,
        stall: Optional[StallPattern] = None,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.crc = crc
        self.stall = stall
        self._current = bytearray()
        self.frames: List[Tuple[bytes, bool]] = []
        self._verdict_cursor = 0

    @property
    def quiescent(self) -> bool:
        # A stall pattern may draw RNG (or count stalled cycles), so
        # only an unstalled sink with an empty input is skippable.
        return (
            (self.stall is None or self.stall.is_never)
            and not self.inp.can_pop
        )

    def clock(self) -> None:
        if self.stall is not None and self.stall.active(self.cycles):
            self.note_stall()
            return
        if not self.inp.can_pop:
            return
        beat: WordBeat = self.inp.pop()
        self._current += beat.payload()
        if beat.eof:
            verdicts = self.crc.released_results
            good = (
                verdicts[self._verdict_cursor]
                if self._verdict_cursor < len(verdicts)
                else False
            )
            self._verdict_cursor += 1
            self.frames.append((bytes(self._current), good))
            self._current.clear()

    def good_frames(self) -> List[bytes]:
        """Contents of frames that passed the FCS check."""
        return [content for content, good in self.frames if good]

    def timing_contract(self) -> TimingContract:
        # Terminal stage: one cycle to land a beat in receive memory;
        # no output channels to constrain.
        return TimingContract(latency_cycles=1)


class P5Receiver:
    """The complete receiver pipeline as a module/channel bundle."""

    def __init__(self, config: P5Config, *, name: str = "rx") -> None:
        self.config = config
        w = config.width_bytes
        self.phy_in = Channel(f"{name}.phy", capacity=4)
        # The delineator can burst many small beats from one PHY word
        # (see WordDelineator room check): size its output accordingly.
        self.ch_body = Channel(f"{name}.body", capacity=2 * w + 4)
        self.ch_clear = Channel(f"{name}.clear", capacity=6)
        self.ch_checked = Channel(f"{name}.checked", capacity=6)

        self.delineator = WordDelineator(
            f"{name}.delin", self.phy_in, self.ch_body,
            width_bytes=w, flag_octet=config.flag_octet,
            esc_octet=config.esc_octet,
            max_frame_octets=config.max_frame_octets,
        )
        self.escape = PipelinedEscapeDetect(
            f"{name}.escdet", self.ch_body, self.ch_clear,
            width_bytes=w,
            esc_octet=config.esc_octet,
            flag_octet=config.flag_octet,
            pipeline_stages=4 if config.width_bits > 8 else 2,
            resync_depth_words=config.resync_depth_words,
        )
        self.crc = CrcCheck(
            f"{name}.crcchk", self.ch_clear, self.ch_checked,
            width_bytes=w, spec=config.fcs,
        )
        self.sink = RxFrameSink(f"{name}.sink", self.ch_checked, self.crc)
        self.modules: List[Module] = [
            self.delineator, self.escape, self.crc, self.sink
        ]
        self.channels = [self.phy_in, self.ch_body, self.ch_clear, self.ch_checked]

    @property
    def frames(self) -> List[Tuple[bytes, bool]]:
        """All received frames with verdicts."""
        return self.sink.frames

    @property
    def faults(self) -> List[FramingError]:
        """Typed framing rejections seen anywhere in the receive path."""
        return list(self.delineator.faults) + list(self.crc.faults)

    def good_frames(self) -> List[bytes]:
        return self.sink.good_frames()
