"""The byte sorter — the paper's central datapath mechanism.

Stuffing expands and destuffing contracts the byte stream *mid-word*,
so a word-parallel datapath constantly has "too many" or "too few"
bytes in flight (paper Figures 5 and 6).  The byte sorter is the
realignment network that absorbs ragged byte counts and re-emits
full-width words: a carry register of 0..W-1 bytes plus a barrel-shift
write of up to 2W incoming bytes.

In hardware this is "large decision-making combinational logic" — the
very logic that makes the 32-bit P5 ~11x the 8-bit system.  The
:meth:`ByteSorter.decision_cases` accounting quantifies that cone and
feeds the synthesis cost model.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ByteSorter"]


class ByteSorter:
    """Repack a ragged byte stream into full ``width_bytes`` words.

    Bytes are pushed in arbitrary group sizes (0..2W per cycle, as the
    escape expander produces them); :meth:`push` returns every full
    word that the new bytes complete.  Residual bytes wait in the
    carry register for the next cycle; :meth:`flush` drains them at a
    frame boundary.

    The carry register never holds a full word after :meth:`push`
    returns (words are emitted eagerly), so the residue is bounded by
    ``W - 1`` bytes — the structural floor the paper's "extremely low"
    resynchronisation buffer builds on.  Buffering and backpressure
    for *stalled* outputs live in the pipelined units
    (:mod:`repro.core.escape_pipeline`), not here.
    """

    def __init__(self, width_bytes: int) -> None:
        if width_bytes < 1:
            raise ValueError("width_bytes must be >= 1")
        self.width_bytes = width_bytes
        self._carry: List[int] = []
        self.max_carry = 0
        self.words_emitted = 0
        self.bytes_in = 0

    # ------------------------------------------------------------ occupancy
    @property
    def occupancy(self) -> int:
        """Bytes currently waiting in the carry register."""
        return len(self._carry)

    # ----------------------------------------------------------------- data
    def push(self, data: bytes) -> List[bytes]:
        """Add bytes; return the full words now available (in order)."""
        self._carry.extend(data)
        self.bytes_in += len(data)
        words: List[bytes] = []
        while len(self._carry) >= self.width_bytes:
            words.append(bytes(self._carry[: self.width_bytes]))
            del self._carry[: self.width_bytes]
            self.words_emitted += 1
        if len(self._carry) > self.max_carry:
            self.max_carry = len(self._carry)
        return words

    def flush(self) -> Optional[bytes]:
        """Emit the residual partial word (frame tail), if any."""
        if not self._carry:
            return None
        word = bytes(self._carry)
        self._carry.clear()
        self.words_emitted += 1
        return word

    def reset(self) -> None:
        """Drop all state (link restart)."""
        self._carry.clear()

    # --------------------------------------------------------- cost model
    def decision_cases(self) -> int:
        """Size of the combinational decision space this sorter implies.

        Hardware must select, for each of the W output lanes, one of
        (carry occupancy) x (incoming byte count) alignments: with
        occupancy in 0..W-1 and 0..2W incoming bytes that is
        ``W * (2W + 1)`` distinct shift configurations, each a wide
        multiplexer — the quadratic-in-W growth behind the paper's
        11x area observation.
        """
        w = self.width_bytes
        return w * (2 * w + 1)
