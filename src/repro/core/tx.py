"""The P5 Transmitter (paper Figure 3).

Data path: **Control → CRC generate → Escape Generate → flag wrap →
PHY**.  The control unit reads assembled frame contents from the
shared transmit memory (a queue here), streams them down the pipeline
at ``W`` bytes per clock, and the flag wrapper delimits the stuffed
result on the wire.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.config import P5Config
from repro.core.crc_unit import CrcGenerate
from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.hdlc.constants import FLAG_OCTET
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import WordBeat, beats_from_bytes

__all__ = ["TxFrameSource", "FlagInserter", "P5Transmitter"]


class TxFrameSource(Module):
    """Control unit + shared-memory read port.

    Frames (already-assembled PPP content: address/control/protocol/
    information) are queued by the host via :meth:`submit`; the module
    streams each as word beats.  The ``enabled`` flag is the OAM's
    transmitter-enable control bit.
    """

    def __init__(self, name: str, out: Channel, *, width_bytes: int) -> None:
        super().__init__(name)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.queue: Deque[bytes] = deque()
        self._beats: Deque[WordBeat] = deque()
        self.enabled = True
        self.frames_fetched = 0

    def submit(self, content: bytes) -> None:
        """Queue one frame's content for transmission."""
        if not content:
            raise ValueError("cannot transmit an empty frame")
        self.queue.append(content)

    @property
    def busy(self) -> bool:
        """Data still waiting or in flight from this module."""
        return bool(self.queue or self._beats)

    @property
    def quiescent(self) -> bool:
        # Disabled, or nothing queued and nothing in flight: clocking
        # would touch no channel and no state.
        return not self.enabled or not (self.queue or self._beats)

    def timing_contract(self) -> TimingContract:
        # One output register: a queued word reaches the channel on
        # the cycle it is clocked.
        return TimingContract(
            latency_cycles=1,
            outputs=(ChannelTiming(self.out),),
        )

    def clock(self) -> None:
        if not self.enabled:
            return
        if not self._beats and self.queue:
            self._beats.extend(
                beats_from_bytes(self.queue.popleft(), self.width_bytes)
            )
            self.frames_fetched += 1
        if self._beats and self.out.can_push:
            self.out.push(self._beats.popleft())
        elif self._beats:
            self.note_stall()


class FlagInserter(Module):
    """Wrap stuffed frames in flag octets and densify onto the wire.

    Each frame leaves as ``7E <stuffed content+FCS> 7E``; the byte
    carry keeps the wire words dense across the flag boundaries.  The
    carry is flushed at end-of-frame so a frame is never held hostage
    waiting for a successor (the partial final word simply has fewer
    valid lanes — the PHY serialises valid octets only).
    """

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        width_bytes: int,
        flag_octet: int = FLAG_OCTET,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.width_bytes = width_bytes
        self.flag_octet = flag_octet
        self._carry = bytearray()
        self.flags_inserted = 0
        self.frames_wrapped = 0

    @property
    def quiescent(self) -> bool:
        # clock() is input-driven: with nothing to pop it returns
        # immediately, whatever the carry holds.
        return not self.inp.can_pop

    def capacity_needs(self):
        # Worst case one beat closes a frame: carry (<= W-1) + W new
        # octets + 2 flags must fit the output in one burst.
        w = self.width_bytes
        words = (w - 1 + w + 2 + w - 1) // w
        return [(self.out, words, "eof flush burst of the flag wrapper")]

    def timing_contract(self) -> TimingContract:
        w = self.width_bytes
        return TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Content passes through untouched; the two wrapping
                    # flags are per-frame overhead, not expansion.
                    per_frame_octets=2,
                    burst_words=(w - 1 + w + 2 + w - 1) // w,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        beat: WordBeat = self.inp.peek()
        extra = (1 if beat.sof else 0) + (1 if beat.eof else 0)
        total = len(self._carry) + beat.n_valid + extra
        max_words = (total + self.width_bytes - 1) // self.width_bytes
        if self.out.capacity - self.out.occupancy < max_words:
            self.note_stall()
            return
        self.inp.pop()
        if beat.sof:
            self._carry.append(self.flag_octet)
            self.flags_inserted += 1
        self._carry.extend(beat.payload())
        if beat.eof:
            self._carry.append(self.flag_octet)
            self.flags_inserted += 1
            self.frames_wrapped += 1
            while self._carry:
                chunk = bytes(self._carry[: self.width_bytes])
                del self._carry[: self.width_bytes]
                self.out.push(WordBeat.from_bytes(chunk, self.width_bytes))
        else:
            while len(self._carry) >= self.width_bytes:
                chunk = bytes(self._carry[: self.width_bytes])
                del self._carry[: self.width_bytes]
                self.out.push(WordBeat.from_bytes(chunk, self.width_bytes))


class P5Transmitter:
    """The complete transmitter pipeline as a module/channel bundle.

    Attributes
    ----------
    modules:
        Source-to-sink ordered modules for the simulator.
    phy_out:
        The channel carrying wire words to the PHY (or the peer's
        receiver in loopback tests).
    """

    def __init__(self, config: P5Config, *, name: str = "tx") -> None:
        self.config = config
        w = config.width_bytes
        self.ch_content = Channel(f"{name}.content", capacity=2)
        # The CRC generator flushes content tail + FCS trailer in one
        # end-of-frame burst: up to (2W-1+fcs)/W + 1 words.  Size the
        # channel to absorb the burst or the generator deadlocks
        # against its own room check (acute at W=1, where the 4-octet
        # FCS alone is 4 words).
        fcs_octets = config.fcs.width // 8
        crc_burst = (2 * w - 1 + fcs_octets) // w + 2
        self.ch_crc = Channel(f"{name}.crc", capacity=max(4, crc_burst))
        self.ch_escaped = Channel(f"{name}.escaped", capacity=4)
        self.phy_out = Channel(f"{name}.phy", capacity=4)

        self.source = TxFrameSource(f"{name}.source", self.ch_content, width_bytes=w)
        self.crc = CrcGenerate(
            f"{name}.crcgen", self.ch_content, self.ch_crc,
            width_bytes=w, spec=config.fcs,
        )
        self.escape = PipelinedEscapeGenerate(
            f"{name}.escgen", self.ch_crc, self.ch_escaped,
            width_bytes=w,
            escapes=config.escape_octets,
            esc_octet=config.esc_octet,
            pipeline_stages=4 if config.width_bits > 8 else 2,
            resync_depth_words=config.resync_depth_words,
        )
        self.flags = FlagInserter(
            f"{name}.flags", self.ch_escaped, self.phy_out,
            width_bytes=w, flag_octet=config.flag_octet,
        )
        self.modules: List[Module] = [self.source, self.crc, self.escape, self.flags]
        self.channels = [self.ch_content, self.ch_crc, self.ch_escaped, self.phy_out]

    def submit(self, content: bytes) -> None:
        """Queue one frame's content (host writing shared memory)."""
        self.source.submit(content)

    @property
    def busy(self) -> bool:
        """Whether any stage still holds data (excluding phy_out)."""
        return (
            self.source.busy
            or any(ch.can_pop for ch in self.channels[:-1])
            or not self.escape.idle
            or bool(self.crc._carry)
            or bool(self.flags._carry)
        )
