"""CRC engines for the P5 datapath.

Three interchangeable implementations of the same specification:

* :mod:`repro.crc.bitserial` — the textbook LFSR, one bit per step.
  Slow, but trivially correct; the golden model.
* :mod:`repro.crc.table` — classic 256-entry byte table.
* :mod:`repro.crc.matrix` / :mod:`repro.crc.parallel` — the
  Pei–Zukowski word-parallel formulation the paper's hardware uses:
  the CRC register update over ``W`` input bits is a GF(2)-linear map
  ``S' = F_W . S  xor  H_W . D`` realised as two XOR matrices.  The
  8-bit P5 uses the 8 x 32 form, the 32-bit P5 the 32 x 32 form.

All three are cross-checked against each other and against published
check values in the test suite.
"""

from repro.crc.polynomial import (
    CRC16_CCITT_FALSE,
    CRC16_KERMIT,
    CRC16_X25,
    CRC16_XMODEM,
    CRC32,
    CRC8,
    CrcSpec,
    get_spec,
    registered_specs,
)
from repro.crc.bitserial import BitSerialCrc
from repro.crc.table import TableCrc
from repro.crc.matrix import CrcMatrices, build_matrices
from repro.crc.parallel import ParallelCrc

__all__ = [
    "CrcSpec",
    "CRC8",
    "CRC16_CCITT_FALSE",
    "CRC16_KERMIT",
    "CRC16_XMODEM",
    "CRC16_X25",
    "CRC32",
    "get_spec",
    "registered_specs",
    "BitSerialCrc",
    "TableCrc",
    "CrcMatrices",
    "build_matrices",
    "ParallelCrc",
]
