"""Bit-serial (LFSR) CRC — the golden reference implementation.

This mirrors the serial hardware the paper's parallel matrix replaces:
an MSB-first shift register with polynomial feedback, one bit per
clock.  Reflected specs are handled by feeding each octet's bits
LSB-first (``refin``) and reflecting the final register (``refout``),
which keeps a single canonical register domain for every spec — the
same canonical domain the matrix builder probes.
"""

from __future__ import annotations

from typing import Iterable

from repro.crc.polynomial import CrcSpec
from repro.utils.bits import bit_reflect

__all__ = ["BitSerialCrc"]


class BitSerialCrc:
    """Streaming CRC calculator processing one bit at a time.

    The register is kept in the canonical (non-reflected, MSB-first)
    domain; :meth:`value` applies ``refout``/``xorout`` to produce the
    published CRC.  Use :meth:`core_step` to access the raw linear
    update — the matrix builder relies on it.
    """

    def __init__(self, spec: CrcSpec) -> None:
        self.spec = spec
        self._state = spec.init
        self._top = 1 << (spec.width - 1)

    # ------------------------------------------------------------------ core
    def core_step(self, state: int, bit: int) -> int:
        """One canonical LFSR step: shift left, conditional feedback.

        ``next = ((state << 1) & mask) ^ ((msb(state) ^ bit) ? poly : 0)``

        This is GF(2)-linear in ``(state, bit)``, which is what makes
        the Pei–Zukowski word-parallel matrices exist.
        """
        spec = self.spec
        feedback = ((state & self._top) != 0) ^ (bit & 1)
        state = (state << 1) & spec.mask
        if feedback:
            state ^= spec.poly
        return state

    # ------------------------------------------------------------- streaming
    def reset(self) -> None:
        """Restart with the spec's initial register value."""
        self._state = self.spec.init

    @property
    def state(self) -> int:
        """Raw register contents in the canonical domain (pre-refout)."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        if value & ~self.spec.mask:
            raise ValueError(f"state 0x{value:X} exceeds width {self.spec.width}")
        self._state = value

    def update_bit(self, bit: int) -> None:
        """Absorb a single data bit."""
        self._state = self.core_step(self._state, bit)

    def update_byte(self, byte: int) -> None:
        """Absorb one octet, honouring the spec's input reflection."""
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte out of range: {byte!r}")
        if self.spec.refin:
            bit_order = range(8)            # LSB first
        else:
            bit_order = range(7, -1, -1)    # MSB first
        state = self._state
        for i in bit_order:
            state = self.core_step(state, (byte >> i) & 1)
        self._state = state

    def update(self, data: Iterable[int]) -> "BitSerialCrc":
        """Absorb an iterable of octets; returns self for chaining."""
        for byte in data:
            self.update_byte(byte)
        return self

    # --------------------------------------------------------------- results
    def value(self) -> int:
        """The published CRC of everything absorbed so far."""
        spec = self.spec
        reg = self._state
        if spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg ^ spec.xorout

    def residue_value(self) -> int:
        """Register in the refout domain without xorout (residue check)."""
        spec = self.spec
        reg = self._state
        if spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg

    def compute(self, data: bytes) -> int:
        """One-shot CRC of ``data`` (resets first)."""
        self.reset()
        self.update(data)
        return self.value()
