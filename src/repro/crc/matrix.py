"""Pei–Zukowski word-parallel CRC matrices.

The canonical LFSR step (see :class:`repro.crc.bitserial.BitSerialCrc`)
is GF(2)-linear in ``(state, bit)``::

    next = L(state) ^ bit * P

so absorbing ``W`` data bits is also linear::

    S' = F_W . S  ^  H_W . D

where ``S`` is the ``width``-bit register, ``D`` the ``W`` data bits in
processing order, ``F_W`` a ``width x width`` matrix and ``H_W`` a
``width x W`` matrix.  In hardware (ref. [3] of the paper: Pei &
Zukowski, IEEE Trans. Comm. 1992) each output bit is one XOR tree over
the set rows of ``[F_W | H_W]`` — the paper's "8 x 32" and "32 x 32"
parallel matrices are exactly ``H_W`` for CRC-32 at W = 8 and W = 32.

We *derive* the matrices by superposition: probe the bit-serial golden
model with unit vectors.  This guarantees the parallel engine can never
disagree with the reference implementation by construction, and it
works for every registered spec and any W that is a multiple of 8.

The matrices also feed the synthesis cost model: the XOR-tree fan-in
per output bit (row weight of ``[F_W | H_W]``) determines the LUT count
and logic depth of the hardware CRC core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.crc.bitserial import BitSerialCrc
from repro.crc.polynomial import CrcSpec, get_spec

__all__ = ["CrcMatrices", "build_matrices"]


@dataclass(frozen=True)
class CrcMatrices:
    """The ``F`` (state-feedback) and ``H`` (data-injection) matrices.

    Attributes
    ----------
    spec:
        The CRC parameter set the matrices realise.
    bits_per_cycle:
        ``W`` — how many data bits one application absorbs.
    f_columns:
        ``width`` integers; ``f_columns[j]`` is the next-state
        contribution (as a width-bit integer) of state bit ``j``.
        Bit ``j`` means the value ``1 << j`` in the canonical register.
    h_columns:
        ``W`` integers; ``h_columns[k]`` is the next-state contribution
        of data bit ``k``, where ``k`` indexes the processing order
        (bit 0 is absorbed first).
    """

    spec: CrcSpec
    bits_per_cycle: int
    f_columns: Tuple[int, ...]
    h_columns: Tuple[int, ...]
    _byte_tables: List[np.ndarray] = field(default_factory=list, compare=False, repr=False)

    # ----------------------------------------------------------- matrix view
    def f_matrix(self) -> np.ndarray:
        """``F_W`` as a dense uint8 GF(2) matrix, shape (width, width)."""
        return _columns_to_matrix(self.f_columns, self.spec.width)

    def h_matrix(self) -> np.ndarray:
        """``H_W`` as a dense uint8 GF(2) matrix, shape (width, W)."""
        return _columns_to_matrix(self.h_columns, self.spec.width)

    def xor_fanin_per_output(self) -> np.ndarray:
        """Row weights of ``[F_W | H_W]`` — XOR-tree fan-in per state bit.

        This is the quantity the synthesis model maps to LUTs: a k-input
        XOR needs ``ceil((k-1)/3)`` 4-input LUTs arranged in a tree.
        """
        full = np.concatenate([self.f_matrix(), self.h_matrix()], axis=1)
        return full.sum(axis=1)

    # ------------------------------------------------------------ application
    def step(self, state: int, data_bits: int) -> int:
        """Absorb one W-bit chunk: ``S' = F.S ^ H.D``.

        ``data_bits`` packs the chunk with processing-order bit ``k`` at
        integer bit position ``k``.
        """
        nxt = 0
        for j, col in enumerate(self.f_columns):
            if (state >> j) & 1:
                nxt ^= col
        for k, col in enumerate(self.h_columns):
            if (data_bits >> k) & 1:
                nxt ^= col
        return nxt

    def step_word(self, state: int, word: bytes) -> int:
        """Absorb ``W/8`` octets in transmission order.

        Uses precomputed 256-entry per-lane tables (the software
        analogue of the hardware XOR forest) so a word costs
        ``width/8 + W/8`` table lookups plus XORs.
        """
        tables = self._tables()
        width_bytes = (self.spec.width + 7) // 8
        nxt = 0
        for lane in range(width_bytes):
            nxt ^= int(tables[lane][(state >> (8 * lane)) & 0xFF])
        for lane, byte in enumerate(word):
            nxt ^= int(tables[width_bytes + lane][byte])
        return nxt

    def _tables(self) -> List[np.ndarray]:
        if not self._byte_tables:
            self._byte_tables.extend(self._build_byte_tables())
        return self._byte_tables

    def _build_byte_tables(self) -> List[np.ndarray]:
        """Collapse columns into per-byte-lane lookup tables.

        State lanes come first (``ceil(width/8)`` tables indexed by the
        corresponding state byte), then ``W/8`` data lanes indexed by
        the data octet — with the octet's bits mapped to processing
        order per ``refin``.
        """
        spec = self.spec
        tables: List[np.ndarray] = []
        width_bytes = (spec.width + 7) // 8
        for lane in range(width_bytes):
            table = np.zeros(256, dtype=np.uint64)
            for value in range(256):
                acc = 0
                for bit in range(8):
                    j = 8 * lane + bit
                    if j < spec.width and (value >> bit) & 1:
                        acc ^= self.f_columns[j]
                table[value] = acc
            tables.append(table)
        data_bytes = self.bits_per_cycle // 8
        for lane in range(data_bytes):
            table = np.zeros(256, dtype=np.uint64)
            for value in range(256):
                acc = 0
                for bit in range(8):
                    # Processing order within the octet follows refin.
                    k = 8 * lane + bit
                    src_bit = bit if spec.refin else 7 - bit
                    if (value >> src_bit) & 1:
                        acc ^= self.h_columns[k]
                table[value] = acc
            tables.append(table)
        return tables


def _columns_to_matrix(columns: Tuple[int, ...], width: int) -> np.ndarray:
    mat = np.zeros((width, len(columns)), dtype=np.uint8)
    for j, col in enumerate(columns):
        for i in range(width):
            mat[i, j] = (col >> i) & 1
    return mat


def _serial_absorb(ref: BitSerialCrc, state: int, bits: List[int]) -> int:
    for bit in bits:
        state = ref.core_step(state, bit)
    return state


@lru_cache(maxsize=64)
def _build_matrices_cached(spec_name: str, bits_per_cycle: int) -> CrcMatrices:
    return _build_matrices(get_spec(spec_name), bits_per_cycle)


def _build_matrices(spec: CrcSpec, bits_per_cycle: int) -> CrcMatrices:
    ref = BitSerialCrc(spec)
    zeros = [0] * bits_per_cycle
    # F columns: propagate each state unit vector through W zero bits.
    f_columns = tuple(
        _serial_absorb(ref, 1 << j, zeros) for j in range(spec.width)
    )
    # H columns: propagate zero state with exactly one data bit set.
    h_columns = []
    for k in range(bits_per_cycle):
        bits = [0] * bits_per_cycle
        bits[k] = 1
        h_columns.append(_serial_absorb(ref, 0, bits))
    return CrcMatrices(spec, bits_per_cycle, f_columns, tuple(h_columns))


def build_matrices(spec: CrcSpec, bits_per_cycle: int) -> CrcMatrices:
    """Construct ``F_W``/``H_W`` for ``spec`` at ``W = bits_per_cycle``.

    ``W`` must be a positive multiple of 8 (word-oriented datapaths);
    the paper uses W = 8 for the 8-bit P5 and W = 32 for the 32-bit P5.
    """
    if bits_per_cycle <= 0 or bits_per_cycle % 8:
        raise ValueError(f"bits_per_cycle must be a positive multiple of 8, got {bits_per_cycle}")
    try:
        cacheable = get_spec(spec.name) == spec
    except KeyError:
        cacheable = False
    if cacheable:
        return _build_matrices_cached(spec.name, bits_per_cycle)
    return _build_matrices(spec, bits_per_cycle)
