"""Word-parallel CRC engine — the software model of the P5 CRC core.

:class:`ParallelCrc` absorbs ``W/8`` octets per :meth:`step` call,
exactly like the hardware absorbs one datapath word per clock.  The
8-bit P5 instantiates it with ``bits_per_cycle=8`` (the paper's 8 x 32
matrix for CRC-32), the 32-bit P5 with ``bits_per_cycle=32`` (32 x 32).

Partial trailing words (frames are rarely multiples of 4 bytes) are
handled the way the hardware's "CRC controller" does: final bytes fall
back to byte-granularity absorption, modelling the byte-enable logic
the CRC unit needs on the last beat.
"""

from __future__ import annotations

from repro.crc.matrix import CrcMatrices, build_matrices
from repro.crc.polynomial import CrcSpec
from repro.utils.bits import bit_reflect

__all__ = ["ParallelCrc"]


class ParallelCrc:
    """W-bits-per-cycle CRC calculator built on GF(2) matrices.

    Parameters
    ----------
    spec:
        CRC parameter set (e.g. ``repro.crc.CRC32`` for PPP FCS-32).
    bits_per_cycle:
        Datapath width ``W`` in bits; a positive multiple of 8.
    """

    def __init__(self, spec: CrcSpec, bits_per_cycle: int) -> None:
        self.spec = spec
        self.bits_per_cycle = bits_per_cycle
        self.matrices: CrcMatrices = build_matrices(spec, bits_per_cycle)
        # Byte-granularity matrices for the ragged tail of a frame.
        self._byte_matrices: CrcMatrices = build_matrices(spec, 8)
        self._state = spec.init
        self.words_absorbed = 0

    @property
    def bytes_per_cycle(self) -> int:
        """Octets absorbed per full-width step (``W / 8``)."""
        return self.bits_per_cycle // 8

    # ------------------------------------------------------------- streaming
    def reset(self) -> None:
        """Restart with the spec's initial register value."""
        self._state = self.spec.init
        self.words_absorbed = 0

    @property
    def state(self) -> int:
        """Raw register in the canonical domain (matches BitSerialCrc)."""
        return self._state

    def step(self, word: bytes) -> None:
        """Absorb one full datapath word (exactly ``W/8`` octets)."""
        if len(word) != self.bytes_per_cycle:
            raise ValueError(
                f"step requires exactly {self.bytes_per_cycle} octets, got {len(word)}"
            )
        self._state = self.matrices.step_word(self._state, word)
        self.words_absorbed += 1

    def step_partial(self, tail: bytes) -> None:
        """Absorb a ragged tail of 1..W/8-1 octets (last beat of a frame)."""
        if not 0 < len(tail) < self.bytes_per_cycle:
            raise ValueError(
                f"partial step takes 1..{self.bytes_per_cycle - 1} octets, got {len(tail)}"
            )
        state = self._state
        for byte in tail:
            state = self._byte_matrices.step_word(state, bytes([byte]))
        self._state = state
        self.words_absorbed += 1

    def update(self, data: bytes) -> "ParallelCrc":
        """Absorb an arbitrary-length buffer word-by-word."""
        step_bytes = self.bytes_per_cycle
        full_end = len(data) - (len(data) % step_bytes)
        for off in range(0, full_end, step_bytes):
            self.step(data[off : off + step_bytes])
        if full_end != len(data):
            self.step_partial(data[full_end:])
        return self

    # --------------------------------------------------------------- results
    def value(self) -> int:
        """Published CRC of everything absorbed so far."""
        spec = self.spec
        reg = self._state
        if spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg ^ spec.xorout

    def residue_value(self) -> int:
        """Register in the refout domain without xorout (residue check)."""
        spec = self.spec
        reg = self._state
        if spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg

    def compute(self, data: bytes) -> int:
        """One-shot CRC of ``data`` (resets first)."""
        self.reset()
        self.update(data)
        return self.value()
