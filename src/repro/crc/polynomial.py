"""CRC parameter sets (Rocksoft-style) and the registry used by the P5.

A :class:`CrcSpec` fully determines a CRC: width, polynomial, initial
register value, input/output reflection, final XOR, and the published
``check`` value (the CRC of the ASCII string ``"123456789"``), which
the tests use as an external ground truth.

PPP/HDLC uses two of these (RFC 1662 appendix C):

* **FCS-16** = CRC-16/X-25 — reflected, init ``0xFFFF``, xorout
  ``0xFFFF``; good-frame residue ``0xF0B8``.
* **FCS-32** = CRC-32/ISO-HDLC — reflected, init ``0xFFFFFFFF``,
  xorout ``0xFFFFFFFF``; good-frame residue ``0xDEBB20E3``.

The paper's P5 "incorporates 32-bit CRC checking for accuracy", i.e.
FCS-32, with FCS-16 retained for programmability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "CrcSpec",
    "CRC8",
    "CRC16_CCITT_FALSE",
    "CRC16_KERMIT",
    "CRC16_XMODEM",
    "CRC16_X25",
    "CRC32",
    "get_spec",
    "registered_specs",
]


@dataclass(frozen=True)
class CrcSpec:
    """Rocksoft-model CRC parameter set.

    Attributes
    ----------
    name:
        Catalog name, e.g. ``"CRC-32/ISO-HDLC"``.
    width:
        Register width in bits.
    poly:
        Generator polynomial in normal (MSB-first) representation,
        without the implicit leading ``x^width`` term.
    init:
        Register contents before any data is processed.
    refin:
        If true, each input byte is processed least-significant bit
        first (the serial-line convention for HDLC and Ethernet).
    refout:
        If true, the final register is bit-reflected before xorout.
    xorout:
        Value XORed into the (possibly reflected) register to produce
        the published CRC.
    check:
        CRC of ``b"123456789"`` — external ground truth for tests.
    residue:
        Register value (pre-xorout, in the refout domain) left after
        processing a correct message plus its transmitted FCS.  Used by
        receivers that check "CRC over everything == magic residue".
    """

    name: str
    width: int
    poly: int
    init: int
    refin: bool
    refout: bool
    xorout: int
    check: int
    residue: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width > 64:
            raise ValueError(f"unsupported CRC width {self.width}")
        mask = self.mask
        for field in ("poly", "init", "xorout", "check", "residue"):
            value = getattr(self, field)
            if value & ~mask:
                raise ValueError(f"{field}=0x{value:X} exceeds width {self.width}")

    @property
    def mask(self) -> int:
        """All-ones mask of ``width`` bits."""
        return (1 << self.width) - 1


CRC8 = CrcSpec(
    name="CRC-8/SMBUS",
    width=8,
    poly=0x07,
    init=0x00,
    refin=False,
    refout=False,
    xorout=0x00,
    check=0xF4,
    residue=0x00,
)

CRC16_CCITT_FALSE = CrcSpec(
    name="CRC-16/CCITT-FALSE",
    width=16,
    poly=0x1021,
    init=0xFFFF,
    refin=False,
    refout=False,
    xorout=0x0000,
    check=0x29B1,
    residue=0x0000,
)

#: G.7041 GFP HEC polynomial set (a.k.a. CRC-16/XMODEM).
CRC16_XMODEM = CrcSpec(
    name="CRC-16/XMODEM",
    width=16,
    poly=0x1021,
    init=0x0000,
    refin=False,
    refout=False,
    xorout=0x0000,
    check=0x31C3,
    residue=0x0000,
)

CRC16_KERMIT = CrcSpec(
    name="CRC-16/KERMIT",
    width=16,
    poly=0x1021,
    init=0x0000,
    refin=True,
    refout=True,
    xorout=0x0000,
    check=0x2189,
    residue=0x0000,
)

#: RFC 1662 FCS-16. Residue 0xF0B8 (register domain after refout).
CRC16_X25 = CrcSpec(
    name="CRC-16/X-25",
    width=16,
    poly=0x1021,
    init=0xFFFF,
    refin=True,
    refout=True,
    xorout=0xFFFF,
    check=0x906E,
    residue=0xF0B8,
)

#: RFC 1662 FCS-32 (same parameters as Ethernet / zip CRC-32).
CRC32 = CrcSpec(
    name="CRC-32/ISO-HDLC",
    width=32,
    poly=0x04C11DB7,
    init=0xFFFFFFFF,
    refin=True,
    refout=True,
    xorout=0xFFFFFFFF,
    check=0xCBF43926,
    residue=0xDEBB20E3,
)

_REGISTRY: Dict[str, CrcSpec] = {
    spec.name: spec
    for spec in (CRC8, CRC16_CCITT_FALSE, CRC16_KERMIT, CRC16_XMODEM, CRC16_X25, CRC32)
}
# Convenience aliases used throughout the PPP code.
_REGISTRY["FCS-16"] = CRC16_X25
_REGISTRY["FCS-32"] = CRC32


def get_spec(name: str) -> CrcSpec:
    """Look up a spec by catalog name or PPP alias (``FCS-16``/``FCS-32``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown CRC spec {name!r}; known: {known}") from None


def registered_specs() -> Tuple[str, ...]:
    """Names of all registered specs (aliases included)."""
    return tuple(sorted(_REGISTRY))
