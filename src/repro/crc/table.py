"""Byte-table CRC — the classic software implementation.

One 256-entry table maps a byte of input to the register change; the
per-byte loop is O(1).  A vectorised whole-buffer path is provided for
large workloads (the analysis benches CRC megabytes of traffic) using
the reflected-domain formulation when the spec allows it.
"""

from __future__ import annotations

import numpy as np

from repro.crc.bitserial import BitSerialCrc
from repro.crc.polynomial import CrcSpec
from repro.utils.bits import bit_reflect

__all__ = ["TableCrc"]


class TableCrc:
    """Table-driven CRC calculator for any registered spec.

    For fully reflected specs (``refin and refout``, e.g. both PPP FCS
    variants) the register is kept in the *reflected* domain so the
    per-byte update is the familiar
    ``reg = table[(reg ^ byte) & 0xFF] ^ (reg >> 8)``.
    Non-reflected specs use the MSB-first form.  Mixed-reflection specs
    (rare; none registered) fall back to the bit-serial engine.
    """

    def __init__(self, spec: CrcSpec) -> None:
        self.spec = spec
        self._reflected = spec.refin and spec.refout
        if spec.refin != spec.refout or spec.width < 8:
            # Keep correctness for exotic specs without table machinery.
            self._fallback = BitSerialCrc(spec)
        else:
            self._fallback = None
            self._table = self._build_table()
        self.reset()

    def _build_table(self) -> np.ndarray:
        spec = self.spec
        table = np.zeros(256, dtype=np.uint64)
        if self._reflected:
            poly = bit_reflect(spec.poly, spec.width)
            for byte in range(256):
                reg = byte
                for _ in range(8):
                    reg = (reg >> 1) ^ (poly if reg & 1 else 0)
                table[byte] = reg
        else:
            top = 1 << (spec.width - 1)
            for byte in range(256):
                reg = byte << (spec.width - 8) if spec.width >= 8 else byte
                for _ in range(8):
                    reg = ((reg << 1) ^ spec.poly if reg & top else reg << 1) & spec.mask
                table[byte] = reg
        return table

    # ------------------------------------------------------------- streaming
    def reset(self) -> None:
        spec = self.spec
        if self._fallback is not None:
            self._fallback.reset()
            return
        init = spec.init
        self._reg = bit_reflect(init, spec.width) if self._reflected else init

    def update(self, data: bytes) -> "TableCrc":
        """Absorb ``data``; returns self for chaining."""
        if self._fallback is not None:
            self._fallback.update(data)
            return self
        spec = self.spec
        table = self._table
        reg = self._reg
        if self._reflected:
            for byte in data:
                reg = int(table[(reg ^ byte) & 0xFF]) ^ (reg >> 8)
        else:
            shift = spec.width - 8
            for byte in data:
                reg = (int(table[((reg >> shift) ^ byte) & 0xFF]) ^ (reg << 8)) & spec.mask
        self._reg = reg
        return self

    # --------------------------------------------------------------- results
    def value(self) -> int:
        """Published CRC of everything absorbed so far."""
        if self._fallback is not None:
            return self._fallback.value()
        spec = self.spec
        reg = self._reg
        # The reflected-domain register is already in the refout domain.
        if not self._reflected and spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg ^ spec.xorout

    def residue_value(self) -> int:
        """Register in the refout domain without xorout."""
        if self._fallback is not None:
            return self._fallback.residue_value()
        spec = self.spec
        reg = self._reg
        if not self._reflected and spec.refout:
            reg = bit_reflect(reg, spec.width)
        return reg

    def compute(self, data: bytes) -> int:
        """One-shot CRC of ``data`` (resets first)."""
        self.reset()
        self.update(data)
        return self.value()
