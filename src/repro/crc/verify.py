"""Cross-verification helpers for the three CRC engines.

Used by the test suite and by :mod:`repro.core.crc_unit` self-checks:
any disagreement between the bit-serial golden model, the byte table
and the word-parallel matrices is a library bug, never a data error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.crc.bitserial import BitSerialCrc
from repro.crc.parallel import ParallelCrc
from repro.crc.polynomial import CrcSpec
from repro.crc.table import TableCrc

__all__ = ["EngineComparison", "compare_engines", "check_known_value"]


@dataclass(frozen=True)
class EngineComparison:
    """Result of running all engines over the same payload."""

    spec_name: str
    payload_len: int
    bitserial: int
    table: int
    parallel_by_width: Tuple[Tuple[int, int], ...]

    @property
    def consistent(self) -> bool:
        values = {self.bitserial, self.table}
        values.update(v for _, v in self.parallel_by_width)
        return len(values) == 1


def compare_engines(
    spec: CrcSpec,
    payload: bytes,
    widths: Sequence[int] = (8, 16, 32, 64),
) -> EngineComparison:
    """Compute ``payload``'s CRC with every engine and report agreement."""
    bitserial = BitSerialCrc(spec).compute(payload)
    table = TableCrc(spec).compute(payload)
    parallel = tuple(
        (w, ParallelCrc(spec, w).compute(payload)) for w in widths
    )
    return EngineComparison(spec.name, len(payload), bitserial, table, parallel)


def check_known_value(spec: CrcSpec) -> bool:
    """True iff every engine reproduces the spec's published check value."""
    comparison = compare_engines(spec, b"123456789")
    return comparison.consistent and comparison.bitserial == spec.check
