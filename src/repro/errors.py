"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems define narrower
classes here rather than locally so cross-module code (e.g. the P5 top
level, which touches HDLC, CRC and SONET) can discriminate failures
without importing deep internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class FramingError(ReproError):
    """A received byte stream violates HDLC/PPP framing rules."""


class FcsError(FramingError):
    """A frame's FCS (CRC) check failed.

    Attributes
    ----------
    expected, actual:
        The FCS value carried in the frame and the recomputed value.
    """

    def __init__(self, expected: int, actual: int, message: str = "") -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            message or f"FCS mismatch: frame carries 0x{expected:X}, computed 0x{actual:X}"
        )


class AbortError(FramingError):
    """An HDLC abort sequence (0x7D immediately followed by 0x7E) was seen."""


class OversizeFrameError(FramingError):
    """A frame exceeded the negotiated maximum receive unit."""


class RuntFrameError(FramingError):
    """A frame is too short to contain the mandatory header and FCS."""


class ProtocolError(ReproError):
    """A PPP control-protocol (LCP/NCP) rule was violated."""


class NegotiationError(ProtocolError):
    """Option negotiation failed to converge."""


class LoopbackError(ProtocolError):
    """A looped-back link was detected via magic-number comparison."""


class SonetError(ReproError):
    """SDH/SONET framing or overhead processing failed."""


class PointerError(SonetError):
    """An H1/H2 payload pointer is invalid."""


class LossOfFrame(SonetError):
    """The receive framer declared loss-of-frame (LOF)."""


class SimulationError(ReproError):
    """The RTL simulation kernel detected an inconsistency."""


class BackpressureOverflow(SimulationError):
    """Data was pushed into a stalled interface that could not accept it.

    In hardware this is the condition the paper's resynchronisation
    buffer and backpressure scheme exist to prevent; the simulator
    raises instead of silently dropping bytes.
    """


class PipelineStallError(SimulationError):
    """The cycle-budget watchdog saw no pipeline activity for too long.

    Raised by :meth:`repro.rtl.simulator.Simulator.run_until` (and
    ``drain``) when no channel moves a word for ``watchdog`` cycles
    while the run condition is still unmet — a wedged handshake.  The
    :attr:`diagnostic` dict carries the per-module clock/stall counts
    and per-channel occupancy so the deadlock is debuggable from the
    exception alone, instead of from a spinning process.
    """

    def __init__(self, message: str, *, diagnostic=None) -> None:
        super().__init__(message)
        #: Structured stall report: ``{"cycle", "quiet_cycles",
        #: "modules": [...], "channels": [...]}``.
        self.diagnostic = diagnostic or {}


class ContractViolationError(SimulationError):
    """A run violated a module's declared :class:`TimingContract`.

    Raised by the conformance monitor installed via
    :meth:`repro.rtl.simulator.Simulator.enable_conformance` when a
    module's observed first-word latency, output expansion or internal
    buffer occupancy exceeds its static declaration.  The
    :attr:`findings` list carries the corresponding ``P5T006`` lint
    findings so test failures render the same way as analyzer output.
    """

    def __init__(self, message: str, *, findings=None) -> None:
        super().__init__(message)
        #: The :class:`repro.lint.Finding` records behind the failure.
        self.findings = list(findings or [])


class LinkDownError(ReproError):
    """Both lanes of a protected link are down and recovery is exhausted.

    Raised by :class:`repro.resilience.LinkSupervisor` when the
    recovery ladder reaches its quarantine rung while neither the
    working nor the protect lane passes traffic.  The :attr:`events`
    list carries the supervisor's structured event log up to the
    moment of declaration, so the post-mortem ships with the
    exception.
    """

    def __init__(self, message: str, *, events=None) -> None:
        super().__init__(message)
        #: :class:`repro.resilience.events.ResilienceEvent` records.
        self.events = list(events or [])


class SynthesisError(ReproError):
    """The synthesis cost model could not map or fit a design."""


class DeviceCapacityError(SynthesisError):
    """A netlist does not fit on the targeted FPGA device."""
