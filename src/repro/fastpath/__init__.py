"""repro.fastpath — the frame-level fast datapath.

The cycle-accurate P5 in :mod:`repro.core` is the golden model: every
register, stall and resynchronisation buffer of the paper, one clock
at a time.  This package is its throughput-serving twin: the same
stuff → CRC → frame → delineate → destuff → check transformation
applied to *whole frames and batches of frames* with vectorised numpy
kernels and the C-speed :mod:`zlib` CRC — no per-cycle stepping.

The two engines are kept honest against each other by the
:class:`~repro.fastpath.differential.DifferentialHarness`, which runs
identical workloads through both and asserts byte-identical line
streams, identical frame verdicts and identical OAM-visible counters.
``repro bench`` records the speedup trajectory in
``BENCH_fastpath.json``; see ``docs/performance.md`` for when to use
which engine.
"""

from repro.fastpath.differential import DifferentialHarness, DifferentialReport
from repro.fastpath.engine import (
    FastpathEngine,
    FastpathRxResult,
    FastpathTxResult,
)
from repro.fastpath.modules import (
    FastpathFrameSink,
    FastpathFrameSource,
    FastpathRx,
    FastpathTx,
    build_fastpath_loopback,
)
from repro.fastpath.sonet import SonetFastpath

__all__ = [
    "FastpathEngine",
    "FastpathTxResult",
    "FastpathRxResult",
    "DifferentialHarness",
    "DifferentialReport",
    "FastpathTx",
    "FastpathRx",
    "FastpathFrameSource",
    "FastpathFrameSink",
    "build_fastpath_loopback",
    "SonetFastpath",
]
