"""The ``repro bench`` engine: record the fastpath speedup trajectory.

Runs the same workloads through the cycle-accurate P5 loopback and the
frame-level fastpath engine, times both, differentially verifies them
against each other on the very same traffic, and writes the result as
``BENCH_fastpath.json`` — the recorded perf trajectory CI keeps as an
artifact and guards with a speedup floor (a silent de-vectorization
shows up as a floor violation, not as a quietly slower suite).

Workloads:

* ``imix`` — real IPv4-in-PPP frames following the simple IMIX
  (40/576/1500 at 7:4:1), the standard throughput mixture;
* ``random`` — uniform random payloads (escape density ~1/128 per
  ACCM-less config);
* ``allflags`` — every payload octet is the flag, the paper's
  worst-case 2x expansion traffic.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import P5Config
from repro.core.p5 import P5System, PhyWire
from repro.fastpath.differential import DifferentialHarness
from repro.fastpath.engine import FastpathEngine
from repro.hdlc.constants import FLAG_OCTET
from repro.rtl.simulator import Simulator
from repro.utils.rng import make_rng

__all__ = ["BENCH_SCHEMA", "standard_workloads", "run_bench", "render_text"]

BENCH_SCHEMA = "repro/bench-fastpath/v1"

#: CI fails when the imix fastpath/cycle speedup drops below this.
DEFAULT_SPEEDUP_FLOOR = 20.0


def standard_workloads(
    frames: int, *, seed: int = 0
) -> Dict[str, Callable[[], List[bytes]]]:
    """Named workload builders, deferred so unused ones cost nothing."""
    from repro.workloads.packets import ppp_frame_contents

    def imix() -> List[bytes]:
        return ppp_frame_contents(frames, seed=seed)

    def random_frames() -> List[bytes]:
        rng = make_rng(seed)
        return [
            bytes(rng.integers(0, 256, size=256, dtype="uint8"))
            for _ in range(frames)
        ]

    def allflags() -> List[bytes]:
        return [bytes([FLAG_OCTET]) * 256 for _ in range(frames)]

    return {"imix": imix, "random": random_frames, "allflags": allflags}


def _time_cycle(
    contents: Sequence[bytes], config: P5Config, *, timeout: int
) -> Dict[str, float]:
    """Clock one P5 loopback through the workload; wall-time it."""
    system = P5System(config, name="bench")
    wire = PhyWire("bench.wire", system.tx.phy_out, system.rx.phy_in)
    sim = Simulator(
        system.tx.modules + [wire] + system.rx.modules, system.channels
    )
    for content in contents:
        system.submit(content)
    start = time.perf_counter()
    sim.run_until(
        lambda: len(system.received()) >= len(contents) and system.idle(),
        timeout=timeout,
    )
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cycles": sim.cycle,
        "cycles_per_s": sim.cycle / elapsed if elapsed else 0.0,
        "frames_delivered": len(system.received()),
    }


def _time_fastpath(
    contents: Sequence[bytes], config: P5Config
) -> Dict[str, float]:
    """Encode + decode the workload on the frame-level engine."""
    engine = FastpathEngine(config)
    start = time.perf_counter()
    tx, rx = engine.loopback(contents)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "line_octets": tx.line_octets,
        "frames_delivered": rx.frames_ok,
    }


def run_bench(
    *,
    frames: int = 150,
    workloads: Optional[Sequence[str]] = None,
    floor: float = DEFAULT_SPEEDUP_FLOOR,
    config: Optional[P5Config] = None,
    seed: int = 0,
    timeout: int = 20_000_000,
) -> dict:
    """Run the two-engine benchmark; return the BENCH_fastpath payload.

    ``ok`` is True when every workload's differential harness passed
    and the imix speedup meets ``floor`` — the exact condition the CI
    smoke step enforces.
    """
    cfg = config or P5Config()
    builders = standard_workloads(frames, seed=seed)
    selected = list(workloads) if workloads else list(builders)
    harness = DifferentialHarness(cfg, timeout=timeout)

    report: dict = {
        "schema": BENCH_SCHEMA,
        "python": platform.python_version(),
        "config": {
            "width_bits": cfg.width_bits,
            "fcs": cfg.fcs.name,
            "clock_hz": cfg.clock_hz,
        },
        "frames_per_workload": frames,
        "speedup_floor": floor,
        "workloads": {},
    }

    ok = True
    for name in selected:
        contents = builders[name]()
        content_octets = sum(len(c) for c in contents)
        cycle = _time_cycle(contents, cfg, timeout=timeout)
        fast = _time_fastpath(contents, cfg)
        differential = harness.run(contents)
        ok = ok and differential.ok

        def rates(timing: Dict[str, float]) -> Dict[str, float]:
            seconds = timing["seconds"]
            return {
                **timing,
                "frames_per_s": len(contents) / seconds if seconds else 0.0,
                "mb_per_s": content_octets / seconds / 1e6 if seconds else 0.0,
            }

        cycle, fast = rates(cycle), rates(fast)
        speedup = (
            fast["frames_per_s"] / cycle["frames_per_s"]
            if cycle["frames_per_s"]
            else 0.0
        )
        report["workloads"][name] = {
            "frames": len(contents),
            "content_octets": content_octets,
            "cycle": cycle,
            "fastpath": fast,
            "speedup_frames_per_s": speedup,
            "differential_ok": differential.ok,
            "differential_mismatches": differential.mismatches,
        }

    imix = report["workloads"].get("imix")
    if imix is not None:
        ok = ok and imix["speedup_frames_per_s"] >= floor
    report["ok"] = ok
    return report


def render_text(report: dict) -> str:
    """Human-readable summary of a BENCH_fastpath payload."""
    lines = [
        f"fastpath benchmark ({report['frames_per_workload']} frames/workload, "
        f"{report['config']['width_bits']}-bit datapath)",
        "",
        f"{'workload':<10} {'cycle fr/s':>12} {'fast fr/s':>12} "
        f"{'fast MB/s':>10} {'speedup':>9} {'differential':>13}",
    ]
    for name, data in report["workloads"].items():
        lines.append(
            f"{name:<10} {data['cycle']['frames_per_s']:>12.1f} "
            f"{data['fastpath']['frames_per_s']:>12.1f} "
            f"{data['fastpath']['mb_per_s']:>10.2f} "
            f"{data['speedup_frames_per_s']:>8.1f}x "
            f"{'ok' if data['differential_ok'] else 'FAIL':>13}"
        )
    lines.append("")
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: floor {report['speedup_floor']:.0f}x on imix; "
        f"differential harness on every workload"
    )
    return "\n".join(lines)
