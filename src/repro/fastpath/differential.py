"""Differential equivalence harness: fastpath vs. cycle-accurate P5.

The fast engine is only trustworthy while it is *provably the same
machine* as the golden cycle model.  This harness runs one workload
through both and compares every observable the two share:

* **line stream** — the TX wire bytes must be identical octet for
  octet (captured from the cycle model's PHY hop);
* **frames** — contents and FCS verdicts landed in receive memory;
* **counters** — the OAM-visible statistics both sides keep: frames
  wrapped, escapes inserted/deleted, frames ok, FCS errors, runts,
  aborts, oversize cuts, hunt discards and empty inter-frame bodies.

:meth:`DifferentialHarness.run` covers the clean loopback (host
contents in, frames out).  :meth:`DifferentialHarness.run_rx` feeds an
*arbitrary* wire stream — crafted aborts, runts, oversize bodies —
into both receivers.  Oversize cuts are mirrored exactly (the cycle
delineator's force-closed cut prefix is deterministic in the octet
domain, so the engine reproduces it).  One modelled divergence remains
and is excluded: whether an *aborted* frame's already-shipped prefix
is force-closed as a bad-FCS frame or silently dropped depends on the
cycle receiver's word alignment, which a frame-level engine cannot
see.  Good frames and the error counters still agree, and that is
what ``run_rx`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import P5Config
from repro.core.p5 import P5System, PhyWire
from repro.fastpath.engine import FastpathEngine
from repro.rtl.pipeline import StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator

__all__ = ["DifferentialHarness", "DifferentialReport"]


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    frames: int
    line_octets: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def assert_ok(self) -> None:
        if self.mismatches:
            raise AssertionError(
                "fastpath/cycle divergence: " + "; ".join(self.mismatches)
            )


class DifferentialHarness:
    """Runs identical workloads through both engines and compares."""

    def __init__(
        self,
        config: Optional[P5Config] = None,
        *,
        timeout: int = 5_000_000,
    ) -> None:
        self.config = config or P5Config()
        self.timeout = timeout
        self.engine = FastpathEngine(self.config)

    # ------------------------------------------------------------ cycle side
    def _build_loopback(self):
        """One P5 looped to itself through a line-capturing PhyWire."""
        system = P5System(self.config, name="diff")
        captured = bytearray()

        def tap(beat):
            captured.extend(beat.payload())
            return beat

        wire = PhyWire(
            "diff.wire", system.tx.phy_out, system.rx.phy_in, corrupt=tap
        )
        sim = Simulator(
            system.tx.modules + [wire] + system.rx.modules,
            system.channels,
        )
        return system, sim, captured

    def _run_cycle_tx(self, contents: Sequence[bytes]):
        system, sim, captured = self._build_loopback()
        for content in contents:
            system.submit(content)
        sim.run_until(
            lambda: len(system.received()) >= len(contents) and system.idle(),
            timeout=self.timeout,
        )
        sim.drain(timeout=self.timeout)
        return system, bytes(captured)

    def _run_cycle_rx(self, line: bytes):
        """Feed raw wire bytes into a standalone cycle receiver."""
        from repro.core.rx import P5Receiver

        rx = P5Receiver(self.config, name="diffrx")
        beats = beats_from_bytes(line, self.config.width_bytes, frame_marks=False)
        source = StreamSource("diffrx.wire", rx.phy_in, beats)
        sim = Simulator([source] + rx.modules, rx.channels)
        sim.run_until(lambda: source.done, timeout=self.timeout)
        sim.drain(idle_cycles=16, timeout=self.timeout)
        return rx

    # ------------------------------------------------------------- the runs
    def run(self, contents: Sequence[bytes]) -> DifferentialReport:
        """Full clean-loopback differential: TX + RX, all observables."""
        tx_fast, rx_fast = self.engine.loopback(contents)
        system, line_cycle = self._run_cycle_tx(contents)

        report = DifferentialReport(
            frames=len(contents), line_octets=len(tx_fast.line)
        )
        note = report.mismatches.append
        if line_cycle != tx_fast.line:
            note(
                f"line streams differ: cycle {len(line_cycle)} octets vs "
                f"fastpath {len(tx_fast.line)}"
                + (
                    ""
                    if len(line_cycle) != len(tx_fast.line)
                    else " (same length, different bytes)"
                )
            )
        if system.rx.frames != rx_fast.frames:
            note(
                f"received frames differ: cycle {len(system.rx.frames)} vs "
                f"fastpath {len(rx_fast.frames)}"
            )
        oam = system.oam
        from repro.core.oam import (
            ADDR_ESC_DELETED,
            ADDR_ESC_INSERTED,
            ADDR_RX_ABORTS,
            ADDR_RX_FCS_ERRORS,
            ADDR_RX_FRAMES_OK,
            ADDR_RX_HUNT_DISCARDS,
            ADDR_RX_OVERSIZE,
            ADDR_RX_RUNTS,
            ADDR_TX_FRAMES,
        )

        pairs = [
            ("TX_FRAMES", oam.read(ADDR_TX_FRAMES), tx_fast.frames),
            ("ESC_INSERTED", oam.read(ADDR_ESC_INSERTED), tx_fast.octets_escaped),
            ("RX_FRAMES_OK", oam.read(ADDR_RX_FRAMES_OK), rx_fast.frames_ok),
            ("RX_FCS_ERRORS", oam.read(ADDR_RX_FCS_ERRORS), rx_fast.fcs_errors),
            ("RX_RUNTS", oam.read(ADDR_RX_RUNTS), rx_fast.runt_frames),
            ("RX_ABORTS", oam.read(ADDR_RX_ABORTS), rx_fast.aborts),
            ("RX_OVERSIZE", oam.read(ADDR_RX_OVERSIZE), rx_fast.oversize_drops),
            (
                "RX_HUNT_DISCARDS",
                oam.read(ADDR_RX_HUNT_DISCARDS),
                rx_fast.octets_discarded_hunting,
            ),
            ("ESC_DELETED", oam.read(ADDR_ESC_DELETED), rx_fast.octets_deleted),
        ]
        for name, cycle_value, fast_value in pairs:
            if cycle_value != fast_value:
                note(f"counter {name}: cycle {cycle_value} vs fastpath {fast_value}")
        if system.rx.delineator.empty_bodies != rx_fast.empty_bodies:
            note(
                f"counter EMPTY_BODIES: cycle "
                f"{system.rx.delineator.empty_bodies} vs fastpath "
                f"{rx_fast.empty_bodies}"
            )
        return report

    def run_rx(self, line: bytes) -> DifferentialReport:
        """RX-only differential over an arbitrary (possibly damaged) line.

        Compares good-frame contents and the delineation error
        counters; bad-FCS frame *lists* are excluded because the cycle
        receiver may force-close an aborted frame's already-shipped
        prefix that the frame-level engine drops whole (see the module
        docstring).
        """
        rx_cycle = self._run_cycle_rx(line)
        rx_fast = self.engine.decode_stream(line)

        report = DifferentialReport(frames=len(rx_fast.frames), line_octets=len(line))
        note = report.mismatches.append
        if rx_cycle.good_frames() != rx_fast.good_frames():
            note(
                f"good frames differ: cycle {len(rx_cycle.good_frames())} vs "
                f"fastpath {len(rx_fast.good_frames())}"
            )
        pairs: List[Tuple[str, int, int]] = [
            ("RX_FRAMES_OK", rx_cycle.crc.frames_ok, rx_fast.frames_ok),
            ("RX_ABORTS", rx_cycle.delineator.aborts, rx_fast.aborts),
            (
                "RX_OVERSIZE",
                rx_cycle.delineator.oversize_drops,
                rx_fast.oversize_drops,
            ),
            (
                "RX_HUNT_DISCARDS",
                rx_cycle.delineator.octets_discarded_hunting,
                rx_fast.octets_discarded_hunting,
            ),
            (
                "EMPTY_BODIES",
                rx_cycle.delineator.empty_bodies,
                rx_fast.empty_bodies,
            ),
        ]
        for name, cycle_value, fast_value in pairs:
            if cycle_value != fast_value:
                note(f"counter {name}: cycle {cycle_value} vs fastpath {fast_value}")
        return report
