"""The frame-level fast datapath engine.

Everything the cycle-accurate P5 does to a frame — FCS generation,
octet stuffing, flag wrapping, delineation, destuffing, FCS checking —
expressed as whole-buffer transformations:

* **TX** — a *batch* of frame contents becomes one wire byte stream in
  a single pass: per-frame CRCs via :func:`zlib.crc32` (bit-identical
  to FCS-32, see :mod:`repro.crc.polynomial`), then one vectorised
  scatter that stuffs every body and places every flag with numpy
  index arithmetic.
* **RX** — the wire stream is delineated by one ``np.flatnonzero`` over
  the flag mask; each body is destuffed with a vectorised run-parity
  kernel that reproduces the cycle model's
  :func:`~repro.core.escape_det.contract_word` semantics exactly
  (including non-conforming chained-escape input), then residue-checked.

The engine mirrors the cycle model's observable behaviour: identical
line bytes on TX, and on RX identical frame verdicts plus the OAM
counter set (aborts, oversize cuts, runts, hunt discards, escapes
deleted, empty bodies).  The
:class:`~repro.fastpath.differential.DifferentialHarness` asserts this
equivalence run by run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import P5Config
from repro.crc.table import TableCrc
from repro.hdlc.constants import ESCAPE_XOR
from repro.rtl.module import ChannelTiming, TimingContract

__all__ = ["FastpathEngine", "FastpathTxResult", "FastpathRxResult"]


@dataclass(frozen=True)
class FastpathTxResult:
    """One encoded batch: the wire stream plus TX-side OAM counters."""

    line: bytes
    frames: int
    content_octets: int
    octets_escaped: int

    @property
    def line_octets(self) -> int:
        return len(self.line)


@dataclass
class FastpathRxResult:
    """One decoded stream: frames with verdicts plus RX-side counters.

    The counters carry the same meaning as the cycle model's OAM
    registers (:mod:`repro.core.oam`): ``frames_ok`` / ``fcs_errors`` /
    ``runt_frames`` mirror ``CrcCheck``, ``aborts`` / ``oversize_drops``
    / ``empty_bodies`` / ``octets_discarded_hunting`` mirror
    ``WordDelineator``, and ``octets_deleted`` mirrors the Escape
    Detect unit.
    """

    frames: List[Tuple[bytes, bool]] = field(default_factory=list)
    frames_ok: int = 0
    fcs_errors: int = 0
    runt_frames: int = 0
    aborts: int = 0
    oversize_drops: int = 0
    empty_bodies: int = 0
    octets_discarded_hunting: int = 0
    octets_deleted: int = 0
    #: Octets after the final flag — an open frame the cycle model
    #: would still be holding in its delineation carry.
    open_tail_octets: int = 0

    def good_frames(self) -> List[bytes]:
        """Contents of frames that passed the FCS check."""
        return [content for content, good in self.frames if good]


class FastpathEngine:
    """Frame-level TX/RX datapath sharing the cycle model's config.

    One engine instance is stateless between calls (unlike the cycle
    pipelines there are no carries to drain), so a single engine can
    serve any number of independent encode/decode batches.
    """

    #: Same declaration shape as the behavioural framers: stuffing can
    #: at worst double the stream, and each frame adds two flags on
    #: top of its FCS trailer.  Consumed by :mod:`repro.sta` through
    #: the adapter modules in :mod:`repro.fastpath.modules`.
    TIMING_CONTRACT = TimingContract(
        latency_cycles=1,
        latency_is_bound=False,
        outputs=(ChannelTiming(max_expansion=2.0, per_frame_octets=2 + 4),),
    )

    def __init__(self, config: Optional[P5Config] = None) -> None:
        self.config = config or P5Config()
        spec = self.config.fcs
        self.fcs_octets = spec.width // 8
        # zlib.crc32 *is* FCS-32 (CRC-32/ISO-HDLC): reflected, init and
        # xorout all-ones.  Any other spec takes the table engine.
        self._zlib_ok = (
            spec.width == 32
            and spec.poly == 0x04C11DB7
            and spec.refin
            and spec.refout
            and spec.init == 0xFFFFFFFF
            and spec.xorout == 0xFFFFFFFF
        )
        self._table = None if self._zlib_ok else TableCrc(spec)
        self._escape_values = np.array(
            sorted(self.config.escape_octets), dtype=np.uint8
        )

    # ------------------------------------------------------------------- CRC
    def fcs_of(self, content: bytes) -> int:
        """The published FCS of one frame's content."""
        if self._zlib_ok:
            return zlib.crc32(content)
        return self._table.compute(content)

    def _residue_ok(self, clear: bytes) -> bool:
        """Magic-residue test over content + transmitted FCS."""
        spec = self.config.fcs
        if self._zlib_ok:
            return (zlib.crc32(clear) ^ 0xFFFFFFFF) == spec.residue
        self._table.reset()
        self._table.update(clear)
        return self._table.residue_value() == spec.residue

    # -------------------------------------------------------------------- TX
    def encode_frame(self, content: bytes) -> bytes:
        """One frame's wire bytes: ``7E <stuffed content+FCS> 7E``."""
        return self.encode_frames([content]).line

    def encode_frames(self, contents: Sequence[bytes]) -> FastpathTxResult:
        """Encode a whole batch of frames into one wire byte stream.

        The output is bit-identical to what the cycle-accurate
        transmitter puts on the PHY for the same submissions: each
        frame individually wrapped in flags, frames back to back.

        The batch is one vectorised pass: all bodies (content + FCS
        trailer) are concatenated, escapable octets located with a
        single ``np.isin``, and every output position — including both
        flags of every frame — computed by index arithmetic, so the
        wire stream is written with three scatter stores regardless of
        frame count.
        """
        if not contents:
            return FastpathTxResult(
                line=b"", frames=0, content_octets=0, octets_escaped=0
            )
        fcs_octets = self.fcs_octets
        bodies: List[bytes] = []
        content_octets = 0
        for content in contents:
            if not content:
                raise ValueError("cannot transmit an empty frame")
            content_octets += len(content)
            bodies.append(
                content + self.fcs_of(content).to_bytes(fcs_octets, "little")
            )
        lengths = np.fromiter(
            (len(b) for b in bodies), dtype=np.int64, count=len(bodies)
        )
        cat = np.frombuffer(b"".join(bodies), dtype=np.uint8)
        needs = np.isin(cat, self._escape_values)
        escapes = int(needs.sum())
        # Where each input octet lands on the wire: its own index, plus
        # one slot per escape inserted before it, plus the flags of the
        # frames up to and including its own opening flag.
        esc_before = np.cumsum(needs) - needs
        frame_idx = np.repeat(np.arange(len(bodies)), lengths)
        positions = np.arange(cat.size) + esc_before + 2 * frame_idx + 1
        total = cat.size + escapes + 2 * len(bodies)
        # Every slot not written below is a flag position by
        # construction (one before and one after each stuffed body).
        out = np.full(total, self.config.flag_octet, dtype=np.uint8)
        out[positions] = np.where(needs, self.config.esc_octet, cat)
        out[positions[needs] + 1] = cat[needs] ^ ESCAPE_XOR
        return FastpathTxResult(
            line=out.tobytes(),
            frames=len(bodies),
            content_octets=content_octets,
            octets_escaped=escapes,
        )

    # -------------------------------------------------------------------- RX
    def decode_stream(self, line: bytes) -> FastpathRxResult:
        """Delineate, destuff and FCS-check a wire byte stream.

        Mirrors the cycle receiver's error handling: octets before the
        first flag are hunt discards, a body ending in the escape octet
        is the RFC 1662 abort sequence, a body longer than
        ``max_frame_octets`` is cut at the same octet the cycle
        delineator cuts it — and, exactly like the cycle model, the cut
        prefix is force-closed as a frame of its own (destuffed and
        FCS-checked; the remainder counts as hunt discards) — and a
        destuffed frame no larger than the FCS is a silently swallowed
        runt.
        """
        result = FastpathRxResult()
        arr = np.frombuffer(line, dtype=np.uint8)
        flag_positions = np.flatnonzero(arr == self.config.flag_octet)
        if flag_positions.size == 0:
            result.octets_discarded_hunting = arr.size
            return result
        result.octets_discarded_hunting += int(flag_positions[0])
        result.open_tail_octets = int(arr.size - flag_positions[-1] - 1)
        max_body = self.config.max_frame_octets
        fcs_octets = self.fcs_octets
        esc_octet = self.config.esc_octet
        # Bodies are the (possibly empty) spans between adjacent flags;
        # numpy slices keep them zero-copy views of the line buffer.
        for start, end in zip(flag_positions[:-1] + 1, flag_positions[1:]):
            if end == start:
                result.empty_bodies += 1
                continue
            body = arr[start:end]
            if max_body and body.size > max_body:
                # The cycle delineator cuts on the (max+1)-th body
                # octet, force-closes the already-shipped prefix as a
                # frame (the cut always lies past the held-back window
                # because max_frame_octets >= 4 words), and re-hunts;
                # the rest of the body is noise.  No abort check: the
                # cut is forced by count, not by ESC-then-FLAG.
                result.oversize_drops += 1
                result.octets_discarded_hunting += body.size - (max_body + 1)
                body = body[: max_body + 1]
            elif body[-1] == esc_octet:
                result.aborts += 1
                continue
            clear, deleted = self._destuff(body)
            result.octets_deleted += deleted
            if len(clear) <= fcs_octets:
                result.runt_frames += 1
                continue
            good = self._residue_ok(clear)
            if good:
                result.frames_ok += 1
            else:
                result.fcs_errors += 1
            result.frames.append((clear[:-fcs_octets], good))
        return result

    def _destuff(self, body: np.ndarray) -> Tuple[bytes, int]:
        """Vectorised escape removal with cycle-exact run semantics.

        :func:`~repro.core.escape_det.contract_word` deletes an escape
        and XORs whatever octet follows — so within a maximal run of
        consecutive escape octets, the even-offset ones delete and the
        odd-offset ones are themselves the restored data (the
        non-conforming ``7D 7D`` pair decodes to ``5D``, exactly as the
        cycle pipeline does).
        """
        esc = body == self.config.esc_octet
        if not esc.any():
            return body.tobytes(), 0
        indices = np.arange(body.size)
        prev_esc = np.empty_like(esc)
        prev_esc[0] = False
        prev_esc[1:] = esc[:-1]
        run_start = np.where(esc & ~prev_esc, indices, -1)
        offset_in_run = indices - np.maximum.accumulate(run_start)
        delete = esc & (offset_in_run % 2 == 0)
        xor_next = np.empty_like(delete)
        xor_next[0] = False
        xor_next[1:] = delete[:-1]
        out = body.copy()
        out[xor_next] ^= ESCAPE_XOR
        return out[~delete].tobytes(), int(delete.sum())

    # -------------------------------------------------------------- loopback
    def loopback(
        self, contents: Sequence[bytes]
    ) -> Tuple[FastpathTxResult, FastpathRxResult]:
        """Encode a batch and decode it straight back (clean wire)."""
        tx = self.encode_frames(contents)
        return tx, self.decode_stream(tx.line)
