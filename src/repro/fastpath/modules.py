"""Module-graph adapters wiring the fastpath engine into the registries.

The fast datapath deliberately has no per-cycle behaviour — but the
static tooling (:mod:`repro.lint`'s graph DRC and :mod:`repro.sta`'s
path/flow analyses) reasons about *structure*, and the engine should
not be an invisible island next to the cycle-accurate design.  These
adapters present the engine as a two-stage module pipeline moving one
whole frame per clock:

``FastpathFrameSource → FastpathTx → FastpathRx → FastpathFrameSink``

Each stage carries a :class:`~repro.rtl.module.TimingContract` (derived
from :attr:`FastpathEngine.TIMING_CONTRACT`), so ``repro sta`` sees a
fully declared datapath and ``repro lint`` a well-formed graph.  The
topology also *runs*: clocking it end to end is the frame-granular
simulation of the engine, which the tests use to cross-check the
adapters against direct engine calls.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.core.config import P5Config
from repro.fastpath.engine import FastpathEngine, FastpathRxResult
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract

__all__ = [
    "FastpathFrameSource",
    "FastpathTx",
    "FastpathRx",
    "FastpathFrameSink",
    "build_fastpath_loopback",
]


class FastpathFrameSource(Module):
    """Host queue feeding whole frame contents, one per clock."""

    def __init__(self, name: str, out: Channel) -> None:
        super().__init__(name)
        self.out = self.writes(out)
        self.queue: Deque[bytes] = deque()

    def submit(self, content: bytes) -> None:
        if not content:
            raise ValueError("cannot transmit an empty frame")
        self.queue.append(content)

    @property
    def quiescent(self) -> bool:
        return not self.queue

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            latency_cycles=1, outputs=(ChannelTiming(self.out),)
        )

    def clock(self) -> None:
        if self.queue and self.out.can_push:
            self.out.push(self.queue.popleft())
        elif self.queue:
            self.note_stall()


class FastpathTx(Module):
    """One whole frame in, its encoded wire bytes out, per clock."""

    def __init__(
        self, name: str, inp: Channel, out: Channel, *, engine: FastpathEngine
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.engine = engine
        self.frames_encoded = 0
        self.octets_escaped = 0

    @property
    def quiescent(self) -> bool:
        return not self.inp.can_pop

    def timing_contract(self) -> TimingContract:
        base = self.engine.TIMING_CONTRACT
        return TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(
                    self.out,
                    max_expansion=base.outputs[0].max_expansion,
                    per_frame_octets=base.outputs[0].per_frame_octets,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        if not self.out.can_push:
            self.note_stall()
            return
        tx = self.engine.encode_frames([self.inp.pop()])
        self.frames_encoded += tx.frames
        self.octets_escaped += tx.octets_escaped
        self.out.push(tx.line)


class FastpathRx(Module):
    """One frame's wire bytes in, its ``(content, good)`` verdict out."""

    def __init__(
        self, name: str, inp: Channel, out: Channel, *, engine: FastpathEngine
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.engine = engine
        self.result = FastpathRxResult()

    @property
    def quiescent(self) -> bool:
        return not self.inp.can_pop

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(
                    self.out,
                    # Flags, escapes and the FCS trailer are stripped.
                    min_expansion=0.0,
                ),
            ),
        )

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        if not self.out.can_push:
            self.note_stall()
            return
        decoded = self.engine.decode_stream(self.inp.pop())
        self._merge(decoded)
        for frame in decoded.frames:
            self.out.push(frame)

    def _merge(self, decoded: FastpathRxResult) -> None:
        self.result.frames.extend(decoded.frames)
        for counter in (
            "frames_ok",
            "fcs_errors",
            "runt_frames",
            "aborts",
            "oversize_drops",
            "empty_bodies",
            "octets_discarded_hunting",
            "octets_deleted",
        ):
            setattr(
                self.result,
                counter,
                getattr(self.result, counter) + getattr(decoded, counter),
            )


class FastpathFrameSink(Module):
    """Receive memory: collects ``(content, good)`` verdicts."""

    def __init__(self, name: str, inp: Channel) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.frames: List[Tuple[bytes, bool]] = []

    @property
    def quiescent(self) -> bool:
        return not self.inp.can_pop

    def timing_contract(self) -> TimingContract:
        return TimingContract(latency_cycles=1)

    def clock(self) -> None:
        if self.inp.can_pop:
            self.frames.append(self.inp.pop())

    def good_frames(self) -> List[bytes]:
        return [content for content, good in self.frames if good]


def build_fastpath_loopback(
    config: Optional[P5Config] = None,
) -> Tuple[Sequence[Module], Sequence[Channel]]:
    """The registered ``fastpath-loopback`` topology, source to sink.

    Returned in simulator clock order; :func:`repro.lint.targets.
    shipped_topologies` and :func:`repro.sta.targets.canonical_findings`
    both include it so the DRC and the timing analyses cover the fast
    engine's structure alongside the cycle-accurate design.
    """
    engine = FastpathEngine(config)
    ch_frames = Channel("fastpath.frames", capacity=2)
    ch_line = Channel("fastpath.line", capacity=2)
    ch_rx = Channel("fastpath.checked", capacity=2)
    source = FastpathFrameSource("fastpath.source", ch_frames)
    tx = FastpathTx("fastpath.tx", ch_frames, ch_line, engine=engine)
    rx = FastpathRx("fastpath.rx", ch_line, ch_rx, engine=engine)
    sink = FastpathFrameSink("fastpath.sink", ch_rx)
    return [source, tx, rx, sink], [ch_frames, ch_line, ch_rx]
