"""PPP-over-SONET on the fast datapath (RFC 1619 / RFC 2615).

The behavioural :class:`~repro.sonet.path.PppOverSonet` pulls queued
HDLC frames into 125 µs payloads one frame at a time and delineates
the receive side octet by octet.  This mapper does the same
transformation in bulk: one batched
:meth:`~repro.fastpath.engine.FastpathEngine.encode_frames` call
produces the whole HDLC stream, flag fill pads it to a whole number of
SPE payloads, the (vectorised) x^43+1 scrambler runs over the full
payload block, and the receive side descrambles and decodes the entire
stream in one :meth:`~repro.fastpath.engine.FastpathEngine.
decode_stream` pass.

The SONET transport overhead itself (:class:`~repro.sonet.framer.
SonetFramer`) is reused unchanged — it is already a vectorised numpy
grid and not a bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import P5Config
from repro.fastpath.engine import FastpathEngine, FastpathRxResult
from repro.sonet.constants import SONET_C2_PPP, SONET_C2_PPP_SCRAMBLED
from repro.sonet.framer import SonetFramer
from repro.sonet.rx_framer import SonetRxFramer
from repro.sonet.scrambler import SelfSyncScrambler

__all__ = ["SonetFastpath", "SonetFastpathResult"]


@dataclass
class SonetFastpathResult:
    """Outcome of one batched SONET round trip."""

    line_frames: List[bytes]
    rx: FastpathRxResult

    @property
    def recovered(self) -> List[bytes]:
        """Good PPP frame contents, in order."""
        return self.rx.good_frames()


class SonetFastpath:
    """Batched PPP-over-SONET mapping on the fastpath engine."""

    def __init__(
        self,
        n: int = 48,
        *,
        payload_scrambling: bool = True,
        config: Optional[P5Config] = None,
    ) -> None:
        c2 = SONET_C2_PPP_SCRAMBLED if payload_scrambling else SONET_C2_PPP
        self.n = n
        self.payload_scrambling = payload_scrambling
        self.engine = FastpathEngine(config)
        self.framer = SonetFramer(n, c2=c2)
        self.rx_framer = SonetRxFramer(n, expected_c2=c2)

    # --------------------------------------------------------------- TX side
    def encode(self, contents: Sequence[bytes]) -> List[bytes]:
        """Map a batch of PPP frames into complete SONET line frames.

        The HDLC stream is produced in one batched pass, padded with
        flag octets to a whole number of SPE payloads (the POS idle
        pattern), scrambled, and cut into 125 µs frames.
        """
        flag = self.engine.config.flag_octet
        stream = bytearray(self.engine.encode_frames(contents).line)
        need = self.framer.payload_bytes_per_frame
        remainder = len(stream) % need
        if remainder or not stream:
            stream += bytes([flag]) * (need - remainder)
        if self.payload_scrambling:
            stream = SelfSyncScrambler().scramble(bytes(stream))
        return [
            self.framer.build(bytes(stream[off : off + need]))
            for off in range(0, len(stream), need)
        ]

    # --------------------------------------------------------------- RX side
    def decode(self, line_frames: Sequence[bytes]) -> SonetFastpathResult:
        """Recover PPP frames from SONET line bytes, in one pass."""
        payload = self.rx_framer.feed(b"".join(line_frames))
        if self.payload_scrambling and payload:
            payload = SelfSyncScrambler().descramble(payload)
        return SonetFastpathResult(
            line_frames=list(line_frames),
            rx=self.engine.decode_stream(payload),
        )

    def roundtrip(self, contents: Sequence[bytes]) -> SonetFastpathResult:
        """Encode a batch and decode it straight back."""
        return self.decode(self.encode(contents))
