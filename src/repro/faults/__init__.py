"""repro.faults — layered fault-injection campaigns for the P5.

The package turns the ad-hoc error-injection helpers scattered around
the library (:class:`~repro.phy.line.BitErrorLine`, ``PhyWire``'s
``corrupt`` hook, :class:`~repro.rtl.pipeline.StallPattern`) into a
systematic robustness harness:

* :mod:`repro.faults.injectors` — the fault sources: a
  :class:`BeatFaultInjector` module spliced into the PHY hop (bit and
  burst flips, beat drops, duplications, lane-valid upsets),
  :func:`backpressure_storm` patterns for the receive sink, and
  :class:`OamRegisterUpset` for host-bus register soft errors.
* :mod:`repro.faults.campaign` — seeded, reproducible campaigns: many
  independent trials, each one loopback exchange with exactly one
  fault, run under the simulator watchdog.
* :mod:`repro.faults.invariants` — the recovery contract checked after
  every trial (resync, bounded damage, no deadlock, OAM/ground-truth
  reconciliation).
* :mod:`repro.faults.report` — stable text/JSON reporters mirroring
  :mod:`repro.lint.report`.
"""

from repro.faults.campaign import (
    LAYERS,
    CampaignConfig,
    CampaignResult,
    TrialSummary,
    build_fault_harness,
    run_campaign,
)
from repro.faults.injectors import (
    MAX_BURST_BITS,
    BeatFaultInjector,
    FaultEvent,
    OamRegisterUpset,
    backpressure_storm,
)
from repro.faults.invariants import Violation, check_trial, match_frames
from repro.faults.report import JSON_SCHEMA_VERSION, render_json, render_text

__all__ = [
    "LAYERS",
    "CampaignConfig",
    "CampaignResult",
    "TrialSummary",
    "build_fault_harness",
    "run_campaign",
    "MAX_BURST_BITS",
    "BeatFaultInjector",
    "FaultEvent",
    "OamRegisterUpset",
    "backpressure_storm",
    "Violation",
    "check_trial",
    "match_frames",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
]
