"""Seeded fault campaigns over the P5 loopback datapath.

A campaign is ``faults`` independent trials.  Each trial builds a
fresh P5 system looped back through a :class:`BeatFaultInjector`
(transmitter PHY output feeding the same system's receiver), submits
a few random frames, injects exactly one fault from the trial's layer
and runs — under the simulator's stall watchdog — until the exchange
settles.  Then the full recovery contract of
:mod:`repro.faults.invariants` is evaluated.

Reproducibility: trial ``i`` of a campaign with seed ``s`` draws every
random choice from ``default_rng([s, i])``, so any failing trial can
be re-run alone, and two runs of the same campaign are identical.

The four layers rotate round-robin, so a campaign of ``4n`` faults
exercises each layer exactly ``n`` times:

``line``
    Bit flips and multi-bit bursts on the wire words (via the
    injector's internal :class:`~repro.phy.line.BitErrorLine`).
``beat``
    Whole-word faults: drop, duplicate, lane-valid upset.
``backpressure``
    A randomized ready-deassertion storm on the receive frame sink.
``oam``
    A stray host-bus register write mid-exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import P5Config
from repro.core.p5 import P5System
from repro.errors import SimulationError
from repro.faults.injectors import (
    BeatFaultInjector,
    FaultEvent,
    OamRegisterUpset,
    backpressure_storm,
)
from repro.faults.invariants import Violation, check_trial, match_frames
from repro.phy.line import LineStats
from repro.rtl.pipeline import StallPattern
from repro.rtl.simulator import Simulator
from repro.utils.rng import SeedLike

__all__ = [
    "LAYERS",
    "CampaignConfig",
    "TrialSummary",
    "CampaignResult",
    "build_fault_harness",
    "run_campaign",
]

#: Injection layers, in round-robin order.
LAYERS = ("line", "beat", "backpressure", "oam")

_LINE_KINDS = ("bit", "burst")
_BEAT_KINDS = ("drop", "dup", "lane")


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's knobs (all defaults give the CI smoke campaign)."""

    faults: int = 208
    seed: int = 1
    width_bits: int = 32
    frames_per_trial: int = 6
    frame_octets: Tuple[int, int] = (24, 72)
    #: Damage bound per single fault (a beat fault can straddle one
    #: frame boundary, so 2).
    max_damaged: int = 2
    #: Watchdog budget in quiet cycles; generous against the longest
    #: plausible backpressure-storm stall run.
    watchdog: int = 4096
    timeout: int = 200_000
    #: Receive-side oversize cut-off handed to :class:`P5Config`.
    max_frame_octets: int = 512


@dataclass
class TrialSummary:
    """Outcome of one trial, ready for the report."""

    index: int
    layer: str
    kind: str
    cycles: int
    frames: int
    damaged: int
    stalled: bool
    stall_message: str
    event: Optional[FaultEvent]
    violations: List[Violation] = field(default_factory=list)
    #: Seeds handed to the trial's stochastic components, all derived
    #: from ``default_rng([campaign_seed, index])`` — recorded so a
    #: report reader can verify that reruns are byte-reproducible and
    #: re-create any single injector in isolation.
    injector_seed: int = 0
    stall_seed: Optional[int] = None
    upset_seed: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "layer": self.layer,
            "kind": self.kind,
            "cycles": self.cycles,
            "frames": self.frames,
            "damaged": self.damaged,
            "stalled": self.stalled,
            "stall_message": self.stall_message,
            "event": self.event.as_dict() if self.event else None,
            "violations": [v.as_dict() for v in self.violations],
            "derived_seeds": {
                "injector": self.injector_seed,
                "stall": self.stall_seed,
                "upset": self.upset_seed,
            },
        }


@dataclass
class CampaignResult:
    """Aggregate of a whole campaign."""

    config: CampaignConfig
    trials: List[TrialSummary]
    line_stats: LineStats

    @property
    def violations(self) -> List[Violation]:
        return [v for t in self.trials for v in t.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_layer(self) -> Dict[str, int]:
        counts = {layer: 0 for layer in LAYERS}
        for trial in self.trials:
            counts[trial.layer] += 1
        return counts

    def damaged_total(self) -> int:
        return sum(t.damaged for t in self.trials)


def build_fault_harness(
    config: Optional[P5Config] = None,
    *,
    name: str = "p5",
    seed: SeedLike = None,
    stall: Optional[StallPattern] = None,
    watchdog: Optional[int] = None,
) -> Tuple[P5System, BeatFaultInjector, Simulator]:
    """One P5 looped back through a fault injector, plus a simulator.

    The transmitter's PHY output feeds the same system's receiver via
    the injector, so a single system exercises the full TX + RX path;
    the OAM is serviced every cycle.  Also the topology the lint graph
    DRC validates (see :func:`repro.lint.targets.shipped_topologies`).
    ``name`` prefixes every module and channel, so several harnesses
    (e.g. the resilience runtime's working + protect lanes) can share
    one topology without name collisions.
    """
    cfg = config or P5Config(max_frame_octets=512)
    system = P5System(cfg, name=name)
    injector = BeatFaultInjector(
        f"{name}.faultwire", system.tx.phy_out, system.rx.phy_in, seed=seed
    )
    if stall is not None:
        system.rx.sink.stall = stall
    modules = system.tx.modules + [injector] + system.rx.modules
    sim = Simulator(modules, system.channels, watchdog=watchdog)
    sim.add_observer(lambda _cycle: system.oam.service())
    return system, injector, sim


def _trial_frames(rng: np.random.Generator, cfg: CampaignConfig) -> List[bytes]:
    lo, hi = cfg.frame_octets
    frames: List[bytes] = []
    for _ in range(cfg.frames_per_trial):
        n = int(rng.integers(lo, hi + 1))
        frames.append(rng.integers(0, 256, size=n, dtype=np.uint8).tobytes())
    return frames


def _fault_window_beats(frames: List[bytes], width_bytes: int) -> int:
    """Last wire-beat index where a fault may land.

    Bounded to the wire span of all but the final three frames:
    ``len + 6`` (two flags + CRC-32 FCS) octets per frame is a lower
    bound on the stuffed wire length, so a fault at or before this
    beat cannot touch the last two frames — which the recovery
    invariant requires to arrive intact — even with a one-frame
    damage straddle.
    """
    keep_clean = 3
    span = sum(len(f) + 6 for f in frames[:-keep_clean])
    return max(1, span // width_bytes)


def _run_trial(cfg: CampaignConfig, index: int) -> Tuple[TrialSummary, LineStats]:
    layer = LAYERS[index % len(LAYERS)]
    rng = np.random.default_rng([cfg.seed, index])
    p5cfg = P5Config(
        width_bits=cfg.width_bits, max_frame_octets=cfg.max_frame_octets
    )
    frames = _trial_frames(rng, cfg)

    # Every derived seed below comes from the trial stream (and is
    # recorded on the summary), so a rerun with the same campaign seed
    # rebuilds byte-identical injectors.  The draw order is load-bearing:
    # reordering it changes every seeded campaign's outcome.
    stall = None
    stall_seed: Optional[int] = None
    if layer == "backpressure":
        probability = 0.25 + 0.5 * float(rng.random())
        burst = int(rng.integers(1, 9))
        stall_seed = int(rng.integers(1 << 31))
        stall = backpressure_storm(probability, burst=burst, seed=stall_seed)
    injector_seed = int(rng.integers(1 << 31))
    system, injector, sim = build_fault_harness(
        p5cfg, seed=injector_seed, stall=stall,
        watchdog=cfg.watchdog,
    )
    for frame in frames:
        system.submit(frame)

    event: Optional[FaultEvent] = None
    upset: Optional[OamRegisterUpset] = None
    upset_seed: Optional[int] = None
    if layer in ("line", "beat"):
        kinds = _LINE_KINDS if layer == "line" else _BEAT_KINDS
        kind = kinds[int(rng.integers(len(kinds)))]
        window = _fault_window_beats(frames, p5cfg.width_bytes)
        bits = int(rng.integers(2, 33)) if kind == "burst" else 1
        injector.arm(kind, after_beats=int(rng.integers(window)), bits=bits)
    elif layer == "oam":
        upset_seed = int(rng.integers(1 << 31))
        upset = OamRegisterUpset(system.oam, seed=upset_seed)

    def settled() -> bool:
        return (
            not system.tx.busy
            and not any(ch.can_pop for ch in system.channels)
            and system.rx.escape.idle
        )

    stalled = False
    stall_message = ""
    try:
        if upset is not None:
            warmup = int(rng.integers(1, 200))
            sim.step(warmup)
            event = upset.inject(cycle=sim.cycle)
        sim.run_until(settled, timeout=cfg.timeout)
    except SimulationError as exc:  # PipelineStallError is a subclass
        stalled = True
        stall_message = str(exc)

    if event is None and injector.events:
        event = injector.events[0]
    kind = event.kind if event else (
        "storm" if layer == "backpressure" else "none"
    )

    good = system.rx.sink.good_frames()
    matched, _ = match_frames(frames, good)
    violations = check_trial(
        trial=index,
        layer=layer,
        kind=kind,
        system=system,
        injector=injector,
        submitted=frames,
        max_damaged=cfg.max_damaged,
        stalled=stalled,
        stall_message=stall_message,
    )
    return TrialSummary(
        index=index,
        layer=layer,
        kind=kind,
        cycles=sim.cycle,
        frames=len(frames),
        damaged=matched.count(False) if not stalled else len(frames),
        stalled=stalled,
        stall_message=stall_message,
        event=event,
        violations=violations,
        injector_seed=injector_seed,
        stall_seed=stall_seed,
        upset_seed=upset_seed,
    ), injector.line.stats


def run_campaign(cfg: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run every trial of a campaign; never raises on faulty behaviour
    (violations are data, mirroring ``repro lint`` findings)."""
    cfg = cfg or CampaignConfig()
    trials: List[TrialSummary] = []
    stats = LineStats()
    for index in range(cfg.faults):
        summary, line_stats = _run_trial(cfg, index)
        trials.append(summary)
        stats = stats.merge(line_stats)
    return CampaignResult(config=cfg, trials=trials, line_stats=stats)
