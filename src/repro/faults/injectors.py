"""Fault sources for the four injection layers.

Layer 1 (**line**) and layer 2 (**beat**) faults are applied by
:class:`BeatFaultInjector`, a drop-in replacement for the
``PhyWire`` hop between a transmitter and a receiver: bit flips and
burst errors ride on an internal :class:`~repro.phy.line.BitErrorLine`
(so its :class:`~repro.phy.line.LineStats` remain the ground truth the
invariants reconcile against), while drops, duplications and
lane-valid upsets operate on whole :class:`~repro.rtl.pipeline.WordBeat`
words.  Injected bursts are capped at 32 bits — within CRC-32's
guaranteed burst-detection length — so a corrupted frame can never
masquerade as good.

Layer 3 (**backpressure**) is a :func:`backpressure_storm` stall
pattern attached to the receive frame sink; layer 4 (**oam**) is
:class:`OamRegisterUpset`, which fires host-bus writes at the OAM
register file the way a soft error in a microcontroller driver would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.oam import (
    ADDR_CTRL,
    ADDR_DANGLING_ESCAPES,
    ADDR_ESC_DELETED,
    ADDR_ESC_INSERTED,
    ADDR_FRAMING,
    ADDR_IRQ_MASK,
    ADDR_IRQ_PENDING,
    ADDR_RESYNC_DROPS_RX,
    ADDR_RX_ABORTS,
    ADDR_RX_FCS_ERRORS,
    ADDR_RX_FRAMES_OK,
    ADDR_RX_OVERSIZE,
    ADDR_RX_RUNTS,
    ADDR_STATION_ADDRESS,
    ADDR_TX_FRAMES,
    CTRL_RX_ENABLE,
    CTRL_TX_ENABLE,
    ProtocolOam,
)
from repro.phy.line import BitErrorLine
from repro.rtl.module import Channel, Module, TimingContract
from repro.rtl.pipeline import StallPattern, WordBeat
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "FaultEvent",
    "BeatFaultInjector",
    "backpressure_storm",
    "OamRegisterUpset",
]

#: The longest burst the campaigns inject, chosen to stay within
#: CRC-32's guaranteed burst-detection length so corruption is always
#: caught by the FCS (the "goodness" invariant depends on this).
MAX_BURST_BITS = 32


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the campaign report.

    ``beat_index`` is the wire-word index the fault landed on (-1 for
    faults that do not target the wire, e.g. register upsets).
    """

    layer: str
    kind: str
    cycle: int
    beat_index: int
    detail: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer,
            "kind": self.kind,
            "cycle": self.cycle,
            "beat_index": self.beat_index,
            "detail": dict(self.detail),
        }


class BeatFaultInjector(Module):
    """A PHY hop that can be armed to damage exactly one thing.

    Behaves as a one-word-per-cycle registered wire (the
    :class:`~repro.core.p5.PhyWire` contract) until :meth:`arm` is
    called; the armed fault fires once when ``after_beats`` words have
    crossed, then the wire is transparent again.  One armed fault per
    trial keeps cause and effect attributable — the campaign layer
    owns repetition.

    Kinds
    -----
    ``bit``
        Flip one random bit of the target word (line layer).
    ``burst``
        Flip ``bits`` (<= 32) contiguous bits starting at a random
        offset in the target word, continuing into following words if
        the run crosses a word boundary (line layer).
    ``drop``
        Delete the target word from the wire (beat layer).
    ``dup``
        Deliver the target word twice (beat layer) — the reason this
        module reserves room for two pushes per cycle.
    ``lane``
        Toggle one lane's valid bit (beat layer): a framing-level
        upset that inserts a garbage octet or deletes a real one.
    """

    KINDS = ("bit", "burst", "drop", "dup", "lane")

    def __init__(
        self,
        name: str,
        inp: Channel,
        out: Channel,
        *,
        corrupt=None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.corrupt = corrupt
        self._rng = make_rng(seed)
        #: Bit-flip bookkeeping: every line-layer flip goes through this
        #: zero-BER line so ``line.stats`` is exact ground truth.
        self.line = BitErrorLine(0.0, self._rng)
        self._armed: Optional[Dict[str, int]] = None
        self._armed_kind: Optional[str] = None
        self._burst_bits_left = 0
        self.beats_seen = 0
        self.words_moved = 0
        self.beats_dropped = 0
        self.beats_duplicated = 0
        self.beats_corrupted = 0
        self.faults_applied = 0
        self.events: List[FaultEvent] = []

    @property
    def burst_bits_left(self) -> int:
        """Bits of an in-flight burst still waiting for wire words."""
        return self._burst_bits_left

    def arm(self, kind: str, *, after_beats: int = 0, bits: int = 1) -> None:
        """Schedule one fault ``after_beats`` wire words from now."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; pick from {self.KINDS}")
        if not 1 <= bits <= MAX_BURST_BITS:
            raise ValueError(f"bits must be 1..{MAX_BURST_BITS} (CRC-32 burst bound)")
        if self._armed is not None:
            raise ValueError("an earlier fault is still armed")
        self._armed_kind = kind
        self._armed = {"after_beats": self.beats_seen + after_beats, "bits": bits}

    def capacity_needs(self):
        return [(self.out, 2, "a duplicated beat emits two words in one cycle")]

    def timing_contract(self) -> TimingContract:
        # Declares no output flow bounds: injected drops/dups exist to
        # violate flow conservation, so only the latency and the dup
        # burst are contractual.
        return TimingContract(latency_cycles=1)

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        # Reserve room for the dup case (two pushes) up front so every
        # push below is unconditionally safe.
        if self.out.capacity - self.out.occupancy < 2:
            self.note_stall()
            return
        beat: WordBeat = self.inp.pop()
        if self.corrupt is not None:
            beat = self.corrupt(beat)
        index = self.beats_seen
        self.beats_seen += 1
        if self._burst_bits_left > 0:
            emit = [self._continue_burst(beat)]
        elif self._armed is not None and index >= self._armed["after_beats"]:
            emit = self._fire(beat, index)
        else:
            emit = [beat]
        for word in emit:
            self.out.push(word)
            self.words_moved += 1

    # ----------------------------------------------------------- fault paths
    def _fire(self, beat: WordBeat, index: int) -> List[WordBeat]:
        kind = self._armed_kind or "bit"
        bits = self._armed["bits"] if self._armed else 1
        self._armed = None
        self._armed_kind = None
        self.faults_applied += 1
        detail: Dict[str, int] = {}
        if kind == "drop":
            self.beats_dropped += 1
            out: List[WordBeat] = []
        elif kind == "dup":
            self.beats_duplicated += 1
            out = [beat, beat]
        elif kind == "lane":
            out = [self._toggle_lane(beat, detail)]
        else:  # bit / burst
            out = [self._start_flips(beat, bits if kind == "burst" else 1, detail)]
        layer = "line" if kind in ("bit", "burst") else "beat"
        self.events.append(
            FaultEvent(layer=layer, kind=kind, cycle=self.cycles,
                       beat_index=index, detail=detail)
        )
        return out

    def _start_flips(self, beat: WordBeat, bits: int, detail: Dict[str, int]) -> WordBeat:
        payload = beat.payload()
        if not payload:
            detail["bits"] = 0
            return beat
        start = int(self._rng.integers(8 * len(payload)))
        here = min(bits, 8 * len(payload) - start)
        self._burst_bits_left = bits - here
        self.beats_corrupted += 1
        detail["bits"] = bits
        detail["start_bit"] = start
        return self._with_payload(beat, self.line.burst(payload, start, here))

    def _continue_burst(self, beat: WordBeat) -> WordBeat:
        payload = beat.payload()
        if not payload:
            return beat
        here = min(self._burst_bits_left, 8 * len(payload))
        self._burst_bits_left -= here
        self.beats_corrupted += 1
        return self._with_payload(beat, self.line.burst(payload, 0, here))

    def _toggle_lane(self, beat: WordBeat, detail: Dict[str, int]) -> WordBeat:
        lane = int(self._rng.integers(beat.width_bytes))
        lanes = list(beat.lanes)
        valid = list(beat.valid)
        valid[lane] = not valid[lane]
        if valid[lane]:
            lanes[lane] = int(self._rng.integers(0x100))
        else:
            lanes[lane] = 0
        self.beats_corrupted += 1
        detail["lane"] = lane
        detail["now_valid"] = int(valid[lane])
        return WordBeat(tuple(lanes), tuple(valid), sof=beat.sof, eof=beat.eof)

    @staticmethod
    def _with_payload(beat: WordBeat, payload: bytes) -> WordBeat:
        lanes = list(beat.lanes)
        cursor = 0
        for i, ok in enumerate(beat.valid):
            if ok:
                lanes[i] = payload[cursor]
                cursor += 1
        return WordBeat(tuple(lanes), beat.valid, sof=beat.sof, eof=beat.eof)


def backpressure_storm(
    probability: float, *, burst: int = 4, seed: SeedLike = None
) -> StallPattern:
    """A randomized ready-deassertion schedule for the receive sink.

    Each cycle stalls with ``probability``, and every stall extends to
    ``burst`` consecutive cycles — long multi-cycle windows where the
    shared-memory write port refuses data, as under host-bus
    contention.  Keep ``probability`` at or below 0.75: the campaigns
    run under a watchdog, and a storm must produce finite stall runs,
    not a plausible deadlock.
    """
    if not 0.0 < probability <= 0.75:
        raise ValueError("storm probability must be in (0, 0.75]")
    if burst < 1:
        raise ValueError("burst must be >= 1")
    return StallPattern(probability=probability, burst=burst, seed=seed)


class OamRegisterUpset:
    """Host-bus register soft errors against a live OAM block.

    Each :meth:`inject` performs one stray write.  The targets are
    chosen so an upset exercises the register file's protections
    rather than legitimately reconfiguring the link dead:

    * ``ctrl`` writes keep the TX/RX enable bits set (an upset that
      *disables* the transmitter would trivially and uninterestingly
      stop traffic);
    * ``framing`` writes carry ``flag == escape``, the nonsense
      pattern :meth:`~repro.core.oam.ProtocolOam._write_framing`
      ignores, as hardware would;
    * ``counter`` writes target read-only registers, which the
      register map discards by contract.
    """

    TARGETS = ("irq_mask", "irq_pending", "station_address", "ctrl",
               "framing", "counter")

    #: Every read-only counter register (upset writes must bounce off).
    COUNTER_ADDRS = (
        ADDR_TX_FRAMES,
        ADDR_RX_FRAMES_OK,
        ADDR_RX_FCS_ERRORS,
        ADDR_RX_RUNTS,
        ADDR_ESC_INSERTED,
        ADDR_ESC_DELETED,
        ADDR_DANGLING_ESCAPES,
        ADDR_RX_ABORTS,
        ADDR_RX_OVERSIZE,
        ADDR_RESYNC_DROPS_RX,
    )

    def __init__(self, oam: ProtocolOam, seed: SeedLike = None) -> None:
        self.oam = oam
        self._rng = make_rng(seed)
        self.events: List[FaultEvent] = []

    def inject(self, *, cycle: int = 0, target: Optional[str] = None) -> FaultEvent:
        """Fire one stray register write; returns its event record."""
        if target is None:
            target = self.TARGETS[int(self._rng.integers(len(self.TARGETS)))]
        elif target not in self.TARGETS:
            raise ValueError(f"unknown upset target {target!r}")
        raw = int(self._rng.integers(1 << 16))
        if target == "ctrl":
            address = ADDR_CTRL
            value = (raw & ~(CTRL_TX_ENABLE | CTRL_RX_ENABLE)) \
                | CTRL_TX_ENABLE | CTRL_RX_ENABLE
        elif target == "station_address":
            address = ADDR_STATION_ADDRESS
            value = raw & 0xFF
        elif target == "irq_pending":
            address = ADDR_IRQ_PENDING
            value = raw & 0x7
        elif target == "irq_mask":
            address = ADDR_IRQ_MASK
            value = raw & 0x7
        elif target == "framing":
            address = ADDR_FRAMING
            octet = raw & 0xFF
            value = (octet << 8) | octet  # flag == escape: ignored
        else:  # counter
            address = self.COUNTER_ADDRS[
                int(self._rng.integers(len(self.COUNTER_ADDRS)))
            ]
            value = raw
        self.oam.write(address, value)
        event = FaultEvent(
            layer="oam", kind=target, cycle=cycle, beat_index=-1,
            detail={"address": address, "value": value},
        )
        self.events.append(event)
        return event
