"""The recovery contract: what must still be true after a fault.

Every campaign trial injects exactly one fault into an otherwise
clean loopback exchange and then checks:

``no-stall``
    The exchange completed; the simulator watchdog never declared a
    wedged pipeline.  (A fault may *damage* frames; it must never
    *deadlock* the datapath.)
``recovery``
    The receiver re-hunted to flag sync: the last two submitted frames
    — which the campaign guarantees were transmitted entirely after
    the fault — arrived byte-identical and FCS-good.
``damage-bound``
    At most ``max_damaged`` submitted frames were lost or damaged by
    the single fault (a beat-level fault can straddle one frame
    boundary, hence the default bound of 2).
``zero-damage``
    Backpressure storms and register upsets are *non-destructive*
    layers: they must damage nothing at all.
``goodness``
    Every FCS-good frame is byte-identical to some submitted frame, in
    order.  Injected bursts are capped at CRC-32's burst-detection
    length, so corruption sneaking through the FCS is a checker bug,
    not bad luck.
``oam-reconcile``
    The OAM registers agree exactly with the datapath ground truth:
    register reads match module counters (so upset writes bounced off
    the read-only map), the per-stage frame counts obey the pipeline's
    conservation law, and damaged frames left a trace in some error
    counter.
``line-stats``
    The injector's :class:`~repro.phy.line.LineStats` agree with its
    event log — flips happened exactly where and how the campaign
    asked, and non-line layers flipped nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.p5 import P5System
from repro.faults.injectors import BeatFaultInjector

__all__ = ["Violation", "match_frames", "check_trial"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant in one trial."""

    trial: int
    layer: str
    kind: str
    invariant: str
    message: str

    def render(self) -> str:
        return (
            f"trial {self.trial} [{self.layer}/{self.kind}] "
            f"{self.invariant}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "trial": self.trial,
            "layer": self.layer,
            "kind": self.kind,
            "invariant": self.invariant,
            "message": self.message,
        }


def match_frames(
    submitted: Sequence[bytes], good: Sequence[bytes]
) -> Tuple[List[bool], List[bytes]]:
    """Greedy in-order matching of received-good against submitted.

    Returns ``(matched, spurious)``: ``matched[i]`` says submitted
    frame ``i`` arrived intact; ``spurious`` lists good frames that
    match no remaining submitted frame (which the goodness invariant
    forbids).  Greedy first-fit is exact here because the datapath
    preserves order — a good frame can only be a submitted frame at or
    after the previous match.
    """
    matched = [False] * len(submitted)
    spurious: List[bytes] = []
    cursor = 0
    for frame in good:
        i = cursor
        while i < len(submitted) and submitted[i] != frame:
            i += 1
        if i < len(submitted):
            matched[i] = True
            cursor = i + 1
        else:
            spurious.append(frame)
    return matched, spurious


def _oam_register_pairs(system: P5System) -> List[Tuple[str, int]]:
    """(register name, ground-truth counter) for every RO counter."""
    return [
        ("TX_FRAMES", system.tx.flags.frames_wrapped),
        ("RX_FRAMES_OK", system.rx.crc.frames_ok),
        ("RX_FCS_ERRORS", system.rx.crc.fcs_errors),
        ("RX_RUNTS", system.rx.crc.runt_frames),
        ("RX_HUNT_DISCARDS", system.rx.delineator.octets_discarded_hunting),
        ("ESC_INSERTED", system.tx.escape.octets_escaped),
        ("ESC_DELETED", system.rx.escape.octets_deleted),
        ("DANGLING_ESCAPES", system.rx.escape.dangling_escape_errors),
        ("RX_ABORTS", system.rx.delineator.aborts),
        ("RX_OVERSIZE", system.rx.delineator.oversize_drops),
        ("RESYNC_DROPS_RX", system.rx.escape.resync_overflow_drops),
    ]


def check_trial(
    *,
    trial: int,
    layer: str,
    kind: str,
    system: P5System,
    injector: BeatFaultInjector,
    submitted: Sequence[bytes],
    max_damaged: int,
    stalled: bool,
    stall_message: str = "",
) -> List[Violation]:
    """Evaluate the full recovery contract for one finished trial."""

    def violation(invariant: str, message: str) -> Violation:
        return Violation(trial=trial, layer=layer, kind=kind,
                         invariant=invariant, message=message)

    if stalled:
        # Nothing downstream of a deadlock is meaningful.
        return [violation("no-stall", stall_message or "pipeline stalled")]

    out: List[Violation] = []
    good = system.rx.sink.good_frames()
    matched, spurious = match_frames(submitted, good)
    damaged = matched.count(False)

    for frame in spurious:
        out.append(violation(
            "goodness",
            f"FCS-good frame of {len(frame)} octets matches no submitted frame",
        ))
    if damaged > max_damaged:
        out.append(violation(
            "damage-bound",
            f"{damaged} submitted frames damaged; bound is {max_damaged}",
        ))
    if layer in ("backpressure", "oam") and damaged:
        out.append(violation(
            "zero-damage",
            f"non-destructive layer damaged {damaged} frame(s)",
        ))
    if len(submitted) >= 2 and not all(matched[-2:]):
        out.append(violation(
            "recovery",
            "a post-fault frame did not arrive intact: the receiver "
            "failed to re-hunt to flag sync within two flag periods",
        ))

    out.extend(_check_oam(violation, system, submitted, damaged))
    out.extend(_check_line_stats(violation, layer, injector))
    return out


def _check_oam(violation, system: P5System, submitted, damaged) -> List[Violation]:
    out: List[Violation] = []
    for name, truth in _oam_register_pairs(system):
        readback = system.oam.regs.read_name(name)
        if readback != truth:
            out.append(violation(
                "oam-reconcile",
                f"register {name} reads {readback}, datapath says {truth}",
            ))
    crc = system.rx.crc
    delin = system.rx.delineator
    if system.tx.flags.frames_wrapped != len(submitted):
        out.append(violation(
            "oam-reconcile",
            f"transmitter wrapped {system.tx.flags.frames_wrapped} frames, "
            f"{len(submitted)} were submitted",
        ))
    if system.rx.escape.resync_overflow_drops == 0 and \
            len(crc.frame_results) != delin.frames_delineated:
        out.append(violation(
            "oam-reconcile",
            f"CRC checked {len(crc.frame_results)} frames but the "
            f"delineator closed {delin.frames_delineated}",
        ))
    if crc.frames_ok + crc.fcs_errors + crc.runt_frames != len(crc.frame_results):
        out.append(violation(
            "oam-reconcile",
            "CRC verdict counters do not sum to frames checked",
        ))
    if len(system.rx.sink.good_frames()) != crc.frames_ok:
        out.append(violation(
            "oam-reconcile",
            f"sink holds {len(system.rx.sink.good_frames())} good frames, "
            f"CRC counted {crc.frames_ok}",
        ))
    error_trace = (
        crc.fcs_errors + crc.runt_frames + delin.aborts + delin.oversize_drops
        + system.rx.escape.dangling_escape_errors
        + delin.octets_discarded_hunting
    )
    if damaged and not error_trace:
        out.append(violation(
            "oam-reconcile",
            f"{damaged} frame(s) damaged but every error counter is zero",
        ))
    return out


def _check_line_stats(violation, layer: str, injector: BeatFaultInjector) -> List[Violation]:
    out: List[Violation] = []
    stats = injector.line.stats
    if layer in ("line", "beat"):
        if injector.faults_applied != 1:
            out.append(violation(
                "line-stats",
                f"injector applied {injector.faults_applied} faults, expected 1",
            ))
        if injector.burst_bits_left:
            out.append(violation(
                "line-stats",
                f"{injector.burst_bits_left} burst bits never reached the wire",
            ))
    if layer == "line":
        asked = sum(e.detail.get("bits", 0) for e in injector.events)
        if stats.bits_flipped != asked:
            out.append(violation(
                "line-stats",
                f"line flipped {stats.bits_flipped} bits, events asked for {asked}",
            ))
    else:
        if stats.bits_flipped:
            out.append(violation(
                "line-stats",
                f"non-line layer flipped {stats.bits_flipped} bits",
            ))
    if layer in ("backpressure", "oam"):
        if injector.faults_applied or injector.beats_dropped or \
                injector.beats_duplicated or injector.beats_corrupted:
            out.append(violation(
                "line-stats",
                "wire injector acted during a non-wire layer trial",
            ))
    return out
