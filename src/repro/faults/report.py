"""Text and JSON reporters for campaign results.

Same contract as :mod:`repro.lint.report`: output is *stable* (trials
are already in index order, violations are reported in trial order)
and the JSON schema carries an explicit version so CI consumers can
parse it defensively.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.faults.campaign import LAYERS, CampaignResult

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Version 2 added the per-trial records (``trials``), including each
#: trial's derived seeds and injector event, so byte-reproducibility of
#: the injector layer is visible in — and checkable from — the report.
JSON_SCHEMA_VERSION = 2


def _layer_summary(result: CampaignResult) -> Dict[str, Dict[str, int]]:
    table: Dict[str, Dict[str, int]] = {
        layer: {"trials": 0, "damaged_frames": 0, "violations": 0}
        for layer in LAYERS
    }
    for trial in result.trials:
        row = table[trial.layer]
        row["trials"] += 1
        row["damaged_frames"] += trial.damaged
        row["violations"] += len(trial.violations)
    return table


def render_text(result: CampaignResult) -> str:
    """Human-readable campaign report with a per-layer table."""
    cfg = result.config
    lines = [
        f"fault campaign: {cfg.faults} faults, seed {cfg.seed}, "
        f"width {cfg.width_bits} bits, {cfg.frames_per_trial} frames/trial",
    ]
    table = _layer_summary(result)
    for layer in LAYERS:
        row = table[layer]
        lines.append(
            f"  {layer:<13} {row['trials']:>4} trials, "
            f"{row['damaged_frames']:>4} damaged frames, "
            f"{row['violations']:>3} violations"
        )
    lines.append(
        f"  line ground truth: {result.line_stats.bits_flipped} bits flipped "
        f"over {result.line_stats.bits_sent} sent "
        f"({result.line_stats.bursts} bursts)"
    )
    for violation in result.violations:
        lines.append(violation.render())
    if result.ok:
        lines.append("clean: no invariant violations")
    else:
        lines.append(f"{len(result.violations)} invariant violation(s)")
    return "\n".join(lines)


def render_json(result: CampaignResult) -> str:
    """Machine-parseable report (sorted keys, stable ordering)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "config": {
            "faults": result.config.faults,
            "seed": result.config.seed,
            "width_bits": result.config.width_bits,
            "frames_per_trial": result.config.frames_per_trial,
            "frame_octets": list(result.config.frame_octets),
            "max_damaged": result.config.max_damaged,
            "watchdog": result.config.watchdog,
            "timeout": result.config.timeout,
            "max_frame_octets": result.config.max_frame_octets,
        },
        "layers": _layer_summary(result),
        "trials": [trial.as_dict() for trial in result.trials],
        "line_stats": result.line_stats.as_dict(),
        "damaged_frames": result.damaged_total(),
        "violations": [v.as_dict() for v in result.violations],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
