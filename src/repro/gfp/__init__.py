"""GFP — Generic Framing Procedure (ITU-T G.7041), the baseline rival.

When the paper was written, HDLC-like framing (PPP-over-SONET) and the
then-new GFP were the two candidate layer-2 framings for IP over
SDH/SONET.  They differ in exactly the dimension the P5's byte sorter
exists to handle:

* **HDLC** delineates with flag octets, so payload bytes equal to the
  flag must be *escaped* — overhead is payload-dependent (0.8 % on
  random data, 100 % adversarial worst case), and the word-parallel
  datapath needs the paper's sorter;
* **GFP** delineates with a length + CRC header (cHEC), like ATM's
  HEC: overhead is a constant 8 bytes per frame regardless of payload
  content, no stuffing, no sorter — at the cost of a multiplicative
  scrambler and HEC hunting on the receive side.

Implementing the baseline makes the trade quantitative — see
``benchmarks/bench_baseline_gfp.py``.
"""

from repro.gfp.frame import GfpFrame, GfpType, core_header, idle_frame
from repro.gfp.delineator import GfpDelineator, GfpState

__all__ = [
    "GfpFrame",
    "GfpType",
    "core_header",
    "idle_frame",
    "GfpDelineator",
    "GfpState",
]
