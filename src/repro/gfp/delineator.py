"""GFP HEC-based frame delineation (G.7041 section 6.3).

Unlike HDLC, there is no reserved octet to hunt for: the receiver
slides over the byte stream testing every 4-byte window as a candidate
core header (descramble, recompute the CRC-16 over the PLI, compare
with the cHEC).  A hit gives the frame length, which *predicts where
the next header is* — after ``presync_hits`` consecutive correct
predictions the receiver declares sync, exactly like ATM cell
delineation.

In sync, the cHEC also provides **single-bit error correction**: the
CRC-16's syndrome identifies which of the 32 header bits flipped, so a
lone bit error costs nothing (HDLC, by contrast, loses the whole frame
when its flag or length context is hit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.crc import CRC16_XMODEM, TableCrc
from repro.errors import FcsError, FramingError
from repro.gfp.frame import CORE_SCRAMBLE, GfpFrame
from repro.rtl.module import ChannelTiming, TimingContract

__all__ = ["GfpState", "GfpStats", "GfpDelineator"]


class GfpState(enum.Enum):
    """Delineation states (G.7041 figure 6-2)."""

    HUNT = "hunt"
    PRESYNC = "presync"
    SYNC = "sync"


def _crc16(data: bytes) -> int:
    return TableCrc(CRC16_XMODEM).compute(data)


def _syndrome_table() -> Dict[int, int]:
    """Map cHEC syndrome -> flipped-bit index (0..31, MSB-first header).

    The XMODEM CRC (init 0, no reflection, no xorout) is GF(2)-linear,
    so the syndrome of a single-bit error pattern is the CRC of that
    pattern — precomputable for all 32 positions.
    """
    table: Dict[int, int] = {}
    for bit in range(32):
        error = bytearray(4)
        error[bit // 8] = 0x80 >> (bit % 8)
        syndrome = _crc16(bytes(error[:2])) ^ int.from_bytes(error[2:4], "big")
        table[syndrome] = bit
    return table


_SYNDROMES = _syndrome_table()


@dataclass
class GfpStats:
    """Receive-side counters."""

    frames_ok: int = 0
    idle_frames: int = 0
    corrected_headers: int = 0
    header_errors: int = 0
    client_errors: int = 0        # tHEC / pFCS failures
    bytes_discarded_hunting: int = 0
    resyncs: int = 0


class GfpDelineator:
    """Streaming GFP receiver.

    Feed arbitrary chunks with :meth:`feed`; decoded client frames are
    returned in order.  ``presync_hits`` is the DELTA of G.7041 (number
    of consecutive correct headers required to declare sync).

    The class-level :data:`TIMING_CONTRACT` declares the receive-side
    flow for :mod:`repro.sta`: delineation only removes octets (core
    headers, hunt noise), and first emission waits for sync — a
    traffic-dependent delay, so the latency figure is not a bound.
    """

    TIMING_CONTRACT = TimingContract(
        latency_cycles=1,
        latency_is_bound=False,
        outputs=(ChannelTiming(max_expansion=1.0, min_expansion=0.0),),
    )

    def __init__(self, *, presync_hits: int = 2, correct_single_bit: bool = True) -> None:
        self.presync_hits = presync_hits
        self.correct_single_bit = correct_single_bit
        self.state = GfpState.HUNT
        self.stats = GfpStats()
        self._buffer = bytearray()
        self._confirmations = 0

    # ----------------------------------------------------------------- intake
    def feed(self, data: bytes) -> List[GfpFrame]:
        """Consume line bytes; return the client frames recovered."""
        self._buffer.extend(data)
        frames: List[GfpFrame] = []
        progressed = True
        while progressed:
            progressed = False
            if self.state is GfpState.HUNT:
                progressed = self._hunt()
            else:
                progressed = self._try_frame(frames)
        return frames

    # ------------------------------------------------------------------ hunt
    def _header_pli(self, window: bytes, *, correct: bool) -> int:
        """Validate a candidate core header; returns PLI or raises."""
        raw = bytes(a ^ b for a, b in zip(window, CORE_SCRAMBLE))
        pli = int.from_bytes(raw[0:2], "big")
        carried = int.from_bytes(raw[2:4], "big")
        syndrome = _crc16(raw[0:2]) ^ carried
        if syndrome == 0:
            return pli
        if correct and self.correct_single_bit and syndrome in _SYNDROMES:
            bit = _SYNDROMES[syndrome]
            fixed = bytearray(raw)
            fixed[bit // 8] ^= 0x80 >> (bit % 8)
            self.stats.corrected_headers += 1
            return int.from_bytes(fixed[0:2], "big")
        raise FramingError("cHEC mismatch")

    def _hunt(self) -> bool:
        while len(self._buffer) >= 4:
            try:
                self._header_pli(bytes(self._buffer[:4]), correct=False)
            except FramingError:
                del self._buffer[0]
                self.stats.bytes_discarded_hunting += 1
                continue
            self.state = GfpState.PRESYNC
            self._confirmations = 0
            return True
        return False

    # ----------------------------------------------------------------- frames
    def _try_frame(self, frames: List[GfpFrame]) -> bool:
        if len(self._buffer) < 4:
            return False
        correcting = self.state is GfpState.SYNC
        try:
            pli = self._header_pli(bytes(self._buffer[:4]), correct=correcting)
        except FramingError:
            self.stats.header_errors += 1
            self.stats.resyncs += 1
            self.state = GfpState.HUNT
            del self._buffer[0]
            self.stats.bytes_discarded_hunting += 1
            return True
        if len(self._buffer) < 4 + pli:
            return False   # wait for the rest of the frame
        area = bytes(self._buffer[4 : 4 + pli])
        del self._buffer[: 4 + pli]
        if self.state is GfpState.PRESYNC:
            self._confirmations += 1
            if self._confirmations >= self.presync_hits:
                self.state = GfpState.SYNC
        if pli == 0:
            self.stats.idle_frames += 1
            return True
        try:
            frame = GfpFrame.decode_payload_area(area)
        except (FcsError, FramingError):
            self.stats.client_errors += 1
            return True
        self.stats.frames_ok += 1
        frames.append(frame)
        return True
