"""GFP frame construction (G.7041 sections 6.1-6.2, essentials).

Frame layout::

    PLI (2)   — payload length indicator (length of the payload area)
    cHEC (2)  — CRC-16 over the PLI, XORed with the Barker-like word
    ---- payload area (PLI bytes) ----
    Type (2)  — PTI/PFI/EXI/UPI
    tHEC (2)  — CRC-16 over the Type field
    payload   — the client PDU (a PPP frame, an Ethernet frame, ...)
    pFCS (4)  — optional CRC-32 over the payload (present iff PFI set)

The core header (PLI + cHEC) is additionally XORed with the
``B6 AB 31 E0`` word so an all-zero line does not look like endless
idle frames.  Idle frames are 4 bytes: PLI = 0 with a valid cHEC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crc import CRC16_XMODEM, CRC32, TableCrc
from repro.errors import FcsError, FramingError

__all__ = ["GfpType", "GfpFrame", "core_header", "idle_frame", "CORE_SCRAMBLE"]

#: The core-header scramble word (G.7041 §6.1.2.2).
CORE_SCRAMBLE = bytes([0xB6, 0xAB, 0x31, 0xE0])

#: Payload-type identifier for client data with / without payload FCS.
_PTI_CLIENT_DATA = 0b000


class GfpType(enum.IntEnum):
    """UPI values (user payload identifiers) this model uses."""

    PPP = 0x06          # G.7041: frame-mapped PPP
    ETHERNET = 0x01


def _crc16(data: bytes) -> int:
    return TableCrc(CRC16_XMODEM).compute(data)


def _crc32(data: bytes) -> int:
    return TableCrc(CRC32).compute(data)


def core_header(pli: int) -> bytes:
    """Build the 4-byte scrambled core header for payload length ``pli``."""
    if not 0 <= pli <= 0xFFFF:
        raise ValueError("PLI is a 16-bit length")
    raw = pli.to_bytes(2, "big")
    raw += _crc16(raw).to_bytes(2, "big")
    return bytes(a ^ b for a, b in zip(raw, CORE_SCRAMBLE))


def idle_frame() -> bytes:
    """The 4-byte GFP idle frame (PLI = 0)."""
    return core_header(0)


@dataclass(frozen=True)
class GfpFrame:
    """One GFP client frame."""

    payload: bytes
    upi: int = GfpType.PPP
    with_pfcs: bool = True

    @property
    def type_field(self) -> int:
        pfi = 1 if self.with_pfcs else 0
        return (_PTI_CLIENT_DATA << 13) | (pfi << 12) | (self.upi & 0xFF)

    def encode(self) -> bytes:
        """Serialise to wire bytes (core header + payload area)."""
        type_bytes = self.type_field.to_bytes(2, "big")
        area = type_bytes + _crc16(type_bytes).to_bytes(2, "big") + self.payload
        if self.with_pfcs:
            area += _crc32(self.payload).to_bytes(4, "big")
        return core_header(len(area)) + area

    @classmethod
    def decode_payload_area(cls, area: bytes) -> "GfpFrame":
        """Parse a payload area (the delineator supplies whole areas)."""
        if len(area) < 4:
            raise FramingError("GFP payload area shorter than its header")
        type_field = int.from_bytes(area[0:2], "big")
        thec = int.from_bytes(area[2:4], "big")
        if _crc16(area[0:2]) != thec:
            raise FcsError(thec, _crc16(area[0:2]), "GFP tHEC failed")
        pfi = (type_field >> 12) & 1
        upi = type_field & 0xFF
        body = area[4:]
        if pfi:
            if len(body) < 4:
                raise FramingError("GFP frame too short for its pFCS")
            payload, trailer = body[:-4], body[-4:]
            carried = int.from_bytes(trailer, "big")
            computed = _crc32(payload)
            if carried != computed:
                raise FcsError(carried, computed, "GFP pFCS failed")
        else:
            payload = body
        return cls(payload=payload, upi=upi, with_pfcs=bool(pfi))

    @property
    def wire_length(self) -> int:
        """Total wire bytes: constant 8 (+4 with pFCS) of overhead."""
        return 4 + 4 + len(self.payload) + (4 if self.with_pfcs else 0)
