"""HDLC-like framing per RFC 1662 — the layer the P5 accelerates.

* :mod:`repro.hdlc.byte_stuffing` — octet-synchronous transparency
  (flag/escape substitution), the operation the paper's Escape
  Generate / Escape Detect datapath units perform word-parallel.
* :mod:`repro.hdlc.bit_stuffing` — bit-synchronous transparency
  (zero insertion after five ones) for completeness.
* :mod:`repro.hdlc.accm` — the async control character map that makes
  additional octets escapable (LCP-negotiable).
* :mod:`repro.hdlc.framer` — whole-frame encode/decode with FCS.
* :mod:`repro.hdlc.delineation` — the streaming receive delineator
  state machine (hunt/sync, abort and runt handling).
"""

from repro.hdlc.constants import (
    ABORT_SEQUENCE,
    ESCAPE_XOR,
    ESC_OCTET,
    FLAG_OCTET,
)
from repro.hdlc.accm import Accm
from repro.hdlc.byte_stuffing import (
    escape_set,
    stuff,
    stuffed_length,
    unstuff,
)
from repro.hdlc.bit_stuffing import bit_stuff, bit_unstuff
from repro.hdlc.framer import DecodedFrame, HdlcFramer
from repro.hdlc.delineation import Delineator, DelineatorStats

__all__ = [
    "FLAG_OCTET",
    "ESC_OCTET",
    "ESCAPE_XOR",
    "ABORT_SEQUENCE",
    "Accm",
    "escape_set",
    "stuff",
    "stuffed_length",
    "unstuff",
    "bit_stuff",
    "bit_unstuff",
    "HdlcFramer",
    "DecodedFrame",
    "Delineator",
    "DelineatorStats",
]
