"""Async-Control-Character-Map (ACCM) handling, RFC 1662 section 7.1.

On asynchronous links, octets 0x00–0x1F may be intercepted by modems
or terminal drivers, so the sender must escape any of them selected by
the negotiated 32-bit ACCM.  On octet-synchronous links such as
PPP-over-SONET the ACCM is irrelevant and defaults to zero — only the
flag and escape octets themselves are escaped, which is the case the
P5 hardware optimises.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET

__all__ = ["Accm"]


class Accm:
    """A 32-bit async control character map plus the mandatory escapes.

    Bit ``n`` of ``mask`` set means octet ``n`` (0–31) must be escaped
    on transmit.  ``0x7D`` and ``0x7E`` are always escaped regardless.
    """

    #: RFC 1662 default for async links: escape all of 0x00-0x1F.
    DEFAULT_ASYNC_MASK = 0xFFFFFFFF

    #: Octet-synchronous (e.g. SONET) default: no control chars escaped.
    DEFAULT_SYNC_MASK = 0x00000000

    def __init__(self, mask: int = DEFAULT_SYNC_MASK) -> None:
        if mask & ~0xFFFFFFFF:
            raise ValueError(f"ACCM mask must fit in 32 bits, got 0x{mask:X}")
        self.mask = mask

    @classmethod
    def for_async(cls) -> "Accm":
        """The RFC default map for asynchronous (dial-up style) links."""
        return cls(cls.DEFAULT_ASYNC_MASK)

    @classmethod
    def from_octets(cls, octets: Iterable[int]) -> "Accm":
        """Build a map escaping exactly the given control octets (< 32)."""
        mask = 0
        for octet in octets:
            if not 0 <= octet < 32:
                raise ValueError(f"ACCM only covers octets 0..31, got {octet}")
            mask |= 1 << octet
        return cls(mask)

    def must_escape(self, octet: int) -> bool:
        """Whether ``octet`` requires transparency processing on TX."""
        if octet in (FLAG_OCTET, ESC_OCTET):
            return True
        return octet < 32 and bool((self.mask >> octet) & 1)

    def escape_octets(self) -> FrozenSet[int]:
        """The full set of octets this map escapes (incl. mandatory)."""
        extra = {i for i in range(32) if (self.mask >> i) & 1}
        return frozenset(extra | {FLAG_OCTET, ESC_OCTET})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accm(mask=0x{self.mask:08X})"
