"""Bit-synchronous HDLC transparency (zero-bit insertion), RFC 1662 §5.

On bit-synchronous links the flag ``01111110`` is protected by
inserting a ``0`` after any run of five consecutive ``1`` bits in the
frame body, rather than by octet escaping.  The P5 targets the
octet-synchronous SONET mapping, but the paper's framing method
citation (RFC 1662) covers both, and the delineation benchmarks use
this as a point of comparison for transparency overhead.

Functions operate on 0/1 ``numpy.uint8`` arrays (see
:mod:`repro.utils.bits` for byte<->bit conversion).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AbortError, FramingError

__all__ = ["bit_stuff", "bit_unstuff"]


def bit_stuff(bits: np.ndarray) -> np.ndarray:
    """Insert a 0 after every run of five consecutive 1 bits."""
    bits = np.asarray(bits, dtype=np.uint8)
    out = []
    run = 0
    for bit in bits:
        out.append(int(bit))
        if bit:
            run += 1
            if run == 5:
                out.append(0)
                run = 0
        else:
            run = 0
    return np.array(out, dtype=np.uint8)


def bit_unstuff(bits: np.ndarray) -> np.ndarray:
    """Remove inserted zeros (inverse of :func:`bit_stuff`).

    Raises
    ------
    AbortError
        On seven or more consecutive ones (HDLC abort / idle).
    FramingError
        On six consecutive ones followed by zero — that is the flag
        pattern, which must not appear inside a frame body.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    out = []
    run = 0
    i = 0
    n = bits.size
    while i < n:
        bit = int(bits[i])
        if bit:
            run += 1
            if run == 6:
                raise FramingError(f"flag/abort pattern inside bit-stuffed body at bit {i}")
            out.append(1)
            i += 1
        else:
            if run == 5:
                # This zero was inserted by the stuffer: drop it.
                run = 0
                i += 1
                continue
            run = 0
            out.append(0)
            i += 1
    if run >= 5:
        raise AbortError("bit stream ends inside a ones run (possible abort)")
    return np.array(out, dtype=np.uint8)
