"""Octet-synchronous transparency (byte stuffing), RFC 1662 section 4.2.

This is the computation the paper's Escape Generate and Escape Detect
hardware performs — here as the *behavioural golden model* the
cycle-accurate pipelines in :mod:`repro.core.escape_pipeline` are
checked against.

Two implementations are provided:

* a legible scalar reference (``_stuff_scalar`` / ``_unstuff_scalar``);
* a numpy-vectorised bulk path used automatically for larger buffers,
  following the HPC guidance of vectorising the hot loop (stuffing is
  applied to every payload byte of every frame in the benchmarks).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

import numpy as np

from repro.errors import AbortError, FramingError
from repro.hdlc.accm import Accm
from repro.hdlc.constants import ESCAPE_XOR, ESC_OCTET, FLAG_OCTET

__all__ = ["escape_set", "stuff", "unstuff", "stuffed_length"]

#: Buffers at least this large take the vectorised path.
_VECTOR_THRESHOLD = 64

_MANDATORY = frozenset({FLAG_OCTET, ESC_OCTET})


def escape_set(accm: Optional[Accm] = None) -> FrozenSet[int]:
    """The set of octet values that must be escaped on transmit."""
    if accm is None:
        return _MANDATORY
    return accm.escape_octets()


def stuffed_length(data: bytes, accm: Optional[Accm] = None) -> int:
    """Length of ``stuff(data)`` without materialising it.

    Every escapable octet costs exactly one extra octet, so this is
    ``len(data) + count(escapable)`` — the quantity the paper's
    resynchronisation buffer has to absorb.
    """
    escapes = escape_set(accm)
    if len(data) >= _VECTOR_THRESHOLD:
        arr = np.frombuffer(data, dtype=np.uint8)
        needs = np.isin(arr, np.fromiter(escapes, dtype=np.uint8))
        return len(data) + int(needs.sum())
    return len(data) + sum(1 for b in data if b in escapes)


# --------------------------------------------------------------------- stuff
def _stuff_scalar(data: bytes, escapes: FrozenSet[int]) -> bytes:
    out = bytearray()
    for byte in data:
        if byte in escapes:
            out.append(ESC_OCTET)
            out.append(byte ^ ESCAPE_XOR)
        else:
            out.append(byte)
    return bytes(out)


def _stuff_vector(data: bytes, escapes: FrozenSet[int]) -> bytes:
    arr = np.frombuffer(data, dtype=np.uint8)
    needs = np.isin(arr, np.fromiter(escapes, dtype=np.uint8))
    if not needs.any():
        return data
    # Each input byte lands at its index plus the number of escapes
    # inserted before it; escaped bytes occupy two slots.
    offsets = np.cumsum(needs) - needs        # escapes strictly before i
    positions = np.arange(arr.size) + offsets
    out = np.empty(arr.size + int(needs.sum()), dtype=np.uint8)
    out[positions] = np.where(needs, ESC_OCTET, arr)
    out[positions[needs] + 1] = arr[needs] ^ ESCAPE_XOR
    return out.tobytes()


def stuff(data: bytes, accm: Optional[Accm] = None) -> bytes:
    """Apply octet transparency: escape flags, escapes and ACCM octets.

    ``0x7E`` becomes ``0x7D 0x5E``, ``0x7D`` becomes ``0x7D 0x5D``, and
    any ACCM-selected control octet ``c`` becomes ``0x7D, c ^ 0x20``.
    """
    escapes = escape_set(accm)
    if len(data) >= _VECTOR_THRESHOLD:
        return _stuff_vector(data, escapes)
    return _stuff_scalar(data, escapes)


# ------------------------------------------------------------------- unstuff
def _unstuff_scalar(data: bytes, *, strict: bool) -> bytes:
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        if byte == FLAG_OCTET:
            raise FramingError(f"unescaped flag octet inside frame at offset {i}")
        if byte == ESC_OCTET:
            if i + 1 >= n:
                # The octet after a frame body is its closing flag, so
                # a trailing escape is the RFC 1662 abort sequence.
                raise AbortError("frame aborted: escape immediately before closing flag")
            nxt = data[i + 1]
            if nxt == FLAG_OCTET:
                raise AbortError(f"abort sequence (7D 7E) at offset {i}")
            restored = nxt ^ ESCAPE_XOR
            if strict and nxt == ESC_OCTET:
                # 7D 7D is not producible by a conforming sender.
                raise FramingError(f"invalid escape pair 7D 7D at offset {i}")
            out.append(restored)
            i += 2
        else:
            out.append(byte)
            i += 1
    return bytes(out)


def _unstuff_vector(data: bytes, *, strict: bool) -> bytes:
    arr = np.frombuffer(data, dtype=np.uint8)
    flags = np.flatnonzero(arr == FLAG_OCTET)
    if flags.size:
        first = int(flags[0])
        if first > 0 and arr[first - 1] == ESC_OCTET:
            raise AbortError(f"abort sequence (7D 7E) at offset {first - 1}")
        raise FramingError(f"unescaped flag octet inside frame at offset {first}")
    is_esc = arr == ESC_OCTET
    if not is_esc.any():
        return data
    # An octet is "escaped" iff preceded by an odd run of escape octets;
    # with conforming input escapes never chain (7D 7D is invalid), so a
    # simple shift suffices once chained escapes are rejected.
    esc_idx = np.flatnonzero(is_esc)
    if esc_idx[-1] == arr.size - 1:
        # See the scalar path: a trailing escape is an aborted frame.
        raise AbortError("frame aborted: escape immediately before closing flag")
    following = arr[esc_idx + 1]
    if (following == ESC_OCTET).any():
        if strict:
            where = int(esc_idx[np.argmax(following == ESC_OCTET)])
            raise FramingError(f"invalid escape pair 7D 7D at offset {where}")
        # Chained escapes break the shift trick; defer to the scalar walk.
        return _unstuff_scalar(data, strict=strict)
    out = arr.copy()
    out[esc_idx + 1] ^= ESCAPE_XOR
    keep = np.ones(arr.size, dtype=bool)
    keep[esc_idx] = False
    return out[keep].tobytes()


def unstuff(data: bytes, *, strict: bool = True) -> bytes:
    """Remove octet transparency (inverse of :func:`stuff`).

    ``data`` is the body *between* two flags, so a trailing escape
    octet means the escape was immediately followed by the closing
    flag — the RFC 1662 abort sequence.

    Raises
    ------
    AbortError
        On the abort sequence: ``0x7D 0x7E`` inside the buffer, or a
        trailing ``0x7D``.
    FramingError
        On a bare flag inside the frame or (when ``strict``) the
        unproducible pair ``0x7D 0x7D``.
    """
    if len(data) >= _VECTOR_THRESHOLD:
        return _unstuff_vector(data, strict=strict)
    return _unstuff_scalar(data, strict=strict)
