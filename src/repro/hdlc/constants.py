"""Octet values defined by RFC 1662 (HDLC-like framing).

These three constants are the whole vocabulary of the paper's Escape
Generate / Escape Detect units: frames are delimited by ``0x7E``, any
payload occurrence of a reserved octet is replaced by ``0x7D`` followed
by the octet XORed with ``0x20``.
"""

from __future__ import annotations

#: Frame delimiter ("flag sequence"), 0b01111110.
FLAG_OCTET = 0x7E

#: Control escape octet.
ESC_OCTET = 0x7D

#: Value XORed into an escaped octet ("complement the 6th bit").
ESCAPE_XOR = 0x20

#: An escape immediately followed by a flag aborts the frame in progress.
ABORT_SEQUENCE = bytes([ESC_OCTET, FLAG_OCTET])

#: Default PPP address and control field values (RFC 1662 section 3.1).
DEFAULT_ADDRESS = 0xFF
DEFAULT_CONTROL = 0x03
