"""Streaming frame delineation — the receiver's hunt/sync machine.

The whole-frame :class:`~repro.hdlc.framer.HdlcFramer` assumes it is
handed complete frames; real receivers see an unaligned octet stream
(possibly mid-frame at power-up, possibly corrupted).  The
:class:`Delineator` consumes octets one at a time, exactly like the
P5 receiver's front end consumes the PHY stream, and emits decoded
frames while accounting every discard reason in
:class:`DelineatorStats` — the counters the Protocol OAM block exposes
to the host microprocessor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import (
    AbortError,
    FcsError,
    FramingError,
    OversizeFrameError,
    RuntFrameError,
)
from repro.hdlc.constants import FLAG_OCTET
from repro.hdlc.framer import DecodedFrame, HdlcFramer

__all__ = ["Delineator", "DelineatorStats"]


@dataclass
class DelineatorStats:
    """Receive-side event counters (mirrored into the OAM register map)."""

    frames_ok: int = 0
    fcs_errors: int = 0
    aborts: int = 0
    runts: int = 0
    oversize: int = 0
    framing_errors: int = 0
    octets_in: int = 0
    octets_discarded_hunting: int = 0

    def total_errors(self) -> int:
        """All discarded-frame events combined."""
        return (
            self.fcs_errors
            + self.aborts
            + self.runts
            + self.oversize
            + self.framing_errors
        )


@dataclass
class Delineator:
    """Octet-streaming HDLC frame delineator.

    Feed octets with :meth:`push` / :meth:`push_bytes`; completed,
    FCS-verified frames are returned (and also appended to
    :attr:`frames`).  The machine starts in *hunt* state and discards
    octets until the first flag, as hardware must after power-up or
    loss of synchronisation.

    Parameters
    ----------
    framer:
        The frame codec to use (FCS width, ACCM, MRU guard).
    """

    framer: HdlcFramer = field(default_factory=HdlcFramer)
    stats: DelineatorStats = field(default_factory=DelineatorStats)

    def __post_init__(self) -> None:
        self._synced = False
        self._body = bytearray()
        self.frames: List[DecodedFrame] = []

    @property
    def in_sync(self) -> bool:
        """Whether at least one flag has been seen (frame-aligned)."""
        return self._synced

    def push(self, octet: int) -> Optional[DecodedFrame]:
        """Consume one octet; return a frame if this octet completed one."""
        self.stats.octets_in += 1
        if not self._synced:
            if octet == FLAG_OCTET:
                self._synced = True
            else:
                self.stats.octets_discarded_hunting += 1
            return None
        if octet != FLAG_OCTET:
            self._body.append(octet)
            return None
        # Closing flag: an empty body is inter-frame idle, not a frame.
        body = bytes(self._body)
        self._body.clear()
        if not body:
            return None
        return self._finish(body)

    def _finish(self, body: bytes) -> Optional[DecodedFrame]:
        try:
            frame = self.framer.decode_body(body)
        except AbortError:
            self.stats.aborts += 1
        except FcsError:
            self.stats.fcs_errors += 1
        except RuntFrameError:
            self.stats.runts += 1
        except OversizeFrameError:
            self.stats.oversize += 1
        except FramingError:
            self.stats.framing_errors += 1
        else:
            self.stats.frames_ok += 1
            self.frames.append(frame)
            return frame
        return None

    def push_bytes(self, data: Iterable[int]) -> List[DecodedFrame]:
        """Consume a buffer; return the frames completed within it."""
        completed: List[DecodedFrame] = []
        for octet in data:
            frame = self.push(octet)
            if frame is not None:
                completed.append(frame)
        return completed

    def flush(self) -> None:
        """Drop any partial frame (e.g. on link down) and resync."""
        if self._body:
            self.stats.framing_errors += 1
            self._body.clear()
        self._synced = False
