"""Whole-frame HDLC encode/decode with FCS, RFC 1662 sections 3–4.

:class:`HdlcFramer` is the behavioural model of the complete TX/RX
datapath the P5 implements: on transmit it appends the FCS, applies
octet transparency and wraps the result in flags; on receive it
reverses the process and verifies the FCS (by value and, equivalently,
by the RFC's magic-residue method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crc import CRC32, CrcSpec, TableCrc
from repro.errors import FcsError, FramingError, OversizeFrameError, RuntFrameError
from repro.hdlc.accm import Accm
from repro.hdlc.byte_stuffing import stuff, unstuff
from repro.hdlc.constants import FLAG_OCTET
from repro.rtl.module import ChannelTiming, TimingContract

__all__ = ["HdlcFramer", "DecodedFrame"]


@dataclass(frozen=True)
class DecodedFrame:
    """A successfully delineated and checked frame.

    Attributes
    ----------
    content:
        The frame body with transparency removed and FCS stripped —
        for PPP this is address/control/protocol/information.
    fcs:
        The FCS value carried by the frame (already verified).
    wire_length:
        Octets consumed on the line including both flags; used by the
        efficiency analyses.
    """

    content: bytes
    fcs: int
    wire_length: int


def _fcs_trailer(spec: CrcSpec, value: int) -> bytes:
    """Serialise an FCS value least-significant octet first (RFC 1662)."""
    return value.to_bytes(spec.width // 8, "little")


def _fcs_from_trailer(spec: CrcSpec, trailer: bytes) -> int:
    return int.from_bytes(trailer, "little")


class HdlcFramer:
    """Encode/decode HDLC-like frames with a selectable FCS.

    Parameters
    ----------
    fcs_spec:
        ``repro.crc.CRC16_X25`` (FCS-16) or ``repro.crc.CRC32``
        (FCS-32; the P5 default "for accuracy purposes").
    accm:
        Optional async control character map; ``None`` means
        octet-synchronous rules (only 0x7D/0x7E escaped).
    max_content:
        Receive guard: decoded content longer than this raises
        :class:`~repro.errors.OversizeFrameError`.  PPP's default MRU
        is 1500 information octets; the extra headroom covers
        address/control/protocol.

    The class-level :data:`TIMING_CONTRACT` is the behavioural
    counterpart of the datapath modules' ``timing_contract()``: it
    states the worst-case flow ratio (stuffing can double the body)
    and the per-frame overhead (two flags plus the widest FCS) that
    the :mod:`repro.sta` flow solver assumes of any HDLC encoder.
    """

    #: Whole-frame model: zero pipeline depth, but the same worst-case
    #: expansion the cycle-accurate escape-generate unit declares.
    TIMING_CONTRACT = TimingContract(
        latency_cycles=1,
        latency_is_bound=False,
        outputs=(ChannelTiming(max_expansion=2.0, per_frame_octets=2 + 4),),
    )

    def __init__(
        self,
        fcs_spec: CrcSpec = CRC32,
        accm: Optional[Accm] = None,
        max_content: int = 1500 + 8,
    ) -> None:
        if fcs_spec.width not in (16, 32):
            raise ValueError(f"FCS must be 16 or 32 bits, got {fcs_spec.width}")
        self.fcs_spec = fcs_spec
        self.accm = accm
        self.max_content = max_content
        self._crc = TableCrc(fcs_spec)

    @property
    def fcs_octets(self) -> int:
        """Size of the FCS trailer in octets (2 or 4)."""
        return self.fcs_spec.width // 8

    # ---------------------------------------------------------------- encode
    def compute_fcs(self, content: bytes) -> int:
        """FCS over the unstuffed frame content (addr..information)."""
        return self._crc.compute(content)

    def encode(self, content: bytes, *, leading_flag: bool = True) -> bytes:
        """Build the on-wire frame: ``[7E] stuffed(content + FCS) 7E``.

        ``leading_flag=False`` supports back-to-back frames sharing a
        single flag, as RFC 1662 permits and the P5 transmitter does
        when frames are queued without idle time.
        """
        fcs = self.compute_fcs(content)
        body = stuff(content + _fcs_trailer(self.fcs_spec, fcs), self.accm)
        head = bytes([FLAG_OCTET]) if leading_flag else b""
        return head + body + bytes([FLAG_OCTET])

    def encode_stream(self, contents: List[bytes]) -> bytes:
        """Encode several frames back-to-back with shared flags."""
        out = bytearray([FLAG_OCTET])
        for content in contents:
            out += self.encode(content, leading_flag=False)
        return bytes(out)

    # ---------------------------------------------------------------- decode
    def decode_body(self, body: bytes, *, wire_length: Optional[int] = None) -> DecodedFrame:
        """Decode the octets *between* flags: unstuff, split FCS, verify.

        Raises :class:`RuntFrameError`, :class:`FcsError`,
        :class:`OversizeFrameError` or any transparency error from
        :func:`repro.hdlc.byte_stuffing.unstuff`.
        """
        clear = unstuff(body)
        if len(clear) < self.fcs_octets + 1:
            raise RuntFrameError(
                f"frame body of {len(clear)} octets cannot hold content + FCS-{self.fcs_spec.width}"
            )
        content, trailer = clear[: -self.fcs_octets], clear[-self.fcs_octets :]
        if len(content) > self.max_content:
            raise OversizeFrameError(
                f"decoded content {len(content)} exceeds maximum {self.max_content}"
            )
        carried = _fcs_from_trailer(self.fcs_spec, trailer)
        computed = self.compute_fcs(content)
        if carried != computed:
            raise FcsError(carried, computed)
        # Cross-check via the RFC 1662 magic-residue method: CRC over
        # content *plus* trailer must equal the spec's residue.
        residue = TableCrc(self.fcs_spec).update(clear).residue_value()
        if residue != self.fcs_spec.residue:
            raise FcsError(carried, computed, "FCS residue check failed")
        return DecodedFrame(
            content=content,
            fcs=carried,
            wire_length=wire_length if wire_length is not None else len(body) + 2,
        )

    def decode(self, wire: bytes) -> DecodedFrame:
        """Decode one complete frame including its delimiting flags."""
        if len(wire) < 2 or wire[0] != FLAG_OCTET or wire[-1] != FLAG_OCTET:
            raise FramingError("frame must start and end with the flag octet 0x7E")
        body = wire[1:-1]
        # Tolerate flag padding/sharing at the boundaries.
        body = body.strip(bytes([FLAG_OCTET]))
        if not body:
            raise RuntFrameError("no frame body between flags")
        return self.decode_body(body, wire_length=len(wire))

    def decode_stream(self, wire: bytes) -> List[DecodedFrame]:
        """Split a flag-delimited stream into frames and decode each.

        Empty inter-flag gaps (idle flags) are skipped, matching the
        receiver FSM's behaviour of treating repeated flags as one.
        """
        frames: List[DecodedFrame] = []
        for body, span in _split_bodies(wire):
            frames.append(self.decode_body(body, wire_length=span))
        return frames


def _split_bodies(wire: bytes) -> List[Tuple[bytes, int]]:
    """Yield (body, wire_span) for each non-empty inter-flag region."""
    if not wire:
        return []
    regions: List[Tuple[bytes, int]] = []
    start: Optional[int] = None
    for i, byte in enumerate(wire):
        if byte == FLAG_OCTET:
            if start is not None and i > start:
                regions.append((wire[start:i], i - start + 2))
            start = i + 1
    if start is not None and start < len(wire):
        raise FramingError("stream ends inside an undelimited frame")
    return regions
