"""Minimal IPv4 datagram codec.

The P5 exists to move IP datagrams over SONET; the examples and
benchmarks therefore carry real, checksummed IPv4 packets rather than
opaque blobs.  Only header construction/parsing and the internet
checksum are needed — no routing or fragmentation reassembly.
"""

from repro.ipv4.header import Ipv4Header, internet_checksum
from repro.ipv4.datagram import Ipv4Datagram

__all__ = ["Ipv4Header", "Ipv4Datagram", "internet_checksum"]
