"""Whole IPv4 datagrams: header + payload round-tripping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FramingError
from repro.ipv4.header import Ipv4Header

__all__ = ["Ipv4Datagram"]


@dataclass(frozen=True)
class Ipv4Datagram:
    """An IPv4 packet ready to be handed to the PPP information field."""

    header: Ipv4Header
    payload: bytes

    @classmethod
    def build(
        cls,
        src: int,
        dst: int,
        payload: bytes,
        *,
        protocol: int = 17,
        ttl: int = 64,
        identification: int = 0,
    ) -> "Ipv4Datagram":
        """Construct a datagram with a consistent total_length."""
        header = Ipv4Header(
            src=src,
            dst=dst,
            total_length=Ipv4Header.HEADER_LEN + len(payload),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
        )
        return cls(header, payload)

    def encode(self) -> bytes:
        return self.header.encode() + self.payload

    @classmethod
    def decode(cls, data: bytes, *, verify: bool = True) -> "Ipv4Datagram":
        header = Ipv4Header.decode(data, verify=verify)
        if header.total_length > len(data):
            raise FramingError(
                f"datagram truncated: header claims {header.total_length}, got {len(data)}"
            )
        return cls(header, data[Ipv4Header.HEADER_LEN : header.total_length])

    def __len__(self) -> int:
        return self.header.total_length
