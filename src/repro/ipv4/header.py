"""IPv4 header (RFC 791) and the internet checksum (RFC 1071)."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import FramingError

__all__ = ["internet_checksum", "Ipv4Header"]


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement sum of 16-bit words (vectorised)."""
    if len(data) % 2:
        data = data + b"\x00"
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class Ipv4Header:
    """A parsed IPv4 header (options unsupported — IHL fixed at 5).

    ``src``/``dst`` are 32-bit host integers; see
    :func:`repro.ppp.ipcp.format_ipv4` for dotted-quad rendering.
    """

    src: int
    dst: int
    total_length: int
    identification: int = 0
    ttl: int = 64
    protocol: int = 17  # UDP by default
    dscp: int = 0
    flags: int = 0
    fragment_offset: int = 0

    HEADER_LEN = 20

    def __post_init__(self) -> None:
        for name, value, limit in (
            ("src", self.src, 0xFFFFFFFF),
            ("dst", self.dst, 0xFFFFFFFF),
            ("total_length", self.total_length, 0xFFFF),
            ("identification", self.identification, 0xFFFF),
            ("ttl", self.ttl, 0xFF),
            ("protocol", self.protocol, 0xFF),
            ("dscp", self.dscp, 0x3F),
            ("flags", self.flags, 0x7),
            ("fragment_offset", self.fragment_offset, 0x1FFF),
        ):
            if not 0 <= value <= limit:
                raise ValueError(f"{name}={value} out of range")
        if self.total_length < self.HEADER_LEN:
            raise ValueError("total_length smaller than the header itself")

    def encode(self) -> bytes:
        """Serialise with a correct header checksum."""
        head = bytearray(self.HEADER_LEN)
        head[0] = (4 << 4) | 5                       # version 4, IHL 5
        head[1] = self.dscp << 2
        head[2:4] = self.total_length.to_bytes(2, "big")
        head[4:6] = self.identification.to_bytes(2, "big")
        frag = (self.flags << 13) | self.fragment_offset
        head[6:8] = frag.to_bytes(2, "big")
        head[8] = self.ttl
        head[9] = self.protocol
        # checksum bytes 10:12 left zero for computation
        head[12:16] = self.src.to_bytes(4, "big")
        head[16:20] = self.dst.to_bytes(4, "big")
        checksum = internet_checksum(bytes(head))
        head[10:12] = checksum.to_bytes(2, "big")
        return bytes(head)

    @classmethod
    def decode(cls, data: bytes, *, verify: bool = True) -> "Ipv4Header":
        """Parse and (optionally) verify the checksum of a header."""
        if len(data) < cls.HEADER_LEN:
            raise FramingError("IPv4 header truncated")
        if data[0] >> 4 != 4:
            raise FramingError(f"not an IPv4 packet (version {data[0] >> 4})")
        ihl = data[0] & 0x0F
        if ihl != 5:
            raise FramingError(f"IPv4 options unsupported (IHL {ihl})")
        if verify and internet_checksum(data[: cls.HEADER_LEN]) != 0:
            raise FramingError("IPv4 header checksum failed")
        frag = int.from_bytes(data[6:8], "big")
        return cls(
            src=int.from_bytes(data[12:16], "big"),
            dst=int.from_bytes(data[16:20], "big"),
            total_length=int.from_bytes(data[2:4], "big"),
            identification=int.from_bytes(data[4:6], "big"),
            ttl=data[8],
            protocol=data[9],
            dscp=data[1] >> 2,
            flags=frag >> 13,
            fragment_offset=frag & 0x1FFF,
        )

    def decremented(self) -> "Ipv4Header":
        """Copy with TTL reduced by one (forwarding model)."""
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)
