"""Minimal IPv6 datagram codec.

RFC 1661's design goal — "PPP is designed to allow the simultaneous
use of multiple network-layer protocols" — needs a second network
layer to demonstrate; IPv6 (PPP protocol 0x0057, negotiated by IPV6CP)
is the natural one.
"""

from repro.ipv6.header import Ipv6Datagram, Ipv6Header, format_ipv6

__all__ = ["Ipv6Header", "Ipv6Datagram", "format_ipv6"]
