"""IPv6 fixed header (RFC 8200 section 3) and whole datagrams."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FramingError

__all__ = ["Ipv6Header", "Ipv6Datagram", "format_ipv6"]


def format_ipv6(value: int) -> str:
    """128-bit integer to the canonical-ish colon-hex form (no ``::``)."""
    if value >> 128:
        raise ValueError("IPv6 addresses are 128 bits")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    return ":".join(f"{g:x}" for g in groups)


@dataclass(frozen=True)
class Ipv6Header:
    """The 40-byte fixed IPv6 header (no extension-header parsing)."""

    src: int
    dst: int
    payload_length: int
    next_header: int = 17       # UDP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    HEADER_LEN = 40

    def __post_init__(self) -> None:
        for name, value, bits in (
            ("src", self.src, 128),
            ("dst", self.dst, 128),
            ("payload_length", self.payload_length, 16),
            ("next_header", self.next_header, 8),
            ("hop_limit", self.hop_limit, 8),
            ("traffic_class", self.traffic_class, 8),
            ("flow_label", self.flow_label, 20),
        ):
            if value >> bits:
                raise ValueError(f"{name} exceeds {bits} bits")

    def encode(self) -> bytes:
        head = bytearray(self.HEADER_LEN)
        word0 = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        head[0:4] = word0.to_bytes(4, "big")
        head[4:6] = self.payload_length.to_bytes(2, "big")
        head[6] = self.next_header
        head[7] = self.hop_limit
        head[8:24] = self.src.to_bytes(16, "big")
        head[24:40] = self.dst.to_bytes(16, "big")
        return bytes(head)

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Header":
        if len(data) < cls.HEADER_LEN:
            raise FramingError("IPv6 header truncated")
        word0 = int.from_bytes(data[0:4], "big")
        if word0 >> 28 != 6:
            raise FramingError(f"not an IPv6 packet (version {word0 >> 28})")
        return cls(
            src=int.from_bytes(data[8:24], "big"),
            dst=int.from_bytes(data[24:40], "big"),
            payload_length=int.from_bytes(data[4:6], "big"),
            next_header=data[6],
            hop_limit=data[7],
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
        )


@dataclass(frozen=True)
class Ipv6Datagram:
    """Header + payload with consistent length accounting."""

    header: Ipv6Header
    payload: bytes

    @classmethod
    def build(cls, src: int, dst: int, payload: bytes, **kwargs) -> "Ipv6Datagram":
        return cls(
            Ipv6Header(src=src, dst=dst, payload_length=len(payload), **kwargs),
            payload,
        )

    def encode(self) -> bytes:
        return self.header.encode() + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Datagram":
        header = Ipv6Header.decode(data)
        end = Ipv6Header.HEADER_LEN + header.payload_length
        if len(data) < end:
            raise FramingError("IPv6 datagram truncated")
        return cls(header, data[Ipv6Header.HEADER_LEN : end])

    def __len__(self) -> int:
        return Ipv6Header.HEADER_LEN + len(self.payload)
