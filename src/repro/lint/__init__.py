"""``repro.lint`` — static design-rule checking for the P5 model.

Two complementary passes, neither of which clocks a single cycle:

* the **graph DRC** (:func:`lint_topology` / :func:`lint_simulator`)
  checks a constructed Module/Channel topology for wiring errors —
  double-driven channels, dangling nets, mis-ordered simulator module
  lists, undersized channels, combinational loops (rules ``P5D...``);
* the **AST lint** (:func:`lint_source` / :func:`lint_paths`) checks
  the source for the ready/valid coding discipline the kernel assumes
  — unguarded pushes/pops, foreign-channel mutation, bare framing
  octets (rules ``P5L...``).

The rule catalogue lives in :data:`RULES` and is documented in
``docs/linting.md``; the two are kept in sync by the doc-consistency
tests.  The ``repro lint`` CLI subcommand runs both passes over the
shipped tree.
"""

from repro.lint.rules import RULES, Finding, Rule, Severity, rule
from repro.lint.graph import lint_simulator, lint_topology
from repro.lint.astlint import lint_file, lint_paths, lint_source
from repro.lint.report import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    has_errors,
    render_json,
    render_sarif,
    render_text,
    sort_findings,
)
from repro.lint.suppress import suppressed_lines
from repro.lint.targets import shipped_topologies

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "Severity",
    "rule",
    "lint_topology",
    "lint_simulator",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "render_sarif",
    "sort_findings",
    "has_errors",
    "suppressed_lines",
    "shipped_topologies",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]
