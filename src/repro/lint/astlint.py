"""AST lint for the ready/valid coding discipline.

The cycle-accurate kernel assumes every ``clock()``/``on_cycle()``
body follows the handshake discipline the hardware imposes:

* a ``push()`` only happens once readiness is established — a
  ``can_push`` test, or a room computation over the channel's
  ``capacity``/``occupancy`` (the multi-word-burst form used by the
  CRC and framing stages);
* a ``pop()``/``peek()`` only happens once ``can_pop`` (valid) is
  established;
* modules only operate on channels bound directly on ``self`` (their
  own ports);
* the programmable framing octets come from
  :mod:`repro.hdlc.constants`, never bare ``0x7E``/``0x7D`` literals.

The guard analysis is deliberately syntactic and conservative in the
way real RTL lints are: a guard *dominates* a channel operation if it
appears in an enclosing ``if``/``while`` test, or in a preceding
early-exit ``if`` (one whose body unconditionally returns, raises,
breaks or continues).  Guard polarity is not tracked — mentioning the
handshake signal on the decision path is the discipline being
enforced; getting the polarity right is what the simulator's
:class:`~repro.errors.BackpressureOverflow` is for.

Suppression: append ``# lint: ignore[CODE]`` (or a bare
``# lint: ignore``) to the offending line.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.lint.rules import Finding
from repro.lint.suppress import suppressed_lines

__all__ = ["lint_source", "lint_file", "lint_paths"]

#: The RFC 1662 default framing octets; bare literals of these values
#: must come from repro.hdlc.constants instead (rule P5L003).
_FRAMING_VALUES = {FLAG_OCTET, ESC_OCTET}

#: Files allowed to spell the framing octets literally.
_FRAMING_DEFINERS = ("hdlc/constants.py",)

_CLOCK_METHODS = {"clock", "on_cycle"}
_PUSH_GUARD_ATTRS = {"can_push", "capacity", "occupancy"}
_POP_GUARD_ATTRS = {"can_pop"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``self.out`` -> ``"self.out"``; None for non-name chains."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _guard_keys(test: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Channels whose handshake signals the test mentions.

    Returns ``(push_guarded, pop_guarded)`` receiver chains: a mention
    of ``X.can_push`` / ``X.capacity`` / ``X.occupancy`` guards pushes
    to ``X``; a mention of ``X.can_pop`` guards pops from ``X``.
    """
    push_keys: Set[str] = set()
    pop_keys: Set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Attribute):
            continue
        receiver = _dotted(node.value)
        if receiver is None:
            continue
        if node.attr in _PUSH_GUARD_ATTRS:
            push_keys.add(receiver)
        elif node.attr in _POP_GUARD_ATTRS:
            pop_keys.add(receiver)
    return push_keys, pop_keys


def _terminates(body: Sequence[ast.stmt]) -> bool:
    """True if every path through the statement list exits the block."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return True
    if isinstance(last, ast.If):
        return _terminates(last.body) and _terminates(last.orelse)
    return False


class _ClockBodyChecker:
    """Walks one clock()/on_cycle() body tracking dominating guards."""

    def __init__(self, filename: str, class_name: str, findings: List[Finding]):
        self.filename = filename
        self.class_name = class_name
        self.findings = findings

    # -- channel operation recognition ----------------------------------
    @staticmethod
    def _channel_op(node: ast.AST) -> Optional[Tuple[str, str, ast.Attribute]]:
        """Return ``(kind, receiver, func)`` for push/pop/peek calls."""
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return None
        name = node.func.attr
        if name == "push" and len(node.args) == 1 and not node.keywords:
            kind = "push"
        elif name in ("pop", "peek") and not node.args and not node.keywords:
            kind = "pop"
        else:
            return None
        receiver = _dotted(node.func.value)
        if receiver is None:
            return None
        return kind, receiver, node.func

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(Finding.of(
            code, message, subject=self.class_name,
            file=self.filename, line=getattr(node, "lineno", None),
        ))

    def _check_ops_in(self, stmt: ast.AST,
                      push_guards: Set[str], pop_guards: Set[str]) -> None:
        """Flag unguarded/foreign channel ops under one AST node."""
        for node in ast.walk(stmt):
            op = self._channel_op(node)
            if op is None:
                continue
            kind, receiver, _func = op
            parts = receiver.split(".")
            if parts[0] != "self" or len(parts) != 2:
                self._emit(
                    "P5L004",
                    f"{self.class_name}.clock operates on {receiver!r}, "
                    f"which is not a channel bound directly on self",
                    node,
                )
                continue
            if kind == "push" and receiver not in push_guards:
                self._emit(
                    "P5L001",
                    f"push to {receiver!r} is not dominated by a "
                    f"can_push/room guard",
                    node,
                )
            elif kind == "pop" and receiver not in pop_guards:
                self._emit(
                    "P5L002",
                    f"pop/peek of {receiver!r} is not dominated by a "
                    f"can_pop guard",
                    node,
                )

    def check_body(self, body: Sequence[ast.stmt],
                   push_guards: Set[str], pop_guards: Set[str]) -> None:
        push_guards = set(push_guards)
        pop_guards = set(pop_guards)
        for stmt in body:
            if isinstance(stmt, ast.If):
                new_push, new_pop = _guard_keys(stmt.test)
                # ``if ch.can_pop and ch.peek().eof:`` — the test's own
                # ops are covered by guards appearing in the same test.
                self._check_ops_in_expr(stmt.test, push_guards | new_push,
                                        pop_guards | new_pop)
                self.check_body(stmt.body, push_guards | new_push,
                                pop_guards | new_pop)
                self.check_body(stmt.orelse, push_guards | new_push,
                                pop_guards | new_pop)
                # An early-exit guard dominates the rest of the block.
                if _terminates(stmt.body):
                    push_guards |= new_push
                    pop_guards |= new_pop
            elif isinstance(stmt, ast.While):
                new_push, new_pop = _guard_keys(stmt.test)
                self._check_ops_in_expr(stmt.test, push_guards | new_push,
                                        pop_guards | new_pop)
                self.check_body(stmt.body, push_guards | new_push,
                                pop_guards | new_pop)
                self.check_body(stmt.orelse, push_guards, pop_guards)
            elif isinstance(stmt, ast.For):
                self.check_body(stmt.body, push_guards, pop_guards)
                self.check_body(stmt.orelse, push_guards, pop_guards)
            elif isinstance(stmt, (ast.With,)):
                self.check_body(stmt.body, push_guards, pop_guards)
            elif isinstance(stmt, ast.Try):
                self.check_body(stmt.body, push_guards, pop_guards)
                for handler in stmt.handlers:
                    self.check_body(handler.body, push_guards, pop_guards)
                self.check_body(stmt.orelse, push_guards, pop_guards)
                self.check_body(stmt.finalbody, push_guards, pop_guards)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested scopes are out of the discipline's reach
            else:
                self._check_ops_in(stmt, push_guards, pop_guards)

    # Tests may themselves contain ops (e.g. ``if ch.pop():``); the
    # walker handles expressions and statements alike.
    _check_ops_in_expr = _check_ops_in


def _lint_clock_discipline(tree: ast.Module, filename: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    item.name in _CLOCK_METHODS:
                checker = _ClockBodyChecker(filename, node.name, findings)
                checker.check_body(item.body, set(), set())
    return findings


def _lint_framing_literals(
    tree: ast.Module, filename: str, source_lines: Sequence[str]
) -> List[Finding]:
    normalized = filename.replace("\\", "/")
    if any(normalized.endswith(allowed) for allowed in _FRAMING_DEFINERS):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Constant) and type(node.value) is int
                and node.value in _FRAMING_VALUES):
            continue
        # Only the hex spelling is a framing-octet claim: decimal 125
        # or 126 is a count/duration (e.g. the 125 us SONET frame
        # period), not an escape octet.
        line = source_lines[node.lineno - 1] if node.lineno <= len(source_lines) else ""
        if line[node.col_offset : node.col_offset + 2].lower() != "0x":
            continue
        findings.append(Finding.of(
            "P5L003",
            f"bare framing octet literal 0x{node.value:02X}; use "
            f"repro.hdlc.constants instead",
            subject=f"0x{node.value:02X}",
            file=filename, line=node.lineno,
        ))
    return findings


def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint one file's source text; returns findings (empty = clean)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding.of(
            "P5L001",
            f"file does not parse: {exc.msg}",
            subject=filename, file=filename, line=exc.lineno or 1,
        )]
    findings = _lint_clock_discipline(tree, filename)
    findings += _lint_framing_literals(tree, filename, source.splitlines())
    ignores = suppressed_lines(source)
    kept = []
    for finding in findings:
        codes = ignores.get(finding.line or -1)
        if codes is not None and (not codes or finding.code in codes):
            continue
        kept.append(finding)
    return kept


def lint_file(path) -> List[Finding]:
    """Lint one file on disk."""
    path = pathlib.Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable) -> List[Finding]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: List[Finding] = []
    for entry in paths:
        entry = pathlib.Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file))
    return findings
