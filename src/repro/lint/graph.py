"""Graph design-rule checks over a wired Module/Channel topology.

The checks run on a *constructed* pipeline — no cycle is clocked.
They rely on the observational producer/consumer registration that
:meth:`repro.rtl.module.Module.reads` / ``writes`` record at wiring
time, which every module in the tree performs in its constructor.

``lint_topology(modules, channels)`` interprets the module sequence
exactly as the :class:`~repro.rtl.simulator.Simulator` would: as the
intended **source-to-sink** clocking order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.lint.rules import Finding
from repro.rtl.module import Channel, Module

__all__ = ["lint_topology", "lint_simulator", "dataflow_components"]


def _collect_channels(
    modules: Sequence[Module], channels: Iterable[Channel]
) -> List[Channel]:
    """Union of the passed channels and everything the modules wired."""
    seen: List[Channel] = []
    for channel in channels:
        if channel not in seen:
            seen.append(channel)
    for module in modules:
        for channel in list(module.writes_to) + list(module.reads_from):
            if channel not in seen:
                seen.append(channel)
    return seen


def _sccs(adjacency: Dict[int, Set[int]], count: int) -> List[List[int]]:
    """Strongly connected components (iterative Tarjan), by node index."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    result: List[List[int]] = []
    counter = [0]

    for root in range(count):
        if root in index_of:
            continue
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(adjacency.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def dataflow_components(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> List[List[Module]]:
    """Strongly connected components of the module dataflow graph.

    Shared with :mod:`repro.sta`, whose deadlock-credit analysis runs
    per cyclic component.  Components are returned as module lists;
    membership order follows the (source-to-sink) module sequence.
    """
    module_list = list(modules)
    module_set = set(map(id, module_list))
    order = {id(module): i for i, module in enumerate(module_list)}
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(module_list))}
    for channel in _collect_channels(module_list, channels):
        for producer in channel.producers:
            for consumer in channel.consumers:
                if id(producer) in module_set and id(consumer) in module_set:
                    adjacency[order[id(producer)]].add(order[id(consumer)])
    return [
        [module_list[i] for i in sorted(component)]
        for component in _sccs(adjacency, len(module_list))
    ]


def lint_topology(
    modules: Sequence[Module],
    channels: Iterable[Channel] = (),
    *,
    topology_name: str = "",
) -> List[Finding]:
    """Run every graph DRC rule; returns findings (empty = clean)."""
    findings: List[Finding] = []
    module_list = list(modules)
    module_set = set(map(id, module_list))
    order = {id(module): i for i, module in enumerate(module_list)}
    prefix = f"{topology_name}: " if topology_name else ""
    all_channels = _collect_channels(module_list, channels)

    def emit(code: str, message: str, subject: str) -> None:
        findings.append(Finding.of(code, prefix + message, subject=subject))

    # ---- P5D001/2/3: exactly one producer and one consumer per channel
    for channel in all_channels:
        if len(channel.producers) > 1:
            emit("P5D001",
                 f"channel {channel.name!r} has {len(channel.producers)} "
                 f"producers: {[m.name for m in channel.producers]}",
                 channel.name)
        if len(channel.consumers) > 1:
            emit("P5D002",
                 f"channel {channel.name!r} has {len(channel.consumers)} "
                 f"consumers: {[m.name for m in channel.consumers]}",
                 channel.name)
        if not channel.producers:
            emit("P5D003", f"channel {channel.name!r} has no producer",
                 channel.name)
        if not channel.consumers:
            emit("P5D003", f"channel {channel.name!r} has no consumer",
                 channel.name)

    # ---- P5D008: every wired endpoint must actually be clocked
    for channel in all_channels:
        for role, endpoints in (("producer", channel.producers),
                                ("consumer", channel.consumers)):
            for endpoint in endpoints:
                if id(endpoint) not in module_set:
                    emit("P5D008",
                         f"{role} {endpoint.name!r} of channel "
                         f"{channel.name!r} is not in the module list",
                         endpoint.name)

    # ---- Build the module dataflow graph (producer -> consumer edges).
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(module_list))}
    for channel in all_channels:
        for producer in channel.producers:
            for consumer in channel.consumers:
                if id(producer) in module_set and id(consumer) in module_set:
                    adjacency[order[id(producer)]].add(order[id(consumer)])

    # ---- P5D004: every module with inputs is reachable from a source.
    sources = [i for i, module in enumerate(module_list)
               if not module.reads_from]
    reachable: Set[int] = set(sources)
    frontier = list(sources)
    while frontier:
        node = frontier.pop()
        for successor in adjacency[node]:
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    for i, module in enumerate(module_list):
        if i not in reachable:
            emit("P5D004",
                 f"module {module.name!r} is unreachable from any source "
                 f"module", module.name)

    # ---- SCCs: ring detection for P5D005 exemptions and P5D007.
    components = _sccs(adjacency, len(module_list))
    component_of: Dict[int, int] = {}
    for comp_index, component in enumerate(components):
        for node in component:
            component_of[node] = comp_index
    cyclic_components = {
        comp_index
        for comp_index, component in enumerate(components)
        if len(component) > 1
        or (component and component[0] in adjacency[component[0]])
    }

    # ---- P5D007: every cycle must contain a registered channel.
    for comp_index in sorted(cyclic_components):
        members = set(components[comp_index])
        internal = [
            channel for channel in all_channels
            if any(id(p) in module_set and order[id(p)] in members
                   for p in channel.producers)
            and any(id(c) in module_set and order[id(c)] in members
                    for c in channel.consumers)
        ]
        if internal and not any(channel.registered for channel in internal):
            names = sorted(module_list[n].name for n in members)
            emit("P5D007",
                 f"combinational loop through {names} has no registered "
                 f"channel", names[0])

    # ---- P5D005: list order must be a source-to-sink topological order.
    for channel in all_channels:
        for producer in channel.producers:
            for consumer in channel.consumers:
                if producer is consumer:
                    continue  # registered self-loop (e.g. a FIFO store)
                if id(producer) not in module_set or id(consumer) not in module_set:
                    continue  # reported as P5D008 already
                p, c = order[id(producer)], order[id(consumer)]
                if component_of.get(p) == component_of.get(c) and \
                        component_of.get(p) in cyclic_components:
                    continue  # a ring has no topological order; P5D007 rules it
                if p > c:
                    emit("P5D005",
                         f"producer {producer.name!r} is clocked as if "
                         f"downstream of consumer {consumer.name!r} "
                         f"(list order {p} > {c} for channel "
                         f"{channel.name!r})", channel.name)

    # ---- P5D006: declared burst needs fit the wired capacities.
    for module in module_list:
        for channel, need, why in module.capacity_needs():
            if channel.capacity < need:
                emit("P5D006",
                     f"module {module.name!r} needs {need} words of room "
                     f"in channel {channel.name!r} ({why}) but its "
                     f"capacity is {channel.capacity}", channel.name)

    # ---- P5D009: burst-capable endpoints must state their contracts.
    for module in module_list:
        deep = [
            channel.name
            for channel in _collect_channels([module], ())
            if channel.capacity > 1
        ]
        if not deep:
            continue
        if list(module.capacity_needs()) or module.timing_contract() is not None:
            continue
        emit("P5D009",
             f"module {module.name!r} touches multi-word channel(s) "
             f"{sorted(set(deep))} but declares neither capacity_needs() "
             f"nor a timing_contract()", module.name)

    return findings


def lint_simulator(sim) -> List[Finding]:
    """DRC a built :class:`~repro.rtl.simulator.Simulator` instance."""
    return lint_topology(sim.modules, sim.channels)
