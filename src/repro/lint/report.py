"""Text and JSON reporters for lint findings.

Both renderings are *stable*: findings are sorted by (file, line,
code, message) so repeated runs over the same tree produce identical
output, and the JSON schema carries an explicit version so CI
consumers can parse it defensively.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.rules import RULES, Finding, Severity

__all__ = [
    "sort_findings",
    "render_text",
    "render_json",
    "has_errors",
    "JSON_SCHEMA_VERSION",
]

JSON_SCHEMA_VERSION = 1


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic report order."""
    return sorted(
        findings,
        key=lambda f: (f.file or "", f.line or 0, f.code, f.subject, f.message),
    )


def _counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    counts = _counts(ordered)
    if ordered:
        lines.append(
            f"{len(ordered)} finding(s): "
            f"{counts['error']} error(s), {counts['warning']} warning(s)"
        )
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-parseable report (sorted keys, stable ordering)."""
    ordered = sort_findings(findings)
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "counts": _counts(ordered),
        "findings": [
            {
                "code": finding.code,
                "rule": RULES[finding.code].name,
                "severity": finding.severity.value,
                "message": finding.message,
                "subject": finding.subject,
                "file": finding.file,
                "line": finding.line,
            }
            for finding in ordered
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def has_errors(findings: Sequence[Finding]) -> bool:
    """Whether any finding is error-severity (drives the exit code)."""
    return any(finding.severity is Severity.ERROR for finding in findings)
