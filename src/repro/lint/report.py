"""Text, JSON and SARIF reporters for lint/sta findings.

All renderings are *stable*: findings are sorted by (file, line,
code, message) so repeated runs over the same tree produce identical
output, and the JSON schema carries an explicit version so CI
consumers can parse it defensively.  The SARIF 2.1.0 rendering is the
interchange format CI systems (GitHub code scanning among them) turn
into inline PR annotations; graph findings with no source location
carry their module/channel subject as a logical location instead.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.rules import RULES, Finding, Severity

__all__ = [
    "sort_findings",
    "render_text",
    "render_json",
    "render_sarif",
    "has_errors",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic report order."""
    return sorted(
        findings,
        key=lambda f: (f.file or "", f.line or 0, f.code, f.subject, f.message),
    )


def _counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    counts = _counts(ordered)
    if ordered:
        lines.append(
            f"{len(ordered)} finding(s): "
            f"{counts['error']} error(s), {counts['warning']} warning(s)"
        )
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-parseable report (sorted keys, stable ordering)."""
    ordered = sort_findings(findings)
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "counts": _counts(ordered),
        "findings": [
            {
                "code": finding.code,
                "rule": RULES[finding.code].name,
                "severity": finding.severity.value,
                "message": finding.message,
                "subject": finding.subject,
                "file": finding.file,
                "line": finding.line,
            }
            for finding in ordered
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rule(code: str) -> Dict:
    rule = RULES[code]
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": rule.severity.value},
    }


def _sarif_result(finding: Finding) -> Dict:
    result: Dict = {
        "ruleId": finding.code,
        "level": finding.severity.value,
        "message": {"text": finding.message},
    }
    if finding.file:
        region = {"startLine": finding.line} if finding.line else {}
        location: Dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
                **({"region": region} if region else {}),
            }
        }
        result["locations"] = [location]
    elif finding.subject:
        # Graph/timing findings have no source file: the subject is a
        # module or channel in the constructed topology.
        result["locations"] = [
            {"logicalLocations": [{"name": finding.subject, "kind": "member"}]}
        ]
    return result


def render_sarif(findings: Sequence[Finding], *, tool_name: str = "repro-lint") -> str:
    """SARIF 2.1.0 log: the CI interchange format for code scanners.

    Only the rules actually referenced by the findings appear in the
    tool's rule catalogue, keeping the log small and the diff stable.
    """
    ordered = sort_findings(findings)
    referenced = sorted({finding.code for finding in ordered})
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": [_sarif_rule(code) for code in referenced],
                    }
                },
                "results": [_sarif_result(finding) for finding in ordered],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def has_errors(findings: Sequence[Finding]) -> bool:
    """Whether any finding is error-severity (drives the exit code)."""
    return any(finding.severity is Severity.ERROR for finding in findings)
