"""Rule registry and findings for the P5 design-rule checker.

Every rule models one *hardware* property the P5 architecture relies
on: the graph rules (``P5D...``) are the structural checks an HDL DRC
runs on a netlist before synthesis; the AST rules (``P5L...``) are the
coding-discipline checks an RTL lint (unguarded writes, magic framing
constants) runs on the source.  Codes are stable: tools and
suppression comments reference them, and ``docs/linting.md`` catalogues
them (checked against this registry by the doc-consistency tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Severity", "Rule", "Finding", "RULES", "rule"]


class Severity(enum.Enum):
    """How bad a violation is; errors fail the build, warnings advise."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One design rule: stable code, severity and hardware rationale."""

    code: str
    name: str
    severity: Severity
    summary: str
    rationale: str


#: The full rule catalogue, keyed by code.  ``docs/linting.md`` must
#: list exactly these codes (enforced by test_docs_consistency.py).
RULES: Dict[str, Rule] = {}


def _register(rule_obj: Rule) -> Rule:
    if rule_obj.code in RULES:  # pragma: no cover - registry integrity
        raise ValueError(f"duplicate rule code {rule_obj.code}")
    RULES[rule_obj.code] = rule_obj
    return rule_obj


def rule(code: str) -> Rule:
    """Look up a rule by code (KeyError on unknown codes)."""
    return RULES[code]


# --------------------------------------------------------------- graph DRC
_register(Rule(
    "P5D001", "multiple-producers", Severity.ERROR,
    "A channel is written by more than one module.",
    "A pipeline register has exactly one driver; two modules pushing "
    "into one channel is contention on a physical wire (a multi-driven "
    "net in HDL terms) and makes arrival order simulation-schedule "
    "dependent.",
))
_register(Rule(
    "P5D002", "multiple-consumers", Severity.ERROR,
    "A channel is read by more than one module.",
    "A pop is destructive: two readers steal words from each other, "
    "which has no hardware equivalent (a register output can fan out, "
    "but a FIFO read port cannot be shared without an arbiter).",
))
_register(Rule(
    "P5D003", "dangling-channel", Severity.ERROR,
    "A channel has no producer or no consumer.",
    "An undriven input floats and an unread output silently fills "
    "until backpressure deadlocks the pipeline; both are wiring "
    "mistakes a netlist DRC rejects.",
))
_register(Rule(
    "P5D004", "unreachable-module", Severity.WARNING,
    "A module is not reachable from any source module.",
    "Stages no data can ever reach are dead logic: either the wiring "
    "is wrong or the module should not be in the design (unconnected "
    "instance).",
))
_register(Rule(
    "P5D005", "clock-order", Severity.ERROR,
    "The simulator's module list is not in source-to-sink order.",
    "The kernel clocks modules sink-first (reversed list) so a "
    "non-stalled pipeline advances every stage in one cycle; that is "
    "only equivalent to flip-flop semantics if the list is a "
    "topological order of the dataflow graph.",
))
_register(Rule(
    "P5D006", "capacity-shortfall", Severity.ERROR,
    "A channel is shallower than a stage's declared worst-case burst.",
    "Stages that flush multi-word bursts (CRC trailer, flag wrap, "
    "delineation of tiny frames) check for room before consuming; if "
    "the channel can never hold the burst the stage stalls forever — "
    "a sizing bug caught at elaboration time in hardware.",
))
_register(Rule(
    "P5D007", "combinational-loop", Severity.ERROR,
    "A cycle of modules contains no registered channel.",
    "A feedback path with no flip-flop in it is a combinational loop: "
    "unstable in hardware, unschedulable in the simulator.  Any "
    "legitimate ring must be cut by at least one registered channel.",
))
_register(Rule(
    "P5D008", "unclocked-endpoint", Severity.ERROR,
    "A channel endpoint module is missing from the simulated module list.",
    "A producer or consumer that is wired but never clocked models a "
    "stage with no clock connected: its channel fills or starves and "
    "the pipeline wedges.",
))

_register(Rule(
    "P5D009", "undeclared-burst-contract", Severity.WARNING,
    "A module touches multi-word channels but declares no capacity or "
    "timing contract.",
    "Multi-word channels exist to absorb bursts, yet without a "
    "capacity_needs() or timing_contract() declaration the DRC and the "
    "static timing analyzer cannot prove the depth is sufficient — the "
    "sizing rests on an undocumented assumption.",
))

# ------------------------------------------------------- static timing (sta)
_register(Rule(
    "P5T001", "latency-budget-exceeded", Severity.ERROR,
    "A pipeline path's declared first-word latency exceeds its budget.",
    "The paper's headline numbers (4-cycle sorter fill, ~50 ns at "
    "78.125 MHz) are static properties of the stage structure; a path "
    "whose summed contract latencies break the budget means the "
    "architecture no longer meets its advertised timing.",
))
_register(Rule(
    "P5T002", "undersized-buffer", Severity.ERROR,
    "A channel or internal buffer is shallower than the statically "
    "derived worst-case demand.",
    "Worst-case expansion (stuffing doubles a word) and burst flushes "
    "determine the minimum safe depth of every FIFO; a shallower "
    "buffer either drops words or wedges the pipeline under exactly "
    "the adversarial payload the transparency mechanism must survive.",
))
_register(Rule(
    "P5T003", "insufficient-cycle-credit", Severity.ERROR,
    "A feedback cycle's registered-channel credit cannot cover its "
    "in-flight demand.",
    "A ring of stages only avoids deadlock if the registered channels "
    "on the cycle can hold every word the member stages may have in "
    "flight at once; with less credit the ring can reach a state where "
    "every stage waits on a full channel — a classic store-and-forward "
    "deadlock.",
))
_register(Rule(
    "P5T004", "inconsistent-contract", Severity.ERROR,
    "A module's timing contract contradicts itself or its wiring.",
    "A contract declaring outputs it does not write, non-positive "
    "latency or initiation interval, or expansion bounds with min "
    "above max is wrong by construction — analyses built on it would "
    "prove nothing.",
))
_register(Rule(
    "P5T005", "unconstrained-path", Severity.WARNING,
    "A pipeline path crosses a module with no timing contract.",
    "Latency bounds are sums over per-stage declarations; one "
    "undeclared stage makes every path through it unbounded, silently "
    "excluding it from the very analysis that validates the paper's "
    "timing claims.",
))
_register(Rule(
    "P5T006", "contract-conformance", Severity.ERROR,
    "An observed run violated a module's declared timing contract.",
    "Contracts are only trustworthy if simulation cross-checks them: "
    "a module whose measured first-word latency, expansion ratio or "
    "buffer occupancy exceeds its declaration has a wrong declaration "
    "or a wrong implementation — either way the static results are "
    "invalid.",
))

# ---------------------------------------------------------------- AST lint
_register(Rule(
    "P5L001", "unguarded-push", Severity.ERROR,
    "A push() in a clock body is not dominated by a can_push/room guard.",
    "Pushing into a full channel is a BackpressureOverflow at "
    "simulation time and data loss in hardware; the ready/valid "
    "discipline requires checking readiness *before* driving data.",
))
_register(Rule(
    "P5L002", "unguarded-pop", Severity.ERROR,
    "A pop()/peek() in a clock body is not dominated by a can_pop guard.",
    "Reading an empty channel consumes garbage (valid was low); the "
    "handshake requires qualifying every read with the valid signal.",
))
_register(Rule(
    "P5L003", "bare-framing-octet", Severity.ERROR,
    "A bare 0x7E/0x7D literal is used instead of the hdlc constants.",
    "The flag and escape octets are *programmable* in the P5; "
    "hard-coding their RFC 1662 defaults silently breaks every "
    "non-default framing configuration.",
))
_register(Rule(
    "P5L004", "foreign-channel-op", Severity.ERROR,
    "A clock body operates on a channel not bound directly on self.",
    "A module may only drive its own ports; reaching through another "
    "module to push/pop its channels is a cross-hierarchy net "
    "assignment — invisible to the DRC's ownership model and to any "
    "reader of the wiring.",
))


@dataclass(frozen=True)
class Finding:
    """One rule violation, locatable either in source or in the graph."""

    code: str
    message: str
    subject: str = ""                 # module/channel name or source symbol
    file: Optional[str] = None        # AST findings: path
    line: Optional[int] = None        # AST findings: 1-based line
    severity: Severity = field(default=Severity.ERROR)

    @staticmethod
    def of(code: str, message: str, **kwargs) -> "Finding":
        """Build a finding, inheriting the rule's severity."""
        return Finding(code=code, message=message,
                       severity=RULES[code].severity, **kwargs)

    def render(self) -> str:
        """One text-report line: ``file:line: CODE message`` style."""
        where = ""
        if self.file is not None:
            where = f"{self.file}:{self.line or 0}: "
        elif self.subject:
            where = f"{self.subject}: "
        return f"{where}{self.code} [{self.severity.value}] {self.message}"
