"""Rule registry and findings for the P5 design-rule checker.

Every rule models one *hardware* property the P5 architecture relies
on: the graph rules (``P5D...``) are the structural checks an HDL DRC
runs on a netlist before synthesis; the AST rules (``P5L...``) are the
coding-discipline checks an RTL lint (unguarded writes, magic framing
constants) runs on the source.  Codes are stable: tools and
suppression comments reference them, and ``docs/linting.md`` catalogues
them (checked against this registry by the doc-consistency tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Severity", "Rule", "Finding", "RULES", "rule"]


class Severity(enum.Enum):
    """How bad a violation is; errors fail the build, warnings advise."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One design rule: stable code, severity and hardware rationale."""

    code: str
    name: str
    severity: Severity
    summary: str
    rationale: str


#: The full rule catalogue, keyed by code.  ``docs/linting.md`` must
#: list exactly these codes (enforced by test_docs_consistency.py).
RULES: Dict[str, Rule] = {}


def _register(rule_obj: Rule) -> Rule:
    if rule_obj.code in RULES:  # pragma: no cover - registry integrity
        raise ValueError(f"duplicate rule code {rule_obj.code}")
    RULES[rule_obj.code] = rule_obj
    return rule_obj


def rule(code: str) -> Rule:
    """Look up a rule by code (KeyError on unknown codes)."""
    return RULES[code]


# --------------------------------------------------------------- graph DRC
_register(Rule(
    "P5D001", "multiple-producers", Severity.ERROR,
    "A channel is written by more than one module.",
    "A pipeline register has exactly one driver; two modules pushing "
    "into one channel is contention on a physical wire (a multi-driven "
    "net in HDL terms) and makes arrival order simulation-schedule "
    "dependent.",
))
_register(Rule(
    "P5D002", "multiple-consumers", Severity.ERROR,
    "A channel is read by more than one module.",
    "A pop is destructive: two readers steal words from each other, "
    "which has no hardware equivalent (a register output can fan out, "
    "but a FIFO read port cannot be shared without an arbiter).",
))
_register(Rule(
    "P5D003", "dangling-channel", Severity.ERROR,
    "A channel has no producer or no consumer.",
    "An undriven input floats and an unread output silently fills "
    "until backpressure deadlocks the pipeline; both are wiring "
    "mistakes a netlist DRC rejects.",
))
_register(Rule(
    "P5D004", "unreachable-module", Severity.WARNING,
    "A module is not reachable from any source module.",
    "Stages no data can ever reach are dead logic: either the wiring "
    "is wrong or the module should not be in the design (unconnected "
    "instance).",
))
_register(Rule(
    "P5D005", "clock-order", Severity.ERROR,
    "The simulator's module list is not in source-to-sink order.",
    "The kernel clocks modules sink-first (reversed list) so a "
    "non-stalled pipeline advances every stage in one cycle; that is "
    "only equivalent to flip-flop semantics if the list is a "
    "topological order of the dataflow graph.",
))
_register(Rule(
    "P5D006", "capacity-shortfall", Severity.ERROR,
    "A channel is shallower than a stage's declared worst-case burst.",
    "Stages that flush multi-word bursts (CRC trailer, flag wrap, "
    "delineation of tiny frames) check for room before consuming; if "
    "the channel can never hold the burst the stage stalls forever — "
    "a sizing bug caught at elaboration time in hardware.",
))
_register(Rule(
    "P5D007", "combinational-loop", Severity.ERROR,
    "A cycle of modules contains no registered channel.",
    "A feedback path with no flip-flop in it is a combinational loop: "
    "unstable in hardware, unschedulable in the simulator.  Any "
    "legitimate ring must be cut by at least one registered channel.",
))
_register(Rule(
    "P5D008", "unclocked-endpoint", Severity.ERROR,
    "A channel endpoint module is missing from the simulated module list.",
    "A producer or consumer that is wired but never clocked models a "
    "stage with no clock connected: its channel fills or starves and "
    "the pipeline wedges.",
))

# ---------------------------------------------------------------- AST lint
_register(Rule(
    "P5L001", "unguarded-push", Severity.ERROR,
    "A push() in a clock body is not dominated by a can_push/room guard.",
    "Pushing into a full channel is a BackpressureOverflow at "
    "simulation time and data loss in hardware; the ready/valid "
    "discipline requires checking readiness *before* driving data.",
))
_register(Rule(
    "P5L002", "unguarded-pop", Severity.ERROR,
    "A pop()/peek() in a clock body is not dominated by a can_pop guard.",
    "Reading an empty channel consumes garbage (valid was low); the "
    "handshake requires qualifying every read with the valid signal.",
))
_register(Rule(
    "P5L003", "bare-framing-octet", Severity.ERROR,
    "A bare 0x7E/0x7D literal is used instead of the hdlc constants.",
    "The flag and escape octets are *programmable* in the P5; "
    "hard-coding their RFC 1662 defaults silently breaks every "
    "non-default framing configuration.",
))
_register(Rule(
    "P5L004", "foreign-channel-op", Severity.ERROR,
    "A clock body operates on a channel not bound directly on self.",
    "A module may only drive its own ports; reaching through another "
    "module to push/pop its channels is a cross-hierarchy net "
    "assignment — invisible to the DRC's ownership model and to any "
    "reader of the wiring.",
))


@dataclass(frozen=True)
class Finding:
    """One rule violation, locatable either in source or in the graph."""

    code: str
    message: str
    subject: str = ""                 # module/channel name or source symbol
    file: Optional[str] = None        # AST findings: path
    line: Optional[int] = None        # AST findings: 1-based line
    severity: Severity = field(default=Severity.ERROR)

    @staticmethod
    def of(code: str, message: str, **kwargs) -> "Finding":
        """Build a finding, inheriting the rule's severity."""
        return Finding(code=code, message=message,
                       severity=RULES[code].severity, **kwargs)

    def render(self) -> str:
        """One text-report line: ``file:line: CODE message`` style."""
        where = ""
        if self.file is not None:
            where = f"{self.file}:{self.line or 0}: "
        elif self.subject:
            where = f"{self.subject}: "
        return f"{where}{self.code} [{self.severity.value}] {self.message}"
