"""``# lint: ignore[...]`` suppression comments.

A finding is suppressed when the offending source line carries a
comment of the form::

    something()          # lint: ignore[P5L003]
    another()            # lint: ignore[P5L001, P5L002]
    escape_hatch()       # lint: ignore

A bare ``ignore`` (no bracket list) suppresses every rule on that
line; named codes suppress only those rules.  Suppressions are
line-scoped on purpose — the discipline mirrors HDL lint waivers,
which are attached to the specific net or statement they waive.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

__all__ = ["suppressed_lines"]

_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to suppressed codes.

    An empty frozenset means "suppress everything on this line".
    """
    table: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            table[number] = frozenset()
        else:
            table[number] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return table
