"""The shipped topologies the ``repro lint`` CLI checks by default.

Building a topology wires modules and channels (registering the graph
observationally) without clocking a cycle — exactly the elaboration
step a hardware DRC runs against.  Each entry covers a distinct
wiring shape: the full cross-connected duplex system at both datapath
widths (4-stage and 2-stage escape pipelines), a standalone TX
pipeline drained by a sink, a standalone RX pipeline fed by a source,
the single-unit trace harness from the CLI, and the fault-injection
loopback harness (TX looped to RX through a BeatFaultInjector).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.rtl.module import Channel, Module

__all__ = ["shipped_topologies"]


def shipped_topologies() -> List[Tuple[str, Sequence[Module], Iterable[Channel]]]:
    """Build ``(name, modules, channels)`` triples for the graph DRC."""
    from repro.core.config import P5Config
    from repro.core.escape_pipeline import PipelinedEscapeGenerate
    from repro.core.p5 import build_duplex
    from repro.core.rx import P5Receiver
    from repro.core.tx import P5Transmitter
    from repro.rtl.pipeline import StreamSink, StreamSource

    topologies: List[Tuple[str, Sequence[Module], Iterable[Channel]]] = []

    for config in (P5Config.thirty_two_bit(), P5Config.eight_bit()):
        _a, _b, sim = build_duplex(config)
        topologies.append(
            (f"duplex/{config.width_bits}-bit", sim.modules, sim.channels)
        )

    config = P5Config.thirty_two_bit()
    tx = P5Transmitter(config, name="tx")
    tx_sink = StreamSink("wire", tx.phy_out)
    topologies.append(("tx-standalone", tx.modules + [tx_sink], tx.channels))

    rx = P5Receiver(config, name="rx")
    rx_source = StreamSource("wire", rx.phy_in, [])
    topologies.append(("rx-standalone", [rx_source] + rx.modules, rx.channels))

    c_in = Channel("escgen.in", capacity=2)
    c_out = Channel("escgen.out", capacity=2)
    source = StreamSource("src", c_in, [])
    unit = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    topologies.append(("escape-trace", [source, unit, sink], [c_in, c_out]))

    from repro.faults.campaign import build_fault_harness

    _system, _injector, fault_sim = build_fault_harness(
        P5Config.thirty_two_bit(max_frame_octets=512)
    )
    topologies.append(("fault-harness", fault_sim.modules, fault_sim.channels))

    from repro.fastpath.modules import build_fastpath_loopback

    fp_modules, fp_channels = build_fastpath_loopback(P5Config.thirty_two_bit())
    topologies.append(("fastpath-loopback", fp_modules, fp_channels))

    from repro.resilience.targets import build_dual_lane_topology

    dl_modules, dl_channels = build_dual_lane_topology()
    topologies.append(("resilience-dual-lane", dl_modules, dl_channels))

    return topologies
