"""MAPOS — Multiple Access Protocol over SONET/SDH (RFC 2171).

The paper makes the P5's address field *programmable* specifically
"so that it is compatible with MAPOS systems": MAPOS keeps PPP's
HDLC-like framing but turns the constant 0xFF address octet into a
real station address switched by a central node.  This package
implements the frame format, the address rules and a frame switch, so
the programmability claim can be exercised end-to-end (see
``examples/mapos_lan.py``).
"""

from repro.mapos.addresses import (
    BROADCAST_ADDRESS,
    group_address,
    is_broadcast,
    is_group,
    station_address,
    unpack_address,
)
from repro.mapos.frame import MAPOS_PROTO_IP, MAPOS_PROTO_NSP, MaposFrame
from repro.mapos.switch import MaposSwitch

__all__ = [
    "BROADCAST_ADDRESS",
    "station_address",
    "group_address",
    "unpack_address",
    "is_broadcast",
    "is_group",
    "MaposFrame",
    "MAPOS_PROTO_IP",
    "MAPOS_PROTO_NSP",
    "MaposSwitch",
]
