"""MAPOS address rules (RFC 2171 section 2.2).

An address octet packs a 7-bit value and an LSB that is always 1 (so
an address can never alias the 0x7E flag, whose LSB is 0):

* ``nnnnnnn1`` — unicast station address ``nnnnnnn``;
* ``1111111`` + 1 = ``0xFF`` — broadcast;
* the MSB set (and not broadcast) marks group addresses.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "BROADCAST_ADDRESS",
    "station_address",
    "group_address",
    "unpack_address",
    "is_broadcast",
    "is_group",
]

#: All-stations address.
BROADCAST_ADDRESS = 0xFF


def station_address(number: int) -> int:
    """Encode unicast station ``number`` (1..63) as an address octet.

    Station numbers are 6 bits in a single-switch MAPOS network (the
    7th bit distinguishes group addresses); 0 is reserved.
    """
    if not 1 <= number <= 0x3F:
        raise ValueError(f"station number must be 1..63, got {number}")
    return (number << 1) | 1


def group_address(group: int) -> int:
    """Encode multicast group ``group`` (1..62) as an address octet."""
    if not 1 <= group <= 0x3E:
        raise ValueError(f"group number must be 1..62, got {group}")
    return 0x80 | (group << 1) | 1


def unpack_address(octet: int) -> Tuple[int, bool, bool]:
    """Decode an address octet to ``(number, is_group, is_broadcast)``."""
    if not 0 <= octet <= 0xFF:
        raise ValueError(f"address octet out of range: {octet}")
    if not octet & 1:
        raise ValueError(f"malformed MAPOS address 0x{octet:02X} (LSB must be 1)")
    if octet == BROADCAST_ADDRESS:
        return (0x7F, False, True)
    group = bool(octet & 0x80)
    number = (octet >> 1) & (0x3F if group else 0x7F)
    return (number, group, False)


def is_broadcast(octet: int) -> bool:
    return octet == BROADCAST_ADDRESS


def is_group(octet: int) -> bool:
    return octet != BROADCAST_ADDRESS and bool(octet & 0x80)
