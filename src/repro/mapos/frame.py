"""MAPOS frame format (RFC 2171 section 2.1).

Identical HDLC-like layout to PPP — flag / address / control /
protocol(2) / information / FCS — except that the address octet is a
real destination address, which is exactly why the P5 keeps its
address matcher programmable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FramingError
from repro.hdlc.constants import DEFAULT_CONTROL
from repro.mapos.addresses import unpack_address

__all__ = ["MaposFrame", "MAPOS_PROTO_IP", "MAPOS_PROTO_NSP"]

#: IPv4 over MAPOS (same code point as PPP).
MAPOS_PROTO_IP = 0x0021
#: Node/Switch Protocol (address assignment), RFC 2171 section 5.
MAPOS_PROTO_NSP = 0xFE01


@dataclass(frozen=True)
class MaposFrame:
    """One MAPOS frame (content between the flags, before FCS)."""

    address: int
    protocol: int
    information: bytes = b""
    control: int = DEFAULT_CONTROL

    def __post_init__(self) -> None:
        unpack_address(self.address)  # validates
        if not 0 <= self.protocol <= 0xFFFF:
            raise ValueError(f"protocol out of range: {self.protocol}")

    def encode(self) -> bytes:
        """Serialise to frame content (what the FCS covers)."""
        return (
            bytes([self.address, self.control])
            + self.protocol.to_bytes(2, "big")
            + self.information
        )

    @classmethod
    def decode(cls, content: bytes) -> "MaposFrame":
        """Parse frame content (no header compression in MAPOS)."""
        if len(content) < 4:
            raise FramingError("MAPOS frame shorter than its header")
        return cls(
            address=content[0],
            control=content[1],
            protocol=int.from_bytes(content[2:4], "big"),
            information=content[4:],
        )
