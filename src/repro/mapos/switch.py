"""A MAPOS frame switch (RFC 2171 section 1: "unlike PPP, MAPOS
provides multiple access capability using a SONET/SDH switch").

Stations hang off numbered ports; the switch assigns each port its
station address (the NSP function, simplified to an explicit
:meth:`attach`) and forwards frames by destination address octet:
unicast to the owning port, broadcast to all other ports, group
addresses to subscribed ports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Set

from repro.errors import ConfigError
from repro.mapos.addresses import is_broadcast, is_group, station_address
from repro.mapos.frame import MaposFrame

__all__ = ["MaposSwitch", "SwitchPort"]


@dataclass
class SwitchPort:
    """One switch port: its assigned address and delivery queue."""

    number: int
    address: int
    inbox: Deque[MaposFrame] = field(default_factory=deque)
    groups: Set[int] = field(default_factory=set)
    frames_forwarded: int = 0


class MaposSwitch:
    """Address-learning-free MAPOS switch (addresses are assigned)."""

    def __init__(self) -> None:
        self._ports: Dict[int, SwitchPort] = {}
        self._by_address: Dict[int, SwitchPort] = {}
        self.frames_switched = 0
        self.frames_dropped = 0

    # ---------------------------------------------------------------- admin
    def attach(self, port_number: int) -> SwitchPort:
        """Attach a station; the switch assigns the port's address.

        RFC 2171's NSP assigns addresses derived from the switch port
        number — modelled directly: port n gets station address n.
        """
        if port_number in self._ports:
            raise ConfigError(f"port {port_number} already attached")
        port = SwitchPort(port_number, station_address(port_number))
        self._ports[port_number] = port
        self._by_address[port.address] = port
        return port

    def join_group(self, port_number: int, group_octet: int) -> None:
        """Subscribe a port to a multicast group address octet."""
        if not is_group(group_octet):
            raise ConfigError(f"0x{group_octet:02X} is not a group address")
        self._port(port_number).groups.add(group_octet)

    def _port(self, number: int) -> SwitchPort:
        try:
            return self._ports[number]
        except KeyError:
            raise KeyError(f"no port {number} attached") from None

    # ------------------------------------------------------------ forwarding
    def ingress(self, from_port: int, frame: MaposFrame) -> List[int]:
        """Switch one frame; returns the port numbers it was copied to."""
        self._port(from_port)  # validate source
        self.frames_switched += 1
        address = frame.address
        delivered: List[int] = []
        if is_broadcast(address):
            for port in self._ports.values():
                if port.number != from_port:
                    port.inbox.append(frame)
                    port.frames_forwarded += 1
                    delivered.append(port.number)
        elif is_group(address):
            for port in self._ports.values():
                if port.number != from_port and address in port.groups:
                    port.inbox.append(frame)
                    port.frames_forwarded += 1
                    delivered.append(port.number)
        else:
            port = self._by_address.get(address)
            if port is None or port.number == from_port:
                self.frames_dropped += 1
            else:
                port.inbox.append(frame)
                port.frames_forwarded += 1
                delivered.append(port.number)
        return delivered

    def ports(self) -> List[SwitchPort]:
        return list(self._ports.values())
