"""Simplified physical-layer models.

The paper interfaces the P5 "to the most common optical transmission
systems" through a simplified PHY interface; likewise here:

* :mod:`repro.phy.line` — a Bernoulli bit-error line (and burst
  errors) for error-injection experiments;
* :mod:`repro.phy.serdes` — conversion between the word-wide datapath
  beats and the serial octet stream.
"""

from repro.phy.line import BitErrorLine, LineStats, make_beat_corruptor
from repro.phy.serdes import deserialize, serialize

__all__ = [
    "BitErrorLine",
    "LineStats",
    "make_beat_corruptor",
    "serialize",
    "deserialize",
]
