"""Bit-error line models for error-injection experiments."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.rtl.pipeline import WordBeat
from repro.utils.rng import SeedLike, make_rng

__all__ = ["BitErrorLine", "make_beat_corruptor"]


class BitErrorLine:
    """A memoryless (Bernoulli) binary channel over byte buffers.

    Each transmitted bit is flipped independently with probability
    ``ber``.  Vectorised: a whole buffer's error mask is drawn in one
    numpy call.
    """

    def __init__(self, ber: float, seed: SeedLike = None) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError("BER must be in [0, 1]")
        self.ber = ber
        self._rng = make_rng(seed)
        self.bits_sent = 0
        self.bits_flipped = 0

    def transmit(self, data: bytes) -> bytes:
        """Pass ``data`` through the channel."""
        arr = np.frombuffer(data, dtype=np.uint8)
        self.bits_sent += 8 * arr.size
        if self.ber == 0.0 or arr.size == 0:
            return data
        flips = self._rng.random((arr.size, 8)) < self.ber
        n_flips = int(flips.sum())
        if n_flips == 0:
            return data
        self.bits_flipped += n_flips
        masks = np.packbits(flips, axis=1, bitorder="little").reshape(-1)
        return (arr ^ masks).tobytes()

    def burst(self, data: bytes, start_bit: int, length_bits: int) -> bytes:
        """Deterministically flip a contiguous bit range (burst error)."""
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        end = min(start_bit + length_bits, bits.size)
        bits[start_bit:end] ^= 1
        self.bits_flipped += max(0, end - start_bit)
        return np.packbits(bits).tobytes()

    @property
    def observed_ber(self) -> float:
        """Measured flip rate so far."""
        return self.bits_flipped / self.bits_sent if self.bits_sent else 0.0


def make_beat_corruptor(
    ber: float, seed: SeedLike = None
) -> Callable[[WordBeat], WordBeat]:
    """A :class:`~repro.core.p5.PhyWire` ``corrupt`` hook flipping bits.

    Only valid lanes are disturbed (invalid lanes carry no wire bits).
    """
    line = BitErrorLine(ber, seed)

    def corrupt(beat: WordBeat) -> WordBeat:
        payload = line.transmit(beat.payload())
        lanes = list(beat.lanes)
        cursor = 0
        for i, ok in enumerate(beat.valid):
            if ok:
                lanes[i] = payload[cursor]
                cursor += 1
        return WordBeat(tuple(lanes), beat.valid, sof=beat.sof, eof=beat.eof)

    corrupt.line = line  # expose stats to the caller
    return corrupt
