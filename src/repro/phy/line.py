"""Bit-error line models for error-injection experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.rtl.pipeline import WordBeat
from repro.utils.rng import SeedLike, make_rng

__all__ = ["LineStats", "BitErrorLine", "make_beat_corruptor"]


@dataclass
class LineStats:
    """Ground-truth statistics of one error-injecting line.

    Shared by every injection path (:meth:`BitErrorLine.transmit`,
    :meth:`BitErrorLine.burst`, the beat corruptor and the campaign
    injectors) so reconciliation checks can compare what the line
    *actually did* against what the receiver's OAM counters report.
    """

    bits_sent: int = 0
    bits_flipped: int = 0
    transmits: int = 0
    bursts: int = 0

    @property
    def observed_ber(self) -> float:
        """Measured flip rate so far."""
        return self.bits_flipped / self.bits_sent if self.bits_sent else 0.0

    def merge(self, other: "LineStats") -> "LineStats":
        """Element-wise sum (combining multiple lines' ground truth)."""
        return LineStats(
            bits_sent=self.bits_sent + other.bits_sent,
            bits_flipped=self.bits_flipped + other.bits_flipped,
            transmits=self.transmits + other.transmits,
            bursts=self.bursts + other.bursts,
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON reports."""
        return {
            "bits_sent": self.bits_sent,
            "bits_flipped": self.bits_flipped,
            "transmits": self.transmits,
            "bursts": self.bursts,
        }


class BitErrorLine:
    """A memoryless (Bernoulli) binary channel over byte buffers.

    Each transmitted bit is flipped independently with probability
    ``ber``.  Vectorised: a whole buffer's error mask is drawn in one
    numpy call.  All accounting lives in :attr:`stats` (a shared
    :class:`LineStats`); the ``bits_sent``/``bits_flipped`` properties
    are convenience views of it.
    """

    def __init__(self, ber: float, seed: SeedLike = None) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError("BER must be in [0, 1]")
        self.ber = ber
        self._rng = make_rng(seed)
        self.stats = LineStats()

    @property
    def bits_sent(self) -> int:
        return self.stats.bits_sent

    @property
    def bits_flipped(self) -> int:
        return self.stats.bits_flipped

    def transmit(self, data: bytes) -> bytes:
        """Pass ``data`` through the channel."""
        arr = np.frombuffer(data, dtype=np.uint8)
        self.stats.transmits += 1
        self.stats.bits_sent += 8 * arr.size
        if self.ber == 0.0 or arr.size == 0:
            return data
        flips = self._rng.random((arr.size, 8)) < self.ber
        n_flips = int(flips.sum())
        if n_flips == 0:
            return data
        self.stats.bits_flipped += n_flips
        masks = np.packbits(flips, axis=1, bitorder="little").reshape(-1)
        return (arr ^ masks).tobytes()

    def burst(self, data: bytes, start_bit: int, length_bits: int) -> bytes:
        """Deterministically flip a contiguous bit range (burst error).

        Accounts ``bits_sent`` exactly as :meth:`transmit` does (the
        whole buffer crossed the line) so :attr:`LineStats.observed_ber`
        stays meaningful when the two are mixed.
        """
        self.stats.bursts += 1
        self.stats.bits_sent += 8 * len(data)
        if not data:
            return data
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        end = min(start_bit + length_bits, bits.size)
        bits[start_bit:end] ^= 1
        self.stats.bits_flipped += max(0, end - start_bit)
        return np.packbits(bits).tobytes()

    @property
    def observed_ber(self) -> float:
        """Measured flip rate so far."""
        return self.stats.observed_ber


def make_beat_corruptor(
    ber: float, seed: SeedLike = None
) -> Callable[[WordBeat], WordBeat]:
    """A :class:`~repro.core.p5.PhyWire` ``corrupt`` hook flipping bits.

    Only valid lanes are disturbed (invalid lanes carry no wire bits).
    """
    line = BitErrorLine(ber, seed)

    def corrupt(beat: WordBeat) -> WordBeat:
        payload = line.transmit(beat.payload())
        lanes = list(beat.lanes)
        cursor = 0
        for i, ok in enumerate(beat.valid):
            if ok:
                lanes[i] = payload[cursor]
                cursor += 1
        return WordBeat(tuple(lanes), beat.valid, sof=beat.sof, eof=beat.eof)

    corrupt.line = line  # expose stats to the caller
    return corrupt
