"""Serialiser/deserialiser between datapath words and the octet line."""

from __future__ import annotations

from typing import Iterable, List

from repro.rtl.pipeline import WordBeat, beats_from_bytes, bytes_from_beats

__all__ = ["serialize", "deserialize"]


def serialize(beats: Iterable[WordBeat]) -> bytes:
    """Datapath words to the transmitted octet stream.

    Only valid lanes reach the wire — the PHY's transmit-enable per
    lane, which is how partial tail words avoid padding the line.
    """
    return bytes_from_beats(beats)


def deserialize(data: bytes, width_bytes: int) -> List[WordBeat]:
    """Octet stream to full-width datapath words (ragged tail kept).

    The PHY has no knowledge of frames, so no sof/eof marks are set —
    delineation downstream discovers them from the flags.
    """
    return beats_from_bytes(data, width_bytes, frame_marks=False)
