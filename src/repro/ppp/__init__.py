"""The Point-to-Point Protocol (RFC 1661) and its control protocols.

The paper's P5 accelerates the PPP *data path*; this package supplies
the protocol machinery around it, implemented from the RFCs the paper
cites:

* :mod:`repro.ppp.frame` — PPP encapsulation (Figure 1 of the paper),
  with ACFC/PFC header compression and a programmable address field
  (the MAPOS-compatibility hook).
* :mod:`repro.ppp.fsm` — the full RFC 1661 option-negotiation
  automaton (10 states, 16 events).
* :mod:`repro.ppp.lcp` / :mod:`repro.ppp.ipcp` — the Link Control
  Protocol and the IP NCP built on that automaton.
* :mod:`repro.ppp.session` — a complete link endpoint: delineator,
  LCP, NCPs and the RFC 1661 phase diagram, used by the examples and
  by the P5 OAM integration tests.
"""

from repro.ppp.protocol_numbers import (
    PROTO_CHAP,
    PROTO_IPCP,
    PROTO_IPV4,
    PROTO_LCP,
    PROTO_PAP,
    protocol_name,
)
from repro.ppp.frame import PPPFrame
from repro.ppp.options import ConfigOption, pack_options, unpack_options
from repro.ppp.fsm import Event, NegotiationFsm, State
from repro.ppp.lcp import Lcp, LcpConfig
from repro.ppp.ipcp import Ipcp, IpcpConfig
from repro.ppp.magic import MagicNumberTracker
from repro.ppp.pap import PapAuthenticator, PapClient
from repro.ppp.chap import ChapAuthenticator, ChapPeer
from repro.ppp.ipv6cp import Ipv6cp, Ipv6cpConfig
from repro.ppp.lqm import LinkQualityMonitor
from repro.ppp.reliable import NumberedModeLink
from repro.ppp.session import LinkPhase, PppEndpoint, connect_endpoints

__all__ = [
    "PROTO_LCP",
    "PROTO_IPCP",
    "PROTO_IPV4",
    "PROTO_PAP",
    "PROTO_CHAP",
    "protocol_name",
    "PPPFrame",
    "ConfigOption",
    "pack_options",
    "unpack_options",
    "State",
    "Event",
    "NegotiationFsm",
    "Lcp",
    "LcpConfig",
    "Ipcp",
    "IpcpConfig",
    "MagicNumberTracker",
    "PapAuthenticator",
    "PapClient",
    "ChapAuthenticator",
    "ChapPeer",
    "Ipv6cp",
    "Ipv6cpConfig",
    "LinkQualityMonitor",
    "NumberedModeLink",
    "LinkPhase",
    "PppEndpoint",
    "connect_endpoints",
]
