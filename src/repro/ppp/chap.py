"""CHAP — Challenge-Handshake Authentication Protocol (RFC 1994).

The stronger alternative to PAP: the authenticator sends a random
challenge, the peer answers with ``MD5(id || secret || challenge)``,
and the secret never crosses the wire.  RFC 1994 also recommends
periodic re-challenges on an open link, which this implementation
supports (`rechallenge`).

Packet format (shared RFC 1661 header)::

    code(1) id(1) length(2) data

    Challenge/Response data: value_size(1) value(...) name(...)
    Success/Failure data:    message(...)
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.ppp.protocol_numbers import PROTO_CHAP
from repro.utils.rng import SeedLike, make_rng

__all__ = ["ChapCode", "ChapAuthenticator", "ChapPeer", "chap_response_value"]


class ChapCode(enum.IntEnum):
    """RFC 1994 packet codes."""

    CHALLENGE = 1
    RESPONSE = 2
    SUCCESS = 3
    FAILURE = 4

#: The MD5 algorithm number (the only one RFC 1994 requires).
CHAP_ALGORITHM_MD5 = 5


def chap_response_value(identifier: int, secret: bytes, challenge: bytes) -> bytes:
    """``MD5(id || secret || challenge)`` per RFC 1994 section 2."""
    return hashlib.md5(bytes([identifier]) + secret + challenge).digest()


def _packet(code: int, identifier: int, data: bytes) -> bytes:
    return bytes([code, identifier]) + (4 + len(data)).to_bytes(2, "big") + data


def _value_packet(code: int, identifier: int, value: bytes, name: bytes) -> bytes:
    if len(value) > 0xFF:
        raise ValueError("CHAP value longer than one length octet allows")
    return _packet(code, identifier, bytes([len(value)]) + value + name)


def _parse_value_packet(raw: bytes) -> Tuple[int, int, bytes, bytes]:
    """Return (code, identifier, value, name) of a Challenge/Response."""
    if len(raw) < 5:
        raise ProtocolError("CHAP packet shorter than its header")
    code, identifier = raw[0], raw[1]
    length = int.from_bytes(raw[2:4], "big")
    if length > len(raw) or length < 5:
        raise ProtocolError("CHAP length field inconsistent")
    value_size = raw[4]
    if 5 + value_size > length:
        raise ProtocolError("CHAP value overruns the packet")
    value = raw[5 : 5 + value_size]
    name = raw[5 + value_size : length]
    return code, identifier, value, name


class ChapAuthenticator:
    """The challenger: issues challenges and verifies responses.

    Parameters
    ----------
    secrets:
        Mapping from peer name to shared secret.
    local_name:
        Our name, carried in the Challenge packet.
    """

    protocol_number = PROTO_CHAP

    def __init__(
        self,
        secrets: Dict[bytes, bytes],
        *,
        local_name: bytes = b"authenticator",
        challenge_size: int = 16,
        max_failures: int = 3,
        seed: SeedLike = None,
    ) -> None:
        self.secrets = dict(secrets)
        self.local_name = local_name
        self.challenge_size = challenge_size
        self.max_failures = max_failures
        self._rng = make_rng(seed)
        self.outbox: Deque[bytes] = deque()
        self._identifier = 0
        self._outstanding: Optional[bytes] = None   # the open challenge value
        self.authenticated: Optional[bytes] = None
        self.failures = 0
        self.challenges_sent = 0

    @property
    def done(self) -> bool:
        return self.authenticated is not None

    @property
    def failed(self) -> bool:
        return self.failures >= self.max_failures

    # ---------------------------------------------------------------- driver
    def start(self) -> None:
        """Issue the initial challenge (LCP just opened)."""
        self._send_challenge()

    def rechallenge(self) -> None:
        """Periodic re-authentication on an open link (RFC 1994 §2)."""
        self.authenticated = None
        self._send_challenge()

    def _send_challenge(self) -> None:
        self._identifier = (self._identifier + 1) & 0xFF
        value = self._rng.bytes(self.challenge_size)
        self._outstanding = value
        self.challenges_sent += 1
        self.outbox.append(
            _value_packet(ChapCode.CHALLENGE, self._identifier, value, self.local_name)
        )

    def tick(self) -> None:
        """Retransmit the open challenge on timeout."""
        if not self.done and not self.failed and self._outstanding is not None:
            self.outbox.append(
                _value_packet(
                    ChapCode.CHALLENGE,
                    self._identifier,
                    self._outstanding,
                    self.local_name,
                )
            )

    # --------------------------------------------------------------- receive
    def receive_packet(self, raw: bytes) -> None:
        if len(raw) < 4 or raw[0] != ChapCode.RESPONSE:
            return
        code, identifier, value, name = _parse_value_packet(raw)
        if identifier != self._identifier or self._outstanding is None:
            return  # stale response
        secret = self.secrets.get(name)
        expected = (
            chap_response_value(identifier, secret, self._outstanding)
            if secret is not None
            else None
        )
        if expected is not None and value == expected:
            self.authenticated = name
            self._outstanding = None
            self.outbox.append(_packet(ChapCode.SUCCESS, identifier, b"ok"))
        else:
            self.failures += 1
            self.outbox.append(_packet(ChapCode.FAILURE, identifier, b"denied"))
            if not self.failed:
                self._send_challenge()   # a fresh challenge each attempt

    def drain_outbox(self) -> List[bytes]:
        out = list(self.outbox)
        self.outbox.clear()
        return out


class ChapPeer:
    """The responder: answers challenges with the hashed secret."""

    protocol_number = PROTO_CHAP

    def __init__(self, name: bytes, secret: bytes) -> None:
        self.name = name
        self.secret = secret
        self.outbox: Deque[bytes] = deque()
        self.acked = False
        self.naked = False
        self.responses_sent = 0

    @property
    def done(self) -> bool:
        return self.acked

    @property
    def failed(self) -> bool:
        return self.naked

    def start(self) -> None:
        """CHAP peers are passive until challenged."""

    def tick(self) -> None:
        """Nothing to retransmit: the authenticator drives the timing."""

    def receive_packet(self, raw: bytes) -> None:
        if len(raw) < 4:
            return
        code = raw[0]
        if code == ChapCode.CHALLENGE:
            _, identifier, value, _name = _parse_value_packet(raw)
            response = chap_response_value(identifier, self.secret, value)
            self.responses_sent += 1
            self.outbox.append(
                _value_packet(ChapCode.RESPONSE, identifier, response, self.name)
            )
            # A new challenge reopens the question (re-authentication).
            self.acked = False
        elif code == ChapCode.SUCCESS:
            self.acked = True
        elif code == ChapCode.FAILURE:
            self.naked = True

    def drain_outbox(self) -> List[bytes]:
        out = list(self.outbox)
        self.outbox.clear()
        return out
