"""Shared machinery for PPP control protocols (LCP and the NCP family).

RFC 1661 section 5 defines a common packet format for every control
protocol::

    code (1) | identifier (1) | length (2, covers the whole packet) | data

:class:`ControlPacket` is that codec.  :class:`ControlProtocol` wires
packet handling to the :class:`~repro.ppp.fsm.NegotiationFsm`: it owns
identifier management, the option-negotiation policy hooks, and an
outbound packet queue the link layer drains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union
from collections import deque

from repro.errors import ProtocolError
from repro.ppp.fsm import Event, FsmActions, NegotiationFsm, State
from repro.ppp.options import ConfigOption, pack_options, unpack_options

__all__ = ["Code", "ControlPacket", "ControlProtocol", "OptionVerdict"]


class Code(enum.IntEnum):
    """RFC 1661 control-protocol packet codes."""

    CONFIGURE_REQUEST = 1
    CONFIGURE_ACK = 2
    CONFIGURE_NAK = 3
    CONFIGURE_REJECT = 4
    TERMINATE_REQUEST = 5
    TERMINATE_ACK = 6
    CODE_REJECT = 7
    PROTOCOL_REJECT = 8
    ECHO_REQUEST = 9
    ECHO_REPLY = 10
    DISCARD_REQUEST = 11


@dataclass(frozen=True)
class ControlPacket:
    """One LCP/NCP packet."""

    code: int
    identifier: int
    data: bytes = b""

    def encode(self) -> bytes:
        length = 4 + len(self.data)
        if length > 0xFFFF:
            raise ValueError("control packet too long")
        return bytes([self.code, self.identifier]) + length.to_bytes(2, "big") + self.data

    @classmethod
    def decode(cls, raw: bytes) -> "ControlPacket":
        if len(raw) < 4:
            raise ProtocolError("control packet shorter than its header")
        code, identifier = raw[0], raw[1]
        length = int.from_bytes(raw[2:4], "big")
        if length < 4 or length > len(raw):
            raise ProtocolError(f"control packet length field {length} is inconsistent")
        # Octets beyond `length` are padding and ignored (RFC 1661 §5).
        return cls(code, identifier, raw[4:length])

    def options(self) -> List[ConfigOption]:
        """Parse the data field as a configure-option list."""
        return unpack_options(self.data)


#: Verdict on one received option: "ack", ("nak", replacement), or "rej".
OptionVerdict = Union[str, Tuple[str, ConfigOption]]


class ControlProtocol(FsmActions):
    """Base class for LCP/NCPs: FSM glue + option negotiation policy.

    Subclasses implement the policy hooks:

    * :meth:`desired_options` — the Configure-Request we send;
    * :meth:`judge_option` — ack/nak/reject each option a peer requests;
    * :meth:`absorb_nak` / :meth:`absorb_reject` — adapt our request to
      the peer's feedback;
    * :meth:`commit` — called on this-layer-up with both option sets.

    Outbound packets are queued on :attr:`outbox` as raw packet bytes;
    the owning :class:`~repro.ppp.session.PppEndpoint` wraps them in
    PPP/HDLC framing.
    """

    #: PPP protocol number; subclasses must override.
    protocol_number: int = 0

    name = "control"

    def __init__(self, *, max_configure: int = 10, max_terminate: int = 2) -> None:
        self.fsm = NegotiationFsm(
            self,
            max_configure=max_configure,
            max_terminate=max_terminate,
            name=self.name,
        )
        self.outbox: Deque[bytes] = deque()
        self._next_id = 0
        self._request_id: Optional[int] = None        # id of our outstanding Conf-Req
        self._pending_request: List[ConfigOption] = []  # our current request contents
        self._request_seeded = False                  # desired_options() loaded once
        self._last_terminate_id: Optional[int] = None
        self._received_request: Optional[ControlPacket] = None
        self._received_verdicts: List[Tuple[ConfigOption, OptionVerdict]] = []
        self._reject_packet: Optional[ControlPacket] = None
        self.local_options: Dict[int, ConfigOption] = {}
        self.peer_options: Dict[int, ConfigOption] = {}
        self.layer_up = False

    # ------------------------------------------------------------ policy API
    def desired_options(self) -> List[ConfigOption]:
        """Options for our Configure-Request (subclass hook)."""
        return []

    def judge_option(self, option: ConfigOption) -> OptionVerdict:
        """Verdict on one peer-requested option (subclass hook).

        Default: reject everything unknown, which is the conservative
        RFC-conformant behaviour.
        """
        return "rej"

    def absorb_nak(self, option: ConfigOption) -> Optional[ConfigOption]:
        """Peer nak'd ``option``; return our amended option (or None to drop)."""
        return option

    def absorb_reject(self, option: ConfigOption) -> None:
        """Peer rejected ``option``; remove it from future requests."""

    def commit(self) -> None:
        """Negotiation converged (this-layer-up); subclass hook."""

    # --------------------------------------------------------------- helpers
    def _allocate_id(self) -> int:
        ident = self._next_id
        self._next_id = (self._next_id + 1) & 0xFF
        return ident

    def _send(self, code: int, identifier: int, data: bytes = b"") -> None:
        self.outbox.append(ControlPacket(code, identifier, data).encode())

    # ------------------------------------------------------------ FSM actions
    def tlu(self) -> None:
        self.layer_up = True
        self.commit()

    def tld(self) -> None:
        self.layer_up = False

    def scr(self) -> None:
        if not self._request_seeded:
            self._pending_request = list(self.desired_options())
            self._request_seeded = True
        self._request_id = self._allocate_id()
        self._send(
            Code.CONFIGURE_REQUEST, self._request_id, pack_options(self._pending_request)
        )

    def sca(self) -> None:
        assert self._received_request is not None
        self._send(
            Code.CONFIGURE_ACK,
            self._received_request.identifier,
            self._received_request.data,
        )
        # The ack commits the peer's option set.
        self.peer_options = {
            opt.type: opt for opt in self._received_request.options()
        }

    def scn(self) -> None:
        assert self._received_request is not None
        rejected = [o for o, v in self._received_verdicts if v == "rej"]
        naked = [v[1] for _, v in self._received_verdicts
                 if isinstance(v, tuple) and v[0] == "nak"]
        # RFC 1661: Reject takes precedence over Nak within one reply.
        if rejected:
            self._send(
                Code.CONFIGURE_REJECT,
                self._received_request.identifier,
                pack_options(rejected),
            )
        else:
            self._send(
                Code.CONFIGURE_NAK,
                self._received_request.identifier,
                pack_options(naked),
            )

    def str_(self) -> None:
        self._send(Code.TERMINATE_REQUEST, self._allocate_id())

    def sta(self) -> None:
        ident = (
            self._last_terminate_id
            if self._last_terminate_id is not None
            else self._allocate_id()
        )
        self._send(Code.TERMINATE_ACK, ident)

    def scj(self) -> None:
        assert self._reject_packet is not None
        self._send(
            Code.CODE_REJECT,
            self._allocate_id(),
            self._reject_packet.encode()[:64],
        )

    def ser(self) -> None:
        # Echo handling is LCP-specific; the base treats RXR as a no-op
        # beyond the FSM bookkeeping.
        pass

    # --------------------------------------------------------- packet intake
    def receive_packet(self, raw: bytes) -> None:
        """Process one received control packet for this protocol."""
        packet = ControlPacket.decode(raw)
        handler = {
            Code.CONFIGURE_REQUEST: self._on_configure_request,
            Code.CONFIGURE_ACK: self._on_configure_ack,
            Code.CONFIGURE_NAK: self._on_configure_nak_or_rej,
            Code.CONFIGURE_REJECT: self._on_configure_nak_or_rej,
            Code.TERMINATE_REQUEST: self._on_terminate_request,
            Code.TERMINATE_ACK: self._on_terminate_ack,
            Code.CODE_REJECT: self._on_code_reject,
        }.get(packet.code)
        if handler is None:
            handler = self._on_unknown_code
        handler(packet)

    # Individual code handlers --------------------------------------------
    def _on_configure_request(self, packet: ControlPacket) -> None:
        try:
            options = packet.options()
        except ProtocolError:
            self._reject_packet = packet
            self.fsm.receive(Event.RUC)
            return
        verdicts = [(opt, self.judge_option(opt)) for opt in options]
        self._received_request = packet
        self._received_verdicts = verdicts
        if all(v == "ack" for _, v in verdicts):
            self.fsm.receive(Event.RCR_PLUS)
        else:
            self.fsm.receive(Event.RCR_MINUS)

    def _on_configure_ack(self, packet: ControlPacket) -> None:
        if packet.identifier != self._request_id:
            return  # silently discard stale acks (RFC 1661 §5.2)
        if packet.data != pack_options(self._pending_request):
            return  # option list must match exactly
        self.local_options = {opt.type: opt for opt in self._pending_request}
        self.fsm.receive(Event.RCA)

    def _on_configure_nak_or_rej(self, packet: ControlPacket) -> None:
        if packet.identifier != self._request_id:
            return
        try:
            feedback = packet.options()
        except ProtocolError:
            self._reject_packet = packet
            self.fsm.receive(Event.RUC)
            return
        if packet.code == Code.CONFIGURE_NAK:
            amended: List[ConfigOption] = []
            feedback_by_type = {opt.type: opt for opt in feedback}
            for opt in self._pending_request:
                if opt.type in feedback_by_type:
                    replacement = self.absorb_nak(feedback_by_type[opt.type])
                    if replacement is not None:
                        amended.append(replacement)
                else:
                    amended.append(opt)
            self._pending_request = amended
        else:  # CONFIGURE_REJECT
            rejected_types = {opt.type for opt in feedback}
            for opt in feedback:
                self.absorb_reject(opt)
            self._pending_request = [
                opt for opt in self._pending_request if opt.type not in rejected_types
            ]
        self.fsm.receive(Event.RCN)

    def _on_terminate_request(self, packet: ControlPacket) -> None:
        self._last_terminate_id = packet.identifier
        self.fsm.receive(Event.RTR)
        self._last_terminate_id = None

    def _on_terminate_ack(self, packet: ControlPacket) -> None:
        self.fsm.receive(Event.RTA)

    def _on_code_reject(self, packet: ControlPacket) -> None:
        # A Code-Reject of a code we never send is catastrophic (RXJ-);
        # rejection of optional codes is tolerable (RXJ+).
        try:
            rejected_code = packet.data[0] if packet.data else 0
        except IndexError:  # pragma: no cover - defensive
            rejected_code = 0
        if rejected_code in self._catastrophic_codes():
            self.fsm.receive(Event.RXJ_MINUS)
        else:
            self.fsm.receive(Event.RXJ_PLUS)

    def _catastrophic_codes(self) -> Tuple[int, ...]:
        """Codes whose rejection makes the protocol unusable."""
        return (
            Code.CONFIGURE_REQUEST,
            Code.CONFIGURE_ACK,
            Code.CONFIGURE_NAK,
            Code.CONFIGURE_REJECT,
            Code.TERMINATE_REQUEST,
            Code.TERMINATE_ACK,
        )

    def _on_unknown_code(self, packet: ControlPacket) -> None:
        self._reject_packet = packet
        self.fsm.receive(Event.RUC)

    # ----------------------------------------------------------- conveniences
    def drain_outbox(self) -> List[bytes]:
        """Remove and return all queued outbound packets."""
        out = list(self.outbox)
        self.outbox.clear()
        return out

    @property
    def state(self) -> State:
        return self.fsm.state
