"""PPP encapsulation — Figure 1 of the paper, RFC 1661 section 2.

A :class:`PPPFrame` is the *unstuffed* frame content between the HDLC
flags and before the FCS: address, control, protocol and information
fields.  Header compression (ACFC, PFC) and the paper's programmable
address field (MAPOS compatibility) are handled here; transparency and
FCS belong to :mod:`repro.hdlc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import FramingError
from repro.hdlc.constants import DEFAULT_ADDRESS, DEFAULT_CONTROL
from repro.ppp.protocol_numbers import (
    is_valid_protocol,
    pfc_compressible,
    protocol_name,
)

__all__ = ["PPPFrame"]


@dataclass(frozen=True)
class PPPFrame:
    """One PPP frame: address, control, protocol and information.

    Attributes
    ----------
    protocol:
        16-bit PPP protocol number (e.g. 0x0021 IPv4, 0xC021 LCP).
    information:
        Payload octets (up to the negotiated MRU).
    address:
        HDLC address octet.  0xFF ("all stations") by default; the P5
        keeps this *programmable* so the same datapath serves MAPOS,
        whose address octet carries a real station address.
    control:
        HDLC control octet, 0x03 (UI, unnumbered) in normal operation.
    """

    protocol: int
    information: bytes = b""
    address: int = DEFAULT_ADDRESS
    control: int = DEFAULT_CONTROL
    padding: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFF:
            raise ValueError(f"address octet out of range: {self.address}")
        if not 0 <= self.control <= 0xFF:
            raise ValueError(f"control octet out of range: {self.control}")
        if not is_valid_protocol(self.protocol):
            raise ValueError(f"malformed PPP protocol number 0x{self.protocol:04X}")

    @property
    def protocol_label(self) -> str:
        """Human-readable protocol name (for traces and the OAM)."""
        return protocol_name(self.protocol)

    # ---------------------------------------------------------------- encode
    def encode(self, *, acfc: bool = False, pfc: bool = False) -> bytes:
        """Serialise to frame content (the octets the FCS covers).

        ``acfc``
            Address-and-Control-Field-Compression: omit the FF 03
            header.  RFC 1662 forbids compressing a non-default
            address/control, so those frames keep their header.
        ``pfc``
            Protocol-Field-Compression: protocols <= 0xFF shrink to a
            single octet.
        """
        out = bytearray()
        compress_header = (
            acfc
            and self.address == DEFAULT_ADDRESS
            and self.control == DEFAULT_CONTROL
        )
        if not compress_header:
            out.append(self.address)
            out.append(self.control)
        if pfc and pfc_compressible(self.protocol):
            out.append(self.protocol & 0xFF)
        else:
            out += self.protocol.to_bytes(2, "big")
        out += self.information
        out += self.padding
        return bytes(out)

    # ---------------------------------------------------------------- decode
    @classmethod
    def decode(
        cls,
        content: bytes,
        *,
        expected_address: Optional[int] = DEFAULT_ADDRESS,
    ) -> "PPPFrame":
        """Parse frame content, auto-detecting ACFC and PFC.

        Receivers must accept compressed headers at any time (RFC 1662
        section 3.2): the address/control fields are present iff the
        first octet equals the station address with 0x03 following
        (an information field can never begin that way because the
        protocol-number encoding forbids an even first octet... except
        that 0xFF is odd — the RFC resolves this by requiring the pair).

        ``expected_address``
            The programmed station address (0xFF for plain PPP).  Pass
            ``None`` to accept any address octet (promiscuous MAPOS
            monitor mode).
        """
        if len(content) < 1:
            raise FramingError("empty PPP frame content")
        address = DEFAULT_ADDRESS
        control = DEFAULT_CONTROL
        offset = 0
        match = expected_address if expected_address is not None else content[0]
        if len(content) >= 2 and content[0] == match and content[1] == DEFAULT_CONTROL:
            address, control, offset = content[0], content[1], 2
        if len(content) < offset + 1:
            raise FramingError("PPP frame truncated before protocol field")
        first = content[offset]
        if first & 0x01:
            protocol = first
            offset += 1
        else:
            if len(content) < offset + 2:
                raise FramingError("PPP frame truncated inside protocol field")
            protocol = (first << 8) | content[offset + 1]
            offset += 2
        if not is_valid_protocol(protocol):
            raise FramingError(f"malformed protocol number 0x{protocol:04X}")
        return cls(
            protocol=protocol,
            information=content[offset:],
            address=address,
            control=control,
        )

    def with_information(self, information: bytes) -> "PPPFrame":
        """Copy of this frame with a different payload."""
        return replace(self, information=information)
