"""The RFC 1661 option-negotiation automaton (section 4).

This is the "well-defined finite state machine" the paper's
Transmitter/Receiver control units execute under OAM supervision.  It
is implemented as the literal RFC 1661 state-transition table — ten
states, sixteen events, with the action vocabulary (tlu, tld, tls,
tlf, irc, zrc, scr, sca, scn, str, sta, scj, ser) delegated to an
:class:`FsmActions` implementation (LCP, IPCP, or a test double).

Time is logical: the restart timer is modelled by :meth:`NegotiationFsm.tick`,
which the link scheduler calls to signal one timeout period elapsing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ProtocolError

__all__ = ["State", "Event", "FsmActions", "NegotiationFsm"]


class State(enum.Enum):
    """RFC 1661 section 4.2 states."""

    INITIAL = 0
    STARTING = 1
    CLOSED = 2
    STOPPED = 3
    CLOSING = 4
    STOPPING = 5
    REQ_SENT = 6
    ACK_RCVD = 7
    ACK_SENT = 8
    OPENED = 9


class Event(enum.Enum):
    """RFC 1661 section 4.3 events."""

    UP = "Up"
    DOWN = "Down"
    OPEN = "Open"
    CLOSE = "Close"
    TO_PLUS = "TO+"       # timeout with restart counter > 0
    TO_MINUS = "TO-"      # timeout with restart counter expired
    RCR_PLUS = "RCR+"     # receive acceptable Configure-Request
    RCR_MINUS = "RCR-"    # receive unacceptable Configure-Request
    RCA = "RCA"           # receive Configure-Ack
    RCN = "RCN"           # receive Configure-Nak/Rej
    RTR = "RTR"           # receive Terminate-Request
    RTA = "RTA"           # receive Terminate-Ack
    RUC = "RUC"           # receive unknown code
    RXJ_PLUS = "RXJ+"     # receive acceptable Code-/Protocol-Reject
    RXJ_MINUS = "RXJ-"    # receive catastrophic Code-/Protocol-Reject
    RXR = "RXR"           # receive Echo-Request/Reply/Discard


class FsmActions:
    """Action delegate; subclass and override what the protocol needs.

    Method names follow the RFC's abbreviations.  ``scn`` covers both
    Send-Configure-Nak and Send-Configure-Rej (the concrete protocol
    decides which, based on the offending options).
    """

    def tlu(self) -> None:
        """This-Layer-Up: the link is usable by the layer above."""

    def tld(self) -> None:
        """This-Layer-Down: the layer above must stop using the link."""

    def tls(self) -> None:
        """This-Layer-Started: ask the lower layer to come up."""

    def tlf(self) -> None:
        """This-Layer-Finished: the lower layer is no longer needed."""

    def scr(self) -> None:
        """Send-Configure-Request."""

    def sca(self) -> None:
        """Send-Configure-Ack (for the request just received)."""

    def scn(self) -> None:
        """Send-Configure-Nak or -Rej (for the request just received)."""

    def str_(self) -> None:
        """Send-Terminate-Request."""

    def sta(self) -> None:
        """Send-Terminate-Ack."""

    def scj(self) -> None:
        """Send-Code-Reject."""

    def ser(self) -> None:
        """Send-Echo-Reply."""


# One table row: (actions tuple, next state). Actions are FsmActions
# attribute names plus the pseudo-actions 'irc'/'zrc' handled inline.
_Row = Tuple[Tuple[str, ...], State]

S = State
_TABLE: Dict[Event, Dict[State, _Row]] = {
    Event.UP: {
        S.INITIAL: ((), S.CLOSED),
        S.STARTING: (("irc", "scr"), S.REQ_SENT),
    },
    Event.DOWN: {
        S.CLOSED: ((), S.INITIAL),
        S.STOPPED: (("tls",), S.STARTING),
        S.CLOSING: ((), S.INITIAL),
        S.STOPPING: ((), S.STARTING),
        S.REQ_SENT: ((), S.STARTING),
        S.ACK_RCVD: ((), S.STARTING),
        S.ACK_SENT: ((), S.STARTING),
        S.OPENED: (("tld",), S.STARTING),
    },
    Event.OPEN: {
        S.INITIAL: (("tls",), S.STARTING),
        S.STARTING: ((), S.STARTING),
        S.CLOSED: (("irc", "scr"), S.REQ_SENT),
        S.STOPPED: ((), S.STOPPED),
        S.CLOSING: ((), S.STOPPING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: ((), S.REQ_SENT),
        S.ACK_RCVD: ((), S.ACK_RCVD),
        S.ACK_SENT: ((), S.ACK_SENT),
        S.OPENED: ((), S.OPENED),
    },
    Event.CLOSE: {
        S.INITIAL: ((), S.INITIAL),
        S.STARTING: (("tlf",), S.INITIAL),
        S.CLOSED: ((), S.CLOSED),
        S.STOPPED: ((), S.CLOSED),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.CLOSING),
        S.REQ_SENT: (("irc", "str_"), S.CLOSING),
        S.ACK_RCVD: (("irc", "str_"), S.CLOSING),
        S.ACK_SENT: (("irc", "str_"), S.CLOSING),
        S.OPENED: (("tld", "irc", "str_"), S.CLOSING),
    },
    Event.TO_PLUS: {
        S.CLOSING: (("str_",), S.CLOSING),
        S.STOPPING: (("str_",), S.STOPPING),
        S.REQ_SENT: (("scr",), S.REQ_SENT),
        S.ACK_RCVD: (("scr",), S.REQ_SENT),
        S.ACK_SENT: (("scr",), S.ACK_SENT),
    },
    Event.TO_MINUS: {
        S.CLOSING: (("tlf",), S.CLOSED),
        S.STOPPING: (("tlf",), S.STOPPED),
        S.REQ_SENT: (("tlf",), S.STOPPED),
        S.ACK_RCVD: (("tlf",), S.STOPPED),
        S.ACK_SENT: (("tlf",), S.STOPPED),
    },
    Event.RCR_PLUS: {
        S.CLOSED: (("sta",), S.CLOSED),
        S.STOPPED: (("irc", "scr", "sca"), S.ACK_SENT),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: (("sca",), S.ACK_SENT),
        S.ACK_RCVD: (("sca", "tlu"), S.OPENED),
        S.ACK_SENT: (("sca",), S.ACK_SENT),
        S.OPENED: (("tld", "scr", "sca"), S.ACK_SENT),
    },
    Event.RCR_MINUS: {
        S.CLOSED: (("sta",), S.CLOSED),
        S.STOPPED: (("irc", "scr", "scn"), S.REQ_SENT),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: (("scn",), S.REQ_SENT),
        S.ACK_RCVD: (("scn",), S.ACK_RCVD),
        S.ACK_SENT: (("scn",), S.REQ_SENT),
        S.OPENED: (("tld", "scr", "scn"), S.REQ_SENT),
    },
    Event.RCA: {
        S.CLOSED: (("sta",), S.CLOSED),
        S.STOPPED: (("sta",), S.STOPPED),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: (("irc",), S.ACK_RCVD),
        S.ACK_RCVD: (("scr",), S.REQ_SENT),          # crossed connection
        S.ACK_SENT: (("irc", "tlu"), S.OPENED),
        S.OPENED: (("tld", "scr"), S.REQ_SENT),
    },
    Event.RCN: {
        S.CLOSED: (("sta",), S.CLOSED),
        S.STOPPED: (("sta",), S.STOPPED),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: (("irc", "scr"), S.REQ_SENT),
        S.ACK_RCVD: (("scr",), S.REQ_SENT),
        S.ACK_SENT: (("irc", "scr"), S.ACK_SENT),
        S.OPENED: (("tld", "scr"), S.REQ_SENT),
    },
    Event.RTR: {
        S.CLOSED: (("sta",), S.CLOSED),
        S.STOPPED: (("sta",), S.STOPPED),
        S.CLOSING: (("sta",), S.CLOSING),
        S.STOPPING: (("sta",), S.STOPPING),
        S.REQ_SENT: (("sta",), S.REQ_SENT),
        S.ACK_RCVD: (("sta",), S.REQ_SENT),
        S.ACK_SENT: (("sta",), S.REQ_SENT),
        S.OPENED: (("tld", "zrc", "sta"), S.STOPPING),
    },
    Event.RTA: {
        S.CLOSED: ((), S.CLOSED),
        S.STOPPED: ((), S.STOPPED),
        S.CLOSING: (("tlf",), S.CLOSED),
        S.STOPPING: (("tlf",), S.STOPPED),
        S.REQ_SENT: ((), S.REQ_SENT),
        S.ACK_RCVD: ((), S.REQ_SENT),
        S.ACK_SENT: ((), S.ACK_SENT),
        S.OPENED: (("tld", "scr"), S.REQ_SENT),
    },
    Event.RUC: {
        S.CLOSED: (("scj",), S.CLOSED),
        S.STOPPED: (("scj",), S.STOPPED),
        S.CLOSING: (("scj",), S.CLOSING),
        S.STOPPING: (("scj",), S.STOPPING),
        S.REQ_SENT: (("scj",), S.REQ_SENT),
        S.ACK_RCVD: (("scj",), S.ACK_RCVD),
        S.ACK_SENT: (("scj",), S.ACK_SENT),
        S.OPENED: (("scj",), S.OPENED),
    },
    Event.RXJ_PLUS: {
        S.CLOSED: ((), S.CLOSED),
        S.STOPPED: ((), S.STOPPED),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: ((), S.REQ_SENT),
        S.ACK_RCVD: ((), S.REQ_SENT),
        S.ACK_SENT: ((), S.ACK_SENT),
        S.OPENED: ((), S.OPENED),
    },
    Event.RXJ_MINUS: {
        S.CLOSED: (("tlf",), S.CLOSED),
        S.STOPPED: (("tlf",), S.STOPPED),
        S.CLOSING: (("tlf",), S.CLOSED),
        S.STOPPING: (("tlf",), S.STOPPED),
        S.REQ_SENT: (("tlf",), S.STOPPED),
        S.ACK_RCVD: (("tlf",), S.STOPPED),
        S.ACK_SENT: (("tlf",), S.STOPPED),
        S.OPENED: (("tld", "irc", "str_"), S.STOPPING),
    },
    Event.RXR: {
        S.CLOSED: ((), S.CLOSED),
        S.STOPPED: ((), S.STOPPED),
        S.CLOSING: ((), S.CLOSING),
        S.STOPPING: ((), S.STOPPING),
        S.REQ_SENT: ((), S.REQ_SENT),
        S.ACK_RCVD: ((), S.ACK_RCVD),
        S.ACK_SENT: ((), S.ACK_SENT),
        S.OPENED: (("ser",), S.OPENED),
    },
}
del S


@dataclass
class _Transition:
    """Log record for tests and OAM traces."""

    event: Event
    from_state: State
    to_state: State
    actions: Tuple[str, ...]


class NegotiationFsm:
    """RFC 1661 automaton with logical restart timer.

    Parameters
    ----------
    actions:
        Delegate receiving the action callbacks.
    max_configure, max_terminate:
        RFC 1661 restart-counter defaults (10 and 2).
    """

    def __init__(
        self,
        actions: FsmActions,
        *,
        max_configure: int = 10,
        max_terminate: int = 2,
        name: str = "fsm",
    ) -> None:
        self.actions = actions
        self.max_configure = max_configure
        self.max_terminate = max_terminate
        self.name = name
        self.state = State.INITIAL
        self.restart_counter = 0
        self.history: List[_Transition] = []

    # -------------------------------------------------------------- plumbing
    def _dispatch(self, event: Event) -> None:
        row = _TABLE[event].get(self.state)
        if row is None:
            raise ProtocolError(
                f"{self.name}: event {event.value} is impossible in state {self.state.name}"
            )
        action_names, next_state = row
        from_state = self.state
        # State is committed before actions run so that actions sending
        # packets observe the new state (matters for scr in Opened).
        self.state = next_state
        for action in action_names:
            if action == "irc":
                self._init_restart_counter(event)
            elif action == "zrc":
                self.restart_counter = 0
            else:
                getattr(self.actions, action)()
        self.history.append(_Transition(event, from_state, next_state, action_names))

    def _init_restart_counter(self, event: Event) -> None:
        # Terminate phases use Max-Terminate; configure exchanges use
        # Max-Configure (RFC 1661 section 4.6).
        if event in (Event.CLOSE, Event.RXJ_MINUS) or self.state in (
            State.CLOSING,
            State.STOPPING,
        ):
            self.restart_counter = self.max_terminate
        else:
            self.restart_counter = self.max_configure

    @property
    def timer_running(self) -> bool:
        """RFC 1661: the restart timer runs only in the 4 unstable states."""
        return self.state in (
            State.CLOSING,
            State.STOPPING,
            State.REQ_SENT,
            State.ACK_RCVD,
            State.ACK_SENT,
        )

    # ------------------------------------------------------- external events
    def up(self) -> None:
        """Lower layer is up."""
        self._dispatch(Event.UP)

    def down(self) -> None:
        """Lower layer is down."""
        self._dispatch(Event.DOWN)

    def open(self) -> None:
        """Administrative Open."""
        self._dispatch(Event.OPEN)

    def close(self) -> None:
        """Administrative Close."""
        self._dispatch(Event.CLOSE)

    def tick(self) -> None:
        """One restart-timeout period elapsed (logical time).

        Decides TO+ vs TO- from the restart counter; a no-op when the
        timer is not running.
        """
        if not self.timer_running:
            return
        if self.restart_counter > 0:
            self.restart_counter -= 1
            self._dispatch(Event.TO_PLUS)
        else:
            self._dispatch(Event.TO_MINUS)

    # ------------------------------------------------------- receive events
    def receive(self, event: Event) -> None:
        """Inject a packet-derived event (RCR+/-, RCA, RCN, RTR, ...)."""
        if event in (Event.UP, Event.DOWN, Event.OPEN, Event.CLOSE,
                     Event.TO_PLUS, Event.TO_MINUS):
            raise ValueError(f"{event} is not a receive event; call its method")
        self._dispatch(event)

    @property
    def is_opened(self) -> bool:
        """Convenience: negotiation has converged."""
        return self.state is State.OPENED
