"""IPCP — the IP Network Control Protocol (RFC 1332, minimal profile).

Negotiates the IP-Address option: each side requests its own address;
a peer requesting ``0.0.0.0`` is asking to be assigned one, which we
answer with a Configure-Nak carrying an address from our pool.  This
is exactly the negotiation a gigabit IP-over-SONET line card performs
before datagrams flow through the P5 datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ppp.ncp import NcpBase
from repro.ppp.options import (
    IPCP_OPT_IP_ADDRESS,
    ConfigOption,
    ip_address_option,
)
from repro.ppp.protocol_numbers import PROTO_IPCP, PROTO_IPV4
from repro.ppp.control import OptionVerdict

__all__ = ["Ipcp", "IpcpConfig", "format_ipv4", "parse_ipv4"]


def parse_ipv4(text: str) -> int:
    """Dotted-quad string to 32-bit host integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """32-bit host integer to dotted-quad string."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class IpcpConfig:
    """Local IPCP policy.

    Attributes
    ----------
    local_address:
        Address we request for ourselves (0 = ask peer to assign).
    assign_peer:
        Address to hand a peer that requests 0.0.0.0, or None to
        reject unnumbered peers.
    """

    local_address: int = 0
    assign_peer: Optional[int] = None


class Ipcp(NcpBase):
    """The IP NCP."""

    protocol_number = PROTO_IPCP
    data_protocol_number = PROTO_IPV4
    name = "IPCP"

    def __init__(self, config: Optional[IpcpConfig] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.config = config or IpcpConfig()
        self.peer_address: int = 0

    def desired_options(self) -> List[ConfigOption]:
        return [ip_address_option(self.config.local_address)]

    def judge_option(self, option: ConfigOption) -> OptionVerdict:
        if option.type != IPCP_OPT_IP_ADDRESS or len(option.data) != 4:
            return "rej"
        address = option.value_uint()
        if address == 0:
            if self.config.assign_peer is None:
                return "rej"
            return ("nak", ip_address_option(self.config.assign_peer))
        return "ack"

    def absorb_nak(self, option: ConfigOption) -> Optional[ConfigOption]:
        if option.type == IPCP_OPT_IP_ADDRESS and len(option.data) == 4:
            # The peer assigned us an address; adopt it.
            self.config.local_address = option.value_uint()
            return ip_address_option(self.config.local_address)
        return option

    def commit(self) -> None:
        opt = self.peer_options.get(IPCP_OPT_IP_ADDRESS)
        if opt is not None and len(opt.data) == 4:
            self.peer_address = opt.value_uint()

    # ------------------------------------------------------------- reporting
    @property
    def local_address_str(self) -> str:
        return format_ipv4(self.config.local_address)

    @property
    def peer_address_str(self) -> str:
        return format_ipv4(self.peer_address)
