"""IPV6CP — the IPv6 Network Control Protocol (RFC 5072, minimal).

Negotiates the Interface-Identifier option (type 1, 64 bits): each
side proposes its identifier; a zero or *colliding* identifier is
Config-Naked with a suggested replacement.  Running IPV6CP next to
IPCP on one link demonstrates RFC 1661's "simultaneous use of multiple
network-layer protocols" — the P5 datapath is protocol-agnostic, so
only the protocol field differs on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ppp.control import OptionVerdict
from repro.ppp.ncp import NcpBase
from repro.ppp.options import ConfigOption
from repro.ppp.protocol_numbers import PROTO_IPV6, PROTO_IPV6CP
from repro.utils.rng import SeedLike, make_rng

__all__ = ["Ipv6cp", "Ipv6cpConfig", "IPV6CP_OPT_INTERFACE_ID"]

IPV6CP_OPT_INTERFACE_ID = 1


def interface_id_option(identifier: int) -> ConfigOption:
    """Encode the 64-bit Interface-Identifier option."""
    if identifier >> 64:
        raise ValueError("interface identifiers are 64 bits")
    return ConfigOption(IPV6CP_OPT_INTERFACE_ID, identifier.to_bytes(8, "big"))


@dataclass
class Ipv6cpConfig:
    """Local IPV6CP policy.

    Attributes
    ----------
    interface_id:
        The 64-bit identifier we propose (0 = ask the peer to assign,
        per RFC 5072 section 4.1).
    """

    interface_id: int = 0


class Ipv6cp(NcpBase):
    """The IPv6 NCP."""

    protocol_number = PROTO_IPV6CP
    data_protocol_number = PROTO_IPV6
    name = "IPV6CP"

    def __init__(
        self,
        config: Optional[Ipv6cpConfig] = None,
        *,
        seed: SeedLike = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.config = config or Ipv6cpConfig()
        self._rng = make_rng(seed)
        if self.config.interface_id == 0:
            self.config.interface_id = self._random_id()
        self.peer_interface_id: int = 0

    def _random_id(self) -> int:
        return int(self._rng.integers(1, 1 << 62)) | (1 << 62)

    def desired_options(self) -> List[ConfigOption]:
        return [interface_id_option(self.config.interface_id)]

    def judge_option(self, option: ConfigOption) -> OptionVerdict:
        if option.type != IPV6CP_OPT_INTERFACE_ID or len(option.data) != 8:
            return "rej"
        identifier = option.value_uint()
        if identifier == 0 or identifier == self.config.interface_id:
            # Zero or collision: suggest a fresh unique identifier.
            suggestion = self._random_id()
            while suggestion == self.config.interface_id:
                suggestion = self._random_id()   # pragma: no cover - 2^-62
            return ("nak", interface_id_option(suggestion))
        return "ack"

    def absorb_nak(self, option: ConfigOption) -> Optional[ConfigOption]:
        if option.type == IPV6CP_OPT_INTERFACE_ID and len(option.data) == 8:
            self.config.interface_id = option.value_uint()
            return interface_id_option(self.config.interface_id)
        return option

    def commit(self) -> None:
        opt = self.peer_options.get(IPV6CP_OPT_INTERFACE_ID)
        if opt is not None and len(opt.data) == 8:
            self.peer_interface_id = opt.value_uint()

    def link_local_address(self) -> int:
        """fe80::/64 plus the negotiated interface identifier."""
        return (0xFE80 << 112) | self.config.interface_id
