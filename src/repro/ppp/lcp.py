"""The Link Control Protocol (RFC 1661 section 6, RFC 1570 extensions).

LCP "establishes, configures and tests the data-link connection"
(paper section 2).  This implementation negotiates the options the P5
datapath is programmable over:

* **MRU** — sets the receiver's oversize guard;
* **ACCM** — selects the escape set of the Escape Generate unit;
* **Magic-Number** — loopback detection via
  :class:`~repro.ppp.magic.MagicNumberTracker`;
* **PFC / ACFC** — header compression, changing the byte layout the
  receiver's field parser must accept;
* **FCS-Alternatives** (RFC 1570) — 16- vs 32-bit CRC, i.e. which
  parallel CRC matrix the CRC unit loads.

Echo-Request/Reply and Discard-Request are handled in the Opened
state, giving the link-quality examples something to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ppp.control import Code, ControlPacket, ControlProtocol, OptionVerdict
from repro.ppp.fsm import Event, State
from repro.ppp.magic import MagicNumberTracker
from repro.ppp.options import (
    FCS_16,
    FCS_32,
    OPT_ACCM,
    OPT_ACFC,
    OPT_AUTH_PROTOCOL,
    OPT_FCS_ALTERNATIVES,
    OPT_MAGIC_NUMBER,
    OPT_MRU,
    OPT_PFC,
    ConfigOption,
    accm_option,
    acfc_option,
    fcs_alternatives_option,
    magic_number_option,
    mru_option,
    pfc_option,
)
from repro.ppp.protocol_numbers import PROTO_CHAP, PROTO_LCP, PROTO_PAP
from repro.utils.rng import SeedLike

__all__ = ["Lcp", "LcpConfig"]


@dataclass
class LcpConfig:
    """Local LCP policy: what we request and what we accept.

    Attributes
    ----------
    mru:
        The MRU we advertise (1500 default; omitted from the request
        when it equals the default, per RFC practice).
    accm:
        ACCM mask we request (0 on octet-synchronous SONET links).
    request_magic:
        Whether to negotiate a magic number (needed for loopback
        detection and echo tests).
    request_pfc, request_acfc:
        Whether to ask for header compression.
    fcs_flags:
        FCS-Alternatives flags to request (e.g. ``FCS_32``), or None
        to stay with the default 16-bit FCS wire format.
    min_peer_mru / max_peer_mru:
        Acceptance window for the peer's MRU request; outside it we
        nak with the nearest bound.
    """

    mru: int = 1500
    accm: int = 0x00000000
    request_magic: bool = True
    request_pfc: bool = False
    request_acfc: bool = False
    fcs_flags: Optional[int] = None
    min_peer_mru: int = 128
    max_peer_mru: int = 65535
    allowed_fcs_flags: int = FCS_16 | FCS_32
    #: Authentication protocol we demand of the peer (PROTO_PAP or
    #: PROTO_CHAP), or None (set by the session from its auth_server).
    require_auth: Optional[int] = None
    #: Authentication protocols we are able to perform as the
    #: authenticatee (set by the session from its auth_client).
    acceptable_auth: Tuple[int, ...] = ()


class Lcp(ControlProtocol):
    """LCP endpoint logic on top of :class:`ControlProtocol`."""

    protocol_number = PROTO_LCP
    name = "LCP"

    def __init__(
        self,
        config: Optional[LcpConfig] = None,
        *,
        magic_seed: SeedLike = None,
        max_configure: int = 10,
        max_terminate: int = 2,
    ) -> None:
        super().__init__(max_configure=max_configure, max_terminate=max_terminate)
        self.config = config or LcpConfig()
        self.magic = MagicNumberTracker(magic_seed)
        self._pending_echo: Optional[ControlPacket] = None
        self.echo_requests_seen = 0
        self.echo_replies_seen = 0
        self.discards_seen = 0
        self.protocol_rejects: List[int] = []

    # ------------------------------------------------------- request policy
    def desired_options(self) -> List[ConfigOption]:
        cfg = self.config
        options: List[ConfigOption] = []
        if cfg.mru != 1500:
            options.append(mru_option(cfg.mru))
        if cfg.accm != Accm_DEFAULT_SYNC:
            options.append(accm_option(cfg.accm))
        if cfg.request_magic:
            options.append(magic_number_option(self.magic.local_magic))
        if cfg.request_pfc:
            options.append(pfc_option())
        if cfg.request_acfc:
            options.append(acfc_option())
        if cfg.fcs_flags is not None:
            options.append(fcs_alternatives_option(cfg.fcs_flags))
        if cfg.require_auth is not None:
            options.append(auth_protocol_option(cfg.require_auth))
        return options

    def judge_option(self, option: ConfigOption) -> OptionVerdict:
        cfg = self.config
        if option.type == OPT_MRU:
            if len(option.data) != 2:
                return "rej"
            mru = option.value_uint()
            if mru < cfg.min_peer_mru:
                return ("nak", mru_option(cfg.min_peer_mru))
            if mru > cfg.max_peer_mru:
                return ("nak", mru_option(cfg.max_peer_mru))
            return "ack"
        if option.type == OPT_ACCM:
            return "ack" if len(option.data) == 4 else "rej"
        if option.type == OPT_MAGIC_NUMBER:
            if len(option.data) != 4:
                return "rej"
            magic = option.value_uint()
            if magic == 0 or self.magic.observe_peer_magic(magic):
                # Zero magic or our own magic: suspected loopback —
                # nak with a fresh random value (RFC 1661 §6.4).
                return ("nak", magic_number_option(self.magic.renumber()))
            return "ack"
        if option.type == OPT_AUTH_PROTOCOL:
            if len(option.data) < 2:
                return "rej"
            wanted = int.from_bytes(option.data[:2], "big")
            well_formed = (
                (wanted == PROTO_PAP and len(option.data) == 2)
                or (wanted == PROTO_CHAP and len(option.data) == 3
                    and option.data[2] == 5)   # MD5 only (RFC 1994)
            )
            if well_formed and wanted in cfg.acceptable_auth:
                return "ack"
            if cfg.acceptable_auth:
                # Counter-propose the strongest protocol we can perform.
                return ("nak", auth_protocol_option(cfg.acceptable_auth[0]))
            return "rej"
        if option.type in (OPT_PFC, OPT_ACFC):
            return "ack" if not option.data else "rej"
        if option.type == OPT_FCS_ALTERNATIVES:
            if len(option.data) != 1:
                return "rej"
            flags = option.data[0]
            if flags & ~cfg.allowed_fcs_flags:
                allowed = flags & cfg.allowed_fcs_flags
                if allowed:
                    return ("nak", fcs_alternatives_option(allowed))
                return "rej"
            return "ack"
        return "rej"

    def scr(self) -> None:
        # Each (re)transmitted Configure-Request proposes the *current*
        # magic number: after a collision nak (loopback suspicion) the
        # tracker renumbers, and the fresh value must go on the wire or
        # the collision evidence could never accumulate (RFC 1661 §6.4).
        if self._request_seeded and self.config.request_magic:
            self._pending_request = [
                magic_number_option(self.magic.local_magic)
                if opt.type == OPT_MAGIC_NUMBER
                else opt
                for opt in self._pending_request
            ]
        super().scr()

    def absorb_nak(self, option: ConfigOption) -> Optional[ConfigOption]:
        if option.type == OPT_MRU and len(option.data) == 2:
            self.config.mru = option.value_uint()
            return mru_option(self.config.mru)
        if option.type == OPT_MAGIC_NUMBER:
            # Collision: pick a fresh magic and try again.
            return magic_number_option(self.magic.renumber())
        if option.type == OPT_ACCM and len(option.data) == 4:
            # Peer wants more characters mapped: union is always safe.
            self.config.accm |= option.value_uint()
            return accm_option(self.config.accm)
        if option.type == OPT_FCS_ALTERNATIVES and len(option.data) == 1:
            self.config.fcs_flags = option.data[0]
            return fcs_alternatives_option(self.config.fcs_flags)
        return option

    def absorb_reject(self, option: ConfigOption) -> None:
        if option.type == OPT_AUTH_PROTOCOL:
            self.config.require_auth = None
        elif option.type == OPT_MAGIC_NUMBER:
            self.config.request_magic = False
        elif option.type == OPT_PFC:
            self.config.request_pfc = False
        elif option.type == OPT_ACFC:
            self.config.request_acfc = False
        elif option.type == OPT_FCS_ALTERNATIVES:
            self.config.fcs_flags = None

    # --------------------------------------------------- negotiated results
    def negotiated_mru(self) -> int:
        """MRU we must honour when *sending* (peer's acked request)."""
        opt = self.peer_options.get(OPT_MRU)
        return opt.value_uint() if opt and len(opt.data) == 2 else 1500

    def peer_accepted_pfc(self) -> bool:
        """We may compress the protocol field on transmit."""
        return OPT_PFC in self.local_options

    def peer_accepted_acfc(self) -> bool:
        """We may compress address/control on transmit."""
        return OPT_ACFC in self.local_options

    def negotiated_fcs_flags(self) -> int:
        """Effective FCS-Alternatives flags for our transmit direction."""
        opt = self.local_options.get(OPT_FCS_ALTERNATIVES)
        return opt.data[0] if opt and len(opt.data) == 1 else FCS_16

    # ------------------------------------------------------------- LCP codes
    def receive_packet(self, raw: bytes) -> None:
        packet = ControlPacket.decode(raw)
        if packet.code == Code.ECHO_REQUEST:
            self._on_echo_request(packet)
        elif packet.code == Code.ECHO_REPLY:
            self._on_echo_reply(packet)
        elif packet.code == Code.DISCARD_REQUEST:
            self._on_discard(packet)
        elif packet.code == Code.PROTOCOL_REJECT:
            self._on_protocol_reject(packet)
        else:
            super().receive_packet(raw)

    def _peer_magic_from(self, data: bytes) -> Optional[int]:
        if len(data) >= 4:
            return int.from_bytes(data[:4], "big")
        return None

    def _on_echo_request(self, packet: ControlPacket) -> None:
        self.echo_requests_seen += 1
        magic = self._peer_magic_from(packet.data)
        if magic is not None:
            self.magic.observe_peer_magic(magic)
        self._pending_echo = packet
        self.fsm.receive(Event.RXR)

    def ser(self) -> None:
        packet = self._pending_echo
        if packet is None:
            return
        reply_magic = (
            self.magic.local_magic if OPT_MAGIC_NUMBER in self.local_options else 0
        )
        data = reply_magic.to_bytes(4, "big") + packet.data[4:]
        self._send(Code.ECHO_REPLY, packet.identifier, data)

    def _on_echo_reply(self, packet: ControlPacket) -> None:
        self.echo_replies_seen += 1
        magic = self._peer_magic_from(packet.data)
        if magic is not None:
            self.magic.observe_peer_magic(magic)
        self.fsm.receive(Event.RXR)

    def _on_discard(self, packet: ControlPacket) -> None:
        self.discards_seen += 1
        self.fsm.receive(Event.RXR)

    def _on_protocol_reject(self, packet: ControlPacket) -> None:
        if len(packet.data) >= 2:
            self.protocol_rejects.append(int.from_bytes(packet.data[:2], "big"))
        # Rejection of a *network* protocol is tolerable.
        self.fsm.receive(Event.RXJ_PLUS)

    # ----------------------------------------------------------- transmit API
    def send_echo_request(self, payload: bytes = b"") -> None:
        """Queue an Echo-Request (Opened state only, RFC 1661 §5.8)."""
        if self.state is not State.OPENED:
            return
        magic = self.magic.local_magic if OPT_MAGIC_NUMBER in self.local_options else 0
        self._send(
            Code.ECHO_REQUEST, self._allocate_id(), magic.to_bytes(4, "big") + payload
        )

    def send_protocol_reject(self, protocol: int, offending: bytes) -> None:
        """Queue a Protocol-Reject for an unsupported protocol number."""
        data = protocol.to_bytes(2, "big") + offending[:60]
        self._send(Code.PROTOCOL_REJECT, self._allocate_id(), data)


#: The octet-synchronous ACCM default (avoid importing Accm just for this).
Accm_DEFAULT_SYNC = 0x00000000


def auth_protocol_option(protocol: int) -> ConfigOption:
    """Encode the Authentication-Protocol option for PAP or CHAP (MD5)."""
    if protocol == PROTO_PAP:
        return ConfigOption(OPT_AUTH_PROTOCOL, PROTO_PAP.to_bytes(2, "big"))
    if protocol == PROTO_CHAP:
        return ConfigOption(
            OPT_AUTH_PROTOCOL, PROTO_CHAP.to_bytes(2, "big") + bytes([5])
        )
    raise ValueError(f"unsupported authentication protocol 0x{protocol:04X}")
