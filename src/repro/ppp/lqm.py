"""Link Quality Monitoring — LQR (RFC 1333).

LCP's Quality-Protocol option (type 4) can negotiate Link-Quality-
Report packets (protocol 0xC025): each side periodically transmits a
snapshot of its transmit/receive counters, letting the peer compute
packet and octet loss *per direction* without probes.  For a SONET
line card this is the "is the span clean?" question the Protocol OAM
ultimately answers.

Packet layout (RFC 1333 section 3, twelve 32-bit fields)::

    Magic | LastOutLQRs | LastOutPackets | LastOutOctets
    PeerInLQRs | PeerInPackets | PeerInDiscards | PeerInErrors
    PeerInOctets | PeerOutLQRs | PeerOutPackets | PeerOutOctets

This implementation keeps the RFC's counter semantics: ``SaveInLQRs``
etc. are latched at reception, and loss is computed over LQR-delimited
measurement intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.ppp.protocol_numbers import PROTO_LQR

__all__ = ["LqrPacket", "LinkQualityMonitor", "QualityVerdict", "counter_delta"]

_COUNTER_MASK = 0xFFFFFFFF


def counter_delta(current: int, previous: int) -> int:
    """Mod-2\N{SUPERSCRIPT THREE}\N{SUPERSCRIPT TWO} delta between two LQR counter samples.

    RFC 1333 counters are 32-bit and wrap; a raw subtraction across the
    wrap goes negative, which the loss math would clamp into a silent
    0-loss interval (or, for the sent counter, a nonsense denominator).
    """
    return (current - previous) & _COUNTER_MASK

_FIELDS = (
    "magic",
    "last_out_lqrs",
    "last_out_packets",
    "last_out_octets",
    "peer_in_lqrs",
    "peer_in_packets",
    "peer_in_discards",
    "peer_in_errors",
    "peer_in_octets",
    "peer_out_lqrs",
    "peer_out_packets",
    "peer_out_octets",
)


@dataclass(frozen=True)
class LqrPacket:
    """One Link-Quality-Report."""

    magic: int = 0
    last_out_lqrs: int = 0
    last_out_packets: int = 0
    last_out_octets: int = 0
    peer_in_lqrs: int = 0
    peer_in_packets: int = 0
    peer_in_discards: int = 0
    peer_in_errors: int = 0
    peer_in_octets: int = 0
    peer_out_lqrs: int = 0
    peer_out_packets: int = 0
    peer_out_octets: int = 0

    def encode(self) -> bytes:
        return b"".join(
            (getattr(self, name) & 0xFFFFFFFF).to_bytes(4, "big")
            for name in _FIELDS
        )

    @classmethod
    def decode(cls, raw: bytes) -> "LqrPacket":
        if len(raw) < 48:
            raise ProtocolError("LQR packets are 48 octets")
        values = {
            name: int.from_bytes(raw[4 * i : 4 * i + 4], "big")
            for i, name in enumerate(_FIELDS)
        }
        return cls(**values)


@dataclass
class QualityVerdict:
    """Loss figures for one LQR-delimited measurement interval."""

    interval: int                  # ordinal of the interval
    outbound_sent: int             # packets we sent in the interval
    outbound_received: int         # of those, packets the peer saw
    inbound_expected: int          # packets the peer sent us
    inbound_received: int          # of those, packets we saw

    @property
    def outbound_loss(self) -> float:
        if self.outbound_sent == 0:
            return 0.0
        lost = max(0, self.outbound_sent - self.outbound_received)
        return lost / self.outbound_sent

    @property
    def inbound_loss(self) -> float:
        if self.inbound_expected == 0:
            return 0.0
        lost = max(0, self.inbound_expected - self.inbound_received)
        return lost / self.inbound_expected


class LinkQualityMonitor:
    """One side's LQR engine.

    The owner feeds traffic events (:meth:`count_tx` / :meth:`count_rx`
    / :meth:`count_rx_error`) and periodically calls
    :meth:`build_report` to emit an LQR; incoming LQRs go to
    :meth:`receive_report`, which yields a :class:`QualityVerdict` for
    the closed interval (or None for the first report).

    Parameters
    ----------
    magic:
        Our negotiated LCP magic number (echoed in reports).
    quality_threshold:
        Maximum tolerable loss fraction per interval; :attr:`healthy`
        goes False when either direction exceeds it.
    """

    protocol_number = PROTO_LQR

    def __init__(self, magic: int = 0, *, quality_threshold: float = 0.1) -> None:
        self.magic = magic
        self.quality_threshold = quality_threshold
        # Local transmit/receive counters (RFC 1333 section 4).
        self.out_lqrs = 0
        self.out_packets = 0
        self.out_octets = 0
        self.in_lqrs = 0
        self.in_packets = 0
        self.in_octets = 0
        self.in_discards = 0
        self.in_errors = 0
        # Latched values of the peer's last report.
        self._last_peer: Optional[LqrPacket] = None
        self._in_packets_at_last_report = 0
        self.verdicts: List[QualityVerdict] = []

    # ---------------------------------------------------------- traffic taps
    def count_tx(self, octets: int) -> None:
        """One outbound packet of ``octets`` bytes left our transmitter."""
        self.out_packets += 1
        self.out_octets += octets

    def count_rx(self, octets: int) -> None:
        """One inbound packet arrived intact."""
        self.in_packets += 1
        self.in_octets += octets

    def count_rx_error(self) -> None:
        """One inbound frame failed FCS (or was otherwise dropped)."""
        self.in_errors += 1

    # -------------------------------------------------------------- reports
    def build_report(self) -> bytes:
        """Emit our next LQR (and count it as an outbound LQR)."""
        self.out_lqrs += 1
        peer = self._last_peer or LqrPacket()
        packet = LqrPacket(
            magic=self.magic,
            last_out_lqrs=self.out_lqrs,
            last_out_packets=self.out_packets,
            last_out_octets=self.out_octets,
            peer_in_lqrs=self.in_lqrs,
            peer_in_packets=self.in_packets,
            peer_in_discards=self.in_discards,
            peer_in_errors=self.in_errors,
            peer_in_octets=self.in_octets,
            peer_out_lqrs=peer.last_out_lqrs,
            peer_out_packets=peer.last_out_packets,
            peer_out_octets=peer.last_out_octets,
        )
        return packet.encode()

    def receive_report(self, raw: bytes) -> Optional[QualityVerdict]:
        """Absorb the peer's LQR; returns the interval verdict if one
        measurement interval just closed."""
        packet = LqrPacket.decode(raw)
        self.in_lqrs += 1
        previous = self._last_peer
        self._last_peer = packet
        if previous is None:
            self._in_packets_at_last_report = self.in_packets
            return None
        verdict = QualityVerdict(
            interval=len(self.verdicts) + 1,
            # What the peer says it received of what we said we sent
            # (wire counters are 32-bit, so deltas are mod-2^32):
            outbound_sent=counter_delta(
                packet.peer_out_packets, previous.peer_out_packets
            ),
            outbound_received=counter_delta(
                packet.peer_in_packets, previous.peer_in_packets
            ),
            # What the peer sent vs what we actually got:
            inbound_expected=counter_delta(
                packet.last_out_packets, previous.last_out_packets
            ),
            inbound_received=self.in_packets - self._in_packets_at_last_report,
        )
        self._in_packets_at_last_report = self.in_packets
        self.verdicts.append(verdict)
        return verdict

    @property
    def healthy(self) -> bool:
        """True while recent intervals stay under the loss threshold."""
        if not self.verdicts:
            return True
        last = self.verdicts[-1]
        return (
            last.outbound_loss <= self.quality_threshold
            and last.inbound_loss <= self.quality_threshold
        )
