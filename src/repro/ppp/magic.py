"""Magic-number management and looped-link detection (RFC 1661 §6.4).

Each endpoint picks a random 32-bit magic number.  If a received
Configure-Request (or Echo-Request) carries *our own* magic number,
the link is very probably looped back on itself — a real operational
condition on SONET links, where loopbacks are a standard maintenance
action the Protocol OAM must detect and report.
"""

from __future__ import annotations

from repro.utils.rng import SeedLike, make_rng

__all__ = ["MagicNumberTracker"]


class MagicNumberTracker:
    """Holds the local magic number and scores loopback evidence."""

    #: Consecutive own-magic sightings before declaring a loop.
    LOOP_THRESHOLD = 3

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)
        self.local_magic = self._fresh_magic()
        self.loop_evidence = 0
        self.loops_detected = 0

    def _fresh_magic(self) -> int:
        # Zero is reserved ("no magic"), so draw from [1, 2**32).
        return int(self._rng.integers(1, 1 << 32))

    def renumber(self) -> int:
        """Pick a fresh local magic (after a collision nak)."""
        self.local_magic = self._fresh_magic()
        return self.local_magic

    def observe_peer_magic(self, magic: int) -> bool:
        """Record a peer-supplied magic; True if it matches our own.

        A match is evidence of loopback; after ``LOOP_THRESHOLD``
        consecutive matches :attr:`looped` latches.
        """
        if magic == self.local_magic:
            self.loop_evidence += 1
            if self.loop_evidence == self.LOOP_THRESHOLD:
                self.loops_detected += 1
            return True
        self.loop_evidence = 0
        return False

    @property
    def looped(self) -> bool:
        """Whether loopback has been declared on current evidence."""
        return self.loop_evidence >= self.LOOP_THRESHOLD
