"""Network Control Protocol base (RFC 1661 section 2, third bullet).

"PPP is designed to allow the simultaneous use of multiple
network-layer protocols" — each network layer gets an NCP that reuses
the same negotiation automaton as LCP but is only allowed to run once
the link has reached the Network phase.  :class:`NcpBase` adds the
bookkeeping shared by concrete NCPs (:class:`~repro.ppp.ipcp.Ipcp`
here; others plug in the same way).
"""

from __future__ import annotations

from repro.ppp.control import ControlProtocol

__all__ = ["NcpBase"]


class NcpBase(ControlProtocol):
    """A control protocol gated behind LCP's this-layer-up.

    The session layer calls :meth:`lower_layer_up` when LCP opens and
    :meth:`lower_layer_down` when it closes; the NCP's own FSM then
    negotiates its network-layer parameters.
    """

    #: PPP protocol number of the network-layer data this NCP enables,
    #: e.g. IPCP (0x8021) enables IPv4 (0x0021).
    data_protocol_number: int = 0

    def lower_layer_up(self) -> None:
        """LCP reached Opened: this NCP's lower layer is now up."""
        self.fsm.up()

    def lower_layer_down(self) -> None:
        """LCP left Opened: bring the NCP down with it."""
        self.fsm.down()

    def network_ready(self) -> bool:
        """Whether datagrams of :attr:`data_protocol_number` may flow."""
        return self.layer_up
