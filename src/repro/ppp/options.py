"""Configuration-option TLVs (RFC 1661 section 6 framing).

Every LCP/NCP Configure packet body is a list of
``type(1) length(1) data(length-2)`` options.  :class:`ConfigOption`
is the generic TLV; the typed helpers encode the specific options the
library negotiates:

=====  ======================  ======================================
type   LCP option              relevance to the paper
=====  ======================  ======================================
1      MRU                     payload "variable up to a negotiated
                               maximum ... default 1500"
2      ACCM                    async links only; 0 on SONET
3      Authentication-Protocol PAP/CHAP selection
5      Magic-Number            loopback detection
7      PFC                     protocol field "may be negotiated down
                               to 1 byte using LCP"
8      ACFC                    header compression
9      FCS-Alternatives        16- vs 32-bit CRC programmability
=====  ======================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ProtocolError

__all__ = [
    "ConfigOption",
    "pack_options",
    "unpack_options",
    "OPT_MRU",
    "OPT_ACCM",
    "OPT_AUTH_PROTOCOL",
    "OPT_QUALITY_PROTOCOL",
    "OPT_MAGIC_NUMBER",
    "OPT_PFC",
    "OPT_ACFC",
    "OPT_FCS_ALTERNATIVES",
    "IPCP_OPT_IP_ADDRESS",
    "FCS_NONE",
    "FCS_16",
    "FCS_32",
    "mru_option",
    "accm_option",
    "magic_number_option",
    "pfc_option",
    "acfc_option",
    "fcs_alternatives_option",
    "ip_address_option",
]

# LCP option types (RFC 1661 / RFC 1570).
OPT_MRU = 1
OPT_ACCM = 2
OPT_AUTH_PROTOCOL = 3
OPT_QUALITY_PROTOCOL = 4
OPT_MAGIC_NUMBER = 5
OPT_PFC = 7
OPT_ACFC = 8
OPT_FCS_ALTERNATIVES = 9

# IPCP option types (RFC 1332).
IPCP_OPT_IP_ADDRESS = 3

# FCS-Alternatives bit flags (RFC 1570 section 2.1).
FCS_NONE = 0x01
FCS_16 = 0x02
FCS_32 = 0x04


@dataclass(frozen=True)
class ConfigOption:
    """One TLV: option ``type`` and raw ``data`` (without type/length)."""

    type: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise ValueError(f"option type out of range: {self.type}")
        if len(self.data) > 0xFD:
            raise ValueError("option data too long for one-octet length field")

    def encode(self) -> bytes:
        return bytes([self.type, len(self.data) + 2]) + self.data

    def value_uint(self) -> int:
        """Interpret ``data`` as a big-endian unsigned integer."""
        return int.from_bytes(self.data, "big")


def pack_options(options: List[ConfigOption]) -> bytes:
    """Serialise a TLV list for a Configure packet body."""
    return b"".join(opt.encode() for opt in options)


def unpack_options(body: bytes) -> List[ConfigOption]:
    """Parse a Configure packet body into TLVs.

    Raises :class:`~repro.errors.ProtocolError` on malformed lengths —
    the condition that triggers a Code-Reject in a strict peer.
    """
    options: List[ConfigOption] = []
    offset = 0
    while offset < len(body):
        if offset + 2 > len(body):
            raise ProtocolError("truncated option header")
        opt_type, opt_len = body[offset], body[offset + 1]
        if opt_len < 2 or offset + opt_len > len(body):
            raise ProtocolError(
                f"option type {opt_type} has invalid length {opt_len} at offset {offset}"
            )
        options.append(ConfigOption(opt_type, body[offset + 2 : offset + opt_len]))
        offset += opt_len
    return options


# ------------------------------------------------------------ typed helpers
def mru_option(mru: int) -> ConfigOption:
    """Maximum-Receive-Unit (LCP type 1)."""
    if not 0 <= mru <= 0xFFFF:
        raise ValueError(f"MRU out of range: {mru}")
    return ConfigOption(OPT_MRU, mru.to_bytes(2, "big"))


def accm_option(mask: int) -> ConfigOption:
    """Async-Control-Character-Map (LCP type 2)."""
    if mask & ~0xFFFFFFFF:
        raise ValueError(f"ACCM mask out of range: 0x{mask:X}")
    return ConfigOption(OPT_ACCM, mask.to_bytes(4, "big"))


def magic_number_option(magic: int) -> ConfigOption:
    """Magic-Number (LCP type 5) for loopback detection."""
    if magic & ~0xFFFFFFFF:
        raise ValueError(f"magic number out of range: 0x{magic:X}")
    return ConfigOption(OPT_MAGIC_NUMBER, magic.to_bytes(4, "big"))


def pfc_option() -> ConfigOption:
    """Protocol-Field-Compression (LCP type 7; boolean, no data)."""
    return ConfigOption(OPT_PFC)


def acfc_option() -> ConfigOption:
    """Address-and-Control-Field-Compression (LCP type 8)."""
    return ConfigOption(OPT_ACFC)


def fcs_alternatives_option(flags: int) -> ConfigOption:
    """FCS-Alternatives (RFC 1570, LCP type 9): OR of FCS_NONE/16/32."""
    if flags & ~(FCS_NONE | FCS_16 | FCS_32):
        raise ValueError(f"unknown FCS-Alternatives flags 0x{flags:X}")
    if not flags:
        raise ValueError("FCS-Alternatives needs at least one flag")
    return ConfigOption(OPT_FCS_ALTERNATIVES, bytes([flags]))


def ip_address_option(address: int) -> ConfigOption:
    """IP-Address (IPCP type 3); ``address`` is a 32-bit host integer."""
    if address & ~0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: 0x{address:X}")
    return ConfigOption(IPCP_OPT_IP_ADDRESS, address.to_bytes(4, "big"))
