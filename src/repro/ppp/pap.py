"""PAP — the Password Authentication Protocol (RFC 1334 section 2).

Fills in the RFC 1661 *Authenticate* phase between Establish and
Network: after LCP opens with an Authentication-Protocol option
(0xC023), the authenticatee repeatedly sends Authenticate-Request
(peer-id + password) until the authenticator answers Ack or Nak.

PAP is deliberately simple (plaintext), which is exactly why it fits a
hardware-offload line card's control plane; the session layer gates
the NCPs on its outcome.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.ppp.protocol_numbers import PROTO_PAP

__all__ = ["PapCode", "PapAuthenticator", "PapClient", "encode_auth_request"]


class PapCode(enum.IntEnum):
    """RFC 1334 PAP packet codes."""

    AUTHENTICATE_REQUEST = 1
    AUTHENTICATE_ACK = 2
    AUTHENTICATE_NAK = 3


def _packet(code: int, identifier: int, data: bytes) -> bytes:
    length = 4 + len(data)
    return bytes([code, identifier]) + length.to_bytes(2, "big") + data


def encode_auth_request(identifier: int, peer_id: bytes, password: bytes) -> bytes:
    """Build an Authenticate-Request packet."""
    if len(peer_id) > 0xFF or len(password) > 0xFF:
        raise ValueError("peer-id and password are length-prefixed octets")
    body = bytes([len(peer_id)]) + peer_id + bytes([len(password)]) + password
    return _packet(PapCode.AUTHENTICATE_REQUEST, identifier, body)


def _decode_request(data: bytes) -> Tuple[bytes, bytes]:
    if not data:
        raise ProtocolError("empty Authenticate-Request body")
    id_len = data[0]
    if len(data) < 1 + id_len + 1:
        raise ProtocolError("truncated Authenticate-Request")
    peer_id = data[1 : 1 + id_len]
    pw_len = data[1 + id_len]
    password = data[2 + id_len : 2 + id_len + pw_len]
    if len(password) != pw_len:
        raise ProtocolError("truncated password field")
    return peer_id, password


def _message_body(text: bytes) -> bytes:
    return bytes([len(text)]) + text


class PapAuthenticator:
    """The server side: validates requests against a credential table."""

    protocol_number = PROTO_PAP

    def __init__(self, credentials: Dict[bytes, bytes], *, max_failures: int = 3) -> None:
        self.credentials = dict(credentials)
        self.max_failures = max_failures
        self.outbox: Deque[bytes] = deque()
        self.authenticated: Optional[bytes] = None   # peer-id on success
        self.failures = 0

    @property
    def done(self) -> bool:
        return self.authenticated is not None

    @property
    def failed(self) -> bool:
        return self.failures >= self.max_failures

    def start(self) -> None:
        """PAP authenticators are passive: the peer sends the request."""

    def tick(self) -> None:
        """Nothing to retransmit on the authenticator side."""

    def receive_packet(self, raw: bytes) -> None:
        if len(raw) < 4 or raw[0] != PapCode.AUTHENTICATE_REQUEST:
            return  # authenticators ignore ack/nak
        identifier = raw[1]
        length = int.from_bytes(raw[2:4], "big")
        peer_id, password = _decode_request(raw[4:length])
        if self.credentials.get(peer_id) == password:
            self.authenticated = peer_id
            self.outbox.append(
                _packet(PapCode.AUTHENTICATE_ACK, identifier, _message_body(b"welcome"))
            )
        else:
            self.failures += 1
            self.outbox.append(
                _packet(PapCode.AUTHENTICATE_NAK, identifier, _message_body(b"denied"))
            )

    def drain_outbox(self) -> List[bytes]:
        out = list(self.outbox)
        self.outbox.clear()
        return out


class PapClient:
    """The authenticatee: sends requests until acked (or gives up)."""

    protocol_number = PROTO_PAP

    def __init__(
        self,
        peer_id: bytes,
        password: bytes,
        *,
        max_retries: int = 5,
    ) -> None:
        self.peer_id = peer_id
        self.password = password
        self.max_retries = max_retries
        self.outbox: Deque[bytes] = deque()
        self._identifier = 0
        self._attempts = 0
        self.acked = False
        self.naked = False

    @property
    def done(self) -> bool:
        return self.acked

    @property
    def failed(self) -> bool:
        return self.naked or self._attempts > self.max_retries

    def start(self) -> None:
        """Send the first Authenticate-Request (LCP just opened)."""
        self._send_request()

    def _send_request(self) -> None:
        self._attempts += 1
        self._identifier = (self._identifier + 1) & 0xFF
        self.outbox.append(
            encode_auth_request(self._identifier, self.peer_id, self.password)
        )

    def tick(self) -> None:
        """Retransmit on timeout until resolved."""
        if not self.acked and not self.failed:
            self._send_request()

    def receive_packet(self, raw: bytes) -> None:
        if len(raw) < 4 or raw[1] != self._identifier:
            return
        if raw[0] == PapCode.AUTHENTICATE_ACK:
            self.acked = True
        elif raw[0] == PapCode.AUTHENTICATE_NAK:
            self.naked = True

    def drain_outbox(self) -> List[bytes]:
        out = list(self.outbox)
        self.outbox.clear()
        return out
