"""PPP protocol-field values (RFC 1661 section 2, assigned numbers).

The paper (section 2): "Protocols starting with a 0 bit are network
layer protocols such as IP or IPX, those starting with a 1 bit are
used to negotiate other protocols including LCP and NCP."  In the
assigned-numbers encoding that bit is the top bit of the 16-bit value:
``0x0xxx/0x8xxx`` ranges carry/configure network-layer data while
``0xCxxx`` is link-layer control.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "PROTO_IPV4",
    "PROTO_IPV6",
    "PROTO_IPX",
    "PROTO_MPLS_UNICAST",
    "PROTO_IPCP",
    "PROTO_IPV6CP",
    "PROTO_LCP",
    "PROTO_PAP",
    "PROTO_CHAP",
    "PROTO_LQR",
    "protocol_name",
    "is_valid_protocol",
    "is_network_layer",
    "is_control_protocol",
    "pfc_compressible",
]

# -- network-layer protocols (data) ----------------------------------------
PROTO_IPV4 = 0x0021
PROTO_IPX = 0x002B
PROTO_IPV6 = 0x0057
PROTO_MPLS_UNICAST = 0x0281

# -- network control protocols ----------------------------------------------
PROTO_IPCP = 0x8021
PROTO_IPV6CP = 0x8057

# -- link-layer protocols -----------------------------------------------------
PROTO_LCP = 0xC021
PROTO_PAP = 0xC023
PROTO_LQR = 0xC025
PROTO_CHAP = 0xC223

_NAMES: Dict[int, str] = {
    PROTO_IPV4: "IPv4",
    PROTO_IPX: "IPX",
    PROTO_IPV6: "IPv6",
    PROTO_MPLS_UNICAST: "MPLS-unicast",
    PROTO_IPCP: "IPCP",
    PROTO_IPV6CP: "IPV6CP",
    PROTO_LCP: "LCP",
    PROTO_PAP: "PAP",
    PROTO_LQR: "LQR",
    PROTO_CHAP: "CHAP",
}


def protocol_name(protocol: int) -> str:
    """Human-readable name, or ``"unknown-0xNNNN"``."""
    return _NAMES.get(protocol, f"unknown-0x{protocol:04X}")


def is_valid_protocol(protocol: int) -> bool:
    """RFC 1661 well-formedness: LSB of low octet 1, LSB of high octet 0."""
    if not 0 <= protocol <= 0xFFFF:
        return False
    return bool(protocol & 0x0001) and not (protocol & 0x0100)


def is_network_layer(protocol: int) -> bool:
    """True for protocols that carry network-layer datagrams (0x0xxx-0x3xxx)."""
    return is_valid_protocol(protocol) and protocol < 0x4000


def is_control_protocol(protocol: int) -> bool:
    """True for LCP/NCP-style negotiation protocols (0x8xxx-0xFxxx)."""
    return is_valid_protocol(protocol) and protocol >= 0x8000


def pfc_compressible(protocol: int) -> bool:
    """Whether the protocol field may shrink to one octet under PFC."""
    return is_valid_protocol(protocol) and protocol <= 0x00FF
