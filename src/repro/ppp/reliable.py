"""PPP Reliable Transmission — numbered mode (RFC 1663, paper ref [7]).

Paper section 2, on the control field: "PPP may be configured via the
LCP to use sequence numbers and acknowledgements for reliable data
transmission.  This is of particular use in noisy environments such as
wireless networks, but will be disabled by default."

This module implements that numbered mode: LAPB-style modulo-8
sequence numbering in the HDLC control field with a go-back-N
retransmission scheme.

Control-field encodings (ISO 7809 / LAPB, as RFC 1663 adopts):

* **I-frame** (information): ``N(R)<<5 | P<<4 | N(S)<<1 | 0`` — LSB 0.
* **RR** (receive ready):    ``N(R)<<5 | P/F<<4 | 0x01``.
* **REJ** (reject):          ``N(R)<<5 | P/F<<4 | 0x09``.

Time is logical, as everywhere in the library: :meth:`NumberedModeLink.tick`
models one retransmission-timer period.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError

__all__ = ["FrameType", "NumberedModeLink", "decode_control", "encode_i", "encode_s"]

MODULUS = 8

#: Supervisory-frame low nibbles.
_S_RR = 0x01
_S_REJ = 0x09


class FrameType(enum.Enum):
    """Decoded control-field kind."""

    I = "I"      # noqa: E741 - the standard name
    RR = "RR"
    REJ = "REJ"


def encode_i(ns: int, nr: int, *, poll: bool = False) -> int:
    """Control octet of an I-frame carrying N(S), acknowledging N(R)."""
    if not 0 <= ns < MODULUS or not 0 <= nr < MODULUS:
        raise ValueError("sequence numbers are modulo 8")
    return (nr << 5) | (int(poll) << 4) | (ns << 1)


def encode_s(kind: FrameType, nr: int, *, final: bool = False) -> int:
    """Control octet of a supervisory frame (RR or REJ)."""
    if not 0 <= nr < MODULUS:
        raise ValueError("sequence numbers are modulo 8")
    low = {FrameType.RR: _S_RR, FrameType.REJ: _S_REJ}[kind]
    return (nr << 5) | (int(final) << 4) | low


def decode_control(octet: int) -> Tuple[FrameType, Optional[int], int, bool]:
    """Decode a control octet to ``(type, N(S) or None, N(R), P/F)``."""
    if not 0 <= octet <= 0xFF:
        raise ValueError("control field is one octet in modulo-8 mode")
    pf = bool(octet & 0x10)
    nr = octet >> 5
    if not octet & 0x01:                      # I-frame
        return FrameType.I, (octet >> 1) & 0x07, nr, pf
    low = octet & 0x0F
    if low == _S_RR:
        return FrameType.RR, None, nr, pf
    if low == _S_REJ:
        return FrameType.REJ, None, nr, pf
    raise ProtocolError(f"unsupported numbered-mode control octet 0x{octet:02X}")


@dataclass
class LinkStats:
    """Reliability-layer counters."""

    i_sent: int = 0
    i_resent: int = 0
    i_received: int = 0
    out_of_sequence: int = 0
    rej_sent: int = 0
    rej_received: int = 0
    rr_sent: int = 0
    timeouts: int = 0


class NumberedModeLink:
    """One end of a numbered-mode (reliable) PPP link.

    The link exchanges ``(control_octet, payload)`` frames — on the
    wire these occupy the HDLC control field and information field;
    the surrounding flag/address/FCS handling stays with
    :mod:`repro.hdlc` (a frame lost to FCS failure simply never
    reaches this layer, which is exactly the loss model go-back-N
    recovers from).

    Parameters
    ----------
    window:
        Maximum unacknowledged I-frames in flight, 1..7.
    timer_limit:
        Ticks an unacknowledged frame waits before go-back-N fires.
    """

    def __init__(self, name: str = "link", *, window: int = 7, timer_limit: int = 3) -> None:
        if not 1 <= window < MODULUS:
            raise ValueError("window must be 1..7 in modulo-8 mode")
        self.name = name
        self.window = window
        self.timer_limit = timer_limit
        self.vs = 0                 # next N(S) to send
        self.vr = 0                 # next N(S) expected
        self.va = 0                 # oldest unacknowledged N(S)
        self._sendq: Deque[bytes] = deque()           # not yet sent
        self._inflight: Dict[int, bytes] = {}         # ns -> payload
        self._inflight_order: Deque[int] = deque()
        self.outbox: Deque[Tuple[int, bytes]] = deque()
        self.delivered: List[bytes] = []
        self._rej_outstanding = False
        self._ack_owed = False
        self._timer = 0
        self.stats = LinkStats()

    # ------------------------------------------------------------ user side
    def send(self, payload: bytes) -> None:
        """Queue one datagram for reliable delivery."""
        self._sendq.append(payload)
        self._pump_window()

    def _outstanding(self) -> int:
        return (self.vs - self.va) % MODULUS

    def _pump_window(self) -> None:
        while self._sendq and self._outstanding() < self.window:
            payload = self._sendq.popleft()
            control = encode_i(self.vs, self.vr)
            self._inflight[self.vs] = payload
            self._inflight_order.append(self.vs)
            self.outbox.append((control, payload))
            self.stats.i_sent += 1
            self._ack_owed = False            # I-frames piggyback N(R)
            self.vs = (self.vs + 1) % MODULUS
        if self._outstanding():
            self._timer = max(self._timer, 1)

    # ------------------------------------------------------------ wire side
    def receive(self, control: int, payload: bytes = b"") -> None:
        """Process one frame that arrived intact."""
        kind, ns, nr, _pf = decode_control(control)
        self._apply_ack(nr)
        if kind is FrameType.I:
            self._receive_i(ns, payload)
        elif kind is FrameType.REJ:
            self.stats.rej_received += 1
            self._go_back_n(nr)
        # RR carries only the ack, already applied.

    def _receive_i(self, ns: int, payload: bytes) -> None:
        if ns == self.vr:
            self.stats.i_received += 1
            self.delivered.append(payload)
            self.vr = (self.vr + 1) % MODULUS
            self._rej_outstanding = False
            self._ack_owed = True
        else:
            # Out of sequence: a frame was lost. Send (one) REJ.
            self.stats.out_of_sequence += 1
            if not self._rej_outstanding:
                self.outbox.append((encode_s(FrameType.REJ, self.vr), b""))
                self.stats.rej_sent += 1
                self._rej_outstanding = True

    def _apply_ack(self, nr: int) -> None:
        """Release every in-flight frame the peer's N(R) acknowledges."""
        while self._inflight_order and self._in_ack_range(self._inflight_order[0], nr):
            ns = self._inflight_order.popleft()
            del self._inflight[ns]
            self.va = (ns + 1) % MODULUS
        if not self._inflight_order:
            self._timer = 0
        else:
            self._timer = max(self._timer, 1)
        self._pump_window()

    def _in_ack_range(self, ns: int, nr: int) -> bool:
        """Whether N(R)=nr acknowledges outstanding frame ns."""
        # ns is acked iff it lies in [va, nr) in modulo order.
        span = (nr - self.va) % MODULUS
        offset = (ns - self.va) % MODULUS
        return offset < span

    def _go_back_n(self, nr: int) -> None:
        """Retransmit everything from ``nr`` onwards, in order."""
        for ns in list(self._inflight_order):
            if self._in_ack_range(ns, nr):
                continue  # acked by the REJ's N(R); _apply_ack handled it
            control = encode_i(ns, self.vr)
            self.outbox.append((control, self._inflight[ns]))
            self.stats.i_resent += 1
        self._timer = max(self._timer, 1)

    # --------------------------------------------------------------- timers
    def tick(self) -> None:
        """One retransmission-timer period of logical time."""
        if not self._inflight_order:
            self._flush_ack()
            return
        self._timer += 1
        if self._timer > self.timer_limit:
            self.stats.timeouts += 1
            self._timer = 1
            self._go_back_n(self.va)
        self._flush_ack()

    def _flush_ack(self) -> None:
        """Send a standalone RR if an ack is owed and nothing piggybacked."""
        if self._ack_owed:
            self.outbox.append((encode_s(FrameType.RR, self.vr), b""))
            self.stats.rr_sent += 1
            self._ack_owed = False

    def drain_outbox(self) -> List[Tuple[int, bytes]]:
        """Remove and return all queued (control, payload) frames."""
        out = list(self.outbox)
        self.outbox.clear()
        return out

    @property
    def all_acknowledged(self) -> bool:
        """No frames queued or awaiting acknowledgement."""
        return not self._sendq and not self._inflight_order
