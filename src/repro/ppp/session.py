"""A complete PPP link endpoint and the RFC 1661 phase diagram.

:class:`PppEndpoint` glues every layer of the stack together the same
way the P5 system does in hardware (paper Figure 2): an HDLC
framer/delineator pair (the datapath), LCP and the NCPs (the Protocol
OAM's control plane), and transmit/receive datagram queues (the shared
memory).  It is pure protocol logic over byte strings, so it runs
equally over a plain loopback pipe, the BER-injecting PHY model, or
the SONET path used by the examples.

Phases (RFC 1661 section 3.2)::

    DEAD -> ESTABLISH -> AUTHENTICATE -> NETWORK -> TERMINATE -> DEAD
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.crc import CRC16_X25, CRC32, CrcSpec
from repro.errors import FramingError
from repro.hdlc.accm import Accm
from repro.hdlc.delineation import Delineator
from repro.hdlc.framer import HdlcFramer
from repro.ppp.frame import PPPFrame
from repro.ppp.ipcp import Ipcp, IpcpConfig
from repro.ppp.lcp import Lcp, LcpConfig
from repro.ppp.ncp import NcpBase
from repro.ppp.pap import PapAuthenticator, PapClient
from repro.ppp.options import FCS_32, OPT_ACCM, OPT_AUTH_PROTOCOL
from repro.ppp.protocol_numbers import (
    PROTO_CHAP,
    PROTO_LCP,
    PROTO_PAP,
    is_network_layer,
)
from repro.ppp.fsm import State
from repro.utils.rng import SeedLike

__all__ = ["LinkPhase", "PppEndpoint", "connect_endpoints"]


class LinkPhase(enum.Enum):
    """RFC 1661 link phases."""

    DEAD = "Dead"
    ESTABLISH = "Establish"
    AUTHENTICATE = "Authenticate"
    NETWORK = "Network"
    TERMINATE = "Terminate"


@dataclass
class EndpointCounters:
    """Per-endpoint traffic counters (surfaced by the OAM register map)."""

    frames_tx: int = 0
    frames_rx: int = 0
    datagrams_tx: int = 0
    datagrams_rx: int = 0
    protocol_rejects_tx: int = 0
    discarded_wrong_phase: int = 0


class PppEndpoint:
    """One side of a PPP link.

    Parameters
    ----------
    name:
        Label used in traces.
    lcp_config, ipcp_config:
        Negotiation policies; defaults give a plain IP-over-SONET
        endpoint requesting a magic number.
    fcs_spec:
        Initial FCS wire format.  RFC 1662's default is FCS-16; the P5
        runs FCS-32 ("for accuracy purposes"), so that is our default.
        When both peers negotiate FCS-Alternatives the framers are
        re-programmed per direction after LCP opens.
    address:
        The programmable HDLC address octet (0xFF for plain PPP,
        station addresses for MAPOS-style operation).
    """

    def __init__(
        self,
        name: str,
        lcp_config: Optional[LcpConfig] = None,
        ipcp_config: Optional[IpcpConfig] = None,
        *,
        fcs_spec: CrcSpec = CRC32,
        address: int = 0xFF,
        magic_seed: SeedLike = None,
        pap_client: Optional[PapClient] = None,
        pap_server: Optional[PapAuthenticator] = None,
        auth_client=None,
        auth_server=None,
    ) -> None:
        self.name = name
        self.address = address
        self.lcp = Lcp(lcp_config, magic_seed=magic_seed)
        self.ipcp = Ipcp(ipcp_config)
        self.ncps: Dict[int, NcpBase] = {self.ipcp.protocol_number: self.ipcp}
        self._base_fcs = fcs_spec
        self.tx_framer = HdlcFramer(fcs_spec)
        self.rx_framer = HdlcFramer(fcs_spec)
        self.delineator = Delineator(framer=self.rx_framer)
        self.counters = EndpointCounters()
        self._datagram_out: Deque[Tuple[int, bytes]] = deque()
        self.datagrams_in: Deque[Tuple[int, bytes]] = deque()
        self._lcp_was_up = False
        self._fcs_applied = False
        # RFC 1661 Authenticate phase (RFC 1334 PAP / RFC 1994 CHAP).
        # `pap_client`/`pap_server` are convenience aliases for the
        # generic `auth_client`/`auth_server` slots.
        self.auth_client = auth_client if auth_client is not None else pap_client
        self.auth_server = auth_server if auth_server is not None else pap_server
        self._auth_started = False
        self._ncps_up = False
        if self.auth_server is not None:
            self.lcp.config.require_auth = self.auth_server.protocol_number
        if self.auth_client is not None:
            self.lcp.config.acceptable_auth = (self.auth_client.protocol_number,)

    # -------------------------------------------------------------- controls
    def lower_up(self) -> None:
        """The physical layer came up (PHY signal)."""
        self.lcp.fsm.up()
        self._sync_layers()

    def lower_down(self) -> None:
        """The physical layer went down."""
        self.lcp.fsm.down()
        self.delineator.flush()
        self._sync_layers()

    def open(self) -> None:
        """Administrative Open (host writes the OAM 'open' bit)."""
        self.lcp.fsm.open()
        for ncp in self.ncps.values():
            ncp.fsm.open()
        self._sync_layers()

    def close(self) -> None:
        """Administrative Close."""
        for ncp in self.ncps.values():
            ncp.fsm.close()
        self.lcp.fsm.close()
        self._sync_layers()

    def tick(self) -> None:
        """One restart-timeout period of logical time."""
        self.lcp.fsm.tick()
        if self.lcp.layer_up and self._auth_started:
            if self.auth_client is not None and not self.auth_client.done:
                self.auth_client.tick()
            if self.auth_server is not None and not self.auth_server.done:
                self.auth_server.tick()
        for ncp in self.ncps.values():
            ncp.fsm.tick()
        self._sync_layers()

    # ---------------------------------------------------------------- phases
    @property
    def phase(self) -> LinkPhase:
        lcp_state = self.lcp.state
        if lcp_state in (State.INITIAL, State.STARTING, State.CLOSED, State.STOPPED):
            return LinkPhase.DEAD
        if lcp_state in (State.CLOSING, State.STOPPING):
            return LinkPhase.TERMINATE
        if lcp_state is State.OPENED:
            if not self._auth_complete():
                return LinkPhase.AUTHENTICATE
            return LinkPhase.NETWORK
        return LinkPhase.ESTABLISH

    def network_ready(self) -> bool:
        """IPv4 datagrams may flow (LCP open, authenticated, IPCP open)."""
        return (
            self.lcp.layer_up
            and self._auth_complete()
            and self.ipcp.network_ready()
        )

    def protocol_ready(self, protocol: int) -> bool:
        """Whether datagrams of ``protocol`` may flow (its NCP is open)."""
        if not (self.lcp.layer_up and self._auth_complete()):
            return False
        for ncp in self.ncps.values():
            if ncp.data_protocol_number == protocol:
                return ncp.network_ready()
        return False

    def add_ncp(self, ncp: NcpBase) -> NcpBase:
        """Register an additional network control protocol (RFC 1661:
        "simultaneous use of multiple network-layer protocols").

        If the link is already past Establish/Authenticate, the new NCP
        is opened and brought up immediately.
        """
        self.ncps[ncp.protocol_number] = ncp
        if self.ipcp.fsm.state is not State.INITIAL:
            # `open()` was already called on this endpoint.
            ncp.fsm.open()
        if self._ncps_up:
            ncp.lower_layer_up()
        return ncp

    # -------------------------------------------------------- authentication
    @property
    def pap_client(self):
        """Back-compat alias for :attr:`auth_client`."""
        return self.auth_client

    @property
    def pap_server(self):
        """Back-compat alias for :attr:`auth_server`."""
        return self.auth_server

    def _peer_demands_auth(self) -> bool:
        opt = self.lcp.peer_options.get(OPT_AUTH_PROTOCOL)
        if opt is None or len(opt.data) < 2:
            return False
        wanted = int.from_bytes(opt.data[:2], "big")
        return self.auth_client is not None and \
            wanted == self.auth_client.protocol_number

    def _we_demand_auth(self) -> bool:
        return (
            self.auth_server is not None
            and OPT_AUTH_PROTOCOL in self.lcp.local_options
        )

    def _auth_complete(self) -> bool:
        if self._peer_demands_auth() and not self.auth_client.done:
            return False
        if self._we_demand_auth() and not self.auth_server.done:
            return False
        return True

    # ------------------------------------------------------------ layer glue
    def _sync_layers(self) -> None:
        """Propagate LCP up/down edges into auth and the NCPs."""
        if self.lcp.layer_up and not self._lcp_was_up:
            self._apply_lcp_results()
            if not self._auth_started:
                if self._peer_demands_auth():
                    self.auth_client.start()
                    self._auth_started = True
                if self._we_demand_auth():
                    self.auth_server.start()
                    self._auth_started = True
        elif not self.lcp.layer_up and self._lcp_was_up:
            if self._ncps_up:
                for ncp in self.ncps.values():
                    ncp.lower_layer_down()
                self._ncps_up = False
            self._auth_started = False
            self._revert_fcs()
        if self.lcp.layer_up and self._auth_complete() and not self._ncps_up:
            for ncp in self.ncps.values():
                ncp.lower_layer_up()
            self._ncps_up = True
        self._lcp_was_up = self.lcp.layer_up

    def _apply_lcp_results(self) -> None:
        """Re-programme the datapath from the negotiated LCP options.

        This mirrors the OAM writing the P5's configuration registers:
        MRU bounds, ACCM escape set and FCS width are all datapath
        parameters in hardware.
        """
        # Our transmit FCS is whatever the peer acked in our request.
        tx_flags = self.lcp.negotiated_fcs_flags()
        rx_opt = self.lcp.peer_options.get(9)  # OPT_FCS_ALTERNATIVES
        rx_flags = rx_opt.data[0] if rx_opt and len(rx_opt.data) == 1 else None
        tx_accm_opt = self.lcp.local_options.get(OPT_ACCM)
        tx_accm = (
            Accm(tx_accm_opt.value_uint()) if tx_accm_opt is not None else None
        )
        if self.lcp.config.fcs_flags is not None and tx_flags == FCS_32:
            self.tx_framer = HdlcFramer(CRC32, accm=tx_accm)
            self._fcs_applied = True
        elif self.lcp.config.fcs_flags is not None:
            self.tx_framer = HdlcFramer(CRC16_X25, accm=tx_accm)
            self._fcs_applied = True
        elif tx_accm is not None:
            self.tx_framer = HdlcFramer(self._base_fcs, accm=tx_accm)
        if rx_flags is not None:
            spec = CRC32 if rx_flags == FCS_32 else CRC16_X25
            self.rx_framer = HdlcFramer(spec, max_content=self.lcp.config.mru + 8)
            self.delineator.framer = self.rx_framer
            self._fcs_applied = True

    def _revert_fcs(self) -> None:
        if self._fcs_applied:
            self.tx_framer = HdlcFramer(self._base_fcs)
            self.rx_framer = HdlcFramer(self._base_fcs)
            self.delineator.framer = self.rx_framer
            self._fcs_applied = False

    # ------------------------------------------------------------- transmit
    def send_datagram(self, payload: bytes, protocol: int = 0x0021) -> bool:
        """Queue a network-layer datagram; False if the phase forbids it."""
        if not self.protocol_ready(protocol):
            self.counters.discarded_wrong_phase += 1
            return False
        self._datagram_out.append((protocol, payload))
        return True

    def _frame(self, protocol: int, payload: bytes) -> bytes:
        use_pfc = self.lcp.layer_up and self.lcp.peer_accepted_pfc()
        use_acfc = (
            self.lcp.layer_up
            and self.lcp.peer_accepted_acfc()
            and protocol != PROTO_LCP  # LCP frames never compress (RFC 1661)
        )
        frame = PPPFrame(
            protocol=protocol, information=payload, address=self.address
        )
        content = frame.encode(acfc=use_acfc, pfc=use_pfc and protocol != PROTO_LCP)
        self.counters.frames_tx += 1
        return self.tx_framer.encode(content)

    def pump(self) -> bytes:
        """Drain all pending transmissions into wire bytes."""
        out = bytearray()
        for raw in self.lcp.drain_outbox():
            out += self._frame(PROTO_LCP, raw)
        if self.lcp.layer_up:
            for agent in (self.auth_client, self.auth_server):
                if agent is not None:
                    for raw in agent.drain_outbox():
                        out += self._frame(agent.protocol_number, raw)
        # NCP packets only flow during the Network phase.
        if self.lcp.layer_up:
            for ncp in self.ncps.values():
                for raw in ncp.drain_outbox():
                    out += self._frame(ncp.protocol_number, raw)
        while self._datagram_out:
            protocol, payload = self._datagram_out.popleft()
            out += self._frame(protocol, payload)
            self.counters.datagrams_tx += 1
        return bytes(out)

    # --------------------------------------------------------------- receive
    def receive_wire(self, data: bytes) -> None:
        """Push raw line octets through delineation and dispatch frames."""
        for decoded in self.delineator.push_bytes(data):
            self.counters.frames_rx += 1
            try:
                frame = PPPFrame.decode(
                    decoded.content, expected_address=self.address
                )
            except FramingError:
                continue
            self._dispatch(frame)
        self._sync_layers()

    def _dispatch(self, frame: PPPFrame) -> None:
        protocol = frame.protocol
        if protocol == PROTO_LCP:
            if self.lcp.state in (State.INITIAL, State.STARTING):
                # RFC 1661 §4.3: these events "cannot occur" with the
                # lower layer down — the hardware would never deliver
                # the frame, so the model discards it.
                self.counters.discarded_wrong_phase += 1
                return
            self.lcp.receive_packet(frame.information)
            self._sync_layers()
            return
        if not self.lcp.layer_up:
            # RFC 1661: non-LCP frames received during Establish phase
            # are silently discarded.
            self.counters.discarded_wrong_phase += 1
            return
        if protocol in (PROTO_PAP, PROTO_CHAP):
            handled = False
            for agent in (self.auth_server, self.auth_client):
                if agent is not None and agent.protocol_number == protocol:
                    agent.receive_packet(frame.information)
                    handled = True
            if handled:
                self._sync_layers()
                return
            # An auth protocol we are not running: Protocol-Reject.
        ncp = self.ncps.get(protocol)
        if ncp is not None:
            ncp.receive_packet(frame.information)
            return
        if is_network_layer(protocol):
            for candidate in self.ncps.values():
                if candidate.data_protocol_number == protocol:
                    if candidate.network_ready():
                        self.datagrams_in.append((protocol, frame.information))
                        self.counters.datagrams_rx += 1
                    else:
                        # NCP known but not yet open: silently discard.
                        self.counters.discarded_wrong_phase += 1
                    return
        # Unknown protocol (control or otherwise): LCP Protocol-Reject.
        self.lcp.send_protocol_reject(protocol, frame.information)
        self.counters.protocol_rejects_tx += 1


def connect_endpoints(
    a: PppEndpoint,
    b: PppEndpoint,
    *,
    max_rounds: int = 50,
    bring_up: bool = True,
) -> int:
    """Drive two endpoints against each other until the network phase.

    A deterministic round-based scheduler: each round pumps both sides
    and delivers the bytes to the opposite side; if a round moves no
    bytes, one timer tick is applied instead.  Returns the number of
    rounds used.

    Raises
    ------
    repro.errors.NegotiationError
        If the link fails to converge within ``max_rounds``.
    """
    from repro.errors import NegotiationError

    if bring_up:
        a.open()
        b.open()
        a.lower_up()
        b.lower_up()
    for round_no in range(1, max_rounds + 1):
        wire_ab = a.pump()
        wire_ba = b.pump()
        if wire_ab:
            b.receive_wire(wire_ab)
        if wire_ba:
            a.receive_wire(wire_ba)
        if a.network_ready() and b.network_ready():
            # Flush any final acks still queued.
            b.receive_wire(a.pump())
            a.receive_wire(b.pump())
            return round_no
        if not wire_ab and not wire_ba:
            a.tick()
            b.tick()
    raise NegotiationError(
        f"link {a.name}<->{b.name} failed to open in {max_rounds} rounds "
        f"(LCP {a.lcp.state.name}/{b.lcp.state.name}, "
        f"IPCP {a.ipcp.state.name}/{b.ipcp.state.name})"
    )
