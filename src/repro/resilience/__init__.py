"""repro.resilience — the supervised redundant-link runtime.

Everything before this package *measures* how the P⁵ datapath fails
(:mod:`repro.faults` campaigns) or how fast it goes
(:mod:`repro.fastpath`); this package makes a link *survive*.  A
:class:`LinkSupervisor` runs two full P⁵ lanes — working and protect —
as one long-lived 1+1 protected session:

* per-lane health scoring with SD/SF hysteresis
  (:mod:`repro.resilience.health`);
* APS-style switchover with hold-off and wait-to-restore timers,
  signalling the same K1/K2 vocabulary as :mod:`repro.sonet.aps`
  (:mod:`repro.resilience.aps`);
* a bounded-retry recovery ladder — resync, flush, LCP renegotiate,
  lane switch, quarantine (:mod:`repro.resilience.ladder`);
* graceful fastpath degradation under differential spot-checks
  (:mod:`repro.resilience.guard`);
* deterministic seeded chaos schedules reusing the fault-campaign
  injector primitives (:mod:`repro.resilience.chaos`).

``repro resilience --soak`` drives all of it from the CLI.
"""

from repro.resilience.aps import PROTECT, WORKING, ApsController, SwitchRecord
from repro.resilience.chaos import ChaosEvent, chaos_schedule
from repro.resilience.events import EventLog, ResilienceEvent
from repro.resilience.guard import FastpathGuard, GuardMode, RxDelta
from repro.resilience.health import HealthEngine, HealthSample, LaneState
from repro.resilience.ladder import LadderAction, RecoveryLadder, RecoveryStep
from repro.resilience.supervisor import (
    LinkSupervisor,
    SoakResult,
    SoakViolation,
    SupervisorConfig,
)
from repro.resilience.wire import LaneWire

__all__ = [
    "ApsController",
    "ChaosEvent",
    "EventLog",
    "FastpathGuard",
    "GuardMode",
    "HealthEngine",
    "HealthSample",
    "LadderAction",
    "LaneState",
    "LaneWire",
    "LinkSupervisor",
    "PROTECT",
    "RecoveryLadder",
    "RecoveryStep",
    "ResilienceEvent",
    "RxDelta",
    "SoakResult",
    "SoakViolation",
    "SupervisorConfig",
    "SwitchRecord",
    "WORKING",
    "chaos_schedule",
]
