"""1+1 APS switchover control for the supervised link.

This is the head/tail protection logic GR-253 puts behind the K1/K2
line-overhead bytes, driven here by the health engine's lane states
instead of raw framer counters (the SONET-layer selector in
:mod:`repro.sonet.aps` already models that lower level; this module
reuses its :class:`~repro.sonet.aps.ApsRequest` code points so both
layers signal the same vocabulary).

Three timers shape every decision:

* **hold-off** — a switch condition must persist ``hold_off``
  consecutive intervals before the selector moves, so a single errored
  interval (one burst) never causes a lane change;
* **switch spacing** — at most one switch per hold-off window, ever;
  even a forced (operator/ladder) switch respects this floor, which is
  the property the hypothesis suite pins down;
* **wait-to-restore** — after a revertive link has failed over, the
  working lane must stay healthy ``wait_to_restore`` consecutive
  intervals before traffic returns to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.resilience.events import EventLog
from repro.resilience.health import LaneState
from repro.sonet.aps import ApsRequest

__all__ = ["SwitchRecord", "ApsController"]

WORKING = "working"
PROTECT = "protect"


@dataclass(frozen=True)
class SwitchRecord:
    """One completed lane switch."""

    interval: int
    from_lane: str
    to_lane: str
    request: ApsRequest
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "from_lane": self.from_lane,
            "to_lane": self.to_lane,
            "request": self.request.name,
            "reason": self.reason,
        }


class ApsController:
    """Selector state machine over a working and a protect lane."""

    def __init__(
        self,
        *,
        hold_off: int = 2,
        wait_to_restore: int = 6,
        revertive: bool = True,
        log: Optional[EventLog] = None,
    ) -> None:
        if hold_off < 1:
            raise ConfigError("hold_off must be >= 1 interval")
        if wait_to_restore < hold_off:
            raise ConfigError("wait_to_restore must be >= hold_off")
        self.hold_off = hold_off
        self.wait_to_restore = wait_to_restore
        self.revertive = revertive
        self.log = log if log is not None else EventLog()
        self.active = WORKING
        self.request = ApsRequest.NO_REQUEST
        self.switches: List[SwitchRecord] = []
        #: Interval the current switch condition was first seen.
        self._pending_since: Optional[int] = None
        self._last_switch: Optional[int] = None
        self._wtr_streak = 0

    # ------------------------------------------------------------------ views
    @property
    def standby(self) -> str:
        return PROTECT if self.active == WORKING else WORKING

    def k1_byte(self) -> int:
        """K1 as transmitted: request bits 1-4, channel number bits 5-8."""
        channel = 1 if self.active == PROTECT else 0
        return (int(self.request) << 4) | channel

    def k2_byte(self) -> int:
        """K2: bridged channel number + 1+1 architecture bit (GR-253)."""
        channel = 1 if self.active == PROTECT else 0
        return (channel << 4) | 0b100

    def _spacing_ok(self, interval: int) -> bool:
        """At most one switch per hold-off window (inclusive floor)."""
        return (
            self._last_switch is None
            or interval - self._last_switch > self.hold_off
        )

    # -------------------------------------------------------------- switching
    def _switch(self, interval: int, request: ApsRequest, reason: str) -> SwitchRecord:
        record = SwitchRecord(
            interval=interval,
            from_lane=self.active,
            to_lane=self.standby,
            request=request,
            reason=reason,
        )
        self.active = self.standby
        self.request = request
        self.switches.append(record)
        self._last_switch = interval
        self._pending_since = None
        self._wtr_streak = 0
        self.log.record(
            interval, "aps", record.to_lane, "switch",
            from_lane=record.from_lane, request=request.name,
            reason=reason, k1=self.k1_byte(),
        )
        return record

    def evaluate(
        self, interval: int, working: LaneState, protect: LaneState
    ) -> Optional[SwitchRecord]:
        """One interval's decision from the two lanes' health states."""
        states = {WORKING: working, PROTECT: protect}
        active_state = states[self.active]
        standby_state = states[self.standby]

        fail = active_state is LaneState.FAILED
        degrade = (
            active_state is LaneState.DEGRADED
            and standby_state is LaneState.OK
        )
        standby_usable = standby_state is not LaneState.FAILED

        if (fail or degrade) and standby_usable:
            request = (
                ApsRequest.SIGNAL_FAIL if fail else ApsRequest.SIGNAL_DEGRADE
            )
            if self._pending_since is None:
                self._pending_since = interval
                self.log.record(
                    interval, "aps", self.active, "hold-off-start",
                    request=request.name,
                )
            self.request = request
            held = interval - self._pending_since
            if held >= self.hold_off - 1 and self._spacing_ok(interval):
                return self._switch(
                    interval, request,
                    f"{self.active} {active_state.value}, held {held + 1} "
                    f"interval(s)",
                )
            return None

        self._pending_since = None
        if (
            self.revertive
            and self.active == PROTECT
            and working is LaneState.OK
        ):
            self._wtr_streak += 1
            self.request = ApsRequest.WAIT_TO_RESTORE
            if (
                self._wtr_streak >= self.wait_to_restore
                and self._spacing_ok(interval)
            ):
                record = self._switch(
                    interval, ApsRequest.WAIT_TO_RESTORE,
                    f"working healthy {self._wtr_streak} interval(s)",
                )
                self.request = ApsRequest.NO_REQUEST
                return record
            return None

        self._wtr_streak = 0
        self.request = ApsRequest.NO_REQUEST
        return None

    def force_switch(
        self, interval: int, reason: str = "operator"
    ) -> Optional[SwitchRecord]:
        """Commanded switch (recovery-ladder rung).

        Still bounded by the one-switch-per-hold-off-window floor:
        returns ``None`` (and logs the refusal) when a switch happened
        too recently — a commanded flap is still a flap.
        """
        if not self._spacing_ok(interval):
            self.log.record(
                interval, "aps", self.active, "force-refused",
                reason="inside hold-off spacing",
                last_switch=self._last_switch,
            )
            return None
        return self._switch(interval, ApsRequest.FORCED_SWITCH, reason)
