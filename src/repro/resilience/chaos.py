"""Deterministic seeded chaos schedules for supervisor soaks.

A schedule is a flat, interval-sorted list of impairment events drawn
from one seeded stream (``default_rng([seed, 0xCA05])``), so a soak is
exactly reproducible from its seed.  Event kinds map onto the
:class:`~repro.resilience.wire.LaneWire` hooks (``cut`` / ``burst`` /
``storm`` — the byte-level forms of the :mod:`repro.faults` injector
layers) plus ``sabotage``, which corrupts one fastpath encode so the
guard's differential spot-check has something real to catch.

Schedules are *survivable by construction*: cuts get exclusive,
guarded windows (no other event while a cut and its recovery are in
flight, and never a cut on each lane at once), everything stays clear
of the first few priming intervals and of a tail reserve long enough
for wait-to-restore to complete — so a clean supervisor ends a
schedule back on the working lane, and any frame lost outside an
event's influence window is a genuine supervisor bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.faults.injectors import MAX_BURST_BITS
from repro.utils.rng import make_rng

__all__ = ["ChaosEvent", "chaos_schedule"]

WORKING = "working"
PROTECT = "protect"

#: Intervals at the start of a soak kept event-free (LQR priming).
WARMUP = 6


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled impairment."""

    interval: int
    lane: str
    kind: str              # cut | burst | storm | sabotage
    duration: int = 1      # intervals (cut/storm); 1 otherwise
    bits: int = 0          # burst only

    @property
    def end(self) -> int:
        return self.interval + self.duration - 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "lane": self.lane,
            "kind": self.kind,
            "duration": self.duration,
            "bits": self.bits,
        }


def _overlaps(spans: List[Tuple[int, int]], start: int, end: int) -> bool:
    return any(start <= hi and end >= lo for lo, hi in spans)


def chaos_schedule(
    *,
    intervals: int,
    events: int,
    seed: int,
    hold_off: int = 2,
    wait_to_restore: int = 6,
) -> List[ChaosEvent]:
    """Build a deterministic schedule of ``events`` impairments.

    Guarantees (all required by the soak's acceptance invariants):

    * at least one **working-lane cut** long enough to force an APS
      switchover (duration > hold-off);
    * at least one **sabotage** event (forced fastpath mismatch);
    * cuts never overlap each other (on either lane) and own an
      exclusive guard window — ``wait_to_restore + hold_off`` clear
      intervals on both sides — so every failover fully recovers
      before the next upset;
    * nothing scheduled in the first :data:`WARMUP` intervals or in
      the final ``wait_to_restore + hold_off + 8`` reserve.
    """
    reserve = wait_to_restore + hold_off + 8
    lo, hi = WARMUP, intervals - reserve
    if hi - lo < 4 * (wait_to_restore + hold_off):
        raise ValueError(
            f"soak too short for a chaos schedule: need well over "
            f"{4 * (wait_to_restore + hold_off) + WARMUP + reserve} intervals, "
            f"got {intervals}"
        )
    if events < 2:
        raise ValueError("need at least 2 events (one cut + one sabotage)")
    rng = make_rng([seed, 0xCA05])
    guard = wait_to_restore + hold_off
    cut_spans: List[Tuple[int, int]] = []
    out: List[ChaosEvent] = []

    def reserve_cut(start: int, duration: int) -> bool:
        lo_span, hi_span = start - guard, start + duration - 1 + guard
        if _overlaps(cut_spans, lo_span, hi_span):
            return False
        cut_spans.append((lo_span, hi_span))
        return True

    # Mandatory working-lane cut, long enough to outlast hold-off.
    cut_len = hold_off + 3
    first_cut = lo + (hi - lo) // 3
    reserve_cut(first_cut, cut_len)
    out.append(ChaosEvent(first_cut, WORKING, "cut", duration=cut_len))

    # Mandatory sabotage (on the working lane's fastpath), clear of cuts.
    sabotage_at = lo + 2 * (hi - lo) // 3
    while _overlaps(cut_spans, sabotage_at, sabotage_at) and sabotage_at < hi:
        sabotage_at += 1
    out.append(ChaosEvent(sabotage_at, WORKING, "sabotage"))

    kinds = ("burst", "storm", "cut")
    sabotages = 1
    cuts = 1
    attempts = 0
    while len(out) < events and attempts < 50 * events:
        attempts += 1
        kind = kinds[int(rng.integers(0, len(kinds)))]
        lane = (WORKING, PROTECT)[int(rng.integers(0, 2))]
        at = int(rng.integers(lo, hi))
        if kind == "cut":
            if cuts >= 4:
                kind = "burst"
            else:
                duration = int(rng.integers(2, hold_off + 4))
                if not reserve_cut(at, duration):
                    continue
                cuts += 1
                out.append(ChaosEvent(at, lane, "cut", duration=duration))
                continue
        if kind == "storm":
            duration = int(rng.integers(1, 4))
            if _overlaps(cut_spans, at, at + duration - 1):
                continue
            out.append(ChaosEvent(at, lane, "storm", duration=duration))
            continue
        # burst (also the fallback for a cut that would not fit)
        if _overlaps(cut_spans, at, at):
            continue
        if sabotages < 2 and rng.random() < 0.08:
            out.append(ChaosEvent(at, lane, "sabotage"))
            sabotages += 1
            continue
        bits = int(rng.integers(2, MAX_BURST_BITS + 1))
        out.append(ChaosEvent(at, lane, "burst", bits=bits))
    if len(out) < events:
        raise ValueError(
            f"could not place {events} events in {intervals} intervals"
        )
    out.sort(key=lambda e: (e.interval, e.lane, e.kind))
    return out
