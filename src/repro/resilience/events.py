"""Structured event log shared by every resilience component.

Everything the supervisor, health engine, APS controller, recovery
ladder and fastpath guard decide is recorded here as one flat,
time-ordered stream — the "black box" an operator replays after an
outage, and exactly what the CLI ships as the JSON event-log artifact.
Events are plain data (no behaviour), keyed by the supervisor's
logical interval clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ResilienceEvent", "EventLog"]


@dataclass(frozen=True)
class ResilienceEvent:
    """One decision or observation, at one interval, about one lane."""

    interval: int
    category: str          # chaos | health | aps | ladder | fastpath | traffic
    lane: str              # "working", "protect" or "-" for link-wide
    kind: str              # category-specific verb, e.g. "switch", "cut"
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "category": self.category,
            "lane": self.lane,
            "kind": self.kind,
            "detail": dict(self.detail),
        }

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (
            f"[{self.interval:>5}] {self.category:<8} {self.lane:<8} "
            f"{self.kind}" + (f" ({extra})" if extra else "")
        )


class EventLog:
    """Append-only, interval-ordered log of :class:`ResilienceEvent`."""

    def __init__(self) -> None:
        self.events: List[ResilienceEvent] = []

    def record(
        self,
        interval: int,
        category: str,
        lane: str,
        kind: str,
        **detail: object,
    ) -> ResilienceEvent:
        event = ResilienceEvent(
            interval=interval,
            category=category,
            lane=lane,
            kind=kind,
            detail=detail,
        )
        self.events.append(event)
        return event

    def select(
        self,
        *,
        category: Optional[str] = None,
        kind: Optional[str] = None,
        lane: Optional[str] = None,
    ) -> List[ResilienceEvent]:
        """Filtered view (all filters are conjunctive)."""
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (kind is None or e.kind == kind)
            and (lane is None or e.lane == lane)
        ]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [e.as_dict() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)
