"""Graceful fastpath degradation with differential spot-checks.

The supervisor moves traffic through the PR-4
:class:`~repro.fastpath.engine.FastpathEngine` — that is what makes a
10k-frame soak affordable — but the fast engine is only trusted while
it provably matches the golden cycle model.  This guard enforces that
trust at runtime:

* in **fast** mode, every ``check_every``-th encode (and any encode
  whose output left the engine tampered — the chaos schedule's
  ``sabotage`` event models a fastpath memory fault) is differentially
  spot-checked against the cycle engine via the PR-4
  :class:`~repro.fastpath.differential.DifferentialHarness`, plus a
  live comparison of the bytes actually shipped against the engine's
  re-encode;
* any mismatch **quarantines** the fastpath: a diagnostic event is
  logged, and TX/RX fall back to the cycle-accurate transmitter and a
  persistent cycle receiver (running under a timing
  :class:`~repro.sta.conformance.ContractMonitor`, whose findings feed
  the health engine) — traffic keeps flowing, slower but golden;
* after ``reinstate_after`` consecutive quarantined intervals in which
  the fast engine's re-encode agrees byte-for-byte with the shipped
  cycle line, the fastpath is reinstated.

Both receive paths are *streaming*: the fast decoder carries the open
tail (from its last seen flag) between intervals, and the cycle
receiver is a long-lived pipeline fed through
:meth:`~repro.rtl.pipeline.StreamSource.extend` — so frames split
across interval boundaries by storms or cuts decode exactly as a
continuous wire would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import P5Config
from repro.core.p5 import P5System, PhyWire
from repro.core.rx import P5Receiver
from repro.fastpath.differential import DifferentialHarness
from repro.fastpath.engine import FastpathEngine
from repro.resilience.events import EventLog
from repro.rtl.pipeline import StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator

__all__ = ["GuardMode", "RxDelta", "QuarantineRecord", "FastpathGuard"]


class GuardMode(enum.Enum):
    FAST = "fast"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class QuarantineRecord:
    """Why the fastpath was benched."""

    interval: int
    mismatches: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        return {"interval": self.interval, "mismatches": list(self.mismatches)}


@dataclass
class RxDelta:
    """One interval's receive outcome, mode-independent."""

    frames: List[Tuple[bytes, bool]] = field(default_factory=list)
    frames_ok: int = 0
    fcs_errors: int = 0
    #: Aborts + oversize cuts + runts.
    framing_faults: int = 0
    hunt_octets: int = 0
    contract_violations: int = 0
    mode: str = GuardMode.FAST.value


class _StreamingFastRx:
    """Frame-level decoder with an open-tail carry across feeds."""

    def __init__(self, engine: FastpathEngine) -> None:
        self.engine = engine
        self._tail = b""

    def flush(self) -> None:
        self._tail = b""

    def feed(self, data: bytes) -> RxDelta:
        buf = self._tail + data
        delta = RxDelta(mode=GuardMode.FAST.value)
        if not buf:
            return delta
        result = self.engine.decode_stream(buf)
        # Carry from the last flag onward: a frame still open at the
        # interval boundary re-decodes whole once its closing flag
        # arrives.  No flag at all means pure hunt noise — drop it.
        idx = buf.rfind(bytes([self.engine.config.flag_octet]))
        self._tail = buf[idx:] if idx >= 0 else b""
        delta.frames = result.frames
        delta.frames_ok = result.frames_ok
        delta.fcs_errors = result.fcs_errors
        delta.framing_faults = (
            result.aborts + result.oversize_drops + result.runt_frames
        )
        delta.hunt_octets = result.octets_discarded_hunting
        return delta


class _StreamingCycleRx:
    """Persistent cycle-accurate receiver under a contract monitor."""

    def __init__(self, config: P5Config, name: str, *, timeout: int) -> None:
        self.rx = P5Receiver(config, name=name)
        self.source = StreamSource(f"{name}.wire", self.rx.phy_in, [])
        self.sim = Simulator([self.source] + self.rx.modules, self.rx.channels)
        # Non-strict: findings are folded into health scores instead of
        # aborting the soak mid-flight.
        self.monitor = self.sim.enable_conformance(strict=False)
        self.timeout = timeout
        self._config = config
        self._frame_cursor = 0
        self._counts = self._snapshot()

    def _snapshot(self) -> Dict[str, int]:
        rx = self.rx
        return {
            "frames_ok": rx.crc.frames_ok,
            "fcs_errors": rx.crc.fcs_errors,
            "framing_faults": (
                rx.delineator.aborts
                + rx.delineator.oversize_drops
                + rx.crc.runt_frames
            ),
            "hunt_octets": rx.delineator.octets_discarded_hunting,
            "violations": len(self.monitor.findings()),
        }

    def feed(self, data: bytes) -> RxDelta:
        if data:
            self.source.extend(
                beats_from_bytes(data, self._config.width_bytes, frame_marks=False)
            )
            self.sim.run_until(lambda: self.source.done, timeout=self.timeout)
            self.sim.drain(idle_cycles=16, timeout=self.timeout)
        before = self._counts
        after = self._snapshot()
        self._counts = after
        frames = self.rx.frames[self._frame_cursor:]
        self._frame_cursor = len(self.rx.frames)
        return RxDelta(
            frames=list(frames),
            frames_ok=after["frames_ok"] - before["frames_ok"],
            fcs_errors=after["fcs_errors"] - before["fcs_errors"],
            framing_faults=after["framing_faults"] - before["framing_faults"],
            hunt_octets=after["hunt_octets"] - before["hunt_octets"],
            contract_violations=after["violations"] - before["violations"],
            mode=GuardMode.QUARANTINED.value,
        )


def _cycle_tx_line(config: P5Config, contents: Sequence[bytes], timeout: int) -> bytes:
    """One batch through the cycle transmitter; returns the wire bytes."""
    system = P5System(config, name="guardtx")
    captured = bytearray()

    def tap(beat):
        captured.extend(beat.payload())
        return beat

    wire = PhyWire(
        "guardtx.wire", system.tx.phy_out, system.rx.phy_in, corrupt=tap
    )
    sim = Simulator(
        system.tx.modules + [wire] + system.rx.modules, system.channels
    )
    for content in contents:
        system.submit(content)
    sim.run_until(
        lambda: len(system.received()) >= len(contents) and system.idle(),
        timeout=timeout,
    )
    sim.drain(timeout=timeout)
    return bytes(captured)


class FastpathGuard:
    """Mode-switching TX/RX codec for one lane."""

    def __init__(
        self,
        config: P5Config,
        *,
        name: str,
        check_every: int = 8,
        reinstate_after: int = 4,
        log: Optional[EventLog] = None,
        timeout: int = 2_000_000,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if reinstate_after < 1:
            raise ValueError("reinstate_after must be >= 1")
        self.config = config
        self.name = name
        self.check_every = check_every
        self.reinstate_after = reinstate_after
        self.log = log if log is not None else EventLog()
        self.timeout = timeout
        self.engine = FastpathEngine(config)
        self.mode = GuardMode.FAST
        self.spot_checks = 0
        self.quarantines: List[QuarantineRecord] = []
        self.reinstatements = 0
        self._encodes = 0
        self._clean_streak = 0
        self._sabotage_armed = False
        self._harness = DifferentialHarness(config, timeout=timeout)
        self._fast_rx = _StreamingFastRx(self.engine)
        self._cycle_rx: Optional[_StreamingCycleRx] = None
        self._pending_carry = b""

    # ------------------------------------------------------------------ chaos
    def arm_sabotage(self) -> None:
        """Corrupt the next fast encode's output (models a fastpath
        memory fault the spot-check must catch)."""
        self._sabotage_armed = True

    def _sabotage(self, line: bytes) -> bytes:
        """Flip one bit of a body byte, keeping flag/escape census
        intact so the damage is a pure payload corruption."""
        special = {self.config.flag_octet, self.config.esc_octet}
        out = bytearray(line)
        for i, value in enumerate(out):
            if value not in special and (value ^ 0x01) not in special:
                out[i] = value ^ 0x01
                return bytes(out)
        return bytes(out)  # pathological all-flag line: ship unchanged

    # --------------------------------------------------------------------- TX
    def encode(self, contents: Sequence[bytes], interval: int) -> bytes:
        """Encode one interval's batch; returns the bytes to ship."""
        if self.mode is GuardMode.QUARANTINED:
            return self._encode_quarantined(contents, interval)
        self._encodes += 1
        shipped = self.engine.encode_frames(list(contents)).line
        expected = shipped
        if self._sabotage_armed:
            self._sabotage_armed = False
            shipped = self._sabotage(shipped)
        due = self._encodes % self.check_every == 0
        if due or shipped != expected:
            self._spot_check(contents, shipped, expected, interval)
        return shipped

    def _spot_check(
        self,
        contents: Sequence[bytes],
        shipped: bytes,
        expected: bytes,
        interval: int,
    ) -> None:
        self.spot_checks += 1
        mismatches: List[str] = []
        if shipped != expected:
            diff_at = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(shipped, expected))
                    if a != b
                ),
                min(len(shipped), len(expected)),
            )
            mismatches.append(
                f"shipped line diverges from fastpath re-encode at octet "
                f"{diff_at}"
            )
        report = self._harness.run(list(contents))
        mismatches.extend(report.mismatches)
        if mismatches:
            self._quarantine(interval, mismatches)
        else:
            self.log.record(
                interval, "fastpath", self.name, "spot-check-ok",
                frames=len(contents),
            )

    def _quarantine(self, interval: int, mismatches: List[str]) -> None:
        record = QuarantineRecord(
            interval=interval, mismatches=tuple(mismatches)
        )
        self.quarantines.append(record)
        self.mode = GuardMode.QUARANTINED
        self._clean_streak = 0
        # Hand the fast decoder's open tail to the cycle receiver so no
        # in-flight frame is lost across the mode switch.
        self._pending_carry = self._fast_rx._tail
        self._fast_rx.flush()
        self.log.record(
            interval, "fastpath", self.name, "quarantine",
            diagnostic="; ".join(mismatches),
        )

    def _encode_quarantined(
        self, contents: Sequence[bytes], interval: int
    ) -> bytes:
        line = _cycle_tx_line(self.config, list(contents), self.timeout)
        # Re-verification: once the fast engine agrees with the golden
        # line for reinstate_after consecutive intervals, trust it again.
        fast = self.engine.encode_frames(list(contents)).line
        if fast == line:
            self._clean_streak += 1
            if self._clean_streak >= self.reinstate_after:
                self.mode = GuardMode.FAST
                self.reinstatements += 1
                self._clean_streak = 0
                self._fast_rx.flush()
                self.log.record(
                    interval, "fastpath", self.name, "reinstate",
                    after_clean_intervals=self.reinstate_after,
                )
        else:
            self._clean_streak = 0
            self.log.record(
                interval, "fastpath", self.name, "still-diverging",
            )
        return line

    # --------------------------------------------------------------------- RX
    def decode(self, data: bytes, interval: int) -> RxDelta:
        """Decode one interval's arriving bytes in the current mode."""
        if self.mode is GuardMode.QUARANTINED:
            if self._cycle_rx is None:
                self._cycle_rx = _StreamingCycleRx(
                    self.config, f"{self.name}.qrx", timeout=self.timeout
                )
            carry, self._pending_carry = self._pending_carry, b""
            return self._cycle_rx.feed(carry + data)
        return self._fast_rx.feed(data)

    def resync(self) -> None:
        """Recovery-ladder rung: drop delineation state and re-hunt."""
        self._fast_rx.flush()
        self._pending_carry = b""

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mode": self.mode.value,
            "spot_checks": self.spot_checks,
            "quarantines": [q.as_dict() for q in self.quarantines],
            "reinstatements": self.reinstatements,
        }
