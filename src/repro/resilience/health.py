"""Per-lane health scoring with hysteresis.

The supervisor folds everything it can observe about a lane over one
interval — delivery ratio against the bridged traffic, the receiver's
framing-fault and FCS counters, the RFC 1333 LQR verdict (or its
absence: a starved LQR exchange is itself a symptom), and timing
ContractMonitor findings from cycle-mode spot checks — into a single
score in ``[0, 1]``, then runs the score through a signal-degrade /
signal-fail hysteresis so one noisy interval cannot flap the APS
selector.

The thresholds mirror GR-253's SD/SF split: *signal fail* is the hard
condition (lane effectively dark), *signal degrade* the soft one
(errored but passing traffic).  Recovery requires ``recover_intervals``
consecutive clean scores above the corresponding *exit* threshold —
the hysteresis gap is what keeps a lane from oscillating between
states on a score hovering at the boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError

__all__ = ["LaneState", "HealthSample", "HealthEngine"]


class LaneState(enum.Enum):
    """Hysteresis outcome for one lane."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class HealthSample:
    """What one interval showed about one lane."""

    #: Frames the head end bridged onto the lane this interval
    #: (data + control; what *should* have arrived).
    expected_frames: int
    #: FCS-good frames the lane's tail actually produced.
    delivered_ok: int
    fcs_errors: int = 0
    #: Delineation damage: aborts + oversize cuts + runts this interval.
    framing_faults: int = 0
    #: Octets discarded while hunting for a flag (resync churn).
    hunt_octets: int = 0
    #: Whether the LQR exchange completed this interval.
    lqr_seen: bool = True
    #: Loss fractions from the lane's LQR verdict (0.0 when clean).
    outbound_loss: float = 0.0
    inbound_loss: float = 0.0
    #: Timing-contract findings observed in cycle-mode operation.
    contract_violations: int = 0


class HealthEngine:
    """Folds :class:`HealthSample` streams into a lane state.

    Parameters
    ----------
    name:
        Lane name, echoed in ``describe()`` output.
    sf_enter / sf_exit:
        Score at or below which the lane *fails*, and at or above
        which a failed lane may begin recovering.
    sd_enter / sd_exit:
        The analogous signal-degrade pair.
    recover_intervals:
        Consecutive intervals above the exit threshold required to
        step the state back up (FAILED -> DEGRADED -> OK).
    """

    def __init__(
        self,
        name: str,
        *,
        sf_enter: float = 0.35,
        sf_exit: float = 0.75,
        sd_enter: float = 0.70,
        sd_exit: float = 0.90,
        recover_intervals: int = 2,
    ) -> None:
        if not (0.0 <= sf_enter < sf_exit <= 1.0):
            raise ConfigError("need 0 <= sf_enter < sf_exit <= 1")
        if not (0.0 <= sd_enter < sd_exit <= 1.0):
            raise ConfigError("need 0 <= sd_enter < sd_exit <= 1")
        if sf_enter > sd_enter:
            raise ConfigError("signal-fail must be stricter than signal-degrade")
        if recover_intervals < 1:
            raise ConfigError("recover_intervals must be >= 1")
        self.name = name
        self.sf_enter = sf_enter
        self.sf_exit = sf_exit
        self.sd_enter = sd_enter
        self.sd_exit = sd_exit
        self.recover_intervals = recover_intervals
        self.state = LaneState.OK
        self.score = 1.0
        self.samples = 0
        self._good_streak = 0
        self.scores: List[float] = []

    # ----------------------------------------------------------------- scoring
    def score_sample(self, sample: HealthSample) -> float:
        """One interval's score: delivery ratio minus symptom penalties."""
        if sample.expected_frames > 0:
            base = min(1.0, sample.delivered_ok / sample.expected_frames)
        else:
            # Idle interval: judge only by symptoms.
            base = 1.0
        penalty = 0.0
        penalty += 0.5 * max(sample.outbound_loss, sample.inbound_loss)
        if not sample.lqr_seen:
            penalty += 0.25
        penalty += min(0.3, 0.05 * sample.framing_faults)
        penalty += min(0.2, 0.05 * sample.fcs_errors)
        if sample.hunt_octets:
            penalty += 0.05
        if sample.contract_violations:
            penalty += 0.4
        return max(0.0, base - penalty)

    def update(self, sample: HealthSample) -> LaneState:
        """Fold one interval's sample; returns the (new) lane state."""
        self.samples += 1
        self.score = self.score_sample(sample)
        self.scores.append(self.score)
        if self.state is LaneState.OK:
            self._good_streak = 0
            if self.score <= self.sf_enter:
                self.state = LaneState.FAILED
            elif self.score <= self.sd_enter:
                self.state = LaneState.DEGRADED
        elif self.state is LaneState.DEGRADED:
            if self.score <= self.sf_enter:
                self.state = LaneState.FAILED
                self._good_streak = 0
            elif self.score >= self.sd_exit:
                self._good_streak += 1
                if self._good_streak >= self.recover_intervals:
                    self.state = LaneState.OK
                    self._good_streak = 0
            else:
                self._good_streak = 0
        else:  # FAILED
            if self.score >= self.sf_exit:
                self._good_streak += 1
                if self._good_streak >= self.recover_intervals:
                    self.state = LaneState.DEGRADED
                    # A streak that also clears sd_exit keeps counting
                    # toward OK rather than starting over.
                    if self.score >= self.sd_exit:
                        self._good_streak = self.recover_intervals - 1
                    else:
                        self._good_streak = 0
            else:
                self._good_streak = 0
        return self.state

    # ------------------------------------------------------------------ views
    @property
    def usable(self) -> bool:
        """Whether the APS selector may stand traffic on this lane."""
        return self.state is not LaneState.FAILED

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state.value,
            "score": round(self.score, 4),
            "samples": self.samples,
        }
