"""The recovery ladder: bounded retries with exponential backoff.

When the active lane is unhealthy the supervisor does not thrash — it
climbs a fixed escalation ladder, giving each rung a bounded number of
attempts and spacing attempts with exponential backoff plus seeded
jitter (so two supervisors sharing a failure domain do not retry in
lockstep):

1. ``resync``       — drop the receiver's delineation carry, re-hunt;
2. ``flush``        — flush the RX side and the wire's deferred bytes;
3. ``renegotiate``  — bounce LCP through :class:`repro.ppp.fsm`
   restart timers (Down/Up, then Configure exchange or TO- give-up);
4. ``switch``       — ask the APS controller for a lane switch;
5. ``quarantine``   — declare the link down (typed
   :class:`repro.errors.LinkDownError` if both lanes are gone).

The ladder resets to the bottom rung the moment the lane is healthy
again; every action it emits is a structured event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.resilience.events import EventLog
from repro.utils.rng import SeedLike, make_rng

__all__ = ["RecoveryStep", "LadderAction", "RecoveryLadder"]


class RecoveryStep(enum.Enum):
    RESYNC = "resync"
    FLUSH = "flush"
    RENEGOTIATE = "renegotiate"
    SWITCH = "switch"
    QUARANTINE = "quarantine"


#: Escalation order, cheapest remedy first.
LADDER = (
    RecoveryStep.RESYNC,
    RecoveryStep.FLUSH,
    RecoveryStep.RENEGOTIATE,
    RecoveryStep.SWITCH,
    RecoveryStep.QUARANTINE,
)


@dataclass(frozen=True)
class LadderAction:
    """One emitted recovery attempt."""

    interval: int
    step: RecoveryStep
    attempt: int           # 1-based attempt number within the rung
    backoff: int           # intervals until the next attempt may fire

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "step": self.step.value,
            "attempt": self.attempt,
            "backoff": self.backoff,
        }


class RecoveryLadder:
    """Escalation scheduler for one protected link."""

    def __init__(
        self,
        *,
        retries_per_step: int = 2,
        backoff_base: int = 1,
        backoff_cap: int = 8,
        jitter: int = 1,
        seed: SeedLike = None,
        log: Optional[EventLog] = None,
    ) -> None:
        if retries_per_step < 1:
            raise ConfigError("retries_per_step must be >= 1")
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ConfigError("need 1 <= backoff_base <= backoff_cap")
        if jitter < 0:
            raise ConfigError("jitter must be >= 0")
        self.retries_per_step = retries_per_step
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.log = log if log is not None else EventLog()
        self._rng = make_rng(seed)
        self._rung = 0
        self._attempt = 0
        self._escalations = 0
        self._next_allowed = 0
        self.actions: List[LadderAction] = []

    # ------------------------------------------------------------------ views
    @property
    def current_step(self) -> RecoveryStep:
        return LADDER[self._rung]

    @property
    def quarantined(self) -> bool:
        return self.current_step is RecoveryStep.QUARANTINE

    # ---------------------------------------------------------------- actions
    def _backoff(self) -> int:
        """Exponential in total escalations, capped, plus seeded jitter."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** self._escalations))
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        return base + extra

    def next_action(self, interval: int, lane: str = "-") -> Optional[LadderAction]:
        """The recovery attempt due this interval, if any.

        Call only while the active lane is unhealthy; returns ``None``
        while backing off.  The quarantine rung re-emits (throttled by
        the capped backoff) rather than advancing — there is nothing
        above it.
        """
        if interval < self._next_allowed:
            return None
        step = self.current_step
        self._attempt += 1
        backoff = self._backoff()
        self._escalations += 1
        self._next_allowed = interval + backoff
        action = LadderAction(
            interval=interval,
            step=step,
            attempt=self._attempt,
            backoff=backoff,
        )
        self.actions.append(action)
        self.log.record(
            interval, "ladder", lane, step.value,
            attempt=self._attempt, backoff=backoff,
        )
        if (
            self._attempt >= self.retries_per_step
            and step is not RecoveryStep.QUARANTINE
        ):
            self._rung += 1
            self._attempt = 0
            self.log.record(
                interval, "ladder", lane, "escalate",
                to=LADDER[self._rung].value,
            )
        return action

    def reset(self, interval: int, lane: str = "-") -> None:
        """Lane healthy again: back to the bottom rung, zero backoff."""
        if self._rung or self._attempt or self._escalations:
            self.log.record(interval, "ladder", lane, "reset")
        self._rung = 0
        self._attempt = 0
        self._escalations = 0
        self._next_allowed = 0
