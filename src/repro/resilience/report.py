"""Text and JSON reporters for supervisor soak results.

Same contract as :mod:`repro.faults.report`: stable ordering, an
explicit JSON schema version, and a report detailed enough to replay
an outage — every chaos event, every switchover with its loss against
the declared budget, every quarantine, and the full structured event
log (which the CLI can also ship as a standalone artifact).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.resilience.supervisor import SoakResult

__all__ = ["render_text", "render_json", "render_events_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def _chaos_summary(result: SoakResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in result.chaos:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def render_text(result: SoakResult) -> str:
    """Human-readable soak report."""
    cfg = result.config
    lines = [
        f"resilience soak: {result.intervals_run} intervals, "
        f"{cfg.frames_per_interval} frames/interval, seed {cfg.seed}, "
        f"width {cfg.width_bits} bits",
        f"  traffic: {result.frames_submitted} submitted, "
        f"{result.frames_delivered} delivered, {result.frames_lost} lost, "
        f"{result.undetected_corruptions} undetected corruption(s)",
        f"  chaos:   "
        + ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(_chaos_summary(result).items())
        ),
    ]
    for record, loss in zip(result.switchovers, result.switch_losses):
        lines.append(
            f"  switch @ {record.interval:>5}: {record.from_lane} -> "
            f"{record.to_lane} ({record.request.name}, {record.reason}); "
            f"loss {loss['loss']}/{loss['budget']}"
        )
    lines.append(
        f"  reversions: {result.reversions}, final active lane: "
        f"{result.final_active}"
    )
    for name in ("working", "protect"):
        lane = result.lanes[name]
        guard = lane["guard"]
        lines.append(
            f"  {name:<8} mode={guard['mode']}, "
            f"{guard['spot_checks']} spot-checks, "
            f"{len(guard['quarantines'])} quarantine(s), "
            f"{guard['reinstatements']} reinstatement(s), "
            f"health={lane['health']['state']}, "
            f"lcp={lane['lcp_state']}"
        )
    if result.degraded_delivered:
        lines.append(
            f"  degraded delivery: {result.degraded_delivered} frame(s) "
            f"carried by the cycle engine while the fastpath was benched"
        )
    for violation in result.violations:
        lines.append(violation.render())
    if result.ok:
        lines.append("clean: all resilience invariants held")
    else:
        lines.append(f"{len(result.violations)} invariant violation(s)")
    return "\n".join(lines)


def render_json(result: SoakResult) -> str:
    """Machine-parseable soak report (sorted keys, stable ordering)."""
    cfg = result.config
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "config": {
            "intervals": cfg.intervals,
            "frames_per_interval": cfg.frames_per_interval,
            "frame_octets": list(cfg.frame_octets),
            "seed": cfg.seed,
            "width_bits": cfg.width_bits,
            "chaos_events": cfg.chaos_events,
            "hold_off": cfg.hold_off,
            "wait_to_restore": cfg.wait_to_restore,
            "check_every": cfg.check_every,
            "reinstate_after": cfg.reinstate_after,
            "switchover_loss_budget": cfg.switchover_loss_budget,
        },
        "traffic": {
            "submitted": result.frames_submitted,
            "delivered": result.frames_delivered,
            "lost": result.frames_lost,
            "undetected_corruptions": result.undetected_corruptions,
            "degraded_delivered": result.degraded_delivered,
        },
        "chaos": [event.as_dict() for event in result.chaos],
        "switchovers": [record.as_dict() for record in result.switchovers],
        "switch_losses": result.switch_losses,
        "reversions": result.reversions,
        "final_active": result.final_active,
        "lanes": result.lanes,
        "violations": [v.as_dict() for v in result.violations],
        "events": result.log.as_dicts(),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_events_json(result: SoakResult) -> str:
    """Just the structured event log (the CI artifact)."""
    payload: Dict[str, object] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "seed": result.config.seed,
        "intervals": result.intervals_run,
        "ok": result.ok,
        "events": result.log.as_dicts(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
