"""The LinkSupervisor: a 1+1 protected P⁵ link that heals itself.

The head end *bridges* every frame onto two independent lanes —
``working`` and ``protect`` — each a full P⁵ datapath (fastpath
engine with cycle-accurate fallback, see
:mod:`repro.resilience.guard`) behind its own impairable wire.  The
tail end *selects* the APS-active lane's output.  Time advances in
logical intervals; each interval the supervisor:

1. applies any scheduled chaos (:mod:`repro.resilience.chaos`);
2. bridges one batch of sequence-tagged data frames plus one in-band
   RFC 1333 LQR control frame onto both lanes;
3. collects each lane's deliveries, accounting every good frame
   against the submitted payload (a good frame whose payload does not
   match what was submitted is an **undetected corruption** — the
   invariant the whole stack exists to keep at zero);
4. folds the interval's evidence into each lane's
   :class:`~repro.resilience.health.HealthEngine`;
5. lets the :class:`~repro.resilience.aps.ApsController` decide
   hold-off / switch / wait-to-restore;
6. climbs the :class:`~repro.resilience.ladder.RecoveryLadder` while
   the active lane stays unhealthy — resync, flush, LCP renegotiate
   (a real :class:`~repro.ppp.fsm.NegotiationFsm` driven through its
   restart timers), lane switch, and finally quarantine with a typed
   :class:`~repro.errors.LinkDownError` when both lanes are gone.

:meth:`LinkSupervisor.run_soak` returns a :class:`SoakResult` whose
violations list enforces the acceptance invariants: zero undetected
corruptions, per-switchover loss bounded by the declared hold-off
budget, no loss outside any chaos/switch influence window, automatic
reversion to the working lane, and at least one fastpath quarantine
that kept passing traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import P5Config
from repro.errors import LinkDownError, ProtocolError
from repro.ppp.fsm import Event, FsmActions, NegotiationFsm, State
from repro.ppp.lqm import LinkQualityMonitor
from repro.resilience.aps import PROTECT, WORKING, ApsController, SwitchRecord
from repro.resilience.chaos import ChaosEvent, chaos_schedule
from repro.resilience.events import EventLog
from repro.resilience.guard import FastpathGuard, GuardMode, RxDelta
from repro.resilience.health import HealthEngine, HealthSample, LaneState
from repro.resilience.ladder import RecoveryLadder, RecoveryStep
from repro.resilience.wire import LaneWire
from repro.utils.rng import make_rng

__all__ = [
    "SupervisorConfig",
    "Lane",
    "LinkSupervisor",
    "SoakResult",
    "SoakViolation",
    "FRAME_DATA",
    "FRAME_LQR",
]

#: One-octet frame type tags (first content octet).
FRAME_DATA = 0x44  # 'D'
FRAME_LQR = 0x51   # 'Q'
_HEADER_OCTETS = 5  # type + 32-bit sequence/interval number


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything a soak needs, with CI-smoke-sized defaults."""

    intervals: int = 640
    frames_per_interval: int = 16
    frame_octets: Tuple[int, int] = (24, 72)
    seed: int = 1
    width_bits: int = 32
    max_frame_octets: int = 512
    chaos_events: int = 24
    hold_off: int = 2
    wait_to_restore: int = 6
    recover_intervals: int = 2
    check_every: int = 8
    reinstate_after: int = 3
    retries_per_step: int = 2
    backoff_cap: int = 8
    revertive: bool = True
    timeout: int = 2_000_000
    #: Raise :class:`LinkDownError` when the ladder quarantines a
    #: both-lanes-down link (otherwise it is only logged).
    raise_on_quarantine: bool = True

    @property
    def switchover_loss_budget(self) -> int:
        """Declared per-switchover frame-loss bound.

        One interval for detection, ``hold_off`` intervals of
        deliberate waiting, one interval of switch/drain slack — each
        worth ``frames_per_interval`` bridged data frames.
        """
        return (self.hold_off + 3) * self.frames_per_interval

    @property
    def loss_window(self) -> int:
        """Intervals before a switch whose losses it must answer for."""
        return self.hold_off + 3

    def p5(self) -> P5Config:
        return P5Config(
            width_bits=self.width_bits,
            max_frame_octets=self.max_frame_octets,
        )


@dataclass(frozen=True)
class SoakViolation:
    """One broken soak invariant (mirrors the faults campaign's shape)."""

    kind: str
    message: str

    def as_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "message": self.message}

    def render(self) -> str:
        return f"VIOLATION [{self.kind}] {self.message}"


@dataclass
class LaneDelivery:
    """What one lane handed the selector this interval."""

    data: List[Tuple[int, bytes]] = field(default_factory=list)
    bad_frames: int = 0
    unparsable: List[bytes] = field(default_factory=list)
    lqr_seen: bool = False
    outbound_loss: float = 0.0
    inbound_loss: float = 0.0
    delta: RxDelta = field(default_factory=RxDelta)


class Lane:
    """One protected lane: guard codec + wire + LQM pair + LCP."""

    def __init__(
        self, name: str, cfg: SupervisorConfig, log: EventLog, *, seed: int
    ) -> None:
        self.name = name
        self.cfg = cfg
        self.log = log
        self.wire = LaneWire(f"{name}.wire", seed=seed)
        self.guard = FastpathGuard(
            cfg.p5(),
            name=name,
            check_every=cfg.check_every,
            reinstate_after=cfg.reinstate_after,
            log=log,
            timeout=cfg.timeout,
        )
        self.health = HealthEngine(
            name, recover_intervals=cfg.recover_intervals
        )
        magic = (seed * 2654435761) & 0xFFFFFFFF
        self.head_lqm = LinkQualityMonitor(magic=magic or 1)
        self.tail_lqm = LinkQualityMonitor(magic=(magic ^ 0x5A5A5A5A) or 2)
        self.lcp = NegotiationFsm(FsmActions(), name=f"{name}.lcp")
        self.renegotiations = 0
        self._open_lcp()

    # ------------------------------------------------------------------- LCP
    def _open_lcp(self) -> None:
        self.lcp.open()
        self.lcp.up()
        self._converge_lcp()

    def _converge_lcp(self) -> None:
        self.lcp.receive(Event.RCR_PLUS)
        self.lcp.receive(Event.RCA)

    def renegotiate(self, interval: int) -> bool:
        """Ladder rung: bounce LCP through its restart timers.

        Succeeds (re-converges to Opened) only when the wire can carry
        the Configure exchange; on a cut lane the restart counter
        drains through TO+ to TO- and the FSM parks in Stopped.
        """
        self.renegotiations += 1
        try:
            self.lcp.down()
            self.lcp.up()
        except ProtocolError:
            # Parked in Stopped from an earlier failed attempt: Down
            # re-arms via Starting, Up re-sends Configure-Request.
            pass
        if self.lcp.state is not State.REQ_SENT:
            # Stopped -> Starting (tls) needs an explicit lower-layer
            # bounce before Up is legal again.
            if self.lcp.state is State.STARTING:
                self.lcp.up()
        ticks = 0
        if not self.wire.is_cut(interval):
            self._converge_lcp()
        else:
            while self.lcp.timer_running:
                self.lcp.tick()
                ticks += 1
        opened = self.lcp.is_opened
        self.log.record(
            interval, "ladder", self.name, "renegotiate-result",
            opened=opened, state=self.lcp.state.name, timeouts=ticks,
        )
        return opened

    # ------------------------------------------------------------- transport
    def transmit_interval(
        self, interval: int, payloads: List[Tuple[int, bytes]]
    ) -> LaneDelivery:
        """Bridge one batch (plus the LQR) across this lane."""
        contents: List[bytes] = []
        for seq, payload in payloads:
            content = (
                bytes([FRAME_DATA]) + seq.to_bytes(4, "big") + payload
            )
            contents.append(content)
            self.head_lqm.count_tx(len(content))
        lqr = (
            bytes([FRAME_LQR])
            + (interval & 0xFFFFFFFF).to_bytes(4, "big")
            + self.head_lqm.build_report()
        )
        contents.append(lqr)

        line = self.guard.encode(contents, interval)
        arrived = self.wire.transmit(line, interval)
        delta = self.guard.decode(arrived, interval)

        delivery = LaneDelivery(delta=delta)
        for content, good in delta.frames:
            if not good:
                delivery.bad_frames += 1
                self.tail_lqm.count_rx_error()
                continue
            kind = content[0] if content else 0
            if kind == FRAME_LQR and len(content) >= _HEADER_OCTETS + 48:
                self.tail_lqm.receive_report(content[_HEADER_OCTETS:])
                # The tail's own report rides the (healthy-by-
                # construction) return fibre of the same lane pair.
                verdict = self.head_lqm.receive_report(
                    self.tail_lqm.build_report()
                )
                delivery.lqr_seen = True
                if verdict is not None:
                    delivery.outbound_loss = verdict.outbound_loss
                    delivery.inbound_loss = verdict.inbound_loss
            elif kind == FRAME_DATA and len(content) > _HEADER_OCTETS:
                self.tail_lqm.count_rx(len(content))
                seq = int.from_bytes(content[1:_HEADER_OCTETS], "big")
                delivery.data.append((seq, content[_HEADER_OCTETS:]))
            else:
                # Good FCS but an impossible header: corrupted payload
                # that slipped delineation — the selector must flag it.
                delivery.unparsable.append(content)
        return delivery

    def sample_from(self, delivery: LaneDelivery, expected: int) -> HealthSample:
        delta = delivery.delta
        return HealthSample(
            expected_frames=expected,
            delivered_ok=delta.frames_ok,
            fcs_errors=delta.fcs_errors,
            framing_faults=delta.framing_faults,
            hunt_octets=delta.hunt_octets,
            lqr_seen=delivery.lqr_seen,
            outbound_loss=delivery.outbound_loss,
            inbound_loss=delivery.inbound_loss,
            contract_violations=delta.contract_violations,
        )


@dataclass
class SoakResult:
    """Everything a soak produced, plus the invariant verdicts."""

    config: SupervisorConfig
    intervals_run: int
    frames_submitted: int
    frames_delivered: int
    frames_lost: int
    undetected_corruptions: int
    degraded_delivered: int
    switchovers: List[SwitchRecord]
    switch_losses: List[Dict[str, int]]
    reversions: int
    final_active: str
    chaos: List[ChaosEvent]
    lanes: Dict[str, Dict[str, object]]
    violations: List[SoakViolation]
    log: EventLog

    @property
    def ok(self) -> bool:
        return not self.violations


class LinkSupervisor:
    """Runs the protected link for a configured number of intervals."""

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        *,
        chaos: Optional[List[ChaosEvent]] = None,
    ) -> None:
        self.cfg = config or SupervisorConfig()
        self.log = EventLog()
        self._rng = make_rng([self.cfg.seed, 0x50AC])
        self.lanes: Dict[str, Lane] = {
            WORKING: Lane(
                WORKING, self.cfg, self.log, seed=self.cfg.seed * 2 + 1
            ),
            PROTECT: Lane(
                PROTECT, self.cfg, self.log, seed=self.cfg.seed * 2 + 2
            ),
        }
        self.aps = ApsController(
            hold_off=self.cfg.hold_off,
            wait_to_restore=self.cfg.wait_to_restore,
            revertive=self.cfg.revertive,
            log=self.log,
        )
        self.ladder = RecoveryLadder(
            retries_per_step=self.cfg.retries_per_step,
            backoff_cap=self.cfg.backoff_cap,
            seed=[self.cfg.seed, 0x1ADD],
            log=self.log,
        )
        if chaos is None:
            chaos = chaos_schedule(
                intervals=self.cfg.intervals,
                events=self.cfg.chaos_events,
                seed=self.cfg.seed,
                hold_off=self.cfg.hold_off,
                wait_to_restore=self.cfg.wait_to_restore,
            )
        self.chaos = sorted(chaos, key=lambda e: (e.interval, e.lane, e.kind))
        # Traffic ledger.
        self._next_seq = 0
        self._pending: Dict[int, bytes] = {}
        self._submitted_at: Dict[int, int] = {}
        self._delivered: Set[int] = set()
        self.undetected_corruptions = 0
        self.degraded_delivered = 0
        self.quarantine_declared = False

    # ------------------------------------------------------------------ chaos
    def _apply_chaos(self, interval: int) -> None:
        for event in self.chaos:
            if event.interval != interval:
                continue
            lane = self.lanes[event.lane]
            if event.kind == "cut":
                lane.wire.cut(interval, event.duration)
            elif event.kind == "storm":
                lane.wire.storm(interval, event.duration)
            elif event.kind == "burst":
                lane.wire.arm_burst(event.bits)
            elif event.kind == "sabotage":
                lane.guard.arm_sabotage()
            self.log.record(
                interval, "chaos", event.lane, event.kind,
                duration=event.duration, bits=event.bits,
            )

    # ---------------------------------------------------------------- traffic
    def _make_batch(self, interval: int) -> List[Tuple[int, bytes]]:
        lo, hi = self.cfg.frame_octets
        batch: List[Tuple[int, bytes]] = []
        for _ in range(self.cfg.frames_per_interval):
            n = int(self._rng.integers(lo, hi + 1))
            payload = self._rng.integers(0, 256, size=n, dtype="uint8").tobytes()
            seq = self._next_seq
            self._next_seq += 1
            self._pending[seq] = payload
            self._submitted_at[seq] = interval
            batch.append((seq, payload))
        return batch

    def _select(self, interval: int, delivery: LaneDelivery) -> None:
        """Account the active lane's output against the ledger."""
        active = self.aps.active
        quarantined = (
            self.lanes[active].guard.mode is GuardMode.QUARANTINED
        )
        for seq, payload in delivery.data:
            expected = self._pending.get(seq)
            if expected is None:
                if seq in self._delivered:
                    continue  # duplicate delivery of an accounted frame
                self.undetected_corruptions += 1
                self.log.record(
                    interval, "traffic", active, "corrupt-delivered",
                    seq=seq, reason="unknown sequence number",
                )
                continue
            if payload != expected:
                self.undetected_corruptions += 1
                self.log.record(
                    interval, "traffic", active, "corrupt-delivered",
                    seq=seq, reason="payload mismatch",
                )
                continue
            del self._pending[seq]
            self._delivered.add(seq)
            if quarantined:
                self.degraded_delivered += 1
        for _content in delivery.unparsable:
            self.undetected_corruptions += 1
            self.log.record(
                interval, "traffic", active, "corrupt-delivered",
                reason="unparsable header on a good frame",
            )

    # ----------------------------------------------------------------- ladder
    def _run_ladder(
        self, interval: int, states: Dict[str, LaneState]
    ) -> None:
        active = self.aps.active
        if states[active] is LaneState.OK:
            self.ladder.reset(interval, active)
            return
        action = self.ladder.next_action(interval, active)
        if action is None:
            return
        lane = self.lanes[active]
        if action.step is RecoveryStep.RESYNC:
            lane.guard.resync()
        elif action.step is RecoveryStep.FLUSH:
            lane.guard.resync()
            lane.wire.flush()
        elif action.step is RecoveryStep.RENEGOTIATE:
            lane.renegotiate(interval)
        elif action.step is RecoveryStep.SWITCH:
            self.aps.force_switch(interval, reason="recovery ladder")
        elif action.step is RecoveryStep.QUARANTINE:
            if all(s is LaneState.FAILED for s in states.values()):
                self.quarantine_declared = True
                self.log.record(
                    interval, "ladder", "-", "link-down",
                    working=states[WORKING].value,
                    protect=states[PROTECT].value,
                )
                if self.cfg.raise_on_quarantine:
                    raise LinkDownError(
                        f"both lanes down at interval {interval}: "
                        f"working={states[WORKING].value}, "
                        f"protect={states[PROTECT].value}",
                        events=self.log.events,
                    )
            else:
                self.log.record(
                    interval, "ladder", "-", "quarantine-averted",
                    reason="standby lane still usable",
                )

    # ------------------------------------------------------------------- run
    def run_interval(self, interval: int) -> None:
        """One full supervision cycle."""
        self._apply_chaos(interval)
        batch = self._make_batch(interval)
        expected = len(batch) + 1  # data + the LQR control frame
        deliveries = {
            name: lane.transmit_interval(interval, batch)
            for name, lane in self.lanes.items()
        }
        self._select(interval, deliveries[self.aps.active])
        states: Dict[str, LaneState] = {}
        for name, lane in self.lanes.items():
            sample = lane.sample_from(deliveries[name], expected)
            states[name] = lane.health.update(sample)
        self.aps.evaluate(interval, states[WORKING], states[PROTECT])
        self._run_ladder(interval, states)

    def run_soak(self) -> SoakResult:
        for interval in range(self.cfg.intervals):
            self.run_interval(interval)
        return self._finalize()

    # -------------------------------------------------------------- verdicts
    def _finalize(self) -> SoakResult:
        cfg = self.cfg
        lost = sorted(self._pending)
        violations: List[SoakViolation] = []

        if self.undetected_corruptions:
            violations.append(SoakViolation(
                "undetected-corruption",
                f"{self.undetected_corruptions} frame(s) delivered as good "
                f"with a payload that was never submitted",
            ))

        # Per-switchover loss against the declared hold-off budget.
        switch_losses: List[Dict[str, int]] = []
        covered: Set[int] = set()
        for record in self.aps.switches:
            window_lo = record.interval - cfg.loss_window
            in_window = [
                seq for seq in lost
                if window_lo < self._submitted_at[seq] <= record.interval
            ]
            covered.update(in_window)
            switch_losses.append({
                "interval": record.interval,
                "loss": len(in_window),
                "budget": cfg.switchover_loss_budget,
            })
            if len(in_window) > cfg.switchover_loss_budget:
                violations.append(SoakViolation(
                    "switchover-loss",
                    f"switch at interval {record.interval} lost "
                    f"{len(in_window)} frames, budget "
                    f"{cfg.switchover_loss_budget}",
                ))

        # Unbounded loss: every lost frame must sit in some event's
        # influence window (chaos upset or switchover).
        slack = cfg.hold_off + 4
        for seq in lost:
            if seq in covered:
                continue
            at = self._submitted_at[seq]
            near_chaos = any(
                event.interval - 1 <= at <= event.end + slack
                for event in self.chaos
            )
            if not near_chaos:
                violations.append(SoakViolation(
                    "unbounded-loss",
                    f"frame {seq} (interval {at}) lost outside every "
                    f"chaos/switch influence window",
                ))

        reversions = sum(
            1 for r in self.aps.switches
            if r.to_lane == WORKING and r.request.name == "WAIT_TO_RESTORE"
        )
        working_cuts = [
            e for e in self.chaos if e.kind == "cut" and e.lane == WORKING
        ]
        if cfg.revertive and working_cuts:
            if reversions < 1:
                violations.append(SoakViolation(
                    "no-reversion",
                    "a working-lane cut occurred but traffic never "
                    "reverted to the working lane after wait-to-restore",
                ))
            if self.aps.active != WORKING and not self.quarantine_declared:
                violations.append(SoakViolation(
                    "no-reversion",
                    f"soak ended on the {self.aps.active} lane despite a "
                    f"revertive configuration and an event-free tail reserve",
                ))

        sabotages = [e for e in self.chaos if e.kind == "sabotage"]
        if sabotages:
            quarantines = sum(
                len(lane.guard.quarantines) for lane in self.lanes.values()
            )
            if quarantines < 1:
                violations.append(SoakViolation(
                    "fastpath-degradation",
                    "a sabotage event was scheduled but no differential "
                    "spot-check ever quarantined the fastpath",
                ))
            elif self.degraded_delivered < 1:
                violations.append(SoakViolation(
                    "fastpath-degradation",
                    "the fastpath was quarantined but no traffic was "
                    "delivered through the cycle engine while degraded",
                ))

        lanes = {
            name: {
                "guard": lane.guard.describe(),
                "wire": lane.wire.describe(),
                "health": lane.health.describe(),
                "lqm_verdicts": len(lane.head_lqm.verdicts),
                "renegotiations": lane.renegotiations,
                "lcp_state": lane.lcp.state.name,
            }
            for name, lane in self.lanes.items()
        }
        for violation in violations:
            self.log.record(
                cfg.intervals, "verdict", "-", violation.kind,
                message=violation.message,
            )
        return SoakResult(
            config=cfg,
            intervals_run=cfg.intervals,
            frames_submitted=self._next_seq,
            frames_delivered=len(self._delivered),
            frames_lost=len(lost),
            undetected_corruptions=self.undetected_corruptions,
            degraded_delivered=self.degraded_delivered,
            switchovers=list(self.aps.switches),
            switch_losses=switch_losses,
            reversions=reversions,
            final_active=self.aps.active,
            chaos=list(self.chaos),
            lanes=lanes,
            violations=violations,
            log=self.log,
        )
