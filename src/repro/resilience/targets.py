"""The dual-lane protected topology, as a checkable module graph.

The supervisor's runtime objects (guards, wires, monitors) are not RTL
modules, but the datapath they protect is: two independent P⁵ lanes,
each a full TX→injector→RX loopback (the :mod:`repro.faults` harness —
the same wiring chaos impairs at soak time).  Building that pair as
one graph lets ``repro lint`` run the ready/valid DRC over it and
``repro sta`` verify its timing contracts, so the protected topology
is held to exactly the same static discipline as the single-lane
designs it supersedes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.rtl.module import Channel, Module

__all__ = ["build_dual_lane_topology"]


def build_dual_lane_topology() -> Tuple[Sequence[Module], Iterable[Channel]]:
    """Elaborate the working+protect lane pair as one module graph."""
    from repro.core.config import P5Config
    from repro.faults.campaign import build_fault_harness

    config = P5Config.thirty_two_bit(max_frame_octets=512)
    modules: List[Module] = []
    channels: List[Channel] = []
    for lane in ("work", "prot"):
        _system, _injector, sim = build_fault_harness(
            config, name=f"aps.{lane}"
        )
        modules.extend(sim.modules)
        channels.extend(sim.channels)
    return modules, channels
