"""The physical lane model the supervisor's traffic crosses.

One :class:`LaneWire` per lane, operating on whole wire-byte batches
(the fastpath's native granularity) with three chaos hooks that reuse
the :mod:`repro.faults` primitives:

* ``burst`` — a contiguous flip of at most
  :data:`~repro.faults.injectors.MAX_BURST_BITS` bits through the same
  :class:`~repro.phy.line.BitErrorLine` the campaign injectors use, so
  damage stays within CRC-32's guaranteed detection length and the
  ground-truth :class:`~repro.phy.line.LineStats` keep accounting;
* ``cut`` — loss of signal for a span of intervals: every byte
  (including anything queued) vanishes, exactly what a fibre cut does
  to a lane between two add/drop sites;
* ``storm`` — downstream backpressure: bytes queue in the lane's
  elastic store and drain, delayed but intact, when the storm lifts
  (the byte-level analogue of
  :func:`repro.faults.injectors.backpressure_storm`).
"""

from __future__ import annotations

from typing import Dict

from repro.faults.injectors import MAX_BURST_BITS
from repro.phy.line import BitErrorLine
from repro.utils.rng import SeedLike, make_rng

__all__ = ["LaneWire"]


class LaneWire:
    """Byte-batch lane with seeded burst/cut/storm impairments."""

    def __init__(self, name: str, *, seed: SeedLike = None) -> None:
        self.name = name
        self._rng = make_rng(seed)
        #: Error-free by default; bursts are injected deterministically.
        self.line = BitErrorLine(0.0, self._rng)
        self._cut_until = -1
        self._storm_until = -1
        self._pending_burst_bits = 0
        self._deferred = bytearray()
        self.octets_dropped = 0
        self.octets_deferred_peak = 0

    # ------------------------------------------------------------ chaos hooks
    def cut(self, interval: int, duration: int) -> None:
        """Lose the signal for ``duration`` intervals starting now."""
        self._cut_until = max(self._cut_until, interval + duration - 1)

    def storm(self, interval: int, duration: int) -> None:
        """Backpressure the lane for ``duration`` intervals."""
        self._storm_until = max(self._storm_until, interval + duration - 1)

    def arm_burst(self, bits: int) -> None:
        """Flip ``bits`` contiguous bits in the next delivered batch."""
        if not 1 <= bits <= MAX_BURST_BITS:
            raise ValueError(
                f"burst must be 1..{MAX_BURST_BITS} bits to stay within "
                "CRC-32 guaranteed detection"
            )
        self._pending_burst_bits = bits

    # --------------------------------------------------------------- delivery
    def is_cut(self, interval: int) -> bool:
        return interval <= self._cut_until

    def is_stormed(self, interval: int) -> bool:
        return interval <= self._storm_until

    def transmit(self, data: bytes, interval: int) -> bytes:
        """Push one interval's wire bytes; returns what arrives."""
        if self.is_cut(interval):
            self.octets_dropped += len(data) + len(self._deferred)
            self._deferred.clear()
            return b""
        if self.is_stormed(interval):
            self._deferred.extend(data)
            self.octets_deferred_peak = max(
                self.octets_deferred_peak, len(self._deferred)
            )
            return b""
        payload = bytes(self._deferred) + data
        self._deferred.clear()
        if not payload:
            return b""
        if self._pending_burst_bits:
            bits = self._pending_burst_bits
            self._pending_burst_bits = 0
            start = int(self._rng.integers(0, max(1, 8 * len(payload) - bits)))
            return self.line.burst(payload, start_bit=start, length_bits=bits)
        return self.line.transmit(payload)

    def flush(self) -> int:
        """Drop anything queued (recovery-ladder flush rung)."""
        dropped = len(self._deferred)
        self.octets_dropped += dropped
        self._deferred.clear()
        return dropped

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "octets_dropped": self.octets_dropped,
            "octets_deferred_peak": self.octets_deferred_peak,
            "line_stats": self.line.stats.as_dict(),
        }
