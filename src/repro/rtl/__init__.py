"""A small cycle-accurate RTL-style simulation kernel.

This is the substrate substituting for the paper's FPGA: it models
synchronous, register-to-register pipelines with ready/valid
handshaking and backpressure, at one-clock-cycle granularity.

Key ideas
---------
* :class:`~repro.rtl.module.Channel` — a registered link between two
  modules (capacity-1 by default, i.e. a pipeline register; deeper for
  FIFOs).  Pushing into a full channel is a simulation error: hardware
  cannot "wait", it must stall upstream — exactly the discipline the
  paper's backpressure scheme enforces.
* :class:`~repro.rtl.module.Module` — owns input/output channels and a
  per-cycle :meth:`~repro.rtl.module.Module.clock` method.
* :class:`~repro.rtl.simulator.Simulator` — steps modules **sink
  first** each cycle, the standard trick that lets every stage of a
  non-stalled pipeline advance simultaneously, as registers do.
* :class:`~repro.rtl.pipeline.WordBeat` — one datapath word: byte
  lanes with per-lane valid bits plus start/end-of-frame marks, the
  currency of the P5's 8-/32-bit datapaths.
"""

from repro.rtl.module import Channel, Module
from repro.rtl.simulator import Simulator
from repro.rtl.pipeline import (
    StallPattern,
    StreamSink,
    StreamSource,
    WordBeat,
    beats_from_bytes,
    bytes_from_beats,
)
from repro.rtl.fifo import SyncFifo
from repro.rtl.trace import TraceRecorder

__all__ = [
    "Channel",
    "Module",
    "Simulator",
    "WordBeat",
    "StreamSource",
    "StreamSink",
    "StallPattern",
    "beats_from_bytes",
    "bytes_from_beats",
    "SyncFifo",
    "TraceRecorder",
]
