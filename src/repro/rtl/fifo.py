"""Synchronous FIFO module with occupancy accounting.

The paper's headline memory claim — "an extremely low resynchronisation
buffer" — is checked by instantiating this FIFO at a given depth in the
escape pipelines and asserting both that it never overflows and that
its *observed* maximum occupancy stays small under worst-case traffic.
"""

from __future__ import annotations


from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract

__all__ = ["SyncFifo"]


class SyncFifo(Module):
    """Moves items from ``inp`` to ``out`` through a depth-limited store.

    One item can enter and one can leave per cycle (single-port-in,
    single-port-out, like a two-port BRAM FIFO).  The internal store is
    the module's own channel, sized ``depth``.
    """

    def __init__(self, name: str, inp: Channel, out: Channel, depth: int) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        # The internal store is both written and read by this module —
        # a registered self-loop the DRC knows to allow.
        self.store = self.reads(self.writes(Channel(f"{name}.store", capacity=depth)))

    @property
    def depth(self) -> int:
        return self.store.capacity

    @property
    def max_occupancy(self) -> int:
        """High-water mark of the internal store."""
        return self.store.max_occupancy

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            # One cycle into the store, one out of it.
            latency_cycles=2,
            outputs=(
                ChannelTiming(self.out),
                ChannelTiming(self.store),
            ),
        )

    def clock(self) -> None:
        # Output side first so a full store can still stream through.
        if self.store.can_pop and self.out.can_push:
            self.out.push(self.store.pop())
        if self.inp.can_pop:
            if self.store.can_push:
                self.store.push(self.inp.pop())
            else:
                self.note_stall()
