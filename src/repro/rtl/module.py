"""Modules and channels — the structural vocabulary of the kernel."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Tuple

from repro.errors import BackpressureOverflow

__all__ = ["Channel", "Module"]


class Channel:
    """A registered link of fixed capacity between two modules.

    ``capacity=1`` models a single pipeline register; larger values
    model a FIFO of that depth.  :meth:`push` into a full channel
    raises :class:`~repro.errors.BackpressureOverflow` — modules must
    consult :attr:`can_push` first, which is precisely the ready/valid
    discipline of the hardware.

    Occupancy statistics are tracked so benchmarks can verify the
    paper's "extremely low resynchronisation buffer" claim.

    :attr:`producers` / :attr:`consumers` record which modules wired
    themselves to this channel (via :meth:`Module.writes` /
    :meth:`Module.reads`).  The lists are purely observational — the
    design-rule checker in :mod:`repro.lint` walks them to validate
    the topology before a single cycle is clocked; simulation
    behaviour never depends on them.  ``registered=False`` declares a
    wire-only (combinational) link for DRC purposes; the simulation
    semantics are identical.
    """

    def __init__(self, name: str, capacity: int = 1, *, registered: bool = True) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.registered = registered
        self.producers: List["Module"] = []
        self.consumers: List["Module"] = []
        self._queue: Deque[Any] = deque()
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------- handshake
    @property
    def can_push(self) -> bool:
        """Ready: space available this cycle."""
        return len(self._queue) < self.capacity

    @property
    def can_pop(self) -> bool:
        """Valid: data available this cycle."""
        return bool(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ data
    def push(self, item: Any) -> None:
        if not self.can_push:
            raise BackpressureOverflow(
                f"push into full channel {self.name!r} (capacity {self.capacity})"
            )
        self._queue.append(item)
        self.pushes += 1
        if len(self._queue) > self.max_occupancy:
            self.max_occupancy = len(self._queue)

    def pop(self) -> Any:
        if not self._queue:
            raise BackpressureOverflow(f"pop from empty channel {self.name!r}")
        self.pops += 1
        return self._queue.popleft()

    def peek(self) -> Any:
        if not self._queue:
            raise BackpressureOverflow(f"peek at empty channel {self.name!r}")
        return self._queue[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name!r}, {len(self._queue)}/{self.capacity})"


class Module:
    """Base class for synchronous modules.

    Subclasses implement :meth:`clock`, which is invoked once per
    simulated cycle.  Within ``clock`` a module may pop from its input
    channels and push to its output channels, guarding every push with
    ``can_push`` (stalling otherwise).  The simulator clocks modules
    sink-first, so checking ``can_push`` *after* downstream modules
    have run models a registered pipeline advancing in lock-step.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.cycles = 0
        self.stalled_cycles = 0
        self.reads_from: List[Channel] = []
        self.writes_to: List[Channel] = []

    # ------------------------------------------------------------- topology
    def reads(self, channel: Channel) -> Channel:
        """Register this module as ``channel``'s consumer; returns it.

        Observational only (used by the :mod:`repro.lint` DRC): wiring
        ``self.inp = self.reads(inp)`` leaves simulation behaviour
        untouched while making the module graph statically visible.
        """
        if channel not in self.reads_from:
            self.reads_from.append(channel)
        if self not in channel.consumers:
            channel.consumers.append(self)
        return channel

    def writes(self, channel: Channel) -> Channel:
        """Register this module as ``channel``'s producer; returns it."""
        if channel not in self.writes_to:
            self.writes_to.append(channel)
        if self not in channel.producers:
            channel.producers.append(self)
        return channel

    def capacity_needs(self) -> Iterable[Tuple[Channel, int, str]]:
        """Declare ``(channel, min_capacity, why)`` requirements.

        Subclasses whose room checks demand more than one word of
        downstream space override this so the DRC can verify the
        declared capacities support the stage's worst-case burst.
        """
        return ()

    def clock(self) -> None:
        """One rising clock edge (subclass hook)."""
        raise NotImplementedError

    def on_cycle(self) -> None:
        """Called by the simulator; wraps :meth:`clock` with counters."""
        self.cycles += 1
        self.clock()

    def note_stall(self) -> None:
        """Record one cycle lost to downstream backpressure."""
        self.stalled_cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
