"""Modules, channels and timing contracts — the structural vocabulary
of the kernel.

Besides the simulated structure (:class:`Channel`, :class:`Module`),
this module defines the *declarative* vocabulary the static analyses
consume: :class:`TimingContract` (with :class:`ChannelTiming` and
:class:`BufferBound`) is how a module states its worst-case latency,
initiation interval, per-output expansion/contraction and internal
buffer demands — the inputs of the :mod:`repro.sta` timing, sizing
and deadlock analyses, exactly as ``capacity_needs()`` feeds the
:mod:`repro.lint` graph DRC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, List, Optional, Tuple

from repro.errors import BackpressureOverflow

__all__ = [
    "Channel",
    "Module",
    "ChannelTiming",
    "BufferBound",
    "TimingContract",
]


class Channel:
    """A registered link of fixed capacity between two modules.

    ``capacity=1`` models a single pipeline register; larger values
    model a FIFO of that depth.  :meth:`push` into a full channel
    raises :class:`~repro.errors.BackpressureOverflow` — modules must
    consult :attr:`can_push` first, which is precisely the ready/valid
    discipline of the hardware.

    Occupancy statistics are tracked so benchmarks can verify the
    paper's "extremely low resynchronisation buffer" claim.

    :attr:`producers` / :attr:`consumers` record which modules wired
    themselves to this channel (via :meth:`Module.writes` /
    :meth:`Module.reads`).  The lists are purely observational — the
    design-rule checker in :mod:`repro.lint` walks them to validate
    the topology before a single cycle is clocked; simulation
    behaviour never depends on them.  ``registered=False`` declares a
    wire-only (combinational) link for DRC purposes; the simulation
    semantics are identical.
    """

    #: The simulator's hot loop touches every channel every cycle;
    #: slots keep the attribute loads off the dict path.
    __slots__ = (
        "name",
        "capacity",
        "registered",
        "producers",
        "consumers",
        "_queue",
        "pushes",
        "pops",
        "max_occupancy",
        "on_push",
        "on_pop",
    )

    def __init__(self, name: str, capacity: int = 1, *, registered: bool = True) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.registered = registered
        self.producers: List["Module"] = []
        self.consumers: List["Module"] = []
        self._queue: Deque[Any] = deque()
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0
        #: Instrumentation taps (e.g. the conformance monitor): called
        #: with the item after a successful push / pop.  ``None`` (the
        #: common case) costs one attribute test in the hot path.
        self.on_push: Optional[Any] = None
        self.on_pop: Optional[Any] = None

    # ------------------------------------------------------------- handshake
    @property
    def can_push(self) -> bool:
        """Ready: space available this cycle."""
        return len(self._queue) < self.capacity

    @property
    def can_pop(self) -> bool:
        """Valid: data available this cycle."""
        return bool(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ data
    def push(self, item: Any) -> None:
        if not self.can_push:
            raise BackpressureOverflow(
                f"push into full channel {self.name!r} (capacity {self.capacity})"
            )
        self._queue.append(item)
        self.pushes += 1
        if len(self._queue) > self.max_occupancy:
            self.max_occupancy = len(self._queue)
        if self.on_push is not None:
            self.on_push(item)

    def pop(self) -> Any:
        if not self._queue:
            raise BackpressureOverflow(f"pop from empty channel {self.name!r}")
        self.pops += 1
        item = self._queue.popleft()
        if self.on_pop is not None:
            self.on_pop(item)
        return item

    def peek(self) -> Any:
        if not self._queue:
            raise BackpressureOverflow(f"peek at empty channel {self.name!r}")
        return self._queue[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name!r}, {len(self._queue)}/{self.capacity})"


@dataclass(frozen=True)
class ChannelTiming:
    """Worst-case flow declaration for one output channel.

    ``max_expansion`` / ``min_expansion`` bound the output-octets per
    input-octet ratio over any drained run (stuffing expands a word by
    up to 2x, destuffing contracts it); ``per_frame_octets`` is the
    additive per-frame overhead (FCS trailer, wrapping flags) excluded
    from the ratio; ``burst_words`` is the most words the module may
    push into this channel in a single cycle — the flow solver's
    minimum safe capacity for the channel.

    ``channel=None`` describes an *abstract* output stream: the
    behavioural framers (HDLC/GFP/SONET) declare flow ratios without
    being wired into a channel graph.
    """

    channel: Optional["Channel"] = None
    max_expansion: float = 1.0
    min_expansion: float = 1.0
    per_frame_octets: int = 0
    burst_words: int = 1


@dataclass(frozen=True)
class BufferBound:
    """A module-internal buffer and its statically derived demand.

    ``capacity`` is the configured depth; ``min_required`` is the
    worst-case occupancy the module derives from its own structure
    (e.g. one maximally expanded job for the resynchronisation
    buffer).  The static analyzer proves ``capacity >= min_required``;
    the conformance monitor additionally checks that the *observed*
    peak (read from the module attribute named by ``peak_attr``)
    never exceeds the static bound — so a wrong derivation is itself
    a test failure.
    """

    name: str
    capacity: int
    min_required: int
    peak_attr: str = ""
    why: str = ""


@dataclass(frozen=True)
class TimingContract:
    """A module's static timing declaration.

    ``latency_cycles`` is the worst-case first-word latency: counting
    both endpoints, a word consumed on cycle ``c`` produces its first
    output on cycle ``c + latency_cycles - 1`` at the latest, assuming
    dense full-width input words and no downstream backpressure (the
    datapath's steady-state discipline).  ``initiation_interval`` is
    the steady-state cycles-per-word (1 = fully pipelined).  Modules
    whose first emission depends on traffic *content* rather than
    structure (a flag hunter waiting for alignment) declare their
    steady-state latency but set ``latency_is_bound=False`` so the
    conformance monitor does not treat it as a run-time invariant.
    """

    latency_cycles: int
    initiation_interval: int = 1
    outputs: Tuple[ChannelTiming, ...] = ()
    buffers: Tuple[BufferBound, ...] = ()
    latency_is_bound: bool = True


class Module:
    """Base class for synchronous modules.

    Subclasses implement :meth:`clock`, which is invoked once per
    simulated cycle.  Within ``clock`` a module may pop from its input
    channels and push to its output channels, guarding every push with
    ``can_push`` (stalling otherwise).  The simulator clocks modules
    sink-first, so checking ``can_push`` *after* downstream modules
    have run models a registered pipeline advancing in lock-step.
    """

    #: Base attributes are slotted for the simulator's benefit;
    #: subclasses (which do not declare ``__slots__``) still get a
    #: normal ``__dict__`` for their own state.
    __slots__ = ("name", "cycles", "stalled_cycles", "reads_from", "writes_to")

    #: Quiescence hook for the simulator's idle-module skipping: a
    #: module (or property override) reporting ``True`` promises that
    #: calling :meth:`clock` right now would change *nothing* — no
    #: channel traffic, no internal state, no statistics beyond the
    #: cycle counter.  The simulator then skips the call and bumps
    #: :attr:`cycles` directly, so observable behaviour (including
    #: per-module cycle counts) is identical.  The base class never
    #: promises quiescence.
    quiescent: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.cycles = 0
        self.stalled_cycles = 0
        self.reads_from: List[Channel] = []
        self.writes_to: List[Channel] = []

    # ------------------------------------------------------------- topology
    def reads(self, channel: Channel) -> Channel:
        """Register this module as ``channel``'s consumer; returns it.

        Observational only (used by the :mod:`repro.lint` DRC): wiring
        ``self.inp = self.reads(inp)`` leaves simulation behaviour
        untouched while making the module graph statically visible.
        """
        if channel not in self.reads_from:
            self.reads_from.append(channel)
        if self not in channel.consumers:
            channel.consumers.append(self)
        return channel

    def writes(self, channel: Channel) -> Channel:
        """Register this module as ``channel``'s producer; returns it."""
        if channel not in self.writes_to:
            self.writes_to.append(channel)
        if self not in channel.producers:
            channel.producers.append(self)
        return channel

    def capacity_needs(self) -> Iterable[Tuple[Channel, int, str]]:
        """Declare ``(channel, min_capacity, why)`` requirements.

        Subclasses whose room checks demand more than one word of
        downstream space override this so the DRC can verify the
        declared capacities support the stage's worst-case burst.
        """
        return ()

    def timing_contract(self) -> Optional[TimingContract]:
        """Declare this module's static timing contract (subclass hook).

        ``None`` means "no declaration": the :mod:`repro.sta` path
        engine flags paths through the module as unconstrained rather
        than guessing a latency.
        """
        return None

    def clock(self) -> None:
        """One rising clock edge (subclass hook)."""
        raise NotImplementedError

    def on_cycle(self) -> None:
        """Called by the simulator; wraps :meth:`clock` with counters."""
        self.cycles += 1
        self.clock()

    def note_stall(self) -> None:
        """Record one cycle lost to downstream backpressure."""
        self.stalled_cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
