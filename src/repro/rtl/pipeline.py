"""Stream beats, sources and sinks for word-oriented datapaths.

A :class:`WordBeat` is what travels down the P5 datapath each clock:
up to ``width//8`` byte lanes, each with a valid bit, plus
start-of-frame / end-of-frame marks.  Partially-valid beats occur at
frame tails and — centrally to the paper — *inside* the Escape Detect
unit, where deleting escape octets opens "bubbles" in the word
(paper Figure 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "WordBeat",
    "beats_from_bytes",
    "bytes_from_beats",
    "StallPattern",
    "StreamSource",
    "StreamSink",
]


@dataclass(frozen=True)
class WordBeat:
    """One datapath word in flight.

    Attributes
    ----------
    lanes:
        Byte values, lane 0 first on the wire.  Invalid lanes carry 0.
    valid:
        Per-lane valid bits; ``valid[i]`` qualifies ``lanes[i]``.
    sof / eof:
        Frame delimiting marks (the in-band equivalent of the flag
        octets once the framing layer has been processed).
    """

    lanes: Tuple[int, ...]
    valid: Tuple[bool, ...]
    sof: bool = False
    eof: bool = False

    def __post_init__(self) -> None:
        if len(self.lanes) != len(self.valid):
            raise ValueError("lanes and valid must have equal length")
        for lane, ok in zip(self.lanes, self.valid):
            if ok and not 0 <= lane <= 0xFF:
                raise ValueError(f"lane value out of range: {lane}")

    @property
    def width_bytes(self) -> int:
        return len(self.lanes)

    @property
    def n_valid(self) -> int:
        return sum(self.valid)

    def payload(self) -> bytes:
        """The valid octets of this beat, in lane order."""
        return bytes(b for b, ok in zip(self.lanes, self.valid) if ok)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        width_bytes: int,
        *,
        sof: bool = False,
        eof: bool = False,
    ) -> "WordBeat":
        """Left-aligned beat from 1..width_bytes octets."""
        if not 0 < len(data) <= width_bytes:
            raise ValueError(f"beat must carry 1..{width_bytes} octets, got {len(data)}")
        lanes = tuple(data) + (0,) * (width_bytes - len(data))
        valid = (True,) * len(data) + (False,) * (width_bytes - len(data))
        return cls(lanes, valid, sof=sof, eof=eof)

    def render(self) -> str:
        """Human-readable lane dump for timing diagrams, e.g. ``7E 12 -- 45``."""
        cells = [
            f"{b:02X}" if ok else "--" for b, ok in zip(self.lanes, self.valid)
        ]
        marks = ("S" if self.sof else "") + ("E" if self.eof else "")
        return " ".join(cells) + (f" [{marks}]" if marks else "")


def beats_from_bytes(data: bytes, width_bytes: int, *, frame_marks: bool = True) -> List[WordBeat]:
    """Chop a frame's octets into full-width beats (ragged tail allowed)."""
    beats: List[WordBeat] = []
    total = len(data)
    if total == 0:
        return beats
    for off in range(0, total, width_bytes):
        chunk = data[off : off + width_bytes]
        beats.append(
            WordBeat.from_bytes(
                chunk,
                width_bytes,
                sof=frame_marks and off == 0,
                eof=frame_marks and off + width_bytes >= total,
            )
        )
    return beats


def bytes_from_beats(beats: Iterable[WordBeat]) -> bytes:
    """Concatenate the valid octets of a beat sequence."""
    out = bytearray()
    for beat in beats:
        out += beat.payload()
    return bytes(out)


class StallPattern:
    """A deterministic or random schedule of stall cycles.

    Used to model a slow producer (PHY underrun) or a slow consumer
    (memory-bus contention): ``active(cycle)`` is True on cycles the
    party refuses to move data.
    """

    def __init__(
        self,
        *,
        every: Optional[int] = None,
        probability: float = 0.0,
        seed: SeedLike = None,
        burst: int = 1,
    ) -> None:
        if every is not None and every < 1:
            raise ValueError("'every' must be >= 1")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.every = every
        self.probability = probability
        self.burst = burst
        self._rng = make_rng(seed)
        self._burst_left = 0

    @classmethod
    def never(cls) -> "StallPattern":
        """No stalls: full line-rate."""
        return cls()

    @property
    def is_never(self) -> bool:
        """True when :meth:`active` can never stall (and draws no RNG).

        Modules consult this before promising quiescence to the
        simulator: a probabilistic pattern consumes random numbers on
        every ``active()`` call, so skipping the call would change the
        stall schedule.
        """
        return self.every is None and self.probability == 0.0 and self._burst_left == 0

    def active(self, cycle: int) -> bool:
        """Whether to stall on this cycle."""
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        stall = False
        if self.every is not None and cycle % self.every == self.every - 1:
            stall = True
        if self.probability > 0.0 and self._rng.random() < self.probability:
            stall = True
        if stall and self.burst > 1:
            self._burst_left = self.burst - 1
        return stall


class StreamSource(Module):
    """Feeds a list of beats into a channel, honouring backpressure."""

    def __init__(
        self,
        name: str,
        out: Channel,
        beats: Sequence[WordBeat],
        *,
        stall: Optional[StallPattern] = None,
    ) -> None:
        super().__init__(name)
        self.out = self.writes(out)
        self._beats: Iterator[WordBeat] = iter(list(beats))
        self._pending: Optional[WordBeat] = None
        self.stall = stall or StallPattern.never()
        self.sent = 0
        self.done = False

    def extend(self, beats: Sequence[WordBeat]) -> None:
        """Append more traffic (chains iterators; cheap)."""
        self._beats = itertools.chain(self._beats, list(beats))
        self.done = False

    @property
    def quiescent(self) -> bool:
        # Only once the iterator has been *observed* exhausted (done
        # set by clock) and the stall pattern draws no RNG.
        return self.done and self._pending is None and self.stall.is_never

    def clock(self) -> None:
        if self.stall.active(self.cycles):
            return
        if self._pending is None:
            self._pending = next(self._beats, None)
            if self._pending is None:
                self.done = True
                return
        if self.out.can_push:
            self.out.push(self._pending)
            self.sent += 1
            self._pending = None
        else:
            self.note_stall()

    def timing_contract(self) -> TimingContract:
        return TimingContract(
            latency_cycles=1,
            outputs=(ChannelTiming(self.out),),
        )


class StreamSink(Module):
    """Drains a channel into a list, optionally stalling (slow consumer)."""

    def __init__(
        self,
        name: str,
        inp: Channel,
        *,
        stall: Optional[StallPattern] = None,
    ) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.stall = stall or StallPattern.never()
        self.beats: List[WordBeat] = []
        self.first_arrival_cycle: Optional[int] = None

    @property
    def quiescent(self) -> bool:
        return self.stall.is_never and not self.inp.can_pop

    def clock(self) -> None:
        if self.stall.active(self.cycles):
            return
        if self.inp.can_pop:
            beat = self.inp.pop()
            if self.first_arrival_cycle is None:
                self.first_arrival_cycle = self.cycles
            self.beats.append(beat)

    def data(self) -> bytes:
        """All valid octets received so far."""
        return bytes_from_beats(self.beats)

    def timing_contract(self) -> TimingContract:
        return TimingContract(latency_cycles=1)
