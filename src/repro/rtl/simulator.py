"""The clocked simulator: sink-first evaluation of synchronous modules."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.rtl.module import Channel, Module

__all__ = ["Simulator"]


class Simulator:
    """Steps a set of modules one clock cycle at a time.

    Parameters
    ----------
    modules:
        In **source-to-sink** order; the simulator clocks them in
        reverse.  Clocking the sink first frees its input register, so
        an unstalled N-stage pipeline advances every stage in the same
        cycle — the behaviour of real flip-flop pipelines.
    channels:
        Optional channel list for tracing/statistics; purely
        observational.
    """

    def __init__(
        self,
        modules: Sequence[Module],
        channels: Sequence[Channel] = (),
        *,
        max_cycles: int = 10_000_000,
    ) -> None:
        if not modules:
            raise ValueError("simulator needs at least one module")
        self.modules: List[Module] = list(modules)
        self.channels: List[Channel] = list(channels)
        self.cycle = 0
        self.max_cycles = max_cycles
        self._observers: List[Callable[[int], None]] = []

    def add_observer(self, callback: Callable[[int], None]) -> None:
        """Register a per-cycle callback (called after each step)."""
        self._observers.append(callback)

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles``."""
        for _ in range(cycles):
            for module in reversed(self.modules):
                module.on_cycle()
            self.cycle += 1
            for callback in self._observers:
                callback(self.cycle)

    def run_until(
        self,
        condition: Callable[[], bool],
        *,
        timeout: Optional[int] = None,
    ) -> int:
        """Step until ``condition()`` is true; returns cycles elapsed.

        Raises :class:`~repro.errors.SimulationError` on timeout —
        which in the P5 tests usually means a deadlocked handshake.
        """
        limit = timeout if timeout is not None else self.max_cycles
        start = self.cycle
        while not condition():
            if self.cycle - start >= limit:
                raise SimulationError(
                    f"condition not reached within {limit} cycles "
                    f"(started at {start}, now {self.cycle})"
                )
            self.step()
        return self.cycle - start

    def drain(self, *, idle_cycles: int = 4, timeout: Optional[int] = None) -> int:
        """Run until no channel holds data for ``idle_cycles`` in a row."""
        idle = 0
        start = self.cycle
        limit = timeout if timeout is not None else self.max_cycles

        while idle < idle_cycles:
            if self.cycle - start >= limit:
                raise SimulationError(f"drain did not complete within {limit} cycles")
            busy_before = any(ch.can_pop for ch in self.channels)
            self.step()
            busy_after = any(ch.can_pop for ch in self.channels)
            idle = 0 if (busy_before or busy_after) else idle + 1
        return self.cycle - start
