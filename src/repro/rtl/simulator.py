"""The clocked simulator: sink-first evaluation of synchronous modules."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PipelineStallError, SimulationError
from repro.rtl.module import Channel, Module

__all__ = ["Simulator"]


class Simulator:
    """Steps a set of modules one clock cycle at a time.

    Parameters
    ----------
    modules:
        In **source-to-sink** order; the simulator clocks them in
        reverse.  Clocking the sink first frees its input register, so
        an unstalled N-stage pipeline advances every stage in the same
        cycle — the behaviour of real flip-flop pipelines.
    channels:
        Optional channel list for tracing/statistics; purely
        observational.
    watchdog:
        Default no-progress budget (in cycles) for :meth:`run_until`
        and :meth:`drain`.  When set, a run that sees no channel
        activity for this many consecutive cycles raises
        :class:`~repro.errors.PipelineStallError` with a per-module
        occupancy diagnostic instead of spinning to the timeout.
        ``None`` (the default) disables the watchdog.

    Performance notes
    -----------------
    The clock order and the watchdog's channel set are derived once
    and cached; mutate the topology through :meth:`add_module` /
    :meth:`add_channel` (or call :meth:`invalidate_topology` after
    editing the lists directly) so the caches are rebuilt.  The inner
    loop of :meth:`step` skips modules whose
    :attr:`~repro.rtl.module.Module.quiescent` hook reports that
    clocking them would be a no-op, and hoists the observer dispatch
    out of the no-observer case — together with the frame-level
    engine in :mod:`repro.fastpath` these are the "runs as fast as
    the hardware allows" levers (see ``docs/performance.md``).
    """

    def __init__(
        self,
        modules: Sequence[Module],
        channels: Sequence[Channel] = (),
        *,
        max_cycles: int = 10_000_000,
        watchdog: Optional[int] = None,
    ) -> None:
        if not modules:
            raise ValueError("simulator needs at least one module")
        self.modules: List[Module] = list(modules)
        self.channels: List[Channel] = list(channels)
        self.cycle = 0
        self.max_cycles = max_cycles
        self.watchdog = watchdog
        self._observers: List[Callable[[int], None]] = []
        self._watched: Optional[List[Channel]] = None
        self._clock_order: Optional[Tuple[Module, ...]] = None
        self._conformance = None

    def add_observer(self, callback: Callable[[int], None]) -> None:
        """Register a per-cycle callback (called after each step)."""
        self._observers.append(callback)

    # ------------------------------------------------------------- topology
    def add_module(self, module: Module) -> None:
        """Append a module (keeps the derived caches coherent)."""
        self.modules.append(module)
        self.invalidate_topology()

    def add_channel(self, channel: Channel) -> None:
        """Append an observational channel (keeps caches coherent)."""
        self.channels.append(channel)
        self.invalidate_topology()

    def invalidate_topology(self) -> None:
        """Drop the cached clock order and watchdog channel set.

        Call after mutating :attr:`modules` / :attr:`channels` (or any
        module's wiring) directly; :meth:`add_module` and
        :meth:`add_channel` call it for you.
        """
        self._watched = None
        self._clock_order = None

    def enable_conformance(self, *, strict: bool = True):
        """Install a contract-conformance monitor on this simulator.

        Returns the :class:`~repro.sta.conformance.ContractMonitor`,
        which cross-checks every module's declared
        :class:`~repro.rtl.module.TimingContract` against the observed
        run.  With ``strict=True`` (default) a successful
        :meth:`run_until`/:meth:`drain` additionally asserts
        conformance, raising
        :class:`~repro.errors.ContractViolationError` on violation —
        a wrong declaration is itself a run failure.
        """
        from repro.sta.conformance import ContractMonitor

        monitor = ContractMonitor(self, strict=strict)
        self._conformance = monitor
        return monitor

    def _check_conformance(self) -> None:
        if self._conformance is not None and self._conformance.strict:
            self._conformance.assert_ok()

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles``.

        Batched stepping is the kernel's hot loop: the sink-first
        module order is a cached tuple, modules reporting
        :attr:`~repro.rtl.module.Module.quiescent` are skipped (their
        cycle counters still advance), and the observer/conformance
        dispatch is hoisted entirely out of the no-observer case.
        """
        order = self._clock_order
        if order is None:
            order = self._clock_order = tuple(reversed(self.modules))
        observers = self._observers
        if observers:
            for _ in range(cycles):
                for module in order:
                    if module.quiescent:
                        module.cycles += 1
                    else:
                        module.on_cycle()
                self.cycle += 1
                cycle = self.cycle
                for callback in observers:
                    callback(cycle)
        else:
            cycle = self.cycle
            for _ in range(cycles):
                for module in order:
                    if module.quiescent:
                        module.cycles += 1
                    else:
                        module.on_cycle()
                cycle += 1
            self.cycle = cycle

    # ----------------------------------------------------------- watchdog
    def _watch_channels(self) -> List[Channel]:
        """The channels the watchdog observes: the declared list plus
        everything the modules wired (so forgetting to pass a channel
        cannot blind the watchdog to its activity).

        Derived once and cached; :meth:`invalidate_topology` drops the
        cache when the module/channel lists mutate.  Before the cache
        every watchdog probe re-walked the whole module graph."""
        if self._watched is None:
            seen: List[Channel] = list(self.channels)
            ids = {id(ch) for ch in seen}
            for module in self.modules:
                for channel in list(module.writes_to) + list(module.reads_from):
                    if id(channel) not in ids:
                        ids.add(id(channel))
                        seen.append(channel)
            self._watched = seen
        return self._watched

    def _activity(self) -> int:
        """Monotone counter of all channel traffic ever moved."""
        return sum(ch.pushes + ch.pops for ch in self._watch_channels())

    def stall_diagnostic(self, quiet_cycles: int) -> Dict[str, Any]:
        """Structured snapshot of where the pipeline is wedged."""
        return {
            "cycle": self.cycle,
            "quiet_cycles": quiet_cycles,
            "modules": [
                {
                    "name": module.name,
                    "cycles": module.cycles,
                    "stalled_cycles": module.stalled_cycles,
                }
                for module in self.modules
            ],
            "channels": [
                {
                    "name": ch.name,
                    "occupancy": ch.occupancy,
                    "capacity": ch.capacity,
                }
                for ch in self._watch_channels()
            ],
        }

    def _raise_stall(self, quiet_cycles: int) -> None:
        diagnostic = self.stall_diagnostic(quiet_cycles)
        occupied = [
            f"{c['name']}={c['occupancy']}/{c['capacity']}"
            for c in diagnostic["channels"]
            if c["occupancy"]
        ]
        stalled = sorted(
            diagnostic["modules"], key=lambda m: -m["stalled_cycles"]
        )[:4]
        module_part = ", ".join(
            f"{m['name']} stalled {m['stalled_cycles']}/{m['cycles']}"
            for m in stalled
        )
        raise PipelineStallError(
            f"pipeline stalled: no channel activity for {quiet_cycles} "
            f"cycles (at cycle {self.cycle}); "
            f"occupied channels: {', '.join(occupied) or 'none'}; "
            f"module stalls: {module_part or 'none'}",
            diagnostic=diagnostic,
        )

    # ---------------------------------------------------------------- runs
    def run_until(
        self,
        condition: Callable[[], bool],
        *,
        timeout: Optional[int] = None,
        watchdog: Optional[int] = None,
    ) -> int:
        """Step until ``condition()`` is true; returns cycles elapsed.

        Raises :class:`~repro.errors.SimulationError` on timeout —
        which in the P5 tests usually means a deadlocked handshake —
        and :class:`~repro.errors.PipelineStallError` (with a
        per-module occupancy diagnostic) if a watchdog budget is set
        and no channel moves a word for that many cycles first.  With
        no watchdog budget the per-cycle activity probe is skipped
        entirely.
        """
        limit = timeout if timeout is not None else self.max_cycles
        budget = watchdog if watchdog is not None else self.watchdog
        start = self.cycle
        if budget is None:
            while not condition():
                if self.cycle - start >= limit:
                    raise SimulationError(
                        f"condition not reached within {limit} cycles "
                        f"(started at {start}, now {self.cycle})"
                    )
                self.step()
            self._check_conformance()
            return self.cycle - start
        last_activity = self._activity()
        quiet_since = self.cycle
        while not condition():
            if self.cycle - start >= limit:
                raise SimulationError(
                    f"condition not reached within {limit} cycles "
                    f"(started at {start}, now {self.cycle})"
                )
            if self.cycle - quiet_since >= budget:
                self._raise_stall(self.cycle - quiet_since)
            self.step()
            activity = self._activity()
            if activity != last_activity:
                last_activity = activity
                quiet_since = self.cycle
        self._check_conformance()
        return self.cycle - start

    def drain(
        self,
        *,
        idle_cycles: int = 4,
        timeout: Optional[int] = None,
        watchdog: Optional[int] = None,
    ) -> int:
        """Run until no channel holds data for ``idle_cycles`` in a row."""
        idle = 0
        start = self.cycle
        limit = timeout if timeout is not None else self.max_cycles
        budget = watchdog if watchdog is not None else self.watchdog
        last_activity = self._activity() if budget is not None else 0
        quiet_since = self.cycle

        while idle < idle_cycles:
            if self.cycle - start >= limit:
                raise SimulationError(f"drain did not complete within {limit} cycles")
            if budget is not None and self.cycle - quiet_since >= budget:
                self._raise_stall(self.cycle - quiet_since)
            busy_before = any(ch.can_pop for ch in self.channels)
            self.step()
            busy_after = any(ch.can_pop for ch in self.channels)
            idle = 0 if (busy_before or busy_after) else idle + 1
            if budget is not None:
                activity = self._activity()
                if activity != last_activity:
                    last_activity = activity
                    quiet_since = self.cycle
        self._check_conformance()
        return self.cycle - start
