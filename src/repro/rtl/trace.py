"""Cycle-by-cycle tracing and ASCII timing diagrams.

Figures 5 and 6 of the paper explain the escape units with byte-lane
diagrams; :class:`TraceRecorder` reproduces that view from a live
simulation so the F5/F6 benchmarks can print the same story::

    cycle | escin             | escout
    ------+-------------------+-------------------
        3 | 7E 12 34 56 [S]   |
        7 |                   | 7D 5E 12 34 [S]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.rtl.module import Channel

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Samples the heads of selected channels every cycle."""

    def __init__(self, channels: Sequence[Channel]) -> None:
        self.channels = list(channels)
        self.rows: List[Dict[str, Optional[str]]] = []

    def sample(self, cycle: int) -> None:
        """Record each channel's visible beat this cycle (observer hook)."""
        row: Dict[str, Optional[str]] = {"cycle": str(cycle)}
        for channel in self.channels:
            if channel.can_pop:
                head = channel.peek()
                row[channel.name] = (
                    head.render() if hasattr(head, "render") else repr(head)
                )
            else:
                row[channel.name] = None
        self.rows.append(row)

    def render(self, *, skip_idle: bool = True, limit: Optional[int] = None) -> str:
        """Format the samples as an ASCII timing table."""
        names = ["cycle"] + [ch.name for ch in self.channels]
        body: List[List[str]] = []
        for row in self.rows:
            cells = [row["cycle"]] + [row[ch.name] or "" for ch in self.channels]
            if skip_idle and all(c == "" for c in cells[1:]):
                continue
            body.append(cells)
            if limit is not None and len(body) >= limit:
                break
        widths = [
            max(len(name), *(len(r[i]) for r in body)) if body else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for cells in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)
