"""VCD (Value Change Dump) export for simulation waveforms.

Lets the cycle-accurate runs be inspected in GTKWave or any other
standard waveform viewer — the workflow a hardware engineer would use
on the real P5.  Each traced channel contributes three signals:

* ``<name>_valid``  (1 bit)  — data visible this cycle;
* ``<name>_data``   (W*8 bits) — the packed lane bytes;
* ``<name>_nvalid`` (8 bits) — how many lanes are valid.

Usage::

    writer = VcdWriter([ch1, ch2], timescale_ns=12.8)  # 78.125 MHz
    sim.add_observer(writer.sample)
    sim.step(100)
    writer.save("trace.vcd")
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from repro.rtl.module import Channel

__all__ = ["VcdWriter"]

#: Printable VCD identifier characters.
_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        out = _ID_ALPHABET[digit] + out
    return out


class VcdWriter:
    """Samples channels each cycle and renders a VCD document."""

    def __init__(
        self,
        channels: Sequence[Channel],
        *,
        timescale_ns: float = 12.8,
        module_name: str = "p5",
        data_bits: int = 32,
    ) -> None:
        self.channels = list(channels)
        self.timescale_ns = timescale_ns
        self.module_name = module_name
        self.data_bits = data_bits
        self._ids: Dict[str, str] = {}
        counter = 0
        for channel in self.channels:
            for suffix in ("valid", "data", "nvalid"):
                self._ids[f"{channel.name}.{suffix}"] = _identifier(counter)
                counter += 1
        self._changes: List[tuple] = []     # (cycle, id, value_str)
        self._last: Dict[str, str] = {}
        self.cycles_sampled = 0

    # --------------------------------------------------------------- sampling
    def sample(self, cycle: int) -> None:
        """Record the channels' head values (simulator observer hook)."""
        self.cycles_sampled = max(self.cycles_sampled, cycle)
        for channel in self.channels:
            if channel.can_pop:
                head = channel.peek()
                valid = "1"
                if hasattr(head, "payload"):
                    payload = head.payload()
                    value = int.from_bytes(payload, "big") if payload else 0
                    data = format(value, "b")
                    nvalid = format(len(payload), "08b")
                else:
                    data = "x"
                    nvalid = format(0, "08b")
            else:
                valid, data, nvalid = "0", "x", format(0, "08b")
            self._record(cycle, f"{channel.name}.valid", valid)
            self._record(cycle, f"{channel.name}.data", f"b{data}")
            self._record(cycle, f"{channel.name}.nvalid", f"b{nvalid}")

    def _record(self, cycle: int, key: str, value: str) -> None:
        if self._last.get(key) == value:
            return
        self._last[key] = value
        self._changes.append((cycle, self._ids[key], value))

    # --------------------------------------------------------------- document
    def render(self) -> str:
        """The complete VCD document as a string."""
        out = io.StringIO()
        out.write("$date repro P5 simulation $end\n")
        out.write("$version repro.rtl.vcd $end\n")
        # VCD timescale must be an integer unit; use ps for sub-ns.
        out.write(f"$timescale {int(self.timescale_ns * 1000)}ps $end\n")
        out.write(f"$scope module {self.module_name} $end\n")
        for channel in self.channels:
            safe = channel.name.replace(".", "_").replace(">", "_")
            out.write(
                f"$var wire 1 {self._ids[channel.name + '.valid']} "
                f"{safe}_valid $end\n"
            )
            out.write(
                f"$var wire {self.data_bits} {self._ids[channel.name + '.data']} "
                f"{safe}_data $end\n"
            )
            out.write(
                f"$var wire 8 {self._ids[channel.name + '.nvalid']} "
                f"{safe}_nvalid $end\n"
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        current: Optional[int] = None
        for cycle, ident, value in self._changes:
            if cycle != current:
                out.write(f"#{cycle}\n")
                current = cycle
            if value.startswith("b"):
                out.write(f"{value} {ident}\n")
            else:
                out.write(f"{value}{ident}\n")
        out.write(f"#{self.cycles_sampled + 1}\n")
        return out.getvalue()

    def save(self, path: str) -> None:
        """Write the VCD document to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.render())
