"""SDH/SONET transport substrate (the paper's physical layer).

The P5 targets "IP over SDH/SONET" at OC-48/STM-16; this package
supplies the transmission system the hardware would plug into,
implemented from GR-253/G.707 essentials and the PPP-over-SONET
mappings the paper cites (RFC 1619) and its successor (RFC 2615):

* :mod:`repro.sonet.framer` — STS-N/STS-Nc frame construction:
  transport overhead (A1/A2 framing, J0, B1/B2 parity, H1/H2/H3
  pointer, K1/K2), path overhead (J1, B3, C2, G1) and SPE payload
  mapping.
* :mod:`repro.sonet.rx_framer` — receive alignment: A1/A2 hunting
  with the OOF/LOF state machine, pointer interpretation, BIP error
  monitoring.
* :mod:`repro.sonet.scrambler` — the 2^7-1 frame-synchronous
  scrambler and the x^43+1 self-synchronous payload scrambler
  (RFC 2615's defence against scrambler-killer payloads).
* :mod:`repro.sonet.rates` — line-rate and efficiency arithmetic for
  OC-1 through OC-192.
"""

from repro.sonet.constants import SONET_C2_PPP, SONET_C2_PPP_SCRAMBLED
from repro.sonet.rates import StsRate, payload_capacity_bytes, rate_for
from repro.sonet.scrambler import FrameSyncScrambler, SelfSyncScrambler
from repro.sonet.framer import SonetFramer, SonetFrame
from repro.sonet.rx_framer import FramerState, SonetRxFramer
from repro.sonet.path import PppOverSonet
from repro.sonet.aps import ApsRequest, ProtectionSelector

__all__ = [
    "SONET_C2_PPP",
    "SONET_C2_PPP_SCRAMBLED",
    "StsRate",
    "rate_for",
    "payload_capacity_bytes",
    "FrameSyncScrambler",
    "SelfSyncScrambler",
    "SonetFramer",
    "SonetFrame",
    "SonetRxFramer",
    "FramerState",
    "PppOverSonet",
    "ApsRequest",
    "ProtectionSelector",
]
