"""Linear 1+1 Automatic Protection Switching (GR-253 §5.3, simplified).

Real OC-48 deployments — the paper's target environment — never run a
single unprotected fibre: the head end *bridges* the signal onto a
working and a protection line simultaneously, and the tail end selects
whichever is healthy, signalling its choice back through the K1/K2
line-overhead bytes.  Failures (LOS/LOF, excessive B2 errors) trigger
a switch within the famous "50 ms" budget — here, within one frame.

The model implements the tail-end selector with:

* per-line health scoring from the receive framers' OOF/LOF and B2
  counters;
* non-revertive switching (stay on protection after the working line
  recovers, as 1+1 defaults to);
* K1 request codes for the signalling state (Signal-Fail, Wait-to-
  Restore, No-Request).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.sonet.rx_framer import FramerState, SonetRxFramer

__all__ = ["ApsRequest", "ProtectionSelector", "LineHealth"]


class ApsRequest(enum.IntEnum):
    """K1 bits 1-4 request codes (subset)."""

    NO_REQUEST = 0b0000
    WAIT_TO_RESTORE = 0b0110
    SIGNAL_DEGRADE = 0b1010
    SIGNAL_FAIL = 0b1100
    FORCED_SWITCH = 0b1110


@dataclass
class LineHealth:
    """Snapshot of one line's receive condition."""

    name: str
    in_frame: bool
    oof_events: int
    b2_errors: int

    def signal_fail(self, *, prior_oof: int) -> bool:
        """Hard failure: lost alignment, or new OOF events."""
        return not self.in_frame or self.oof_events > prior_oof

    def signal_degrade(self, *, prior_b2: int, threshold: int) -> bool:
        """Soft failure: B2 errors accumulating past the threshold."""
        return (self.b2_errors - prior_b2) >= threshold


class ProtectionSelector:
    """Tail-end 1+1 selector over a working and a protection line.

    Feed both lines' bytes every frame with :meth:`receive_frame`; the
    selector returns the payload of the currently-selected line and
    switches lanes when the active one fails.

    Parameters
    ----------
    working / protection:
        The two receive framers (one per fibre).
    degrade_threshold:
        New B2 block errors per frame that count as signal degrade.
    revertive:
        Whether to switch back to working once it recovers (1+1
        defaults to non-revertive).
    """

    def __init__(
        self,
        working: SonetRxFramer,
        protection: SonetRxFramer,
        *,
        degrade_threshold: int = 3,
        revertive: bool = False,
    ) -> None:
        self.lines = {"working": working, "protection": protection}
        self.active = "working"
        self.degrade_threshold = degrade_threshold
        self.revertive = revertive
        self.request = ApsRequest.NO_REQUEST
        self.switch_events: List[Tuple[int, str, ApsRequest]] = []
        self._frame_no = 0
        self._prior = {
            name: (line.counters.oof_events, line.counters.b2_errors)
            for name, line in self.lines.items()
        }

    @property
    def standby(self) -> str:
        return "protection" if self.active == "working" else "working"

    # ----------------------------------------------------------------- frames
    def receive_frame(self, working_bytes: bytes, protection_bytes: bytes) -> bytes:
        """Feed one frame period's bytes from both fibres.

        Returns the recovered payload of the selected line (bridged
        head end: both carry the same signal, so no data is lost by
        switching between aligned lines).
        """
        self._frame_no += 1
        payloads = {
            "working": self.lines["working"].feed(working_bytes),
            "protection": self.lines["protection"].feed(protection_bytes),
        }
        self._evaluate()
        return payloads[self.active]

    def _health(self, name: str) -> LineHealth:
        line = self.lines[name]
        return LineHealth(
            name=name,
            in_frame=line.state is FramerState.SYNC
            or line.state is FramerState.PRESYNC,
            oof_events=line.counters.oof_events,
            b2_errors=line.counters.b2_errors,
        )

    def _evaluate(self) -> None:
        active_health = self._health(self.active)
        standby_health = self._health(self.standby)
        prior_oof, prior_b2 = self._prior[self.active]
        fail = active_health.signal_fail(prior_oof=prior_oof)
        degrade = active_health.signal_degrade(
            prior_b2=prior_b2, threshold=self.degrade_threshold
        )
        standby_ok = standby_health.in_frame
        if (fail or degrade) and standby_ok:
            self.request = (
                ApsRequest.SIGNAL_FAIL if fail else ApsRequest.SIGNAL_DEGRADE
            )
            self.switch_events.append((self._frame_no, self.standby, self.request))
            self.active = self.standby
        elif self.revertive and self.active == "protection":
            working_oof, _ = self._prior["working"]
            working = self._health("working")
            if working.in_frame and not working.signal_fail(prior_oof=working_oof):
                self.request = ApsRequest.WAIT_TO_RESTORE
                self.switch_events.append(
                    (self._frame_no, "working", self.request)
                )
                self.active = "working"
        else:
            self.request = ApsRequest.NO_REQUEST
        self._prior = {
            name: (line.counters.oof_events, line.counters.b2_errors)
            for name, line in self.lines.items()
        }

    # -------------------------------------------------------------- signalling
    def k1_byte(self) -> int:
        """The K1 byte the tail end transmits: request + channel number."""
        channel = 1 if self.active == "protection" else 0
        return (int(self.request) << 4) | channel

    def force_switch(self) -> None:
        """Operator-commanded switch to the standby line."""
        self.request = ApsRequest.FORCED_SWITCH
        self.switch_events.append((self._frame_no, self.standby, self.request))
        self.active = self.standby
