"""SONET structural constants (GR-253 / G.707 subset)."""

from __future__ import annotations

#: Rows in every SONET frame.
ROWS = 9

#: Columns per STS-1 (90) and the transport-overhead share (3).
COLS_PER_STS1 = 90
TOH_COLS_PER_STS1 = 3

#: Frame rate: 8000 frames/s (125 us per frame) at every STS level.
FRAMES_PER_SECOND = 8000

#: Framing bytes.
A1 = 0xF6
A2 = 0x28

#: Default section trace (J0) byte.
J0_DEFAULT = 0x01

#: Path signal label (C2) values for PPP payloads:
#: RFC 1619 used 0xCF (PPP, no payload scrambling); RFC 2615 defines
#: 0x16 for scrambled PPP/HDLC.
SONET_C2_PPP = 0xCF
SONET_C2_PPP_SCRAMBLED = 0x16

#: H1/H2 pointer constants.
POINTER_MAX = 782            # valid offsets 0..782
NDF_ENABLED = 0b1001         # new data flag set
NDF_NORMAL = 0b0110          # normal operation
