"""STS-N/STS-Nc frame construction and parsing.

A frame is a 9 x 90N byte grid transmitted row-major.  This framer
implements the overhead subset that matters to a PPP-over-SONET line
card:

* section overhead: A1/A2 framing, J0 trace, B1 (section BIP-8);
* line overhead: H1/H2 payload pointer (+ concatenation indications),
  H3, B2 (line BIP-8xN), K1/K2;
* path overhead: J1 trace, B3 (path BIP-8), C2 signal label, G1.

B1 covers the *previous* frame after scrambling; B2 covers the
previous frame's line portion before scrambling; B3 covers the
previous SPE — all per GR-253, so parity errors localise exactly like
real equipment sees them.  The frame-synchronous scrambler covers
everything except row 0 of the section overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import PointerError, SonetError
from repro.rtl.module import ChannelTiming, TimingContract
from repro.sonet.constants import (
    A1,
    A2,
    J0_DEFAULT,
    NDF_NORMAL,
    POINTER_MAX,
    ROWS,
    SONET_C2_PPP_SCRAMBLED,
)
from repro.sonet.rates import StsRate, fixed_stuff_columns
from repro.sonet.scrambler import FrameSyncScrambler

__all__ = ["SonetFrame", "SonetFramer"]


def _bip8(data: np.ndarray) -> int:
    """BIP-8: even parity per bit position over all bytes."""
    return int(np.bitwise_xor.reduce(data.reshape(-1).astype(np.uint8), axis=None)) \
        if data.size else 0


@dataclass
class SonetFrame:
    """One transmitted/received frame as a 9 x 90N grid plus metadata."""

    grid: np.ndarray                # uint8, shape (9, 90N)
    n: int                          # STS level

    @property
    def rate(self) -> StsRate:
        return StsRate(self.n)

    def to_wire(self) -> bytes:
        """Row-major serialisation (transmission order)."""
        return self.grid.astype(np.uint8).tobytes()

    @classmethod
    def from_wire(cls, data: bytes, n: int) -> "SonetFrame":
        rate = StsRate(n)
        expected = ROWS * rate.columns
        if len(data) != expected:
            raise SonetError(f"frame must be {expected} bytes for {rate.name}")
        grid = np.frombuffer(data, dtype=np.uint8).reshape(ROWS, rate.columns).copy()
        return cls(grid, n)


class SonetFramer:
    """Build (and book-keep parity across) successive STS-Nc frames.

    The class-level :data:`TIMING_CONTRACT` declares the envelope's
    flow cost for the :mod:`repro.sta` analyses: transport plus path
    overhead expand the payload by at most 90/86 (the STS-1 grid: 90
    columns carrying 86 of payload), and frame emission is traffic
    independent, so the latency figure is not a run-time bound.

    Parameters
    ----------
    n:
        STS level (1, 3, 12, 48...).  OC-48 is the paper's target.
    pointer:
        H1/H2 payload offset, 0..782.  0 places J1 immediately after
        the H3 byte position; nonzero values exercise the receiver's
        pointer interpretation.
    c2:
        Path signal label; defaults to the scrambled-PPP value.
    scramble:
        Apply the frame-synchronous scrambler (on by default; switch
        off to observe raw overhead in tests).
    """

    TIMING_CONTRACT = TimingContract(
        latency_cycles=1,
        latency_is_bound=False,
        outputs=(ChannelTiming(max_expansion=90.0 / 86.0),),
    )

    def __init__(
        self,
        n: int,
        *,
        pointer: int = 0,
        c2: int = SONET_C2_PPP_SCRAMBLED,
        j0: int = J0_DEFAULT,
        j1: bytes = b"repro-path-trace",
        scramble: bool = True,
    ) -> None:
        if not 0 <= pointer <= POINTER_MAX:
            raise PointerError(f"pointer {pointer} outside 0..{POINTER_MAX}")
        self.rate = StsRate(n)
        self.n = n
        self.pointer = pointer
        self.c2 = c2
        self.j0 = j0
        self.j1 = (j1 + b" " * 16)[:16]
        self.scramble = scramble
        self._scrambler = FrameSyncScrambler()
        self._prev_frame_scrambled: Optional[np.ndarray] = None
        self._prev_line_portion: Optional[np.ndarray] = None
        self._prev_spe: Optional[np.ndarray] = None
        self._j1_cursor = 0
        self.frames_built = 0

    # ------------------------------------------------------------- geometry
    @property
    def payload_bytes_per_frame(self) -> int:
        from repro.sonet.rates import payload_capacity_bytes

        return payload_capacity_bytes(self.n)

    def _payload_columns(self) -> List[int]:
        """Grid columns available to payload (excl. TOH, POH, stuff)."""
        toh = self.rate.toh_columns
        spe_cols = list(range(toh, self.rate.columns))
        poh_col = toh + (self.pointer % (self.rate.spe_columns))
        # POH occupies one column; fixed stuff the next N/3-1 columns.
        stuff = fixed_stuff_columns(self.n)
        reserved = {self._wrap_spe_col(poh_col, k) for k in range(stuff + 1)}
        return [c for c in spe_cols if c not in reserved]

    def _wrap_spe_col(self, col: int, offset: int) -> int:
        toh = self.rate.toh_columns
        spe_width = self.rate.spe_columns
        return toh + (col - toh + offset) % spe_width

    # ---------------------------------------------------------------- build
    def build(self, payload: bytes) -> bytes:
        """Assemble one frame around ``payload`` and return wire bytes.

        ``payload`` must be exactly :attr:`payload_bytes_per_frame`
        long — the continuous HDLC stream mapper
        (:class:`~repro.sonet.path.PppOverSonet`) guarantees that by
        inter-frame flag fill.
        """
        if len(payload) != self.payload_bytes_per_frame:
            raise SonetError(
                f"payload must be exactly {self.payload_bytes_per_frame} bytes, "
                f"got {len(payload)}"
            )
        grid = np.zeros((ROWS, self.rate.columns), dtype=np.uint8)
        self._write_toh(grid)
        self._write_poh_and_payload(grid, payload)
        self._write_parity(grid)
        line_portion = grid[3:, :].copy()
        wire = self._apply_scrambler(grid)
        self._prev_frame_scrambled = wire.copy()
        self._prev_line_portion = line_portion
        self.frames_built += 1
        return wire.tobytes()

    def _write_toh(self, grid: np.ndarray) -> None:
        n = self.n
        # Row 0: A1 x N, A2 x N, J0/Z0 x N.
        grid[0, 0:n] = A1
        grid[0, n : 2 * n] = A2
        grid[0, 2 * n] = self.j0
        # Row 3: H1/H2 pointer in the first STS-1; concatenation
        # indication (NDF=1001, offset all-ones) in the rest.
        h1 = (NDF_NORMAL << 4) | ((self.pointer >> 8) & 0x03)
        h2 = self.pointer & 0xFF
        grid[3, 0] = h1
        grid[3, n] = h2
        if n > 1:
            grid[3, 1:n] = 0x93          # 1001 ss 11: concatenation H1
            grid[3, n + 1 : 2 * n] = 0xFF  # concatenation H2
        # K1/K2 (APS) idle.
        grid[4, 2 * n] = 0x00

    def _write_poh_and_payload(self, grid: np.ndarray, payload: bytes) -> None:
        poh_col = self._wrap_spe_col(self.rate.toh_columns, self.pointer)
        # Path overhead column: J1, B3 (filled in _write_parity), C2, G1.
        grid[0, poh_col] = self.j1[self._j1_cursor]
        self._j1_cursor = (self._j1_cursor + 1) % len(self.j1)
        grid[2, poh_col] = self.c2
        grid[3, poh_col] = 0x00  # G1: no remote defects
        cols = self._payload_columns()
        block = np.frombuffer(payload, dtype=np.uint8).reshape(ROWS, len(cols))
        grid[:, cols] = block
        self._poh_col_last = poh_col

    def _write_parity(self, grid: np.ndarray) -> None:
        n = self.n
        # B1 (row 1, col 0): section BIP-8 over previous scrambled frame.
        if self._prev_frame_scrambled is not None:
            grid[1, 0] = _bip8(self._prev_frame_scrambled)
        # B2 (row 5, col 0): line BIP over previous frame's line portion.
        if self._prev_line_portion is not None:
            grid[5, 0] = _bip8(self._prev_line_portion)
        # B3 (row 1 of POH): path BIP-8 over the previous SPE.
        spe = grid[:, self.rate.toh_columns :]
        if self._prev_spe is not None:
            grid[1, self._poh_col_last] = _bip8(self._prev_spe)
        self._prev_spe = spe.copy()

    def _apply_scrambler(self, grid: np.ndarray) -> np.ndarray:
        if not self.scramble:
            return grid.copy()
        flat = grid.reshape(-1).copy()
        keystream = self._scrambler.sequence(flat.size)
        # Row 0's section overhead (A1/A2/J0 region) is not scrambled.
        start = self.rate.toh_columns
        mask = np.ones(flat.size, dtype=bool)
        mask[:start] = False
        flat[mask] ^= keystream[: int(mask.sum())]
        return flat.reshape(grid.shape)
