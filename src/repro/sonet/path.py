"""PPP over SONET/SDH — the RFC 1619 / RFC 2615 payload mapping.

"The PPP frames are located by row within the STS-SPE payload ... the
octet stream is mapped into the SPE with the octet boundaries aligned"
— i.e. the stuffed HDLC byte stream simply fills the payload bytes,
with inter-frame time filled by flag octets.  RFC 2615 additionally
passes the stream through the x^43+1 self-synchronous scrambler.

:class:`PppOverSonet` is the full TX/RX path used by the examples:
PPP frames in, SONET line bytes out — and back.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.crc import CRC32, CrcSpec
from repro.hdlc.constants import FLAG_OCTET
from repro.hdlc.delineation import Delineator, DelineatorStats
from repro.hdlc.framer import HdlcFramer
from repro.sonet.constants import SONET_C2_PPP, SONET_C2_PPP_SCRAMBLED
from repro.sonet.framer import SonetFramer
from repro.sonet.rx_framer import RxCounters, SonetRxFramer
from repro.sonet.scrambler import SelfSyncScrambler

__all__ = ["PppOverSonet", "GfpOverSonet"]


class PppOverSonet:
    """A complete unidirectional PPP-over-SONET path (TX + RX ends).

    Parameters
    ----------
    n:
        STS level (3 → 155 Mbps, 12 → 622 Mbps, 48 → 2.5 Gbps).
    payload_scrambling:
        RFC 2615 x^43+1 scrambling (True, default) or the plain
        RFC 1619 mapping the paper's era used (False).  The C2 path
        label follows the choice automatically.
    fcs_spec:
        HDLC FCS; the P5 default is CRC-32.
    """

    def __init__(
        self,
        n: int = 48,
        *,
        payload_scrambling: bool = True,
        fcs_spec: CrcSpec = CRC32,
    ) -> None:
        c2 = SONET_C2_PPP_SCRAMBLED if payload_scrambling else SONET_C2_PPP
        self.n = n
        self.payload_scrambling = payload_scrambling
        self.framer = SonetFramer(n, c2=c2)
        self.rx_framer = SonetRxFramer(n, expected_c2=c2)
        self.hdlc = HdlcFramer(fcs_spec)
        self.delineator = Delineator(framer=HdlcFramer(fcs_spec))
        self._tx_scrambler = SelfSyncScrambler()
        self._rx_scrambler = SelfSyncScrambler()
        self._tx_queue: Deque[bytes] = deque()
        self._tx_residue = b""

    # --------------------------------------------------------------- TX side
    def queue_frame(self, content: bytes) -> None:
        """Queue one PPP frame's content (addr..info) for transmission."""
        self._tx_queue.append(self.hdlc.encode(content))

    def next_line_frame(self) -> bytes:
        """Produce the next 125 us SONET frame's worth of line bytes.

        Pulls queued HDLC frames into the payload; any gap is filled
        with flag octets (the POS idle pattern), so the line never
        underruns — exactly what the P5 transmitter's flag inserter
        does when the host queue is empty.
        """
        need = self.framer.payload_bytes_per_frame
        chunk = bytearray(self._tx_residue)
        while len(chunk) < need and self._tx_queue:
            chunk += self._tx_queue.popleft()
        if len(chunk) < need:
            chunk += bytes([FLAG_OCTET]) * (need - len(chunk))
        self._tx_residue = bytes(chunk[need:])
        payload = bytes(chunk[:need])
        if self.payload_scrambling:
            payload = self._tx_scrambler.scramble(payload)
        return self.framer.build(payload)

    @property
    def tx_backlog_frames(self) -> int:
        return len(self._tx_queue)

    # --------------------------------------------------------------- RX side
    def receive_line(self, data: bytes) -> List[bytes]:
        """Consume line bytes; return the PPP frame contents recovered."""
        payload = self.rx_framer.feed(data)
        if self.payload_scrambling and payload:
            payload = self._rx_scrambler.descramble(payload)
        before = len(self.delineator.frames)
        self.delineator.push_bytes(payload)
        return [f.content for f in self.delineator.frames[before:]]

    # ------------------------------------------------------------- reporting
    @property
    def sonet_counters(self) -> RxCounters:
        return self.rx_framer.counters

    @property
    def hdlc_stats(self) -> DelineatorStats:
        return self.delineator.stats


class GfpOverSonet:
    """The baseline alternative: GFP-mapped PPP over SONET (G.7041).

    Same SONET transport as :class:`PppOverSonet`, but the PPP frames
    ride in GFP client frames instead of HDLC flags+stuffing: constant
    per-frame overhead, idle fill with 4-byte GFP idle frames, and no
    need for the x^43 payload scrambler (GFP's core-header scrambling
    plus pFCS already avoids the killer-pattern problem).
    """

    def __init__(self, n: int = 48) -> None:
        from repro.gfp import GfpDelineator, GfpFrame, idle_frame

        self._GfpFrame = GfpFrame
        self._idle = idle_frame
        self.n = n
        self.framer = SonetFramer(n, c2=0x1B)   # GFP signal label
        self.rx_framer = SonetRxFramer(n, expected_c2=0x1B)
        self.delineator = GfpDelineator()
        self._tx_queue: Deque[bytes] = deque()
        self._tx_residue = b""

    def queue_frame(self, content: bytes) -> None:
        """Queue one PPP frame's content (addr..info, no HDLC layer)."""
        self._tx_queue.append(self._GfpFrame(content).encode())

    def next_line_frame(self) -> bytes:
        """Produce the next 125 us SONET frame's worth of line bytes."""
        need = self.framer.payload_bytes_per_frame
        chunk = bytearray(self._tx_residue)
        while len(chunk) < need and self._tx_queue:
            chunk += self._tx_queue.popleft()
        while len(chunk) < need:
            chunk += self._idle()
        self._tx_residue = bytes(chunk[need:])
        return self.framer.build(bytes(chunk[:need]))

    @property
    def tx_backlog_frames(self) -> int:
        return len(self._tx_queue)

    def receive_line(self, data: bytes) -> List[bytes]:
        """Consume line bytes; return recovered PPP frame contents."""
        payload = self.rx_framer.feed(data)
        return [frame.payload for frame in self.delineator.feed(payload)]

    @property
    def sonet_counters(self) -> RxCounters:
        return self.rx_framer.counters

    @property
    def gfp_stats(self):
        return self.delineator.stats
