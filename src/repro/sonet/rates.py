"""Line-rate and payload-capacity arithmetic for the STS hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sonet.constants import (
    COLS_PER_STS1,
    FRAMES_PER_SECOND,
    ROWS,
    TOH_COLS_PER_STS1,
)

__all__ = ["StsRate", "rate_for", "payload_capacity_bytes", "fixed_stuff_columns"]


@dataclass(frozen=True)
class StsRate:
    """One member of the SONET hierarchy (concatenated form, STS-Nc)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("STS level must be >= 1")

    @property
    def name(self) -> str:
        suffix = "c" if self.n > 1 else ""
        return f"STS-{self.n}{suffix}"

    @property
    def oc_name(self) -> str:
        return f"OC-{self.n}"

    @property
    def sdh_name(self) -> str:
        """The SDH equivalent (STM-N/3), where defined."""
        if self.n % 3 == 0:
            return f"STM-{self.n // 3}"
        return "(no SDH equivalent)"

    @property
    def columns(self) -> int:
        return COLS_PER_STS1 * self.n

    @property
    def toh_columns(self) -> int:
        return TOH_COLS_PER_STS1 * self.n

    @property
    def spe_columns(self) -> int:
        """SPE width including POH and fixed stuff."""
        return self.columns - self.toh_columns

    @property
    def line_rate_bps(self) -> float:
        """Gross line rate: all bytes, 8000 frames/s."""
        return self.columns * ROWS * 8 * FRAMES_PER_SECOND

    @property
    def payload_rate_bps(self) -> float:
        """Rate available to the PPP byte stream (SPE minus POH/stuff)."""
        return payload_capacity_bytes(self.n) * 8 * FRAMES_PER_SECOND


def fixed_stuff_columns(n: int) -> int:
    """Fixed-stuff columns inside an STS-Nc SPE.

    Concatenated SPEs carry ``N/3 - 1`` stuff columns for N a multiple
    of 3 (0 for STS-3c, 3 for STS-12c, 15 for STS-48c); STS-1 carries
    none in this model (a documented simplification — the real C-3
    mapping's two fixed columns change efficiency by <2.5 %).
    """
    if n >= 3 and n % 3 == 0:
        return n // 3 - 1
    return 0


def payload_capacity_bytes(n: int) -> int:
    """Payload bytes per frame: SPE minus one POH column minus stuff."""
    rate = StsRate(n)
    payload_cols = rate.spe_columns - 1 - fixed_stuff_columns(n)
    return payload_cols * ROWS


def rate_for(n: int) -> StsRate:
    """Convenience constructor with the common levels documented.

    OC-3 ~ 155.52 Mbps, OC-12 ~ 622.08 Mbps, OC-48 ~ 2.48832 Gbps —
    the last being the paper's 2.5 Gbps target.
    """
    return StsRate(n)
