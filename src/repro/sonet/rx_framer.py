"""SONET receive framer: alignment hunting, OOF/LOF, overhead checks.

The receiver sees an unaligned byte stream.  It hunts for the A1…A2
framing pattern, requires two consecutive aligned frames before
declaring sync (GR-253's m-consecutive rule), monitors framing on
every frame thereafter (4 consecutive errored framings → out-of-frame,
persistent OOF → loss-of-frame), descrambles, verifies B1/B2/B3
parity, interprets the H1/H2 pointer, checks the C2 path label and
hands the payload columns to the layer above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sonet.constants import A1, A2, POINTER_MAX, ROWS
from repro.sonet.framer import _bip8
from repro.sonet.rates import StsRate, fixed_stuff_columns
from repro.sonet.scrambler import FrameSyncScrambler

__all__ = ["FramerState", "RxCounters", "SonetRxFramer"]


class FramerState(enum.Enum):
    """Alignment states (GR-253 simplified)."""

    HUNT = "hunt"          # no alignment known
    PRESYNC = "presync"    # candidate alignment, confirming
    SYNC = "sync"          # in frame


@dataclass
class RxCounters:
    """Receive-side SONET monitoring counters."""

    frames_ok: int = 0
    oof_events: int = 0
    lof_events: int = 0
    b1_errors: int = 0
    b2_errors: int = 0
    b3_errors: int = 0
    pointer_invalid: int = 0
    c2_mismatches: int = 0
    bytes_discarded_hunting: int = 0


class SonetRxFramer:
    """Streaming STS-Nc receiver.

    Feed arbitrary byte chunks with :meth:`feed`; extracted SPE payload
    bytes are returned (concatenated across the frames completed by
    the chunk).  Alignment and parity events accumulate in
    :attr:`counters`.

    Parameters
    ----------
    n:
        STS level; must match the transmitter.
    expected_c2:
        Path signal label to verify (None disables the check).
    descramble:
        Must match the transmitter's ``scramble`` flag.
    oof_threshold / lof_threshold:
        Consecutive bad framings to declare OOF, and consecutive OOF
        frames to escalate to LOF.
    """

    def __init__(
        self,
        n: int,
        *,
        expected_c2: Optional[int] = None,
        descramble: bool = True,
        oof_threshold: int = 4,
        lof_threshold: int = 24,
    ) -> None:
        self.rate = StsRate(n)
        self.n = n
        self.expected_c2 = expected_c2
        self.descramble = descramble
        self.oof_threshold = oof_threshold
        self.lof_threshold = lof_threshold
        self._scrambler = FrameSyncScrambler()
        self._buffer = bytearray()
        self.state = FramerState.HUNT
        self.counters = RxCounters()
        self._bad_framings = 0
        self._oof_hunt_bytes = 0      # bytes spent hunting since OOF
        self._lof_declared = False
        self._presync_ok = 0
        self._prev_scrambled: Optional[np.ndarray] = None
        self._prev_line_portion: Optional[np.ndarray] = None
        self._prev_spe: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- sizes
    @property
    def frame_bytes(self) -> int:
        return ROWS * self.rate.columns

    def _pattern(self) -> bytes:
        return bytes([A1] * self.n + [A2] * self.n)

    # ----------------------------------------------------------------- feed
    def feed(self, data: bytes) -> bytes:
        """Consume a chunk of line bytes; return recovered payload."""
        self._buffer.extend(data)
        payload = bytearray()
        progressed = True
        while progressed:
            progressed = False
            if self.state is FramerState.HUNT:
                progressed = self._hunt()
            elif len(self._buffer) >= self.frame_bytes:
                chunk = bytes(self._buffer[: self.frame_bytes])
                del self._buffer[: self.frame_bytes]
                payload.extend(self._process_frame(chunk))
                progressed = True
        return bytes(payload)

    def _hunt(self) -> bool:
        pattern = self._pattern()
        idx = bytes(self._buffer).find(pattern)
        if idx < 0:
            # Keep a pattern's worth of tail in case it straddles chunks.
            keep = len(pattern) - 1
            dropped = max(0, len(self._buffer) - keep)
            if dropped:
                self.counters.bytes_discarded_hunting += dropped
                self._note_oof_persistence(dropped)
                del self._buffer[:dropped]
            return False
        self.counters.bytes_discarded_hunting += idx
        self._note_oof_persistence(idx)
        del self._buffer[:idx]
        self.state = FramerState.PRESYNC
        self._presync_ok = 0
        self._oof_hunt_bytes = 0
        self._lof_declared = False
        return True

    def _note_oof_persistence(self, hunted_bytes: int) -> None:
        """Escalate OOF to LOF when hunting persists (GR-253's 3 ms,
        modelled as ``lof_threshold`` frame-times of fruitless hunt)."""
        if not self.counters.oof_events or self._lof_declared:
            return
        self._oof_hunt_bytes += hunted_bytes
        if self._oof_hunt_bytes >= self.lof_threshold * self.frame_bytes:
            self.counters.lof_events += 1
            self._lof_declared = True

    def _framing_ok(self, raw: bytes) -> bool:
        return raw.startswith(self._pattern())

    def _process_frame(self, raw: bytes) -> bytes:
        if not self._framing_ok(raw):
            return self._handle_bad_framing(raw)
        self._bad_framings = 0
        self._oof_frames = 0
        if self.state is FramerState.PRESYNC:
            self._presync_ok += 1
            if self._presync_ok >= 2:
                self.state = FramerState.SYNC
        grid_scrambled = np.frombuffer(raw, dtype=np.uint8).reshape(
            ROWS, self.rate.columns
        )
        grid = self._descramble(grid_scrambled)
        payload = self._extract(grid, grid_scrambled)
        self.counters.frames_ok += 1
        return payload

    def _handle_bad_framing(self, raw: bytes) -> bytes:
        self._bad_framings += 1
        if self._bad_framings >= self.oof_threshold:
            self.counters.oof_events += 1
            self._oof_hunt_bytes = 0
            # Re-hunt within the data we still hold.
            self._buffer[:0] = raw  # push the frame back for re-scan
            del self._buffer[:1]    # but never at offset 0 again
            self.counters.bytes_discarded_hunting += 1
            self.state = FramerState.HUNT
            self._bad_framings = 0
            self._prev_scrambled = None
            self._prev_line_portion = None
            self._prev_spe = None
        return b""

    def _descramble(self, grid_scrambled: np.ndarray) -> np.ndarray:
        if not self.descramble:
            return grid_scrambled.copy()
        flat = grid_scrambled.reshape(-1).copy()
        keystream = self._scrambler.sequence(flat.size)
        start = self.rate.toh_columns
        mask = np.ones(flat.size, dtype=bool)
        mask[:start] = False
        flat[mask] ^= keystream[: int(mask.sum())]
        return flat.reshape(grid_scrambled.shape)

    def _extract(self, grid: np.ndarray, grid_scrambled: np.ndarray) -> bytes:
        n = self.n
        # Parity checks: B1/B2/B3 in this frame cover the previous one.
        if self._prev_scrambled is not None:
            if int(grid[1, 0]) != _bip8(self._prev_scrambled):
                self.counters.b1_errors += 1
        if self._prev_line_portion is not None:
            if int(grid[5, 0]) != _bip8(self._prev_line_portion):
                self.counters.b2_errors += 1
        # Pointer interpretation.
        h1, h2 = int(grid[3, 0]), int(grid[3, n])
        pointer = ((h1 & 0x03) << 8) | h2
        if pointer > POINTER_MAX:
            self.counters.pointer_invalid += 1
            pointer = 0
        toh = self.rate.toh_columns
        spe_width = self.rate.spe_columns
        poh_col = toh + pointer % spe_width
        stuff = fixed_stuff_columns(n)
        reserved = {toh + (poh_col - toh + k) % spe_width for k in range(stuff + 1)}
        if self.expected_c2 is not None and int(grid[2, poh_col]) != self.expected_c2:
            self.counters.c2_mismatches += 1
        spe = grid[:, toh:]
        if self._prev_spe is not None:
            if int(grid[1, poh_col]) != _bip8(self._prev_spe):
                self.counters.b3_errors += 1
        cols = [c for c in range(toh, self.rate.columns) if c not in reserved]
        payload = grid[:, cols].reshape(-1).tobytes()
        self._prev_scrambled = grid_scrambled.copy()
        self._prev_line_portion = grid[3:, :].copy()
        self._prev_spe = spe.copy()
        return payload
