"""SONET scramblers.

Two distinct scramblers appear in PPP-over-SONET:

* the **frame-synchronous scrambler** (G.707 section 6.5): generator
  ``1 + x^6 + x^7``, seeded to all-ones on the first SPE byte of each
  frame, applied to everything except the first row of section
  overhead.  Guarantees clock-recovery transition density for
  arbitrary *overhead*, but restarts predictably every frame.
* the **self-synchronous x^43 + 1 payload scrambler** (RFC 2615):
  applied to the SPE payload before mapping, precisely because a
  malicious PPP payload can reproduce the frame-sync scrambler's
  pattern and kill the line ("scrambler-killer" packets).  RFC 1619
  (the paper's citation) lacked it; its absence is why RFC 1619 was
  obsoleted — we implement both so the path can be configured either
  way.

Both are GF(2) LFSR streams, vectorised with numpy over whole frames.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import bits_to_bytes, bytes_to_bits

__all__ = ["FrameSyncScrambler", "SelfSyncScrambler"]


class FrameSyncScrambler:
    """The 2^7 - 1 frame-synchronous scrambler (1 + x^6 + x^7).

    :meth:`sequence` produces the keystream bytes for one frame; XOR
    is its own inverse so the same call descrambles.
    """

    def __init__(self) -> None:
        self._cache: dict = {}

    def sequence(self, nbytes: int) -> np.ndarray:
        """Keystream of ``nbytes`` bytes, starting from the all-ones seed."""
        if nbytes in self._cache:
            return self._cache[nbytes]
        state = 0x7F  # seven ones
        out = np.empty(nbytes, dtype=np.uint8)
        for i in range(nbytes):
            byte = 0
            for _ in range(8):
                bit = (state >> 6) & 1            # output = x^7 tap
                feedback = ((state >> 6) ^ (state >> 5)) & 1  # x^7 + x^6
                state = ((state << 1) | feedback) & 0x7F
                byte = (byte << 1) | bit
            out[i] = byte
        self._cache[nbytes] = out
        return out

    def apply(self, data: np.ndarray) -> np.ndarray:
        """Scramble/descramble a frame-aligned byte array."""
        data = np.asarray(data, dtype=np.uint8)
        return data ^ self.sequence(data.size)


class SelfSyncScrambler:
    """The x^43 + 1 self-synchronous scrambler.

    Scramble: ``out[i] = in[i] ^ out[i-43]`` (bitwise over the bit
    stream).  Descramble: ``out[i] = in[i] ^ in[i-43]`` — errors
    propagate exactly 43 bits, and the two directions maintain
    independent 43-bit state carried across calls (the stream spans
    frame boundaries).
    """

    TAPS = 43

    def __init__(self) -> None:
        self._tx_state = np.zeros(self.TAPS, dtype=np.uint8)
        self._rx_state = np.zeros(self.TAPS, dtype=np.uint8)

    def reset(self) -> None:
        self._tx_state[:] = 0
        self._rx_state[:] = 0

    def scramble(self, data: bytes) -> bytes:
        """Scramble ``data`` continuing from previous state.

        The recurrence ``out[i] = in[i] ^ out[i-43]`` couples only bits
        in the same residue class mod 43, so each class is a running
        XOR — vectorised as a column-wise ``bitwise_xor.accumulate``
        over rows of 43 bits (a frame's worth costs two numpy passes
        instead of 300k Python iterations).
        """
        bits = bytes_to_bits(data)
        n = bits.size
        if n == 0:
            return b""
        pad = (-n) % self.TAPS
        grid = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        grid = grid.reshape(-1, self.TAPS)
        acc = np.bitwise_xor.accumulate(grid, axis=0)
        out = (acc ^ self._tx_state[None, :]).reshape(-1)[:n]
        if n >= self.TAPS:
            self._tx_state = out[-self.TAPS :].copy()
        else:
            self._tx_state = np.concatenate([self._tx_state[n:], out])
        return bits_to_bytes(out)

    def descramble(self, data: bytes) -> bytes:
        """Descramble ``data`` continuing from previous state."""
        bits = bytes_to_bits(data)
        padded = np.concatenate([self._rx_state, bits])
        out = padded[self.TAPS :] ^ padded[: -self.TAPS]
        self._rx_state = bits[-self.TAPS :].copy() if bits.size >= self.TAPS else \
            np.concatenate([self._rx_state[bits.size :], bits])
        return bits_to_bytes(out)
