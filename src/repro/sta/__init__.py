"""``repro.sta`` — static timing, buffer-sizing and deadlock analysis.

The analog of static timing analysis for the P5 module graph: where
:mod:`repro.lint` checks *wiring* (who drives what), this package
checks *numbers* — first-word latency along every pipeline path,
minimum safe buffer depths under worst-case expansion, and
deadlock-freedom of feedback cycles — all from the constructed
topology and the modules' declared
:class:`~repro.rtl.module.TimingContract` hooks, without clocking a
single cycle.

Three engines plus a run-time cross-check:

* the **path engine** (:mod:`repro.sta.paths`) sums per-stage latency
  contracts along source-to-sink paths and converts cycles to
  nanoseconds at a configurable line clock;
* the **flow solver** (:mod:`repro.sta.flow`) propagates worst-case
  expansion ratios (stuffing doubles, destuffing halves) and derives
  the minimum capacity every channel and internal buffer needs;
* the **deadlock checker** (also :mod:`repro.sta.flow`) verifies each
  feedback cycle's registered-channel credit covers its in-flight
  demand;
* the **conformance monitor** (:mod:`repro.sta.conformance`) rides a
  live :class:`~repro.rtl.simulator.Simulator` run and fails it when a
  module's observed behaviour exceeds its declaration — so a wrong
  contract cannot silently invalidate the static results.

Findings are ordinary :class:`repro.lint.Finding` records under rules
``P5T001``–``P5T006`` (catalogued in ``docs/timing-analysis.md``) and
flow through the shared lint reporters, so the ``repro sta`` CLI and
CI handle them exactly like DRC output.
"""

from repro.sta.analyzer import LatencyBudget, analyze_simulator, analyze_topology
from repro.sta.claims import paper_budgets, sorter_fill_budget
from repro.sta.conformance import ContractMonitor
from repro.sta.flow import CycleCredit, channel_demands, cumulative_expansion, cycle_credits
from repro.sta.paths import (
    PathLatency,
    cycles_to_ns,
    end_to_end_paths,
    latency_between,
    path_latency,
)
from repro.sta.targets import canonical_findings

__all__ = [
    "LatencyBudget",
    "analyze_topology",
    "analyze_simulator",
    "paper_budgets",
    "sorter_fill_budget",
    "ContractMonitor",
    "CycleCredit",
    "channel_demands",
    "cumulative_expansion",
    "cycle_credits",
    "PathLatency",
    "cycles_to_ns",
    "end_to_end_paths",
    "latency_between",
    "path_latency",
    "canonical_findings",
]
