"""The combined static analyzer: contracts in, P5T findings out.

:func:`analyze_topology` runs every static check over a constructed
topology and returns ordinary :class:`repro.lint.Finding` records, so
the reporters, suppression machinery and CLI exit-code logic are
shared with the graph DRC.  No cycle is clocked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.lint.rules import Finding
from repro.rtl.module import Channel, Module
from repro.sta.flow import channel_demands, cycle_credits
from repro.sta.paths import cycles_to_ns, latency_between

__all__ = ["LatencyBudget", "analyze_topology", "analyze_simulator"]


@dataclass(frozen=True)
class LatencyBudget:
    """A machine-checked latency claim: source → sink within a bound.

    ``source == sink`` budgets a single stage (the paper's 4-cycle
    sorter fill); otherwise the worst fully-constrained path between
    the two named modules is held to ``max_cycles``.
    """

    name: str
    source: str
    sink: str
    max_cycles: int
    note: str = ""


def _check_contracts(modules: Sequence[Module], emit) -> None:
    """P5T004 (self-consistency) and P5T002 (internal buffers)."""
    for module in modules:
        contract = module.timing_contract()
        if contract is None:
            continue
        if contract.latency_cycles < 1:
            emit("P5T004",
                 f"module {module.name!r} declares non-positive latency "
                 f"{contract.latency_cycles}", module.name)
        if contract.initiation_interval < 1:
            emit("P5T004",
                 f"module {module.name!r} declares non-positive initiation "
                 f"interval {contract.initiation_interval}", module.name)
        for timing in contract.outputs:
            if timing.channel is not None and timing.channel not in module.writes_to:
                emit("P5T004",
                     f"module {module.name!r} declares timing for channel "
                     f"{timing.channel.name!r} it does not write", module.name)
            if timing.min_expansion > timing.max_expansion:
                emit("P5T004",
                     f"module {module.name!r} declares min expansion "
                     f"{timing.min_expansion} above max {timing.max_expansion}",
                     module.name)
            if timing.min_expansion < 0 or timing.per_frame_octets < 0:
                emit("P5T004",
                     f"module {module.name!r} declares negative flow bounds",
                     module.name)
            if timing.burst_words < 1:
                emit("P5T004",
                     f"module {module.name!r} declares a burst below one word "
                     f"into {timing.channel.name if timing.channel else '?'!r}",
                     module.name)
        for bound in contract.buffers:
            if bound.min_required < 0 or bound.capacity < 0:
                emit("P5T004",
                     f"module {module.name!r} declares negative sizing for "
                     f"buffer {bound.name!r}", module.name)
            elif bound.capacity < bound.min_required:
                emit("P5T002",
                     f"internal buffer {bound.name!r} of module "
                     f"{module.name!r} holds {bound.capacity} words but the "
                     f"worst case needs {bound.min_required}"
                     + (f" ({bound.why})" if bound.why else ""),
                     module.name)


def _check_capacities(
    modules: Sequence[Module], channels: Iterable[Channel], emit
) -> None:
    """P5T002 for wired channels vs. declared single-cycle bursts."""
    for demand in channel_demands(modules, channels):
        if demand.channel.capacity < demand.required:
            emit("P5T002",
                 f"channel {demand.channel.name!r} holds "
                 f"{demand.channel.capacity} words but the worst case needs "
                 f"{demand.required} ({demand.why})",
                 demand.channel.name)


def _check_cycles(
    modules: Sequence[Module], channels: Iterable[Channel], emit
) -> None:
    """P5T003: registered credit must cover in-flight demand."""
    for credit in cycle_credits(modules, channels):
        if not credit.registered:
            continue  # combinational loop: the graph DRC's P5D007 owns it
        if credit.credit < credit.demand:
            names = sorted(credit.modules)
            emit("P5T003",
                 f"cycle through {names} has {credit.credit} words of "
                 f"registered credit but up to {credit.demand} in flight",
                 names[0])


def _check_unconstrained(modules: Sequence[Module], emit) -> None:
    """P5T005: stages on the dataflow with no declaration."""
    for module in modules:
        if not module.reads_from and not module.writes_to:
            continue  # not on any path
        if module.timing_contract() is None:
            emit("P5T005",
                 f"module {module.name!r} is on the datapath but declares no "
                 f"timing contract; every path through it is unbounded",
                 module.name)


def _check_budgets(
    modules: Sequence[Module],
    channels: Iterable[Channel],
    budgets: Sequence[LatencyBudget],
    clock_hz: float,
    emit,
) -> None:
    """P5T001: declared path latencies against their budgets."""
    for budget in budgets:
        bound = latency_between(
            modules, channels, source=budget.source, sink=budget.sink
        )
        if bound is None:
            emit("P5T001",
                 f"budget {budget.name!r}: no path from {budget.source!r} "
                 f"to {budget.sink!r}", budget.name)
            continue
        if bound.cycles is None:
            # The unconstrained stages already carry P5T005 findings;
            # an unverifiable budget is still a budget failure.
            emit("P5T001",
                 f"budget {budget.name!r}: path "
                 f"{' -> '.join(bound.modules)} cannot be bounded "
                 f"(no contract on {list(bound.unconstrained)})", budget.name)
            continue
        if bound.cycles > budget.max_cycles:
            over_ns = cycles_to_ns(bound.cycles, clock_hz)
            limit_ns = cycles_to_ns(budget.max_cycles, clock_hz)
            emit("P5T001",
                 f"budget {budget.name!r}: path "
                 f"{' -> '.join(bound.modules)} takes {bound.cycles} cycles "
                 f"({over_ns:.1f} ns) against a budget of "
                 f"{budget.max_cycles} ({limit_ns:.1f} ns)"
                 + (f" — {budget.note}" if budget.note else ""),
                 budget.name)


def analyze_topology(
    modules: Sequence[Module],
    channels: Iterable[Channel] = (),
    *,
    topology_name: str = "",
    budgets: Sequence[LatencyBudget] = (),
    clock_hz: float = 78.125e6,
) -> List[Finding]:
    """Run every static timing/sizing/deadlock check; returns findings."""
    if math.isnan(clock_hz) or clock_hz <= 0:
        raise ValueError("clock_hz must be positive")
    findings: List[Finding] = []
    module_list = list(modules)
    channel_list = list(channels)
    prefix = f"{topology_name}: " if topology_name else ""

    def emit(code: str, message: str, subject: str) -> None:
        findings.append(Finding.of(code, prefix + message, subject=subject))

    _check_contracts(module_list, emit)
    _check_capacities(module_list, channel_list, emit)
    _check_cycles(module_list, channel_list, emit)
    _check_unconstrained(module_list, emit)
    _check_budgets(module_list, channel_list, budgets, clock_hz, emit)
    return findings


def analyze_simulator(sim, **kwargs) -> List[Finding]:
    """Analyze a built :class:`~repro.rtl.simulator.Simulator`."""
    return analyze_topology(sim.modules, sim.channels, **kwargs)
