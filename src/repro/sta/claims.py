"""The paper's timing claims as machine-checked latency budgets.

"The process is divided up into 4 pipelined stages ... The first data
transmitted is therefore delayed by 4 clock cycles, approximately
50ns" — at the OC-48 line clock of 78.125 MHz a cycle is 12.8 ns, so
the 4-stage byte-sorter fill is 51.2 ns.  These budgets turn that
claim (and the end-to-end first-word latencies it implies for the
full TX/RX pipelines) into :class:`~repro.sta.analyzer.LatencyBudget`
records the analyzer holds the wired topology to: restructure a
pipeline to be slower than the paper and ``repro sta`` fails before a
single cycle is simulated.
"""

from __future__ import annotations

from typing import List

from repro.core.rx import P5Receiver
from repro.core.tx import P5Transmitter
from repro.sta.analyzer import LatencyBudget

__all__ = [
    "sorter_fill_budget",
    "tx_end_to_end_budget",
    "rx_end_to_end_budget",
    "paper_budgets",
]


def sorter_fill_budget(tx: P5Transmitter) -> LatencyBudget:
    """One cycle per sorter stage: 4 at 32 bits (≈51.2 ns), 2 at 8."""
    stages = tx.escape.pipeline_stages
    return LatencyBudget(
        name="escape-generate-fill",
        source=tx.escape.name,
        sink=tx.escape.name,
        max_cycles=stages,
        note='paper: "delayed by 4 clock cycles, approximately 50ns"',
    )


def tx_end_to_end_budget(tx: P5Transmitter) -> LatencyBudget:
    """Source fetch (1) + CRC (1) + sorter fill (stages) + flags (1)."""
    stages = tx.escape.pipeline_stages
    return LatencyBudget(
        name="tx-end-to-end",
        source=tx.source.name,
        sink=tx.flags.name,
        max_cycles=3 + stages,
        note="first wire word after a frame enters the transmitter",
    )


def rx_end_to_end_budget(rx: P5Receiver) -> LatencyBudget:
    """Delineation holdback (2) + detect fill (stages+1) + FCS holdback
    (fcs_octets+1) + sink (1); the delineator's share is steady-state
    (flag alignment is traffic-dependent)."""
    stages = rx.escape.pipeline_stages
    fcs = rx.crc.fcs_octets
    return LatencyBudget(
        name="rx-end-to-end",
        source=rx.delineator.name,
        sink=rx.sink.name,
        max_cycles=2 + (stages + 1) + (fcs + 1) + 1,
        note="first received word into memory after flag alignment",
    )


def paper_budgets(tx: P5Transmitter, rx: P5Receiver) -> List[LatencyBudget]:
    """All of the paper's claims for one transmitter/receiver pair."""
    return [
        sorter_fill_budget(tx),
        tx_end_to_end_budget(tx),
        rx_end_to_end_budget(rx),
    ]
