"""Contract-conformance monitoring: static declarations vs. live runs.

A :class:`ContractMonitor` rides a :class:`~repro.rtl.simulator.
Simulator` (installed via ``sim.enable_conformance()``) and
cross-checks every module's declared
:class:`~repro.rtl.module.TimingContract` against what actually
happens:

* **latency** — for contracts with ``latency_is_bound``, the observed
  first-word latency (first push minus first pop, minus cycles the
  module was starved of input or held by backpressure — the contract
  assumes dense input and a free output) must not exceed
  ``latency_cycles``;
* **flow** — octets pushed into each declared output channel must
  stay within ``max_expansion`` times the octets consumed, plus the
  per-frame allowance;
* **burst** — no single cycle may push more words into a channel than
  the declared ``burst_words``;
* **buffers** — the observed peak of each declared internal buffer
  (read from ``peak_attr``) must not exceed its declared capacity.

Violations become ``P5T006`` findings; :meth:`ContractMonitor.
assert_ok` (called automatically at the end of ``run_until``/
``drain`` when the monitor is installed strict) raises
:class:`~repro.errors.ContractViolationError` — so a wrong
declaration is itself a test failure, keeping the static analyses
honest.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.errors import ContractViolationError
from repro.lint.rules import Finding
from repro.rtl.module import Channel, Module, TimingContract

__all__ = ["ContractMonitor"]


class _ModuleRecord:
    """Mutable per-module observation state."""

    def __init__(self, module: Module, contract: TimingContract) -> None:
        self.module = module
        self.contract = contract
        self.first_pop: Optional[int] = None
        self.first_push: Optional[int] = None
        self.popped_this_cycle = False
        self.starved_cycles = 0           # quiet cycles between pop and push
        self.in_octets = 0
        self.frames_in = 0
        self.out_octets: Dict[str, int] = {}
        self.pushes_this_cycle: Dict[str, int] = {}
        self.burst_peak: Dict[str, int] = {}


def _octets(item: Any) -> int:
    """Valid octets of a beat; non-beat payloads count zero."""
    n = getattr(item, "n_valid", None)
    return int(n) if isinstance(n, int) else 0


class ContractMonitor:
    """Observes a simulator and checks declared contracts against it."""

    def __init__(self, sim, *, strict: bool = True) -> None:
        self._sim = sim
        #: When True the simulator calls :meth:`assert_ok` at the end
        #: of every successful ``run_until``/``drain``.
        self.strict = strict
        self._records: Dict[int, _ModuleRecord] = {}
        self._wrapped: set = set()
        for module in sim.modules:
            contract = module.timing_contract()
            if contract is None:
                continue
            self._records[id(module)] = _ModuleRecord(module, contract)
            for channel in list(module.reads_from) + list(module.writes_to):
                self._wrap(channel)
        sim.add_observer(self._end_of_cycle)

    # ----------------------------------------------------------- plumbing
    def _wrap(self, channel: Channel) -> None:
        if id(channel) in self._wrapped:
            return
        self._wrapped.add(id(channel))
        # Channel exposes instrumentation taps precisely so monitors
        # do not have to monkeypatch methods on a slotted class.
        channel.on_push = lambda item, _ch=channel: self._on_push(_ch, item)
        channel.on_pop = lambda item, _ch=channel: self._on_pop(_ch, item)

    def _on_push(self, channel: Channel, item: Any) -> None:
        cycle = self._sim.cycle
        for producer in channel.producers:
            record = self._records.get(id(producer))
            if record is None:
                continue
            if record.first_push is None:
                record.first_push = cycle
            record.out_octets[channel.name] = (
                record.out_octets.get(channel.name, 0) + _octets(item)
            )
            now = record.pushes_this_cycle.get(channel.name, 0) + 1
            record.pushes_this_cycle[channel.name] = now
            if now > record.burst_peak.get(channel.name, 0):
                record.burst_peak[channel.name] = now

    def _on_pop(self, channel: Channel, item: Any) -> None:
        cycle = self._sim.cycle
        for consumer in channel.consumers:
            record = self._records.get(id(consumer))
            if record is None:
                continue
            if record.first_pop is None:
                record.first_pop = cycle
            record.popped_this_cycle = True
            record.in_octets += _octets(item)
            if getattr(item, "eof", False):
                record.frames_in += 1

    def _end_of_cycle(self, _cycle: int) -> None:
        for record in self._records.values():
            if (
                record.first_pop is not None
                and record.first_push is None
                and not record.popped_this_cycle
            ):
                # Starved of input (or held by backpressure) before the
                # first emission: the contract assumes dense input, so
                # these cycles do not count against the latency bound.
                record.starved_cycles += 1
            record.popped_this_cycle = False
            record.pushes_this_cycle.clear()

    # ------------------------------------------------------------- checks
    def findings(self) -> List[Finding]:
        """P5T006 findings for every observed contract violation."""
        out: List[Finding] = []

        def emit(message: str, subject: str) -> None:
            out.append(Finding.of("P5T006", message, subject=subject))

        for record in self._records.values():
            module, contract = record.module, record.contract
            self._check_latency(record, emit)
            if module.reads_from:
                self._check_flow(record, emit)
            self._check_bursts(record, emit)
            for bound in contract.buffers:
                if not bound.peak_attr:
                    continue
                observed = int(getattr(module, bound.peak_attr, 0))
                if observed > bound.capacity:
                    emit(
                        f"module {module.name!r}: buffer {bound.name!r} "
                        f"peaked at {observed} words against a declared "
                        f"capacity of {bound.capacity}",
                        module.name,
                    )
        return out

    def _check_latency(self, record: _ModuleRecord, emit) -> None:
        contract = record.contract
        if not contract.latency_is_bound:
            return
        if record.first_pop is None or record.first_push is None:
            return
        effective = (
            record.first_push - record.first_pop + 1 - record.starved_cycles
        )
        if effective > contract.latency_cycles:
            emit(
                f"module {record.module.name!r}: observed first-word latency "
                f"{effective} cycles exceeds the declared "
                f"{contract.latency_cycles}",
                record.module.name,
            )

    def _check_flow(self, record: _ModuleRecord, emit) -> None:
        for timing in record.contract.outputs:
            if timing.channel is None:
                continue
            observed = record.out_octets.get(timing.channel.name, 0)
            # The open frame has not produced its eof yet, so allow the
            # per-frame overhead once more than the completed count.
            allowance = (
                math.ceil(timing.max_expansion * record.in_octets)
                + timing.per_frame_octets * (record.frames_in + 1)
            )
            if observed > allowance:
                emit(
                    f"module {record.module.name!r}: pushed {observed} octets "
                    f"into {timing.channel.name!r} from {record.in_octets} "
                    f"consumed — beyond the declared x{timing.max_expansion} "
                    f"expansion (+{timing.per_frame_octets}/frame)",
                    record.module.name,
                )

    def _check_bursts(self, record: _ModuleRecord, emit) -> None:
        for timing in record.contract.outputs:
            if timing.channel is None:
                continue
            peak = record.burst_peak.get(timing.channel.name, 0)
            if peak > timing.burst_words:
                emit(
                    f"module {record.module.name!r}: pushed {peak} words into "
                    f"{timing.channel.name!r} in one cycle against a declared "
                    f"burst of {timing.burst_words}",
                    record.module.name,
                )

    def assert_ok(self) -> None:
        """Raise :class:`ContractViolationError` on any violation."""
        found = self.findings()
        if found:
            lines = "; ".join(f.message for f in found[:4])
            raise ContractViolationError(
                f"{len(found)} contract violation(s): {lines}",
                findings=found,
            )
