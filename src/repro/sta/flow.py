"""Flow solver and deadlock-credit analysis over timing contracts.

Two static questions about every wired topology:

* **sizing** — how deep must each channel be?  The answer is the
  worst single-cycle burst any producer declares into it
  (:func:`channel_demands`); sustained worst-case *rate* inflation —
  stuffing doubling the stream — is tracked separately as a
  cumulative expansion ratio per channel (:func:`cumulative_expansion`),
  the figure that justifies the "extremely low" resynchronisation
  buffer: expansion is absorbed by backpressure (halving the intake
  rate), not by buffering.
* **deadlock-freedom** — can a feedback cycle wedge?  A ring only
  deadlocks when every member waits on a full channel, which is
  impossible while the registered channels on the ring can hold every
  word the members may have in flight at once (:func:`cycle_credits`):
  classic store-and-forward deadlock credit accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.graph import dataflow_components
from repro.rtl.module import Channel, Module
from repro.sta.paths import wired_channels

__all__ = [
    "ChannelDemand",
    "CycleCredit",
    "channel_demands",
    "cumulative_expansion",
    "cycle_credits",
]


@dataclass(frozen=True)
class ChannelDemand:
    """The statically derived minimum capacity of one channel."""

    channel: Channel
    required: int
    producer: str
    why: str


def channel_demands(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> List[ChannelDemand]:
    """Minimum safe capacity per channel from contract burst declarations.

    A channel must absorb the worst single-cycle burst of its producer
    (everything beyond that is throughput smoothing, not correctness).
    Channels whose producers declare nothing get the trivial demand of
    one word.
    """
    module_ids = {id(m) for m in modules}
    demands: List[ChannelDemand] = []
    for channel in wired_channels(modules, channels):
        required, producer, why = 1, "", "any producer pushes at least one word"
        for candidate in channel.producers:
            if id(candidate) not in module_ids:
                continue
            contract = candidate.timing_contract()
            if contract is None:
                continue
            for timing in contract.outputs:
                if timing.channel is channel and timing.burst_words > required:
                    required = timing.burst_words
                    producer = candidate.name
                    why = f"declared single-cycle burst of {candidate.name!r}"
        demands.append(
            ChannelDemand(channel=channel, required=required, producer=producer, why=why)
        )
    return demands


def cumulative_expansion(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> Dict[str, Optional[float]]:
    """Worst-case octets-per-source-octet ratio arriving at each channel.

    Propagates each stage's ``max_expansion`` from the sources down
    the graph (relaxation to a fixed point; a cycle that amplifies
    flow never converges and is reported as ``None`` = unbounded).
    Stages without contracts propagate ratio 1.0 — their paths are
    separately flagged as unconstrained by the analyzer.
    """
    module_list = list(modules)
    all_channels = wired_channels(module_list, channels)
    module_ids = {id(m): m for m in module_list}

    # Ratio of worst-case flow arriving at each module's inputs,
    # relative to one octet leaving a source.
    at_module: Dict[int, float] = {
        id(m): 1.0 for m in module_list if not m.reads_from
    }
    result: Dict[str, Optional[float]] = {}

    def expansion_of(module: Module, channel: Channel) -> float:
        contract = module.timing_contract()
        if contract is None:
            return 1.0
        for timing in contract.outputs:
            if timing.channel is channel:
                return timing.max_expansion
        return 1.0

    # Bounded relaxation: |modules| rounds suffice for any acyclic
    # graph; further change means an amplifying cycle.
    for _ in range(len(module_list) + 1):
        changed = False
        for channel in all_channels:
            best: Optional[float] = None
            for producer in channel.producers:
                if id(producer) not in module_ids:
                    continue
                base = at_module.get(id(producer))
                if base is None:
                    continue
                ratio = base * expansion_of(producer, channel)
                if best is None or ratio > best:
                    best = ratio
            if best is None:
                continue
            prev = result.get(channel.name)
            if prev is None or best > prev:
                result[channel.name] = best
                changed = True
            for consumer in channel.consumers:
                if id(consumer) not in module_ids:
                    continue
                current = at_module.get(id(consumer))
                if current is None or best > current:
                    at_module[id(consumer)] = best
                    changed = True
        if not changed:
            return result
    # Still changing after |modules| rounds: some cycle amplifies.
    return {name: None for name in result}


@dataclass(frozen=True)
class CycleCredit:
    """Deadlock-credit accounting for one feedback cycle.

    ``credit`` is the total capacity of registered channels internal
    to the cycle; ``demand`` is the worst case the member stages can
    have in flight into those channels in one round (each stage's
    largest declared burst, at least one word each).  ``credit >=
    demand`` rules out store-and-forward deadlock; a cycle with no
    registered internal channel at all is the combinational-loop case
    the graph DRC (P5D007) owns, so ``registered`` is False there.
    """

    modules: Tuple[str, ...]
    credit: int
    demand: int
    registered: bool

    @property
    def deadlock_free(self) -> bool:
        return self.registered and self.credit >= self.demand


def cycle_credits(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> List[CycleCredit]:
    """Credit accounting for every feedback cycle in the graph."""
    module_list = list(modules)
    all_channels = wired_channels(module_list, channels)
    credits: List[CycleCredit] = []
    for component in dataflow_components(module_list, all_channels):
        members: Set[int] = {id(m) for m in component}
        if len(component) == 1:
            # A single module is cyclic only via a self-loop channel.
            lone = component[0]
            if not any(ch in lone.reads_from for ch in lone.writes_to):
                continue
        internal = [
            ch for ch in all_channels
            if any(id(p) in members for p in ch.producers)
            and any(id(c) in members for c in ch.consumers)
        ]
        if not internal:
            continue
        registered_internal = [ch for ch in internal if ch.registered]
        credit = sum(ch.capacity for ch in registered_internal)
        demand = 0
        internal_ids = {id(ch) for ch in internal}
        for member in component:
            burst = 1
            contract = member.timing_contract()
            if contract is not None:
                for timing in contract.outputs:
                    if (
                        timing.channel is not None
                        and id(timing.channel) in internal_ids
                        and timing.burst_words > burst
                    ):
                        burst = timing.burst_words
            demand += burst
        credits.append(CycleCredit(
            modules=tuple(m.name for m in component),
            credit=credit,
            demand=demand,
            registered=bool(registered_internal),
        ))
    return credits
