"""Path-latency engine: first-word latency bounds from contracts alone.

The timing model matches the kernel's sink-first clocking: a stage
that consumes a word on cycle ``c`` emits its first derived output on
cycle ``c + L - 1`` (``L`` = its contract's ``latency_cycles``,
counting both endpoints), and the downstream stage consumes that word
on the following cycle.  Under that convention the channel hops are
absorbed into the stage latencies, so the first-word latency of a path
is simply the **sum of the member stages' latency contracts** — the
property the escape pipeline's measured 4-cycle fill validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rtl.module import Channel, Module

__all__ = [
    "PathLatency",
    "cycles_to_ns",
    "wired_channels",
    "enumerate_paths",
    "path_latency",
    "end_to_end_paths",
    "latency_between",
]


def cycles_to_ns(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count to nanoseconds at the given line clock."""
    if clock_hz <= 0:
        raise ValueError("clock_hz must be positive")
    return cycles * 1e9 / clock_hz


def wired_channels(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> List[Channel]:
    """Union of the passed channels and everything the modules wired."""
    seen: List[Channel] = []
    ids: Set[int] = set()
    for channel in list(channels):
        if id(channel) not in ids:
            ids.add(id(channel))
            seen.append(channel)
    for module in modules:
        for channel in list(module.writes_to) + list(module.reads_from):
            if id(channel) not in ids:
                ids.add(id(channel))
                seen.append(channel)
    return seen


@dataclass(frozen=True)
class PathLatency:
    """One source-to-sink path and its static latency bound.

    ``cycles`` is ``None`` when any member stage lacks a contract (the
    names of those stages are in ``unconstrained``) — the path has no
    bound rather than a guessed one.  ``traffic_dependent`` marks
    paths crossing a stage whose contract sets ``latency_is_bound=
    False`` (e.g. the flag hunter): the figure is a steady-state
    estimate, not a worst case.
    """

    modules: Tuple[str, ...]
    cycles: Optional[int]
    unconstrained: Tuple[str, ...] = ()
    traffic_dependent: bool = False

    def ns(self, clock_hz: float) -> Optional[float]:
        """Latency in nanoseconds, if the path is fully constrained."""
        if self.cycles is None:
            return None
        return cycles_to_ns(self.cycles, clock_hz)


def _adjacency(
    modules: Sequence[Module], channels: Iterable[Channel]
) -> Dict[int, List[int]]:
    module_ids = {id(module): i for i, module in enumerate(modules)}
    adjacency: Dict[int, List[int]] = {i: [] for i in range(len(modules))}
    for channel in wired_channels(modules, channels):
        for producer in channel.producers:
            for consumer in channel.consumers:
                p = module_ids.get(id(producer))
                c = module_ids.get(id(consumer))
                if p is None or c is None or p == c:
                    continue
                if c not in adjacency[p]:
                    adjacency[p].append(c)
    return adjacency


def enumerate_paths(
    modules: Sequence[Module],
    channels: Iterable[Channel] = (),
    *,
    sources: Optional[Sequence[Module]] = None,
    sinks: Optional[Sequence[Module]] = None,
) -> List[List[Module]]:
    """All simple dataflow paths from sources to sinks.

    Defaults: sources are modules with no inputs, sinks are modules
    with no outputs.  Cycles are broken by never revisiting a module
    within one path (a ring contributes its acyclic traversals).
    """
    module_list = list(modules)
    adjacency = _adjacency(module_list, channels)
    index_of = {id(module): i for i, module in enumerate(module_list)}
    if sources is None:
        src = [i for i, m in enumerate(module_list) if not m.reads_from]
    else:
        src = [index_of[id(m)] for m in sources]
    if sinks is None:
        dst = {i for i, m in enumerate(module_list) if not m.writes_to}
    else:
        dst = {index_of[id(m)] for m in sinks}

    paths: List[List[Module]] = []

    def walk(node: int, trail: List[int]) -> None:
        trail.append(node)
        if node in dst:
            paths.append([module_list[i] for i in trail])
        else:
            for successor in adjacency[node]:
                if successor not in trail:
                    walk(successor, trail)
        trail.pop()

    for start in src:
        if start in dst and not adjacency[start]:
            paths.append([module_list[start]])
        else:
            walk(start, [])
    return paths


def path_latency(path: Sequence[Module]) -> PathLatency:
    """Sum the latency contracts along one path of modules."""
    total = 0
    unconstrained: List[str] = []
    traffic_dependent = False
    for module in path:
        contract = module.timing_contract()
        if contract is None:
            unconstrained.append(module.name)
            continue
        total += contract.latency_cycles
        if not contract.latency_is_bound:
            traffic_dependent = True
    return PathLatency(
        modules=tuple(module.name for module in path),
        cycles=None if unconstrained else total,
        unconstrained=tuple(unconstrained),
        traffic_dependent=traffic_dependent,
    )


def end_to_end_paths(
    modules: Sequence[Module], channels: Iterable[Channel] = ()
) -> List[PathLatency]:
    """Latency bounds for every source-to-sink path in the graph."""
    return [path_latency(p) for p in enumerate_paths(modules, channels)]


def latency_between(
    modules: Sequence[Module],
    channels: Iterable[Channel] = (),
    *,
    source: str,
    sink: str,
) -> Optional[PathLatency]:
    """Worst-case bound between two named modules (None if no path).

    With several parallel paths the maximum fully-constrained total
    wins; a path containing an unconstrained stage dominates them all
    (no bound can be claimed).
    """
    module_list = list(modules)
    by_name = {module.name: module for module in module_list}
    if source not in by_name or sink not in by_name:
        return None
    if source == sink:
        return path_latency([by_name[source]])
    candidates = enumerate_paths(
        module_list, channels,
        sources=[by_name[source]], sinks=[by_name[sink]],
    )
    if not candidates:
        return None
    results = [path_latency(p) for p in candidates]
    unconstrained = [r for r in results if r.cycles is None]
    if unconstrained:
        return unconstrained[0]
    return max(results, key=lambda r: r.cycles)
