"""The canonical topologies ``repro sta`` analyzes by default.

The duplex system at both datapath widths is the full wired design:
every contract-bearing module, every cross-connected channel, and the
paper's latency budgets (sorter fill, TX and RX end-to-end) applied to
the ``a`` side.  CI runs exactly this and fails on any error-severity
finding — so a restructure that slows a pipeline, shrinks a buffer
below its worst case, or starves a credit loop is caught before a
single cycle is simulated.
"""

from __future__ import annotations

from typing import List

from repro.lint.rules import Finding

__all__ = ["canonical_findings"]


def canonical_findings(*, clock_hz: float = 78.125e6) -> List[Finding]:
    """Analyze the canonical duplex topologies at both widths."""
    from repro.core.config import P5Config
    from repro.core.p5 import build_duplex
    from repro.sta.analyzer import analyze_topology
    from repro.sta.claims import paper_budgets

    findings: List[Finding] = []
    for config in (P5Config.thirty_two_bit(), P5Config.eight_bit()):
        a, _b, sim = build_duplex(config)
        findings.extend(
            analyze_topology(
                sim.modules,
                sim.channels,
                topology_name=f"duplex/{config.width_bits}-bit",
                budgets=paper_budgets(a.tx, a.rx),
                clock_hz=clock_hz,
            )
        )

    from repro.fastpath.modules import build_fastpath_loopback

    fp_modules, fp_channels = build_fastpath_loopback(P5Config.thirty_two_bit())
    findings.extend(
        analyze_topology(
            fp_modules,
            fp_channels,
            topology_name="fastpath-loopback",
            clock_hz=clock_hz,
        )
    )

    from repro.resilience.targets import build_dual_lane_topology

    dl_modules, dl_channels = build_dual_lane_topology()
    findings.extend(
        analyze_topology(
            dl_modules,
            dl_channels,
            topology_name="resilience-dual-lane",
            clock_hz=clock_hz,
        )
    )
    return findings
