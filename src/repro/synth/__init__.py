"""FPGA synthesis cost model — the substitute for Synplicity + Xilinx
Foundation in the paper's evaluation (section 4).

The model lowers each P5 datapath module to a netlist of technology
primitives (4-input LUT trees for XOR forests, comparators and
multiplexers; flip-flops for registers), parameterised by the datapath
width, and maps the result onto a device library (Virtex XCV50/XCV600,
Virtex-II XC2V40/XC2V1000).  Timing is LUT levels on the critical
path times the family's LUT + routing delay, with pre-/post-layout
modelled as optimistic vs. realistic routing estimates.

Absolute LUT/FF counts from a vendor mapper are not reproducible in
principle; what the model preserves — because it derives them from the
same combinational structure — are the paper's observations:

* the 32-bit escape generator is ~25x the LUTs / ~28x the FFs of the
  8-bit one (Table 3), dominated by the byte sorter's decision cone;
* the whole 32-bit system is ~11x the 8-bit system (Tables 1-2);
* the critical path is ~6 LUT levels on both families, so Virtex-II's
  speedup over Virtex is purely technological;
* only Virtex-II meets the 78.125 MHz / 2.5 Gbps requirement.
"""

from repro.synth.devices import DEVICES, DeviceSpec, get_device
from repro.synth.netlist import Netlist, NetlistEntry
from repro.synth.area import (
    crc_unit_area,
    delineator_area,
    escape_detect_area,
    escape_generate_area,
    flag_inserter_area,
    oam_area,
    receiver_area,
    system_area,
    transmitter_area,
)
from repro.synth.timing import TimingReport, analyze_timing, critical_path_levels
from repro.synth.report import SynthesisReport, synthesize

__all__ = [
    "DeviceSpec",
    "DEVICES",
    "get_device",
    "Netlist",
    "NetlistEntry",
    "escape_generate_area",
    "escape_detect_area",
    "crc_unit_area",
    "delineator_area",
    "flag_inserter_area",
    "oam_area",
    "transmitter_area",
    "receiver_area",
    "system_area",
    "critical_path_levels",
    "analyze_timing",
    "TimingReport",
    "synthesize",
    "SynthesisReport",
]
