"""Area models: P5 modules lowered to LUT/FF netlists.

Each builder mirrors the structure of the corresponding simulation
module in :mod:`repro.core`, so the area scaling is *derived* from the
same architecture the cycle-accurate model executes — most visibly for
the byte sorter, whose ``W x (2W+1)`` decision space (see
:meth:`repro.core.sorter.ByteSorter.decision_cases`) is the quadratic
cone behind the paper's 11x/25x observations, and for the CRC forests,
whose XOR fan-ins come from the *actual* Pei–Zukowski matrices built
in :mod:`repro.crc.matrix`.

Width-1 (8-bit) datapaths are structurally different, exactly as in
the paper: no byte sorter, no partial-word CRC handling, no pipeline
registers — a byte either passes or stalls one cycle.  That structural
difference, not mere scaling, is why the 32-bit system lands ~11x
rather than 4x larger.
"""

from __future__ import annotations

from repro.core.config import P5Config
from repro.crc.matrix import build_matrices
from repro.synth.netlist import Netlist
from repro.synth.primitives import (
    EQ_COMPARATOR_DEPTH,
    adder_luts,
    clog2,
    clog4,
    eq_const_comparator_luts,
    mux_depth,
    mux_luts,
    popcount_luts,
    xor_tree_depth,
    xor_tree_luts,
)

__all__ = [
    "escape_generate_area",
    "escape_detect_area",
    "crc_unit_area",
    "delineator_area",
    "flag_inserter_area",
    "controller_area",
    "oam_area",
    "transmitter_area",
    "receiver_area",
    "system_area",
]

#: Logic synthesisers share sub-expressions across the XOR forest of a
#: parallel CRC; published CRC-32 mappings land near this factor.
XOR_SHARING_FACTOR = 0.35

#: Distinct-width forests share less logic than one forest internally.
PARTIAL_SHARING_FACTOR = 0.45

#: LUTs of decode logic per byte-sorter decision case (one case =
#: recognising an (occupancy, incoming-count) pair and enabling the
#: corresponding shift pattern).
DECISION_CASE_LUTS = 8


def _sorter_cases(width_bytes: int) -> int:
    """The W x (2W+1) decision space (see ByteSorter.decision_cases)."""
    return width_bytes * (2 * width_bytes + 1)


def _stage_register_bits(width_bytes: int) -> int:
    """One pipeline stage register: W data bytes + valids + sof/eof."""
    return 9 * width_bytes + 2


def escape_generate_area(config: P5Config, *, pipeline_stages: int = None) -> Netlist:
    """The Escape Generate unit (paper Table 3's subject)."""
    w = config.width_bytes
    stages = pipeline_stages if pipeline_stages is not None else (4 if w > 1 else 2)
    n = Netlist(f"escape_generate/{8 * w}b")
    n_escapes = max(2, len(config.escape_octets))
    # Stage 1: per-lane escape-set comparators.
    n.add(
        "detect",
        luts=w * n_escapes * eq_const_comparator_luts(),
        depth=EQ_COMPARATOR_DEPTH,
    )
    # XOR 0x20 into flagged lanes (bit 5 only).
    n.add("modify", luts=w, depth=1)
    if w == 1:
        # The byte-serial unit: a 2:1 output mux (data vs ESC constant)
        # and a tiny insert-stall FSM — the whole of the paper's
        # "simple manipulation ... extra byte is inserted".
        n.add("out_mux", luts=mux_luts(2, 8), depth=mux_depth(2))
        n.add("fsm", luts=7, ffs=3, depth=2)
        n.add("pending_flags", ffs=3)
        return n
    # Stage 2: expansion routing — each of the 2W candidate slots picks
    # its source lane or the escape constant.
    n.add("expand", luts=2 * w * 4, depth=2)
    # Stage 3: the byte sorter — output barrel mux over 3W-1 sources
    # per lane plus the decision cone over (occupancy x count) cases.
    n.add(
        "sorter_mux",
        luts=w * mux_luts(3 * w - 1, 8),
        depth=mux_depth(3 * w - 1),
    )
    n.add(
        "sorter_decision",
        luts=_sorter_cases(w) * DECISION_CASE_LUTS
        + popcount_luts(w)
        + adder_luts(clog2(2 * w) + 1),
        depth=clog4(_sorter_cases(w)) + 3,
    )
    # Registers: the (stages-2) stage registers, the carry register,
    # the output register; the resync buffer maps to LUT-RAM.
    n.add("stage_regs", ffs=(stages - 2) * _stage_register_bits(w))
    n.add("carry_reg", ffs=8 * w + clog2(2 * w) + 1)
    n.add("output_reg", ffs=_stage_register_bits(w))
    n.add(
        "resync_lutram",
        luts=(9 * w * config.resync_depth_words + 15) // 16,
        ffs=clog2(config.resync_depth_words + 1) * 2,
    )
    n.add("occupancy_counters", ffs=2 * clog2(8 * w))
    n.add("fsm", luts=12, ffs=5, depth=2)
    return n


def escape_detect_area(config: P5Config, *, pipeline_stages: int = None) -> Netlist:
    """The Escape Detect unit (paper Figure 6's subject)."""
    w = config.width_bytes
    stages = pipeline_stages if pipeline_stages is not None else (4 if w > 1 else 2)
    n = Netlist(f"escape_detect/{8 * w}b")
    # Detect both the escape octet (delete) and stray flags (error).
    n.add(
        "detect",
        luts=w * 2 * eq_const_comparator_luts(),
        depth=EQ_COMPARATOR_DEPTH,
    )
    n.add("modify", luts=w, depth=1)
    if w == 1:
        n.add("fsm", luts=6, ffs=3, depth=2)
        n.add("pending_xor", ffs=1)
        n.add("out_mux", luts=mux_luts(2, 8), depth=mux_depth(2))
        return n
    # Bubble-collapse routing: W slots compacting valid lanes.
    n.add("collapse", luts=w * 4, depth=2)
    n.add(
        "sorter_mux",
        luts=w * mux_luts(3 * w - 1, 8),
        depth=mux_depth(3 * w - 1),
    )
    n.add(
        "sorter_decision",
        luts=_sorter_cases(w) * DECISION_CASE_LUTS
        + popcount_luts(w)
        + adder_luts(clog2(2 * w) + 1),
        depth=clog4(_sorter_cases(w)) + 3,
    )
    n.add("stage_regs", ffs=(stages - 2) * _stage_register_bits(w))
    n.add("carry_reg", ffs=8 * w + clog2(2 * w) + 1)
    n.add("output_reg", ffs=_stage_register_bits(w))
    n.add(
        "resync_lutram",
        luts=(9 * w * config.resync_depth_words + 15) // 16,
        ffs=clog2(config.resync_depth_words + 1) * 2,
    )
    n.add("pending_xor", ffs=1)
    n.add("fsm", luts=10, ffs=5, depth=2)
    return n


def crc_unit_area(config: P5Config, mode: str = "generate") -> Netlist:
    """The CRC unit: the parallel forest plus word coordination.

    The forest fan-ins are read off the real GF(2) matrices.  For
    W > 1 the unit also needs forests for every partial tail width
    (a frame may end on any lane) and the mux to select among them —
    the "extra decisional logic involved in the CRC" the paper blames
    for part of the super-linear growth.
    """
    w = config.width_bytes
    spec = config.fcs
    n = Netlist(f"crc_{mode}/{8 * w}b")
    fanins = build_matrices(spec, 8 * w).xor_fanin_per_output()
    forest = sum(xor_tree_luts(int(f)) for f in fanins)
    n.add(
        "forest_full",
        luts=max(1, round(forest * XOR_SHARING_FACTOR)),
        depth=xor_tree_depth(int(fanins.max())),
    )
    n.add("state_reg", ffs=spec.width)
    if w > 1:
        partial_total = 0
        worst_depth = 0
        for tail in range(1, w):
            tail_fanins = build_matrices(spec, 8 * tail).xor_fanin_per_output()
            partial_total += sum(xor_tree_luts(int(f)) for f in tail_fanins)
            worst_depth = max(worst_depth, xor_tree_depth(int(tail_fanins.max())))
        n.add(
            "forest_partials",
            luts=max(1, round(partial_total * PARTIAL_SHARING_FACTOR)),
            depth=worst_depth,
        )
        n.add(
            "tail_select",
            luts=mux_luts(w, spec.width) + 2 * clog2(w),
            depth=mux_depth(w) + 1,
        )
    fcs_octets = spec.width // 8
    if mode == "generate":
        # Trailer insertion re-aligns the FCS octets behind the ragged
        # content tail: a small sorter over fcs+W sources.
        if w == 1:
            n.add("trailer_insert", luts=mux_luts(2, 8) + 2, depth=mux_depth(2))
            n.add("carry_reg", ffs=4)
        else:
            n.add(
                "trailer_insert",
                luts=w * mux_luts(w + fcs_octets, 8) // 2 + 4 * fcs_octets,
                depth=mux_depth(w + fcs_octets),
            )
            n.add("carry_reg", ffs=8 * (w + fcs_octets - 1) + 3)
    else:
        # The checker verifies by residue, so W=1 strips the trailer by
        # memory pointer arithmetic (no holdback bytes); word datapaths
        # hold the candidate trailer in registers.
        if w == 1:
            n.add("holdback_reg", ffs=4)
        else:
            n.add("holdback_reg", ffs=8 * fcs_octets + clog2(fcs_octets + w))
        n.add(
            "residue_compare",
            luts=spec.width // 4 + 1,   # equality against the magic residue
            depth=2,
        )
    n.add("coordination_fsm", luts=6 + w, ffs=4, depth=2)
    return n


def delineator_area(config: P5Config) -> Netlist:
    """Receive flag hunting + frame extraction (word-parallel for W>1)."""
    w = config.width_bytes
    n = Netlist(f"delineator/{8 * w}b")
    n.add(
        "flag_compare",
        luts=w * eq_const_comparator_luts(),
        depth=EQ_COMPARATOR_DEPTH,
    )
    if w == 1:
        n.add("fsm", luts=8, ffs=4, depth=2)
        return n
    # Extracting the inter-flag bytes from arbitrary lane positions is
    # another data-reordering problem: a compaction sorter.
    n.add(
        "extract_sorter",
        luts=w * mux_luts(2 * w, 8),
        depth=mux_depth(2 * w),
    )
    # Flags can close and reopen frames anywhere in the word: the
    # priority/boundary decision cone scales like the sorter's.
    n.add(
        "boundary_decision",
        luts=w * (w + 1) * 4,
        depth=2 + clog4(w * (w + 1)),
    )
    n.add("carry_reg", ffs=8 * w + clog2(2 * w))
    n.add("holdback_reg", ffs=_stage_register_bits(w))
    n.add("sync_fsm", luts=10 + 2 * w, ffs=5, depth=2)
    return n


def flag_inserter_area(config: P5Config) -> Netlist:
    """Transmit flag wrapping + wire densification."""
    w = config.width_bytes
    n = Netlist(f"flag_inserter/{8 * w}b")
    if w == 1:
        n.add("fsm", luts=6, ffs=3, depth=2)
        return n
    n.add(
        "insert_sorter",
        luts=w * mux_luts(w + 2, 8),
        depth=mux_depth(w + 2),
    )
    n.add("carry_reg", ffs=8 * w + clog2(2 * w))
    n.add("fsm", luts=8 + w, ffs=4, depth=2)
    return n


def controller_area(config: P5Config, side: str) -> Netlist:
    """TX/RX control FSM: host/PHY/OAM signal interpretation."""
    w = config.width_bytes
    n = Netlist(f"{side}_control/{8 * w}b")
    n.add("fsm", luts=10 + 2 * w, ffs=6, depth=3)
    n.add("counters", luts=4, ffs=8)
    return n


def oam_area(config: P5Config) -> Netlist:
    """Protocol OAM: register map, interrupt logic, host bus."""
    n = Netlist("oam")
    n.add("regmap_decode", luts=12, depth=2)
    n.add("config_regs", ffs=16)
    n.add("irq_logic", luts=8, ffs=8, depth=1)
    return n


def transmitter_area(config: P5Config) -> Netlist:
    """Paper Figure 3: control + CRC + escape generate (+ flags)."""
    n = Netlist(f"transmitter/{config.width_bits}b")
    n.merge(controller_area(config, "tx"), "control")
    n.merge(crc_unit_area(config, "generate"), "crc")
    n.merge(escape_generate_area(config), "escape_generate")
    n.merge(flag_inserter_area(config), "flags")
    return n


def receiver_area(config: P5Config) -> Netlist:
    """Paper Figure 4: delineation + escape detect + CRC + control."""
    n = Netlist(f"receiver/{config.width_bits}b")
    n.merge(delineator_area(config), "delineator")
    n.merge(escape_detect_area(config), "escape_detect")
    n.merge(crc_unit_area(config, "check"), "crc")
    n.merge(controller_area(config, "rx"), "control")
    return n


def system_area(config: P5Config, *, include_oam: bool = True) -> Netlist:
    """The whole P5 (paper Figure 2)."""
    n = Netlist(f"p5/{config.width_bits}b")
    n.merge(transmitter_area(config), "tx")
    n.merge(receiver_area(config), "rx")
    if include_oam:
        n.merge(oam_area(config), "oam")
    return n
