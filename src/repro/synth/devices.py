"""The FPGA device library used in the paper's evaluation.

Capacities are the parts' 4-input LUT / flip-flop counts (two LUTs and
two FFs per slice):

=============  ======  ======  ========================================
device         LUTs    FFs     role in the paper
=============  ======  ======  ========================================
XCV50-4        1536    1536    Virtex target for the 8-bit P5 (Table 1)
XC2V40-6       512     512     Virtex-II target for the 8-bit P5 and
                               the escape-generator study (Tables 1, 3)
XCV600-4       13824   13824   Virtex target for the 32-bit P5 (Table 2)
XC2V1000-6     10240   10240   Virtex-II target for the 32-bit P5
=============  ======  ======  ========================================

Delays are per-level estimates for the quoted speed grades; the paper
observes that "the delay at each LUT is slightly greater with Virtex"
and that the Virtex-II speedup is technological, not placement luck —
which the two families' (lut_delay, net_delay) pairs encode directly.
Pre-layout timing uses an optimistic routing estimate
(``net_delay * PRE_LAYOUT_NET_FACTOR``); post-layout uses the full
net delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DeviceSpec", "DEVICES", "get_device", "PRE_LAYOUT_NET_FACTOR"]

#: Pre-layout routing optimism (Synplicity's estimate vs placed reality).
PRE_LAYOUT_NET_FACTOR = 0.55


@dataclass(frozen=True)
class DeviceSpec:
    """One FPGA part + speed grade."""

    name: str
    family: str
    luts: int
    ffs: int
    lut_delay_ns: float
    net_delay_ns: float

    def cycle_time_ns(self, levels: int, *, post_layout: bool) -> float:
        """Register-to-register delay for a ``levels``-deep path."""
        net = self.net_delay_ns * (1.0 if post_layout else PRE_LAYOUT_NET_FACTOR)
        clk_overhead = self.lut_delay_ns  # clk->q + setup, same order as a LUT
        return levels * (self.lut_delay_ns + net) + clk_overhead

    def fmax_mhz(self, levels: int, *, post_layout: bool) -> float:
        """Maximum clock for the given logic depth."""
        return 1e3 / self.cycle_time_ns(levels, post_layout=post_layout)

    def utilization(self, luts: int, ffs: int) -> Tuple[float, float]:
        """(LUT %, FF %) of this device."""
        return (100.0 * luts / self.luts, 100.0 * ffs / self.ffs)


DEVICES: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        DeviceSpec("XCV50-4", "Virtex", 1536, 1536, 0.80, 1.55),
        DeviceSpec("XCV600-4", "Virtex", 13824, 13824, 0.80, 1.55),
        DeviceSpec("XC2V40-6", "Virtex-II", 512, 512, 0.44, 0.95),
        DeviceSpec("XC2V1000-6", "Virtex-II", 10240, 10240, 0.44, 0.95),
    )
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name."""
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
