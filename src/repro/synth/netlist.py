"""Netlist accumulation: LUT/FF/depth bookkeeping per component."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["NetlistEntry", "Netlist"]


@dataclass(frozen=True)
class NetlistEntry:
    """One mapped component.

    ``depth`` is the component's internal combinational depth in LUT
    levels — because every pipeline stage is register-bounded, the
    critical path of a module is the *maximum* entry depth, not a sum.
    """

    name: str
    luts: int
    ffs: int
    depth: int = 0

    def __post_init__(self) -> None:
        if self.luts < 0 or self.ffs < 0 or self.depth < 0:
            raise ValueError(f"negative resource in netlist entry {self.name!r}")


@dataclass
class Netlist:
    """A named collection of mapped components."""

    name: str
    entries: List[NetlistEntry] = field(default_factory=list)

    def add(self, name: str, *, luts: int = 0, ffs: int = 0, depth: int = 0) -> None:
        """Append one component."""
        self.entries.append(NetlistEntry(name, luts, ffs, depth))

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Absorb another netlist's entries (hierarchy flattening)."""
        label = prefix or other.name
        for entry in other.entries:
            self.entries.append(
                NetlistEntry(f"{label}/{entry.name}", entry.luts, entry.ffs, entry.depth)
            )

    # ------------------------------------------------------------- summaries
    @property
    def luts(self) -> int:
        return sum(e.luts for e in self.entries)

    @property
    def ffs(self) -> int:
        return sum(e.ffs for e in self.entries)

    @property
    def depth(self) -> int:
        """Worst single-stage combinational depth (LUT levels)."""
        return max((e.depth for e in self.entries), default=0)

    def by_group(self) -> Dict[str, Dict[str, int]]:
        """Totals keyed by top-level hierarchy name."""
        groups: Dict[str, Dict[str, int]] = {}
        for entry in self.entries:
            group = entry.name.split("/", 1)[0]
            acc = groups.setdefault(group, {"luts": 0, "ffs": 0, "depth": 0})
            acc["luts"] += entry.luts
            acc["ffs"] += entry.ffs
            acc["depth"] = max(acc["depth"], entry.depth)
        return groups

    def table(self) -> str:
        """Formatted per-group resource table."""
        lines = [f"{'module':<24} {'LUTs':>6} {'FFs':>6} {'depth':>6}"]
        for group, acc in sorted(self.by_group().items()):
            lines.append(
                f"{group:<24} {acc['luts']:>6} {acc['ffs']:>6} {acc['depth']:>6}"
            )
        lines.append(f"{'TOTAL':<24} {self.luts:>6} {self.ffs:>6} {self.depth:>6}")
        return "\n".join(lines)
