"""Technology-mapping primitives: components to 4-LUT/FF costs.

Every formula here is the standard structural estimate for mapping
onto 4-input LUTs:

* a k-input XOR (or any associative gate) maps to a tree of 4-LUTs:
  ``ceil((k-1)/3)`` LUTs, ``ceil(log4(k))`` levels;
* an n-way multiplexer of an 8-bit byte costs ``ceil((n-1)/3)`` LUTs
  per bit (each 4-LUT merges 2 data inputs + select logic);
* an 8-bit equality comparator against a constant is 3 LUTs
  (two 4-bit halves + combine), 2 levels.
"""

from __future__ import annotations

import math

__all__ = [
    "xor_tree_luts",
    "xor_tree_depth",
    "mux_luts",
    "mux_depth",
    "eq_const_comparator_luts",
    "EQ_COMPARATOR_DEPTH",
    "popcount_luts",
    "adder_luts",
    "clog2",
    "clog4",
]

#: Depth of an 8-bit constant comparator (two levels of 4-LUTs).
EQ_COMPARATOR_DEPTH = 2


def clog2(n: int) -> int:
    """Ceiling log2 (0 for n <= 1)."""
    return max(0, math.ceil(math.log2(n))) if n > 1 else 0


def clog4(n: int) -> int:
    """Ceiling log4 (0 for n <= 1) — LUT tree depth for fan-in n."""
    return max(0, math.ceil(math.log(n, 4))) if n > 1 else 0


def xor_tree_luts(fanin: int) -> int:
    """4-LUT count of one XOR tree with ``fanin`` inputs."""
    if fanin <= 1:
        return 0
    return math.ceil((fanin - 1) / 3)


def xor_tree_depth(fanin: int) -> int:
    """LUT levels of one XOR tree."""
    return clog4(fanin)


def mux_luts(fanin: int, width_bits: int = 8) -> int:
    """LUTs for an n-to-1 multiplexer of a ``width_bits`` word."""
    if fanin <= 1:
        return 0
    return math.ceil((fanin - 1) / 3) * width_bits


def mux_depth(fanin: int) -> int:
    """LUT levels through the mux tree (selects pre-decoded)."""
    return clog4(fanin)


def eq_const_comparator_luts(width_bits: int = 8) -> int:
    """Equality-against-constant comparator."""
    return math.ceil(width_bits / 4) + (1 if width_bits > 4 else 0)


def popcount_luts(n_inputs: int) -> int:
    """Population count of ``n_inputs`` bits (compressor tree)."""
    if n_inputs <= 1:
        return 0
    return n_inputs  # one LUT per input is the standard coarse bound


def adder_luts(width_bits: int) -> int:
    """Ripple/carry-chain adder (carry logic is free on these parts)."""
    return width_bits
