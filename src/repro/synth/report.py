"""Synthesis reports: the Tables 1-3 generator.

:func:`synthesize` runs the area model and timing analysis for one
netlist on one device and returns a :class:`SynthesisReport` whose
:meth:`~SynthesisReport.row` prints in the paper's table format:
LUTs (utilization %), FFs (utilization %), f_max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import DeviceCapacityError
from repro.synth.devices import get_device
from repro.synth.netlist import Netlist
from repro.synth.timing import TimingReport, analyze_timing

__all__ = ["SynthesisReport", "synthesize", "format_table"]


@dataclass(frozen=True)
class SynthesisReport:
    """One design x device synthesis outcome."""

    design: str
    device: str
    family: str
    luts: int
    ffs: int
    lut_pct: float
    ff_pct: float
    timing: TimingReport

    def row(self, *, post_layout: bool) -> str:
        """One table row in the paper's 'count (pct%)' style."""
        fmax = (
            self.timing.fmax_post_mhz if post_layout else self.timing.fmax_pre_mhz
        )
        return (
            f"{self.device:<12} {self.luts:>6} ({self.lut_pct:4.1f}%)  "
            f"{self.ffs:>6} ({self.ff_pct:4.1f}%)  {fmax:7.1f} MHz"
        )


def synthesize(
    netlist: Netlist,
    device_name: str,
    *,
    allow_overflow: bool = False,
) -> SynthesisReport:
    """Map ``netlist`` onto a device; checks capacity like a fitter."""
    device = get_device(device_name)
    luts, ffs = netlist.luts, netlist.ffs
    if not allow_overflow and (luts > device.luts or ffs > device.ffs):
        raise DeviceCapacityError(
            f"{netlist.name}: {luts} LUTs / {ffs} FFs exceeds "
            f"{device.name} ({device.luts} LUTs / {device.ffs} FFs)"
        )
    lut_pct, ff_pct = device.utilization(luts, ffs)
    return SynthesisReport(
        design=netlist.name,
        device=device.name,
        family=device.family,
        luts=luts,
        ffs=ffs,
        lut_pct=lut_pct,
        ff_pct=ff_pct,
        timing=analyze_timing(netlist, device),
    )


def format_table(title: str, reports: List[SynthesisReport]) -> str:
    """Render pre-/post-layout rows for several devices, paper-style."""
    lines = [title, "=" * len(title)]
    lines.append("Pre-layout synthesis")
    for report in reports:
        lines.append("  " + report.row(post_layout=False))
    lines.append("Post-layout synthesis")
    for report in reports:
        lines.append("  " + report.row(post_layout=True))
    return "\n".join(lines)
