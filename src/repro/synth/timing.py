"""Timing analysis: critical path depth and achievable clock.

The paper: "Timing analysis revealed that the critical path is the
same for each device and in each case passes through 6 [LUTs].  The
delay at each LUT is slightly greater with Virtex technology ... this
speed-up is not achieved by a more efficient placement and routing
process but [is due] to the technological advantage Virtex II offers."

Our model makes that statement structural: the depth comes from the
netlist (device-independent), the per-level delay from the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import P5Config
from repro.synth.devices import DeviceSpec
from repro.synth.netlist import Netlist

__all__ = ["critical_path_levels", "TimingReport", "analyze_timing"]


def critical_path_levels(netlist: Netlist) -> int:
    """LUT levels on the worst register-to-register path."""
    return netlist.depth


@dataclass(frozen=True)
class TimingReport:
    """Timing results for one netlist on one device."""

    device: str
    family: str
    levels: int
    fmax_pre_mhz: float
    fmax_post_mhz: float

    def meets(self, required_mhz: float, *, post_layout: bool = True) -> bool:
        """Whether the design closes timing at ``required_mhz``."""
        fmax = self.fmax_post_mhz if post_layout else self.fmax_pre_mhz
        return fmax >= required_mhz


def analyze_timing(netlist: Netlist, device: DeviceSpec) -> TimingReport:
    """Compute pre- and post-layout f_max for ``netlist`` on ``device``."""
    levels = critical_path_levels(netlist)
    return TimingReport(
        device=device.name,
        family=device.family,
        levels=levels,
        fmax_pre_mhz=device.fmax_mhz(levels, post_layout=False),
        fmax_post_mhz=device.fmax_mhz(levels, post_layout=True),
    )


def required_clock_mhz(config: P5Config) -> float:
    """Clock needed to hit the line rate at the datapath width.

    2.5 Gbps on a 32-bit bus -> 78.125 MHz (the paper's "the system
    had to operate at a frequency of at least" figure); 625 Mbps on
    8 bits is the same 78.125 MHz.
    """
    return config.clock_hz / 1e6
