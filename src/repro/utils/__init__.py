"""Shared low-level helpers: bit/byte manipulation and deterministic RNG."""

from repro.utils.bits import (
    bit_reflect,
    bits_to_int,
    bytes_to_bits,
    bits_to_bytes,
    int_to_bits,
    hexdump,
    parity,
    popcount,
)
from repro.utils.rng import make_rng

__all__ = [
    "bit_reflect",
    "bits_to_int",
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "hexdump",
    "parity",
    "popcount",
    "make_rng",
]
