"""Bit- and byte-level helpers used across the CRC, HDLC and SONET code.

Conventions
-----------
* Bit sequences are numpy ``uint8`` arrays of 0/1 values unless stated
  otherwise.
* "LSB-first" serialisation follows RFC 1662 / SONET practice: within
  each octet the least-significant bit is transmitted first for HDLC
  octet-synchronous links, while SONET transmits MSB first.  Functions
  take an explicit ``lsb_first`` flag so callers never guess.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = [
    "popcount",
    "parity",
    "bit_reflect",
    "int_to_bits",
    "bits_to_int",
    "bytes_to_bits",
    "bits_to_bytes",
    "hexdump",
]


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount requires a non-negative integer")
    return bin(value).count("1")


def parity(value: int) -> int:
    """GF(2) parity (XOR of all bits) of a non-negative integer."""
    return popcount(value) & 1


def bit_reflect(value: int, width: int) -> int:
    """Reverse the bit order of ``value`` within ``width`` bits.

    ``bit_reflect(0b0001, 4) == 0b1000``.  Used by reflected CRC
    algorithms (CRC-32, CRC-16/X-25) where data is clocked LSB first.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if value >> width:
        raise ValueError(f"value 0x{value:X} does not fit in {width} bits")
    result = 0
    for i in range(width):
        if (value >> i) & 1:
            result |= 1 << (width - 1 - i)
    return result


def int_to_bits(value: int, width: int, *, lsb_first: bool = False) -> np.ndarray:
    """Expand ``value`` into a ``uint8`` array of ``width`` bits.

    MSB-first by default; set ``lsb_first=True`` for serial links that
    shift the least-significant bit out first.
    """
    if value >> width:
        raise ValueError(f"value 0x{value:X} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    if not lsb_first:
        bits = bits[::-1]
    return np.ascontiguousarray(bits)


def bits_to_int(bits: Iterable[int], *, lsb_first: bool = False) -> int:
    """Inverse of :func:`int_to_bits`."""
    seq: List[int] = [int(b) & 1 for b in bits]
    if lsb_first:
        seq = seq[::-1]
    value = 0
    for b in seq:
        value = (value << 1) | b
    return value


def bytes_to_bits(data: bytes, *, lsb_first: bool = False) -> np.ndarray:
    """Serialise ``data`` into a flat bit array, one octet at a time.

    Vectorised with :func:`numpy.unpackbits`; the per-octet bit order is
    selected with ``lsb_first`` (HDLC octet links are LSB-first, SONET
    is MSB-first).
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    order = "little" if lsb_first else "big"
    return np.unpackbits(arr, bitorder=order)


def bits_to_bytes(bits: np.ndarray, *, lsb_first: bool = False) -> bytes:
    """Pack a flat bit array back into bytes (inverse of :func:`bytes_to_bits`).

    The bit count must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    order = "little" if lsb_first else "big"
    return np.packbits(bits, bitorder=order).tobytes()


def hexdump(data: bytes, *, width: int = 16) -> str:
    """Render ``data`` as a classic offset/hex/ASCII dump (for traces)."""
    lines = []
    for off in range(0, len(data), width):
        chunk = data[off : off + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 0x20 <= b < 0x7F else "." for b in chunk)
        lines.append(f"{off:08x}  {hexpart:<{width * 3 - 1}}  |{asciipart}|")
    return "\n".join(lines)
