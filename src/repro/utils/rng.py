"""Deterministic random-number helpers.

All stochastic code in the library (workload generators, BER line
models, fuzzing helpers) accepts either a seed or a ready-made
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the benchmarks always pass explicit seeds.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

__all__ = ["make_rng"]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives a fresh OS-seeded generator; an ``int`` gives a
    deterministic PCG64 stream; an existing generator passes through
    untouched so callers can share one stream across components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
