"""Workload generators for the benchmarks and examples.

* :mod:`repro.workloads.imix` — the classic Internet mix of packet
  sizes (the "massive amount of information" of the paper's intro);
* :mod:`repro.workloads.random_payload` — payloads with a controlled
  density of escape-triggering octets, the key stressor for the
  escape pipelines (worst case: every byte a flag);
* :mod:`repro.workloads.packets` — PPP frame-content streams built
  from real IPv4 datagrams.
"""

from repro.workloads.imix import IMIX_SIMPLE, ImixProfile, imix_sizes
from repro.workloads.random_payload import (
    all_flags_payload,
    flag_density_payload,
    random_payload,
)
from repro.workloads.packets import PacketStream, ppp_frame_contents

__all__ = [
    "ImixProfile",
    "IMIX_SIMPLE",
    "imix_sizes",
    "random_payload",
    "flag_density_payload",
    "all_flags_payload",
    "PacketStream",
    "ppp_frame_contents",
]
