"""IMIX packet-size distributions.

The "simple IMIX" used across router benchmarking: 7 parts 40-byte,
4 parts 576-byte, 1 part 1500-byte packets (per 12), giving a mean
packet size of ~340 bytes — representative of the voice/web/bulk
traffic blend the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, make_rng

__all__ = ["ImixProfile", "IMIX_SIMPLE", "imix_sizes"]


@dataclass(frozen=True)
class ImixProfile:
    """A weighted mixture of IP datagram sizes."""

    name: str
    sizes: Tuple[int, ...]
    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be equal-length, non-empty")
        if any(s < 20 for s in self.sizes):
            raise ValueError("IP datagrams cannot be smaller than their header")

    @property
    def mean_size(self) -> float:
        total = sum(self.weights)
        return sum(s * w for s, w in zip(self.sizes, self.weights)) / total

    def sample(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``count`` datagram sizes."""
        rng = make_rng(seed)
        probs = np.array(self.weights, dtype=float)
        probs /= probs.sum()
        return rng.choice(np.array(self.sizes), size=count, p=probs)


#: The canonical simple IMIX: 40/576/1500 bytes at 7:4:1.
IMIX_SIMPLE = ImixProfile("simple-imix", (40, 576, 1500), (7, 4, 1))


def imix_sizes(count: int, seed: SeedLike = None, profile: ImixProfile = IMIX_SIMPLE) -> List[int]:
    """Convenience: a list of datagram sizes from the profile."""
    return [int(s) for s in profile.sample(count, seed)]
