"""PPP frame-content streams built from real IPv4 datagrams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ipv4 import Ipv4Datagram
from repro.ppp.frame import PPPFrame
from repro.ppp.ipcp import parse_ipv4
from repro.ppp.protocol_numbers import PROTO_IPV4
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.imix import IMIX_SIMPLE, ImixProfile
from repro.workloads.random_payload import random_payload

__all__ = ["PacketStream", "ppp_frame_contents"]


@dataclass
class PacketStream:
    """A reproducible stream of IPv4-in-PPP frames.

    Parameters
    ----------
    profile:
        Datagram size mixture.
    src / dst:
        Dotted-quad endpoint addresses stamped into every header.
    seed:
        Drives both sizes and payload bytes.
    """

    profile: ImixProfile = IMIX_SIMPLE
    src: str = "10.0.0.1"
    dst: str = "10.0.0.2"
    seed: SeedLike = 0

    def datagrams(self, count: int) -> List[Ipv4Datagram]:
        """``count`` checksummed datagrams following the profile."""
        rng = make_rng(self.seed)
        sizes = self.profile.sample(count, rng)
        src, dst = parse_ipv4(self.src), parse_ipv4(self.dst)
        out = []
        for i, size in enumerate(sizes):
            payload = random_payload(int(size) - 20, rng)
            out.append(
                Ipv4Datagram.build(
                    src, dst, payload, identification=i & 0xFFFF
                )
            )
        return out

    def frame_contents(self, count: int, *, address: int = 0xFF) -> List[bytes]:
        """The datagrams encapsulated as PPP frame contents."""
        return [
            PPPFrame(
                protocol=PROTO_IPV4,
                information=d.encode(),
                address=address,
            ).encode()
            for d in self.datagrams(count)
        ]


def ppp_frame_contents(
    count: int,
    *,
    seed: SeedLike = 0,
    profile: ImixProfile = IMIX_SIMPLE,
) -> List[bytes]:
    """Shorthand for the common benchmark workload."""
    return PacketStream(profile=profile, seed=seed).frame_contents(count)
