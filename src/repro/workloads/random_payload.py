"""Payload generators with controlled escape density.

The expansion a payload suffers under RFC 1662 stuffing depends only
on how many of its octets fall in the escape set.  These generators
pin that density:

* uniform random octets → density 2/256 ≈ 0.78 % (two escapable
  values), the paper's "normal" case;
* ``flag_density_payload(p)`` → a fraction ``p`` of octets are flags,
  sweeping smoothly to the worst case;
* ``all_flags_payload`` → the "however unlikely" all-flag word case
  of the paper, doubling the stream and forcing the backpressure path.
"""

from __future__ import annotations

import numpy as np

from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.utils.rng import SeedLike, make_rng

__all__ = ["random_payload", "flag_density_payload", "all_flags_payload"]


def random_payload(length: int, seed: SeedLike = None) -> bytes:
    """Uniform random octets (natural ~0.78 % escape density)."""
    rng = make_rng(seed)
    return rng.integers(0, 256, length, dtype=np.uint8).tobytes()


def flag_density_payload(length: int, density: float, seed: SeedLike = None) -> bytes:
    """Payload where each octet is a flag/escape with probability ``density``.

    Non-special octets are drawn uniformly from the 254 values outside
    the escape set, so the density is exact in expectation.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = make_rng(seed)
    specials = np.where(
        rng.random(length) < 0.5, np.uint8(FLAG_OCTET), np.uint8(ESC_OCTET)
    )
    plain = rng.integers(0, 254, length, dtype=np.uint8)
    # Remap the two escape values out of the plain range.
    plain[plain == FLAG_OCTET] = 254
    plain[plain == ESC_OCTET] = 255
    take_special = rng.random(length) < density
    return np.where(take_special, specials, plain).astype(np.uint8).tobytes()


def all_flags_payload(length: int) -> bytes:
    """The worst case: every octet must be escaped (stream doubles)."""
    return bytes([FLAG_OCTET]) * length
