"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import P5Config


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that sample data."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(params=[8, 16, 32, 64], ids=lambda w: f"{w}bit")
def any_width_config(request) -> P5Config:
    """A P5Config at every supported datapath width."""
    return P5Config(width_bits=request.param)


@pytest.fixture
def config8() -> P5Config:
    return P5Config.eight_bit()


@pytest.fixture
def config32() -> P5Config:
    return P5Config.thirty_two_bit()


def random_bytes(rng: np.random.Generator, n: int) -> bytes:
    """Uniform random payload (tests import this helper from conftest)."""
    return rng.integers(0, 256, n, dtype=np.uint8).tobytes()
