"""Deliberately broken: hard-codes the RFC 1662 framing octets (P5L003)."""

FLAG = 0x7E
ESCAPE = 0x7D


def delimit(payload: bytes) -> bytes:
    return bytes([FLAG]) + payload + bytes([FLAG])
