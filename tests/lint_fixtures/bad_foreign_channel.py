"""Deliberately broken: mutates a channel it does not own (P5L004)."""

from repro.rtl.module import Module


class ChannelThief(Module):
    """Reaches through a peer module to drive its output port."""

    def __init__(self, name: str, peer) -> None:
        super().__init__(name)
        self.peer = peer

    def clock(self) -> None:
        if self.peer.out.can_push:
            self.peer.out.push(0x55)   # not a port of this module
