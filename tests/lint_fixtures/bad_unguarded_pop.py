"""Deliberately broken: pops/peeks without a can_pop guard (P5L002)."""

from repro.rtl.module import Channel, Module


class UnguardedPopper(Module):
    """Reads its input register without qualifying valid."""

    def __init__(self, name: str, inp: Channel) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.last = None

    def clock(self) -> None:
        beat = self.inp.peek()   # no can_pop guard
        self.last = self.inp.pop()
        del beat
