"""Deliberately broken: pushes without any can_push/room guard (P5L001)."""

from repro.rtl.module import Channel, Module


class UnguardedPusher(Module):
    """Drives its output register without checking readiness."""

    def __init__(self, name: str, out: Channel) -> None:
        super().__init__(name)
        self.out = self.writes(out)

    def clock(self) -> None:
        self.out.push(0xAB)  # no can_push guard anywhere on this path
