"""A fixture obeying every rule: the discipline the shipped tree follows."""

from repro.hdlc.constants import FLAG_OCTET
from repro.rtl.module import Channel, Module


class WellBehaved(Module):
    """Guards every handshake and owns every channel it touches."""

    def __init__(self, name: str, inp: Channel, out: Channel) -> None:
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self.flags_seen = 0

    def clock(self) -> None:
        if not self.inp.can_pop:
            return
        if not self.out.can_push:
            self.note_stall()
            return
        octet = self.inp.pop()
        if octet == FLAG_OCTET:
            self.flags_seen += 1
        self.out.push(octet)
