"""Unit tests for the measurement/analysis helpers."""

import pytest

from repro.analysis import (
    expected_expansion,
    ip_over_sonet_efficiency,
    measure_escape_latency,
    measure_escape_throughput,
    measure_expansion,
    worst_case_expansion,
)
from repro.analysis.expansion import UNIFORM_RANDOM_DENSITY
from repro.core.config import P5Config
from repro.workloads import all_flags_payload, flag_density_payload, random_payload


class TestExpansion:
    def test_analytic_bounds(self):
        assert expected_expansion(0.0) == 1.0
        assert expected_expansion(1.0) == worst_case_expansion() == 2.0

    def test_analytic_matches_empirical(self):
        for density in (0.0, 0.1, 0.5, 1.0):
            payload = flag_density_payload(40_000, density, seed=1)
            sample = measure_expansion(payload)
            assert sample.factor == pytest.approx(
                expected_expansion(density), abs=0.02
            )

    def test_uniform_random_density(self):
        sample = measure_expansion(random_payload(100_000, seed=2))
        assert sample.factor == pytest.approx(
            expected_expansion(UNIFORM_RANDOM_DENSITY), abs=0.01
        )

    def test_density_validated(self):
        with pytest.raises(ValueError):
            expected_expansion(-0.1)

    def test_empty_payload(self):
        assert measure_expansion(b"").factor == 1.0


class TestThroughput:
    def test_paper_rates(self):
        """625 Mbps (8-bit) and 2.5 Gbps (32-bit) at 78.125 MHz."""
        payload = random_payload(20_000, seed=1)
        r8 = measure_escape_throughput(payload, P5Config.eight_bit())
        r32 = measure_escape_throughput(payload, P5Config.thirty_two_bit())
        assert r8.line_gbps == pytest.approx(0.625, rel=0.02)
        assert r32.line_gbps == pytest.approx(2.5, rel=0.02)
        assert r32.utilization > 0.99

    def test_worst_case_line_rate_held(self):
        """All-flag payload: output stays at line rate, intake halves."""
        report = measure_escape_throughput(
            all_flags_payload(8_000), P5Config.thirty_two_bit()
        )
        assert report.line_gbps == pytest.approx(2.5, rel=0.03)
        assert report.input_gbps == pytest.approx(1.25, rel=0.03)

    def test_report_accounting(self):
        payload = random_payload(4_000, seed=3)
        report = measure_escape_throughput(payload, P5Config.thirty_two_bit())
        assert report.payload_bytes == 4_000
        assert report.output_bytes >= report.payload_bytes


class TestLatency:
    def test_paper_fill_latency(self):
        report = measure_escape_latency(P5Config.thirty_two_bit())
        assert report.fill_cycles == 4
        assert report.fill_ns == pytest.approx(51.2, abs=0.1)

    def test_8bit_shallower(self):
        report = measure_escape_latency(P5Config.eight_bit())
        assert report.fill_cycles == 2


class TestEfficiency:
    def test_total_efficiency_sane(self):
        eff = ip_over_sonet_efficiency(1500, 48)
        assert 0.90 < eff.total_efficiency < 1.0
        assert eff.sonet_efficiency == pytest.approx(0.963, abs=0.01)

    def test_small_packets_less_efficient(self):
        small = ip_over_sonet_efficiency(40, 48)
        large = ip_over_sonet_efficiency(1500, 48)
        assert small.total_efficiency < large.total_efficiency

    def test_breakdown_consistent(self):
        eff = ip_over_sonet_efficiency(576, 12)
        assert eff.total_efficiency == pytest.approx(
            eff.sonet_efficiency * eff.ppp_efficiency, rel=1e-9
        )

    def test_tiny_datagram_rejected(self):
        with pytest.raises(ValueError):
            ip_over_sonet_efficiency(10)
