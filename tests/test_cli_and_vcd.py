"""Unit tests for the CLI and the VCD waveform exporter."""

import pytest

from repro.cli import build_parser, main
from repro.rtl import Channel, Simulator, StreamSink, StreamSource, beats_from_bytes
from repro.rtl.vcd import VcdWriter, _identifier


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "78.125 MHz" in out and "STS-48c" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "XC2V1000-6" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "--width", "32", "--bytes", "4000"]) == 0
        out = capsys.readouterr().out
        assert "2.4" in out or "2.5" in out

    def test_throughput_worst_case(self, capsys):
        assert main(
            ["throughput", "--width", "8", "--bytes", "2000",
             "--payload", "all-flags"]
        ) == 0
        assert "0.625" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "--width", "32"]) == 0
        assert "4 cycles" in capsys.readouterr().out

    def test_latency_custom_stages(self, capsys):
        assert main(["latency", "--width", "32", "--stages", "6"]) == 0
        assert "6 cycles" in capsys.readouterr().out

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "wave.vcd"
        assert main(["trace", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "$enddefinitions" in out_file.read_text()

    def test_parser_rejects_bad_width(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["throughput", "--width", "24"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_duplex(self, capsys):
        assert main(["duplex", "--width", "8", "--frames", "3"]) == 0
        out = capsys.readouterr().out
        assert "all FCS-good: True" in out


class TestVcd:
    def _run(self):
        c1, c2 = Channel("a", capacity=2), Channel("b", capacity=2)
        src = StreamSource("src", c1, beats_from_bytes(b"\x7e\x01\x02\x03", 4))
        from repro.core.escape_pipeline import PipelinedEscapeGenerate

        unit = PipelinedEscapeGenerate("u", c1, c2, width_bytes=4)
        sink = StreamSink("sink", c2)
        sim = Simulator([src, unit, sink], [c1, c2])
        writer = VcdWriter([c1, c2])
        sim.add_observer(writer.sample)
        sim.run_until(lambda: src.done and unit.idle and not c2.can_pop, timeout=50)
        return writer

    def test_header_declares_signals(self):
        vcd = self._run().render()
        assert "$timescale 12800ps $end" in vcd
        assert "a_valid" in vcd and "b_data" in vcd and "b_nvalid" in vcd

    def test_value_changes_recorded(self):
        vcd = self._run().render()
        # Time markers and at least one binary vector change.
        assert "#1" in vcd
        assert "\nb" in vcd

    def test_changes_are_deduplicated(self):
        writer = self._run()
        keys = [(c, i) for c, i, _ in writer._changes]
        # No (cycle, id) pair appears twice and consecutive identical
        # values are suppressed by construction.
        assert len(keys) == len(set(keys))

    def test_identifier_compactness(self):
        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500
        assert all(len(s) <= 2 for s in ids)

    def test_save(self, tmp_path):
        path = tmp_path / "t.vcd"
        self._run().save(str(path))
        assert path.read_text().startswith("$date")
