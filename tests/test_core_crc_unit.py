"""Cycle-accurate tests for the CRC generate/check pipeline units."""

import pytest

from repro.crc import CRC16_X25, CRC32, TableCrc
from repro.core.crc_unit import CrcCheck, CrcGenerate, CrcUnit
from repro.rtl import (
    Channel,
    Simulator,
    StallPattern,
    StreamSink,
    StreamSource,
    beats_from_bytes,
)


def run_generate(frames, width=4, spec=CRC32, *, sink_stall=None):
    c_in = Channel("in", capacity=2)
    c_out = Channel("out", capacity=12)
    beats = [b for f in frames for b in beats_from_bytes(f, width)]
    src = StreamSource("src", c_in, beats)
    unit = CrcGenerate("gen", c_in, c_out, width_bytes=width, spec=spec)
    sink = StreamSink("sink", c_out, stall=sink_stall)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and not c_in.can_pop and not c_out.can_pop,
        timeout=100_000,
    )
    return unit, sink


def run_check(wire_frames, width=4, spec=CRC32):
    c_in = Channel("in", capacity=2)
    c_out = Channel("out", capacity=12)
    beats = [b for f in wire_frames for b in beats_from_bytes(f, width)]
    src = StreamSource("src", c_in, beats)
    unit = CrcCheck("chk", c_in, c_out, width_bytes=width, spec=spec)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and not c_in.can_pop and not c_out.can_pop,
        timeout=100_000,
    )
    return unit, sink


def with_fcs(content, spec=CRC32):
    fcs = TableCrc(spec).compute(content)
    return content + fcs.to_bytes(spec.width // 8, "little")


class TestGenerate:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    @pytest.mark.parametrize("spec", [CRC16_X25, CRC32], ids=["fcs16", "fcs32"])
    def test_appends_correct_fcs(self, width, spec, rng):
        for n in (1, 3, width, width + 1, 57):
            content = rng.integers(0, 256, n, dtype="uint8").tobytes()
            unit, sink = run_generate([content], width, spec)
            assert sink.data() == with_fcs(content, spec)

    def test_multiple_frames_independent(self, rng):
        frames = [rng.integers(0, 256, 20 + i, dtype="uint8").tobytes()
                  for i in range(5)]
        unit, sink = run_generate(frames)
        assert sink.data() == b"".join(with_fcs(f) for f in frames)
        assert unit.frames_processed == 5

    def test_eof_marks_on_trailer(self, rng):
        content = rng.integers(0, 256, 10, dtype="uint8").tobytes()
        unit, sink = run_generate([content])
        assert sink.beats[0].sof
        assert sink.beats[-1].eof
        assert sum(b.eof for b in sink.beats) == 1

    def test_survives_slow_sink(self, rng):
        content = rng.integers(0, 256, 100, dtype="uint8").tobytes()
        unit, sink = run_generate(
            [content], sink_stall=StallPattern(probability=0.5, seed=1)
        )
        assert sink.data() == with_fcs(content)


class TestCheck:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_strips_and_verifies(self, width, rng):
        content = rng.integers(0, 256, 37, dtype="uint8").tobytes()
        unit, sink = run_check([with_fcs(content)], width)
        assert sink.data() == content
        assert unit.frames_ok == 1 and unit.fcs_errors == 0
        assert unit.released_results == [True]

    def test_detects_corruption(self, rng):
        content = rng.integers(0, 256, 37, dtype="uint8").tobytes()
        wire = bytearray(with_fcs(content))
        wire[5] ^= 0x80
        unit, sink = run_check([bytes(wire)])
        assert unit.fcs_errors == 1
        assert unit.released_results == [False]

    def test_runt_swallowed(self):
        unit, sink = run_check([b"\x01\x02\x03"])   # shorter than FCS-32
        assert unit.runt_frames == 1
        assert sink.data() == b""
        assert unit.released_results == []
        assert unit.frame_results == [False]

    def test_mixed_good_and_bad(self, rng):
        good = with_fcs(b"good frame content")
        bad = bytearray(with_fcs(b"bad frame content!"))
        bad[2] ^= 1
        unit, sink = run_check([good, bytes(bad), good])
        assert unit.frames_ok == 2 and unit.fcs_errors == 1
        assert unit.released_results == [True, False, True]

    def test_fcs16_mode(self, rng):
        content = rng.integers(0, 256, 25, dtype="uint8").tobytes()
        unit, sink = run_check([with_fcs(content, CRC16_X25)], spec=CRC16_X25)
        assert sink.data() == content and unit.frames_ok == 1


class TestGenerateCheckLoop:
    @pytest.mark.parametrize("width", [1, 4])
    def test_generate_feeds_check(self, width, rng):
        """TX CRC unit output is exactly what the RX CRC unit accepts."""
        frames = [rng.integers(0, 256, int(rng.integers(1, 80)),
                               dtype="uint8").tobytes() for _ in range(6)]
        gen, gen_sink = run_generate(frames, width)
        wire = gen_sink.data()
        chk, chk_sink = run_check(
            [wire[s:e] for s, e in _frame_spans(frames, width)], width
        )
        assert chk.frames_ok == len(frames)
        assert chk_sink.data() == b"".join(frames)


def _frame_spans(frames, width, fcs_octets=4):
    spans = []
    offset = 0
    for frame in frames:
        end = offset + len(frame) + fcs_octets
        spans.append((offset, end))
        offset = end
    return spans


class TestFactory:
    def test_factory_modes(self):
        c1, c2 = Channel("a", capacity=8), Channel("b", capacity=8)
        assert isinstance(
            CrcUnit("u", c1, c2, width_bytes=4, spec=CRC32, mode="generate"),
            CrcGenerate,
        )
        assert isinstance(
            CrcUnit("u2", c1, c2, width_bytes=4, spec=CRC32, mode="check"),
            CrcCheck,
        )
        with pytest.raises(ValueError):
            CrcUnit("u3", c1, c2, width_bytes=4, spec=CRC32, mode="verify")
