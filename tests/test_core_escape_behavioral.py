"""Unit tests for the behavioural escape generate/detect golden models."""

import pytest

from repro.core.escape_det import EscapeDetector, contract_word
from repro.core.escape_gen import EscapeGenerator, expand_word
from repro.errors import FramingError
from repro.hdlc import stuff
from repro.rtl.pipeline import WordBeat, beats_from_bytes, bytes_from_beats


class TestExpandWord:
    def test_clean_word_unchanged(self):
        beat = WordBeat.from_bytes(b"\x12\x34\x56\x78", 4)
        assert expand_word(beat) == b"\x12\x34\x56\x78"

    def test_paper_figure5_case(self):
        """7E 12 34 56 -> 7D 5E 12 34 | 56: five bytes from four."""
        beat = WordBeat.from_bytes(bytes([0x7E, 0x12, 0x34, 0x56]), 4)
        assert expand_word(beat) == bytes([0x7D, 0x5E, 0x12, 0x34, 0x56])

    def test_all_flags_doubles(self):
        """The paper's 'however unlikely' worst case."""
        beat = WordBeat.from_bytes(bytes([0x7E] * 4), 4)
        assert expand_word(beat) == bytes([0x7D, 0x5E] * 4)

    def test_invalid_lanes_skipped(self):
        beat = WordBeat((0x7E, 0, 0, 0x41), (True, False, False, True))
        assert expand_word(beat) == bytes([0x7D, 0x5E, 0x41])

    def test_programmable_escape_set(self):
        beat = WordBeat.from_bytes(b"\x11\x41", 4)
        escapes = frozenset({0x7E, 0x7D, 0x11})
        assert expand_word(beat, escapes) == bytes([0x7D, 0x31, 0x41])


class TestContractWord:
    def test_clean_word(self):
        beat = WordBeat.from_bytes(b"\x12\x34", 4)
        assert contract_word(beat, False) == (b"\x12\x34", False, 0)

    def test_paper_figure6_case(self):
        """7D 5E 12 34 -> 7E 12 34 + bubble."""
        beat = WordBeat.from_bytes(bytes([0x7D, 0x5E, 0x12, 0x34]), 4)
        out, pending, deleted = contract_word(beat, False)
        assert out == bytes([0x7E, 0x12, 0x34])
        assert not pending and deleted == 1

    def test_escape_in_last_lane_sets_pending(self):
        beat = WordBeat.from_bytes(bytes([0x12, 0x34, 0x56, 0x7D]), 4)
        out, pending, deleted = contract_word(beat, False)
        assert out == bytes([0x12, 0x34, 0x56])
        assert pending and deleted == 1

    def test_pending_xor_applied_to_next_word(self):
        beat = WordBeat.from_bytes(bytes([0x5E, 0x99]), 4)
        out, pending, _ = contract_word(beat, True)
        assert out == bytes([0x7E, 0x99])
        assert not pending

    def test_bare_flag_is_an_error(self):
        beat = WordBeat.from_bytes(bytes([0x7E]), 4)
        with pytest.raises(FramingError):
            contract_word(beat, False)


@pytest.mark.parametrize("width", [1, 2, 4, 8], ids=lambda w: f"W{w}")
class TestRoundTrips:
    def test_generator_matches_rfc_stuffing(self, width, rng):
        for _ in range(20):
            n = int(rng.integers(1, 300))
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            gen = EscapeGenerator(width)
            out = bytes_from_beats(gen.process_frame(data))
            assert out == stuff(data)

    def test_detector_inverts_generator(self, width, rng):
        for _ in range(20):
            n = int(rng.integers(1, 300))
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            stuffed = bytes_from_beats(EscapeGenerator(width).process_frame(data))
            back = bytes_from_beats(EscapeDetector(width).process_frame(stuffed))
            assert back == data

    def test_frame_marks(self, width, rng):
        data = rng.integers(0, 256, 64, dtype="uint8").tobytes()
        beats = EscapeGenerator(width).process_frame(data)
        assert beats[0].sof and beats[-1].eof
        assert sum(b.sof for b in beats) == 1
        assert sum(b.eof for b in beats) == 1

    def test_escape_accounting_symmetric(self, width):
        data = bytes([0x7E, 0x41, 0x7D, 0x42] * 10)
        gen = EscapeGenerator(width)
        stuffed = bytes_from_beats(gen.process_frame(data))
        det = EscapeDetector(width)
        det.process_frame(stuffed)
        assert gen.flags_escaped == det.escapes_deleted == 20


class TestStreamingFrames:
    def test_back_to_back_frames_keep_alignment(self):
        gen = EscapeGenerator(4)
        out1 = bytes_from_beats(
            [b for beat in beats_from_bytes(b"abcde", 4) for b in gen.feed(beat)]
        )
        out2 = bytes_from_beats(
            [b for beat in beats_from_bytes(b"xyz", 4) for b in gen.feed(beat)]
        )
        assert out1 == b"abcde"
        assert out2 == b"xyz"

    def test_detector_dangling_escape_raises(self):
        det = EscapeDetector(4)
        with pytest.raises(FramingError):
            det.process_frame(bytes([0x41, 0x7D]))

    def test_detector_recovers_after_error(self):
        det = EscapeDetector(4)
        with pytest.raises(FramingError):
            det.process_frame(bytes([0x41, 0x7D]))
        # State was reset: a clean frame now decodes.
        assert bytes_from_beats(det.process_frame(b"clean")) == b"clean"
