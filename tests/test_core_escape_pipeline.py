"""Cycle-accurate tests for the pipelined escape units — the paper's core."""

import pytest

from repro.core.escape_pipeline import (
    PipelinedEscapeDetect,
    PipelinedEscapeGenerate,
)
from repro.hdlc import stuff
from repro.rtl import (
    Channel,
    Simulator,
    StallPattern,
    StreamSink,
    StreamSource,
    beats_from_bytes,
)


def run_generate(
    data,
    width=4,
    *,
    stages=4,
    resync=3,
    src_stall=None,
    sink_stall=None,
    timeout=100_000,
):
    c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(data, width), stall=src_stall)
    unit = PipelinedEscapeGenerate(
        "gen", c_in, c_out, width_bytes=width,
        pipeline_stages=stages, resync_depth_words=resync,
    )
    sink = StreamSink("sink", c_out, stall=sink_stall)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=timeout,
    )
    return sim, unit, sink


def run_detect(data, width=4, *, stages=4, resync=3, timeout=100_000, **kw):
    c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
    src = StreamSource("src", c_in, beats_from_bytes(data, width),
                       stall=kw.get("src_stall"))
    unit = PipelinedEscapeDetect(
        "det", c_in, c_out, width_bytes=width,
        pipeline_stages=stages, resync_depth_words=resync,
    )
    sink = StreamSink("sink", c_out, stall=kw.get("sink_stall"))
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=timeout,
    )
    return sim, unit, sink


class TestCorrectness:
    @pytest.mark.parametrize("width", [1, 2, 4, 8], ids=lambda w: f"W{w}")
    def test_generate_matches_golden_model(self, width, rng):
        stages = 4 if width > 1 else 2
        for _ in range(5):
            n = int(rng.integers(1, 400))
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            _, _, sink = run_generate(data, width, stages=stages)
            assert sink.data() == stuff(data)

    @pytest.mark.parametrize("width", [1, 2, 4, 8], ids=lambda w: f"W{w}")
    def test_detect_inverts(self, width, rng):
        stages = 4 if width > 1 else 2
        for _ in range(5):
            n = int(rng.integers(1, 400))
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            _, _, sink = run_detect(stuff(data), width, stages=stages)
            assert sink.data() == data

    def test_all_flag_word_paper_case(self):
        """4 flags in one word: 'suddenly 8 bytes' — both words correct."""
        data = bytes([0x7E] * 4)
        _, unit, sink = run_generate(data)
        assert sink.data() == bytes([0x7D, 0x5E] * 4)
        assert unit.octets_escaped == 4

    def test_figure5_scenario(self):
        """7E 12 34 56: extra byte spills into the following cycle."""
        data = bytes([0x7E, 0x12, 0x34, 0x56])
        _, unit, sink = run_generate(data)
        assert sink.data() == bytes([0x7D, 0x5E, 0x12, 0x34, 0x56])
        assert len(sink.beats) == 2
        assert sink.beats[0].n_valid == 4 and sink.beats[1].n_valid == 1

    def test_figure6_scenario(self):
        """7D 5E 12 34 | 56...: the bubble is filled by the next word."""
        data = bytes([0x7D, 0x5E, 0x12, 0x34, 0x56, 0x57, 0x58, 0x59])
        _, unit, sink = run_detect(data)
        assert sink.data() == bytes([0x7E, 0x12, 0x34, 0x56, 0x57, 0x58, 0x59])
        # First output word is full despite the deletion: bubble filled.
        assert sink.beats[0].n_valid == 4

    def test_escape_split_across_words(self):
        """Escape octet in the last lane, target in the next word."""
        data = stuff(bytes([0x41, 0x42, 0x43, 0x7E, 0x44, 0x45]))
        assert data[3] == 0x7D  # the escape lands on lane 3
        _, unit, sink = run_detect(data)
        assert sink.data() == bytes([0x41, 0x42, 0x43, 0x7E, 0x44, 0x45])

    def test_multi_frame_stream(self, rng):
        frames = [
            rng.integers(0, 256, int(rng.integers(1, 60)), dtype="uint8").tobytes()
            for _ in range(8)
        ]
        beats = []
        for frame in frames:
            beats.extend(beats_from_bytes(frame, 4))
        c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
        src = StreamSource("src", c_in, beats)
        unit = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
        sink = StreamSink("sink", c_out)
        sim = Simulator([src, unit, sink], [c_in, c_out])
        sim.run_until(
            lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
            timeout=10_000,
        )
        assert sink.data() == b"".join(stuff(f) for f in frames)
        assert sum(b.eof for b in sink.beats) == len(frames)


class TestTiming:
    def test_four_cycle_fill_latency(self):
        """Paper: 'first data ... delayed by 4 clock cycles'."""
        from repro.analysis import measure_escape_latency
        from repro.core.config import P5Config

        report = measure_escape_latency(P5Config.thirty_two_bit())
        assert report.fill_cycles == 4
        assert 45 <= report.fill_ns <= 60   # "approximately 50ns"

    def test_continuous_flow_after_fill(self):
        """Paper: 'Subsequent data flow is continuous and efficient.'"""
        data = bytes(range(1, 41)) * 10   # no escapable bytes
        sim, unit, sink = run_generate(data)
        words = len(data) // 4
        # Total cycles = words + fill + small drain margin.
        assert sim.cycle <= words + 8

    def test_worst_case_throughput_halves(self):
        """All-flag payload doubles the stream: intake rate must halve."""
        data = bytes([0x7E]) * 400
        sim, unit, sink = run_generate(data)
        assert sink.data() == stuff(data)
        in_rate = unit.bytes_in / sim.cycle
        out_rate = unit.bytes_out / sim.cycle
        assert in_rate < 0.55 * 4          # intake halved
        assert out_rate > 0.9 * 4          # output still near line rate

    def test_deeper_pipeline_longer_fill(self):
        from repro.analysis import measure_escape_latency
        from repro.core.config import P5Config

        cfg = P5Config.thirty_two_bit()
        fills = [
            measure_escape_latency(cfg, pipeline_stages=s).fill_cycles
            for s in (2, 3, 4, 6)
        ]
        assert fills == [2, 3, 4, 6]


class TestBackpressure:
    def test_resync_occupancy_stays_low(self, rng):
        """The paper's 'extremely low resynchronisation buffer'."""
        data = rng.integers(0, 256, 2000, dtype="uint8").tobytes()
        _, unit, _ = run_generate(data)
        assert unit.max_resync_occupancy <= 3

    def test_worst_case_never_overflows(self):
        data = bytes([0x7E]) * 1000
        _, unit, _ = run_generate(data, resync=3)
        assert unit.max_resync_occupancy <= 3

    def test_slow_sink_no_data_loss(self, rng):
        data = rng.integers(0, 256, 600, dtype="uint8").tobytes()
        _, unit, sink = run_generate(
            data, sink_stall=StallPattern(probability=0.4, seed=3)
        )
        assert sink.data() == stuff(data)

    def test_slow_source_no_data_loss(self, rng):
        data = rng.integers(0, 256, 600, dtype="uint8").tobytes()
        _, unit, sink = run_generate(
            data, src_stall=StallPattern(probability=0.4, seed=4)
        )
        assert sink.data() == stuff(data)

    def test_both_sides_stalling(self, rng):
        data = rng.integers(0, 256, 400, dtype="uint8").tobytes()
        _, unit, sink = run_detect(
            stuff(data),
            src_stall=StallPattern(probability=0.3, seed=5),
            sink_stall=StallPattern(probability=0.3, seed=6),
        )
        assert sink.data() == data

    def test_byte_conservation_counters(self, rng):
        data = rng.integers(0, 256, 500, dtype="uint8").tobytes()
        _, unit, sink = run_generate(data)
        assert unit.bytes_in == len(data)
        assert unit.bytes_out == len(stuff(data))
        assert unit.bytes_out == unit.bytes_in + unit.octets_escaped


class TestConfiguration:
    def test_resync_minimum_enforced(self):
        c_in, c_out = Channel("in"), Channel("out")
        with pytest.raises(ValueError):
            PipelinedEscapeGenerate(
                "gen", c_in, c_out, width_bytes=4, resync_depth_words=2
            )

    def test_stage_minimum_enforced(self):
        c_in, c_out = Channel("in"), Channel("out")
        with pytest.raises(ValueError):
            PipelinedEscapeGenerate(
                "gen", c_in, c_out, width_bytes=4, pipeline_stages=1
            )

    def test_programmable_escape_set(self):
        c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
        src = StreamSource("src", c_in, beats_from_bytes(b"\x11\x41\x42\x43", 4))
        unit = PipelinedEscapeGenerate(
            "gen", c_in, c_out, width_bytes=4,
            escapes=frozenset({0x7E, 0x7D, 0x11}),
        )
        sink = StreamSink("sink", c_out)
        sim = Simulator([src, unit, sink], [c_in, c_out])
        sim.run_until(
            lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
            timeout=1000,
        )
        assert sink.data() == bytes([0x7D, 0x31, 0x41, 0x42, 0x43])

    def test_detect_dangling_escape_counted(self):
        _, unit, sink = run_detect(bytes([0x41, 0x42, 0x43, 0x7D]))
        assert unit.dangling_escape_errors == 1
        assert sink.data() == bytes([0x41, 0x42, 0x43])
