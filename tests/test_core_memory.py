"""Unit tests for shared memory, descriptor rings and DMA endpoints."""

import pytest

from repro.core.config import P5Config
from repro.core.memory import (
    EOF_FLAG,
    ERR_FLAG,
    OWN_HW,
    Descriptor,
    DescriptorRing,
    DmaRxFrameSink,
    DmaTxFrameSource,
    SharedMemory,
)
from repro.errors import ConfigError, SimulationError
from repro.rtl import Channel, Simulator, StreamSink


class TestSharedMemory:
    def test_read_write(self):
        memory = SharedMemory(64)
        memory.write(10, b"hello")
        assert memory.read(10, 5) == b"hello"

    def test_bounds_checked(self):
        memory = SharedMemory(16)
        with pytest.raises(SimulationError):
            memory.write(12, b"too long!")
        with pytest.raises(SimulationError):
            memory.read(-1, 4)

    def test_size_validated(self):
        with pytest.raises(ConfigError):
            SharedMemory(0)

    def test_access_counters(self):
        memory = SharedMemory(16)
        memory.write(0, b"x")
        memory.read(0, 1)
        assert memory.writes == 1 and memory.reads == 1


class TestDescriptorRing:
    def test_own_bit_handover(self):
        ring = DescriptorRing(4)
        ring.host_post(0, address=0, length=10)
        assert ring.hw_current() is not None
        ring.hw_complete()
        assert ring.host_reclaim(0) is not None
        assert ring.hw_current() is None   # next slot not posted

    def test_host_cannot_repost_hw_owned(self):
        ring = DescriptorRing(2)
        ring.host_post(0, 0, 10)
        with pytest.raises(SimulationError):
            ring.host_post(0, 0, 20)

    def test_hw_cannot_complete_unowned(self):
        ring = DescriptorRing(2)
        with pytest.raises(SimulationError):
            ring.hw_complete()

    def test_cursor_wraps(self):
        ring = DescriptorRing(2)
        for _ in range(3):
            ring.host_post(ring.head, 0, 1)
            ring.hw_complete()
        assert ring.completed == 3

    def test_minimum_size(self):
        with pytest.raises(ConfigError):
            DescriptorRing(1)

    def test_status_writeback(self):
        ring = DescriptorRing(2)
        ring.host_post(0, 0, 10)
        ring.hw_complete(status=EOF_FLAG | ERR_FLAG, length=7)
        descriptor = ring.host_reclaim(0)
        assert descriptor.length == 7
        assert descriptor.flags & ERR_FLAG and not descriptor.hw_owned


class TestDmaTx:
    def _setup(self, frames, width=4):
        memory = SharedMemory(4096)
        ring = DescriptorRing(8)
        offset = 0
        for i, frame in enumerate(frames):
            memory.write(offset, frame)
            ring.host_post(i, offset, len(frame))
            offset += len(frame)
        channel = Channel("dma.out", capacity=2)
        dma = DmaTxFrameSource(
            "dma", channel, memory=memory, ring=ring, width_bytes=width
        )
        sink = StreamSink("sink", channel)
        sim = Simulator([dma, sink], [channel])
        return dma, sink, sim, ring

    def test_frames_streamed_with_marks(self, rng):
        frames = [rng.integers(0, 256, n, dtype="uint8").tobytes()
                  for n in (10, 7, 16)]
        dma, sink, sim, ring = self._setup(frames)
        sim.run_until(lambda: ring.completed == 3 and not sink.inp.can_pop,
                      timeout=100)
        assert sink.data() == b"".join(frames)
        assert sum(b.eof for b in sink.beats) == 3
        assert sum(b.sof for b in sink.beats) == 3

    def test_one_word_per_cycle(self, rng):
        frames = [rng.integers(0, 256, 40, dtype="uint8").tobytes()]
        dma, sink, sim, ring = self._setup(frames)
        sim.run_until(lambda: ring.completed == 1, timeout=100)
        assert sim.cycle >= 10   # 40 bytes / 4 per cycle

    def test_idle_without_descriptors(self):
        memory = SharedMemory(64)
        ring = DescriptorRing(2)
        channel = Channel("out", capacity=2)
        dma = DmaTxFrameSource("dma", channel, memory=memory, ring=ring,
                               width_bytes=4)
        sim = Simulator([dma], [channel])
        sim.step(10)
        assert not channel.can_pop and not dma.busy


class TestDmaEndToEnd:
    def test_tx_dma_through_full_pipeline_to_rx_dma(self, rng):
        """Host memory -> TX DMA -> P5 pipelines -> RX DMA -> host memory."""
        from repro.core.crc_unit import CrcCheck, CrcGenerate
        from repro.core.escape_pipeline import (
            PipelinedEscapeDetect,
            PipelinedEscapeGenerate,
        )
        from repro.core.rx import WordDelineator
        from repro.core.tx import FlagInserter

        config = P5Config.thirty_two_bit()
        w = config.width_bytes
        frames = [rng.integers(0, 256, n, dtype="uint8").tobytes()
                  for n in (30, 61, 8)]

        tx_mem, rx_mem = SharedMemory(4096), SharedMemory(4096)
        tx_ring, rx_ring = DescriptorRing(8), DescriptorRing(8)
        offset = 0
        for i, frame in enumerate(frames):
            tx_mem.write(offset, frame)
            tx_ring.host_post(i, offset, len(frame))
            offset += len(frame)
        for i in range(4):
            rx_ring.host_post(i, i * 512, 512)

        c1 = Channel("c1", capacity=2)
        c2 = Channel("c2", capacity=8)
        c3 = Channel("c3", capacity=4)
        c4 = Channel("c4", capacity=4)
        c5 = Channel("c5", capacity=2 * w + 4)
        c6 = Channel("c6", capacity=6)
        c7 = Channel("c7", capacity=6)

        dma_tx = DmaTxFrameSource("dmaTx", c1, memory=tx_mem, ring=tx_ring,
                                  width_bytes=w)
        crc_gen = CrcGenerate("crcgen", c1, c2, width_bytes=w, spec=config.fcs)
        esc_gen = PipelinedEscapeGenerate("escgen", c2, c3, width_bytes=w)
        flags = FlagInserter("flags", c3, c4, width_bytes=w)
        delin = WordDelineator("delin", c4, c5, width_bytes=w)
        esc_det = PipelinedEscapeDetect("escdet", c5, c6, width_bytes=w)
        crc_chk = CrcCheck("crcchk", c6, c7, width_bytes=w, spec=config.fcs)
        dma_rx = DmaRxFrameSink("dmaRx", c7, crc_chk, memory=rx_mem,
                                ring=rx_ring)

        modules = [dma_tx, crc_gen, esc_gen, flags, delin, esc_det, crc_chk, dma_rx]
        sim = Simulator(modules, [c1, c2, c3, c4, c5, c6, c7])
        sim.run_until(lambda: dma_rx.frames_stored == 3, timeout=100_000)

        received = dma_rx.host_collect()
        assert [frame for frame, _ in received] == frames
        assert all(good for _, good in received)

    def test_rx_overrun_without_buffers(self, rng):
        """A starved RX ring drops frames but keeps frame sync."""
        from repro.core.crc_unit import CrcCheck

        config = P5Config.thirty_two_bit()
        memory = SharedMemory(1024)
        ring = DescriptorRing(2)   # never posted: no buffers at all
        channel = Channel("in", capacity=8)
        crc = CrcCheck("crc", Channel("x"), Channel("y"),
                       width_bytes=4, spec=config.fcs)
        sink = DmaRxFrameSink("dma", channel, crc, memory=memory, ring=ring)
        from repro.rtl import beats_from_bytes

        for beat in beats_from_bytes(b"0123456789AB", 4):
            channel.push(beat)
        sim = Simulator([sink], [channel])
        sim.step(10)
        assert sink.frames_dropped_no_descriptor == 1
        assert sink.frames_stored == 0
