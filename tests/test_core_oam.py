"""Unit tests for the Protocol OAM block and the register map."""

import pytest

from repro.core.config import P5Config
from repro.core.oam import (
    ADDR_CTRL,
    ADDR_ESC_INSERTED,
    ADDR_IRQ_MASK,
    ADDR_IRQ_PENDING,
    ADDR_RX_FCS_ERRORS,
    ADDR_RX_FRAMES_OK,
    ADDR_STATION_ADDRESS,
    ADDR_TX_FRAMES,
    CTRL_RX_ENABLE,
    CTRL_TX_ENABLE,
    IRQ_RX_ERROR,
    IRQ_RX_FRAME,
    IRQ_TX_DONE,
)
from repro.core.p5 import P5System, run_duplex_exchange
from repro.core.regmap import Register, RegisterMap
from repro.errors import ConfigError


class TestRegisterMap:
    def test_read_write(self):
        regs = RegisterMap()
        regs.add(Register("A", 0x0, access="rw", reset=5))
        assert regs.read(0x0) == 5
        regs.write(0x0, 9)
        assert regs.read(0x0) == 9

    def test_read_only_ignores_writes(self):
        regs = RegisterMap()
        regs.add(Register("S", 0x1, access="ro", reset=3))
        regs.write(0x1, 77)
        assert regs.read(0x1) == 3

    def test_w1c_semantics(self):
        regs = RegisterMap()
        reg = regs.add(Register("P", 0x2, access="w1c"))
        reg.value = 0b1011
        regs.write(0x2, 0b0010)
        assert regs.read(0x2) == 0b1001

    def test_on_read_provider(self):
        counter = {"n": 0}
        regs = RegisterMap()
        regs.add(Register("C", 0x3, access="ro",
                          on_read=lambda: counter["n"]))
        counter["n"] = 42
        assert regs.read(0x3) == 42

    def test_duplicate_address_rejected(self):
        regs = RegisterMap()
        regs.add(Register("A", 0x0))
        with pytest.raises(ConfigError):
            regs.add(Register("B", 0x0))

    def test_duplicate_name_rejected(self):
        regs = RegisterMap()
        regs.add(Register("A", 0x0))
        with pytest.raises(ConfigError):
            regs.add(Register("A", 0x1))

    def test_unknown_address(self):
        with pytest.raises(KeyError):
            RegisterMap().read(0x99)

    def test_reset(self):
        regs = RegisterMap()
        regs.add(Register("A", 0x0, reset=1))
        regs.write(0x0, 7)
        regs.reset()
        assert regs.read(0x0) == 1

    def test_name_access(self):
        regs = RegisterMap()
        regs.add(Register("A", 0x0))
        regs.write_name("A", 3)
        assert regs.read_name("A") == 3

    def test_dump_format(self):
        regs = RegisterMap()
        regs.add(Register("CTRL", 0x0, reset=0xAB))
        assert "CTRL" in regs.dump() and "0x000000AB" in regs.dump()

    def test_invalid_access_mode(self):
        with pytest.raises(ConfigError):
            Register("X", 0, access="wo")


class TestProtocolOam:
    def test_reset_values(self):
        oam = P5System(P5Config(address=0x0B)).oam
        assert oam.read(ADDR_STATION_ADDRESS) == 0x0B
        assert oam.read(ADDR_CTRL) == CTRL_TX_ENABLE | CTRL_RX_ENABLE

    def test_ctrl_gates_transmitter(self):
        system = P5System()
        system.oam.write(ADDR_CTRL, 0)   # clear TX enable
        assert not system.tx.source.enabled
        system.oam.write(ADDR_CTRL, CTRL_TX_ENABLE)
        assert system.tx.source.enabled

    def test_counters_reflect_traffic(self):
        result = run_duplex_exchange([b"frame one!", b"frame two!"], [], timeout=50_000)
        oam_a, oam_b = result.a.oam, result.b.oam
        assert oam_a.read(ADDR_TX_FRAMES) == 2
        assert oam_b.read(ADDR_RX_FRAMES_OK) == 2
        assert oam_b.read(ADDR_RX_FCS_ERRORS) == 0

    def test_escape_counters(self):
        content = bytes([0x7E] * 8)
        result = run_duplex_exchange([content], [], timeout=50_000)
        # Stuffing escapes the 8 flags (plus any escapable FCS octets).
        assert result.a.oam.read(ADDR_ESC_INSERTED) >= 8
        assert result.b.oam.regs.read_name("ESC_DELETED") == \
            result.a.oam.read(ADDR_ESC_INSERTED)

    def test_rx_frame_interrupt(self):
        result = run_duplex_exchange([b"interrupt me"], [], timeout=50_000)
        oam = result.b.oam
        assert oam.read(ADDR_IRQ_PENDING) & IRQ_RX_FRAME
        assert oam.irq_asserted

    def test_tx_done_interrupt(self):
        result = run_duplex_exchange([b"payload"], [], timeout=50_000)
        assert result.a.oam.read(ADDR_IRQ_PENDING) & IRQ_TX_DONE

    def test_irq_ack_clears(self):
        result = run_duplex_exchange([b"payload"], [], timeout=50_000)
        oam = result.b.oam
        pending = oam.read(ADDR_IRQ_PENDING)
        oam.write(ADDR_IRQ_PENDING, pending)   # w1c everything
        assert oam.read(ADDR_IRQ_PENDING) == 0
        assert not oam.irq_asserted

    def test_irq_mask(self):
        result = run_duplex_exchange([b"payload"], [], timeout=50_000)
        oam = result.b.oam
        oam.write(ADDR_IRQ_MASK, 0)
        assert not oam.irq_asserted

    def test_resync_highwater_exposed(self):
        content = bytes([0x7E] * 64)
        result = run_duplex_exchange([content], [], timeout=50_000)
        hw = result.a.oam.regs.read_name("RESYNC_HIGHWATER_TX")
        assert 1 <= hw <= 3
