"""End-to-end tests for the duplex P5 system (paper Figure 2)."""

import pytest

from repro.core import P5Config, run_duplex_exchange
from repro.core.p5 import build_duplex
from repro.crc import CRC16_X25
from repro.hdlc.constants import FLAG_OCTET
from repro.phy import make_beat_corruptor
from repro.ppp.frame import PPPFrame
from repro.workloads import ppp_frame_contents


class TestDuplexExchange:
    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_all_widths_deliver(self, width):
        frames_a = ppp_frame_contents(4, seed=1)
        frames_b = ppp_frame_contents(2, seed=2)
        result = run_duplex_exchange(
            frames_a, frames_b, P5Config(width_bits=width), timeout=400_000
        )
        assert [c for c, _ in result.b_received] == frames_a
        assert [c for c, _ in result.a_received] == frames_b
        assert result.all_good()

    def test_wider_is_faster(self):
        frames = ppp_frame_contents(3, seed=3)
        cycles = {}
        for width in (8, 32):
            cycles[width] = run_duplex_exchange(
                frames, [], P5Config(width_bits=width), timeout=400_000
            ).cycles
        # 4x the datapath should be roughly 4x fewer cycles (within 2x slop).
        assert cycles[8] > 2.0 * cycles[32]

    def test_escape_dense_traffic(self):
        content = PPPFrame(
            protocol=0x0021, information=bytes([0x7E, 0x7D]) * 100
        ).encode()
        result = run_duplex_exchange([content] * 3, [], timeout=400_000)
        assert [c for c, _ in result.b_received] == [content] * 3
        assert result.all_good()

    def test_one_byte_information(self):
        content = PPPFrame(protocol=0x0021, information=b"x").encode()
        result = run_duplex_exchange([content], [], timeout=50_000)
        assert result.b_received[0][0] == content

    def test_mtu_sized_frame(self):
        content = PPPFrame(protocol=0x0021, information=bytes(1500)).encode()
        result = run_duplex_exchange([content], [], timeout=100_000)
        assert result.b_received[0][0] == content

    def test_fcs16_configuration(self):
        config = P5Config(width_bits=32, fcs=CRC16_X25)
        frames = ppp_frame_contents(2, seed=4)
        result = run_duplex_exchange(frames, [], config, timeout=100_000)
        assert [c for c, _ in result.b_received] == frames

    def test_programmable_address(self):
        """MAPOS-style station addressing through the full datapath."""
        config = P5Config(address=0x0B)
        content = PPPFrame(
            protocol=0x0021, information=b"to station 5", address=0x0B
        ).encode()
        result = run_duplex_exchange([content], [], config, timeout=50_000)
        decoded = PPPFrame.decode(result.b_received[0][0], expected_address=0x0B)
        assert decoded.address == 0x0B


class TestErrorInjection:
    def test_corrupted_wire_detected_never_delivered_as_good(self):
        frames = ppp_frame_contents(20, seed=5)
        corrupt = make_beat_corruptor(ber=2e-4, seed=9)
        a, b, sim = build_duplex(P5Config.thirty_two_bit(), corrupt_ab=corrupt)
        for frame in frames:
            a.submit(frame)
        sim.run_until(
            lambda: not a.tx.busy and a.idle() and b.idle(), timeout=500_000
        )
        ok = [c for c, good in b.received() if good]
        bad = [c for c, good in b.received() if not good]
        assert corrupt.line.bits_flipped > 0
        assert len(bad) > 0, "with this BER some frames must break"
        # Every frame delivered as good must be byte-identical to a sent one.
        assert all(c in frames for c in ok)
        fcs_counted = b.rx.crc.fcs_errors + b.rx.crc.runt_frames
        assert fcs_counted >= 1

    def test_clean_wire_all_good(self):
        frames = ppp_frame_contents(10, seed=6)
        result = run_duplex_exchange(frames, [], timeout=400_000)
        assert result.all_good()
        assert result.b.rx.crc.fcs_errors == 0


class TestIdleAndFlags:
    def test_flags_delimit_every_frame(self):
        result = run_duplex_exchange([b"one", b"two"], [], timeout=50_000)
        assert result.a.tx.flags.flags_inserted == 4  # open+close per frame

    def test_system_idle_after_exchange(self):
        result = run_duplex_exchange([b"payload"], [], timeout=50_000)
        assert result.a.idle() and result.b.idle()

    def test_received_accessor(self):
        result = run_duplex_exchange([b"payload"], [], timeout=50_000)
        assert result.b.received() == result.b_received
