"""Tests for the programmable framing octets (flag/escape registers)."""

import pytest

from repro.core import P5Config, run_duplex_exchange
from repro.core.oam import ADDR_FRAMING
from repro.core.p5 import build_duplex
from repro.errors import ConfigError


class TestConfigValidation:
    def test_defaults_are_hdlc(self):
        config = P5Config()
        assert config.flag_octet == 0x7E and config.esc_octet == 0x7D

    def test_flag_equals_escape_rejected(self):
        with pytest.raises(ConfigError):
            P5Config(flag_octet=0x55, esc_octet=0x55)

    def test_escaped_form_collision_rejected(self):
        # flag ^ 0x20 == esc would make the escaped flag look like an
        # escape octet: un-delineable.
        with pytest.raises(ConfigError):
            P5Config(flag_octet=0x40, esc_octet=0x60)

    def test_range_checked(self):
        with pytest.raises(ConfigError):
            P5Config(flag_octet=0x100)

    def test_escape_set_follows_config(self):
        config = P5Config(flag_octet=0xC3, esc_octet=0xC9)
        assert config.escape_octets == frozenset({0xC3, 0xC9})


class TestCustomFramingEndToEnd:
    @pytest.mark.parametrize("width", [8, 32])
    def test_custom_octets_round_trip(self, width, rng):
        config = P5Config(width_bits=width, flag_octet=0xC3, esc_octet=0xC9)
        frames = [
            bytes([0xC3, 0xC9]) * 15,                      # worst case
            rng.integers(0, 256, 100, dtype="uint8").tobytes(),
        ]
        result = run_duplex_exchange(frames, [], config, timeout=200_000)
        assert [c for c, _ in result.b_received] == frames
        assert result.all_good()

    def test_wire_uses_custom_flag(self):
        from repro.core.tx import P5Transmitter
        from repro.rtl import Simulator, StreamSink

        config = P5Config(flag_octet=0xC3, esc_octet=0xC9)
        tx = P5Transmitter(config)
        tx.submit(b"payload without specials")
        sink = StreamSink("s", tx.phy_out)
        sim = Simulator(tx.modules + [sink], tx.channels)
        sim.run_until(lambda: not tx.busy and not tx.phy_out.can_pop,
                      timeout=10_000)
        wire = sink.data()
        assert wire[0] == 0xC3 and wire[-1] == 0xC3
        assert 0x7E not in (wire[0], wire[-1])

    def test_hdlc_7e_is_ordinary_data_under_custom_framing(self):
        """With reprogrammed octets, 0x7E needs no escaping at all."""
        config = P5Config(flag_octet=0xC3, esc_octet=0xC9)
        frames = [bytes([0x7E, 0x7D]) * 20]
        result = run_duplex_exchange(frames, [], config, timeout=100_000)
        assert result.b_received[0][0] == frames[0]
        assert result.a.tx.escape.octets_escaped == 0


class TestOamReprogramming:
    def test_framing_register_reset_value(self):
        from repro.core import P5System

        system = P5System(P5Config(flag_octet=0xC3, esc_octet=0xC9))
        assert system.oam.read(ADDR_FRAMING) == (0xC9 << 8) | 0xC3

    def test_live_reprogramming(self):
        a, b, sim = build_duplex(P5Config.thirty_two_bit())
        for system in (a, b):
            system.oam.write(ADDR_FRAMING, (0xC9 << 8) | 0xC3)
        content = bytes([0xC3, 0x7E, 0x55]) * 10
        a.submit(content)
        sim.run_until(lambda: len(b.received()) == 1, timeout=20_000)
        assert b.received()[0] == (content, True)

    def test_nonsense_write_ignored(self):
        from repro.core import P5System

        system = P5System()
        system.oam.write(ADDR_FRAMING, (0x55 << 8) | 0x55)   # flag == esc
        assert system.tx.flags.flag_octet == 0x7E   # unchanged

    def test_mismatched_framing_fails_delineation(self):
        """A receiver on different framing octets sees no frames."""
        a, b, sim = build_duplex(P5Config.thirty_two_bit())
        a.oam.write(ADDR_FRAMING, (0xC9 << 8) | 0xC3)   # only the TX side
        a.submit(b"misframed payload")
        import pytest as _pytest

        from repro.errors import SimulationError

        with _pytest.raises(SimulationError):
            sim.run_until(lambda: len(b.received()) >= 1, timeout=2_000)
        assert b.rx.delineator.octets_discarded_hunting > 0
