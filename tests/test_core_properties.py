"""Property-based tests on the cycle-accurate datapath.

The central invariant: under *any* payload and *any* stall pattern on
either side, the pipelined units are byte-exact against the RFC 1662
software reference — no loss, duplication or reordering.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.escape_pipeline import (
    PipelinedEscapeDetect,
    PipelinedEscapeGenerate,
)
from repro.hdlc import stuff
from repro.rtl import (
    Channel,
    Simulator,
    StallPattern,
    StreamSink,
    StreamSource,
    beats_from_bytes,
)

# Payloads biased towards escape-heavy content: plain strategy plus
# explicit flag/escape injection.
escapey_payloads = st.one_of(
    st.binary(min_size=1, max_size=200),
    st.lists(
        st.sampled_from([0x7E, 0x7D, 0x41, 0x00, 0xFF, 0x5E, 0x5D]),
        min_size=1,
        max_size=200,
    ).map(bytes),
)


def _run(unit_cls, data, width, seed_a, seed_b):
    c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
    src = StreamSource(
        "src", c_in, beats_from_bytes(data, width),
        stall=StallPattern(probability=0.25, seed=seed_a),
    )
    unit = unit_cls("u", c_in, c_out, width_bytes=width)
    sink = StreamSink(
        "sink", c_out, stall=StallPattern(probability=0.25, seed=seed_b)
    )
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=len(data) * 50 + 1000,
    )
    return unit, sink


@settings(max_examples=40, deadline=None)
@given(
    data=escapey_payloads,
    width=st.sampled_from([1, 2, 4, 8]),
    seed_a=st.integers(min_value=0, max_value=2**16),
    seed_b=st.integers(min_value=0, max_value=2**16),
)
def test_generate_byte_exact_under_stalls(data, width, seed_a, seed_b):
    unit, sink = _run(PipelinedEscapeGenerate, data, width, seed_a, seed_b)
    assert sink.data() == stuff(data)


@settings(max_examples=40, deadline=None)
@given(
    data=escapey_payloads,
    width=st.sampled_from([1, 2, 4, 8]),
    seed_a=st.integers(min_value=0, max_value=2**16),
    seed_b=st.integers(min_value=0, max_value=2**16),
)
def test_detect_byte_exact_under_stalls(data, width, seed_a, seed_b):
    unit, sink = _run(PipelinedEscapeDetect, stuff(data), width, seed_a, seed_b)
    assert sink.data() == data


@settings(max_examples=30, deadline=None)
@given(data=escapey_payloads)
def test_resync_buffer_bounded(data):
    """The backpressure invariant: the buffer never exceeds its depth."""
    unit, _ = _run(PipelinedEscapeGenerate, data, 4, 1, 2)
    assert unit.max_resync_occupancy <= unit.resync_capacity


@settings(max_examples=30, deadline=None)
@given(
    frames=st.lists(st.binary(min_size=1, max_size=50), min_size=1, max_size=5)
)
def test_multi_frame_eof_marks(frames):
    """Every input frame produces exactly one eof at the output."""
    beats = []
    for frame in frames:
        beats.extend(beats_from_bytes(frame, 4))
    c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=2)
    src = StreamSource("src", c_in, beats)
    unit = PipelinedEscapeGenerate("u", c_in, c_out, width_bytes=4)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, unit, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and unit.idle and not c_in.can_pop and not c_out.can_pop,
        timeout=20_000,
    )
    assert sum(beat.eof for beat in sink.beats) == len(frames)
    assert sum(beat.sof for beat in sink.beats) == len(frames)
    assert sink.data() == b"".join(stuff(f) for f in frames)
