"""Unit tests for the byte sorter (the paper's core mechanism)."""

import pytest

from repro.core.sorter import ByteSorter
from repro.errors import BackpressureOverflow


class TestBasicRepacking:
    def test_exact_word_passes_through(self):
        sorter = ByteSorter(4)
        assert sorter.push(b"abcd") == [b"abcd"]
        assert sorter.occupancy == 0

    def test_ragged_input_carries(self):
        sorter = ByteSorter(4)
        assert sorter.push(b"abc") == []
        assert sorter.occupancy == 3
        assert sorter.push(b"de") == [b"abcd"]
        assert sorter.occupancy == 1

    def test_expansion_case_from_paper_figure5(self):
        """7E 12 34 56 stuffs to 5 bytes: one word out + one carried."""
        sorter = ByteSorter(4)
        words = sorter.push(bytes([0x7D, 0x5E, 0x12, 0x34, 0x56]))
        assert words == [bytes([0x7D, 0x5E, 0x12, 0x34])]
        assert sorter.occupancy == 1

    def test_double_word_burst(self):
        sorter = ByteSorter(4)
        words = sorter.push(bytes(range(9)))
        assert words == [bytes([0, 1, 2, 3]), bytes([4, 5, 6, 7])]
        assert sorter.occupancy == 1

    def test_empty_push(self):
        sorter = ByteSorter(4)
        assert sorter.push(b"") == []

    def test_flush_partial(self):
        sorter = ByteSorter(4)
        sorter.push(b"ab")
        assert sorter.flush() == b"ab"
        assert sorter.flush() is None

    def test_order_preserved_across_many_pushes(self, rng):
        sorter = ByteSorter(4)
        chunks = [
            rng.integers(0, 256, int(rng.integers(0, 9)), dtype="uint8").tobytes()
            for _ in range(100)
        ]
        out = bytearray()
        for chunk in chunks:
            for word in sorter.push(chunk):
                out += word
        tail = sorter.flush()
        if tail:
            out += tail
        assert bytes(out) == b"".join(chunks)

    def test_reset(self):
        sorter = ByteSorter(4)
        sorter.push(b"abc")
        sorter.reset()
        assert sorter.occupancy == 0 and sorter.flush() is None


class TestInvariants:
    def test_width_validated(self):
        with pytest.raises(ValueError):
            ByteSorter(0)

    def test_carry_never_holds_full_word(self, rng):
        """The structural residue bound: occupancy < W after every push."""
        sorter = ByteSorter(4)
        for _ in range(200):
            n = int(rng.integers(0, 12))
            sorter.push(rng.integers(0, 256, n, dtype="uint8").tobytes())
            assert sorter.occupancy < 4
        assert sorter.max_carry < 4


class TestStatistics:
    def test_high_water_mark(self):
        sorter = ByteSorter(4)
        sorter.push(b"abc")
        sorter.push(b"")
        assert sorter.max_carry == 3

    def test_counters(self):
        sorter = ByteSorter(2)
        sorter.push(b"abcd")
        assert sorter.bytes_in == 4 and sorter.words_emitted == 2

    def test_decision_cases_quadratic(self):
        """The W(2W+1) decision space behind the paper's area growth."""
        assert ByteSorter(1).decision_cases() == 3
        assert ByteSorter(4).decision_cases() == 36
        assert ByteSorter(8).decision_cases() == 136
        # Superlinear: quadrupling W grows cases > 4x.
        assert ByteSorter(4).decision_cases() > 4 * ByteSorter(1).decision_cases()
