"""Cycle-accurate tests for the complete TX and RX pipelines."""

import pytest

from repro.core.config import P5Config
from repro.core.rx import P5Receiver, WordDelineator
from repro.core.tx import FlagInserter, P5Transmitter, TxFrameSource
from repro.hdlc import HdlcFramer
from repro.rtl import (
    Channel,
    Simulator,
    StreamSink,
    StreamSource,
    beats_from_bytes,
)


def run_tx(frames, config):
    tx = P5Transmitter(config)
    sink = StreamSink("phy_sink", tx.phy_out)
    sim = Simulator(tx.modules + [sink], tx.channels)
    for frame in frames:
        tx.submit(frame)
    sim.run_until(
        lambda: not tx.busy and not tx.phy_out.can_pop, timeout=200_000
    )
    return tx, sink.data()


def run_rx(wire, config):
    rx = P5Receiver(config)
    src = StreamSource(
        "phy_src", rx.phy_in,
        beats_from_bytes(wire, config.width_bytes, frame_marks=False),
    )
    sim = Simulator([src] + rx.modules, rx.channels)
    sim.run_until(
        lambda: src.done
        and not any(ch.can_pop for ch in rx.channels)
        and rx.escape.idle,
        timeout=200_000,
    )
    return rx


class TestTransmitter:
    @pytest.mark.parametrize("width", [8, 32], ids=["8bit", "32bit"])
    def test_wire_is_valid_hdlc(self, width, rng):
        config = P5Config(width_bits=width)
        frames = [rng.integers(0, 256, 40, dtype="uint8").tobytes()
                  for _ in range(3)]
        tx, wire = run_tx(frames, config)
        decoded = HdlcFramer(config.fcs).decode_stream(wire)
        assert [f.content for f in decoded] == frames

    def test_matches_software_framer(self, rng):
        """The hardware pipeline and HdlcFramer produce identical wires."""
        config = P5Config.thirty_two_bit()
        content = rng.integers(0, 256, 100, dtype="uint8").tobytes()
        _, wire = run_tx([content], config)
        assert wire == HdlcFramer(config.fcs).encode(content)

    def test_escape_heavy_frame(self, rng):
        config = P5Config.thirty_two_bit()
        content = bytes([0x7E, 0x7D] * 30)
        _, wire = run_tx([content], config)
        assert HdlcFramer(config.fcs).decode(wire).content == content

    def test_counters(self, rng):
        config = P5Config.thirty_two_bit()
        tx, _ = run_tx([b"abcd" * 5, b"efgh" * 5], config)
        assert tx.flags.frames_wrapped == 2
        assert tx.source.frames_fetched == 2

    def test_empty_frame_rejected(self):
        tx = P5Transmitter(P5Config())
        with pytest.raises(ValueError):
            tx.submit(b"")

    def test_disabled_source_sends_nothing(self):
        config = P5Config.thirty_two_bit()
        tx = P5Transmitter(config)
        tx.source.enabled = False
        tx.submit(b"queued")
        sink = StreamSink("s", tx.phy_out)
        sim = Simulator(tx.modules + [sink], tx.channels)
        sim.step(50)
        assert sink.data() == b""
        tx.source.enabled = True
        sim.run_until(lambda: not tx.busy and not tx.phy_out.can_pop, timeout=1000)
        assert sink.data() != b""


class TestWordDelineator:
    def _run(self, wire, width=4):
        c_in = Channel("in", capacity=2)
        c_out = Channel("out", capacity=2 * width + 4)
        src = StreamSource("src", c_in, beats_from_bytes(wire, width, frame_marks=False))
        delin = WordDelineator("d", c_in, c_out, width_bytes=width)
        sink = StreamSink("sink", c_out)
        sim = Simulator([src, delin, sink], [c_in, c_out])
        sim.run_until(lambda: src.done and not c_in.can_pop and not c_out.can_pop,
                      timeout=50_000)
        return delin, sink

    def test_strips_flags_marks_frames(self):
        wire = b"\x7e" + b"ABCDEFG" + b"\x7e"
        delin, sink = self._run(wire)
        assert sink.data() == b"ABCDEFG"
        assert sink.beats[0].sof and sink.beats[-1].eof
        assert delin.frames_delineated == 1

    def test_word_aligned_body_gets_eof(self):
        """A body of exactly k*W bytes still carries its eof mark."""
        wire = b"\x7e" + b"ABCDEFGH" + b"\x7e"   # 8 = 2 words at W=4
        delin, sink = self._run(wire)
        assert sink.data() == b"ABCDEFGH"
        assert sink.beats[-1].eof

    def test_hunting_discards(self):
        wire = b"\x01\x02\x03\x7eBODY\x7e"
        delin, sink = self._run(wire)
        assert delin.octets_discarded_hunting == 3
        assert sink.data() == b"BODY"

    def test_idle_flags_between_frames(self):
        wire = b"\x7e\x7e\x7eAB\x7e\x7e\x7eCD\x7e"
        delin, sink = self._run(wire)
        assert delin.frames_delineated == 2
        assert delin.empty_bodies >= 2
        assert sink.data() == b"ABCD"

    def test_many_tiny_frames_in_one_word(self):
        wire = b"\x7e" + b"".join(b"%c\x7e" % c for c in b"ABCDEFGH")
        delin, sink = self._run(wire, width=8)
        assert delin.frames_delineated == 8
        assert sink.data() == b"ABCDEFGH"


class TestReceiver:
    @pytest.mark.parametrize("width", [8, 32], ids=["8bit", "32bit"])
    def test_receives_software_encoded_frames(self, width, rng):
        config = P5Config(width_bits=width)
        framer = HdlcFramer(config.fcs)
        frames = [rng.integers(0, 256, int(rng.integers(1, 120)),
                               dtype="uint8").tobytes() for _ in range(5)]
        wire = b"".join(framer.encode(f) for f in frames)
        rx = run_rx(wire, config)
        assert rx.good_frames() == frames
        assert rx.crc.frames_ok == 5

    def test_bad_fcs_flagged_not_delivered_as_good(self, rng):
        config = P5Config.thirty_two_bit()
        framer = HdlcFramer(config.fcs)
        good = rng.integers(0, 256, 50, dtype="uint8").tobytes()
        wire = bytearray(framer.encode(good))
        wire[10] ^= 0x02
        rx = run_rx(bytes(wire), config)
        assert rx.crc.fcs_errors == 1
        assert rx.good_frames() == []
        assert len(rx.frames) == 1 and rx.frames[0][1] is False

    def test_join_mid_stream(self, rng):
        config = P5Config.thirty_two_bit()
        framer = HdlcFramer(config.fcs)
        frames = [rng.integers(0, 256, 60, dtype="uint8").tobytes()
                  for _ in range(3)]
        wire = b"".join(framer.encode(f) for f in frames)
        rx = run_rx(wire[7:], config)   # start inside frame 1
        assert rx.good_frames() == frames[1:]
