"""Unit tests for the three CRC engines and the polynomial registry."""

import zlib

import pytest

from repro.crc import (
    CRC8,
    CRC16_CCITT_FALSE,
    CRC16_KERMIT,
    CRC16_X25,
    CRC32,
    BitSerialCrc,
    CrcSpec,
    ParallelCrc,
    TableCrc,
    get_spec,
    registered_specs,
)
from repro.crc.verify import check_known_value, compare_engines

ALL_SPECS = [CRC8, CRC16_CCITT_FALSE, CRC16_KERMIT, CRC16_X25, CRC32]


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_spec("CRC-32/ISO-HDLC") is CRC32

    def test_ppp_aliases(self):
        assert get_spec("FCS-16") is CRC16_X25
        assert get_spec("FCS-32") is CRC32

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="FCS-16"):
            get_spec("CRC-99/NOPE")

    def test_registered_specs_nonempty(self):
        assert "FCS-32" in registered_specs()

    def test_spec_validates_width(self):
        with pytest.raises(ValueError):
            CrcSpec("bad", 0, 0, 0, False, False, 0, 0, 0)

    def test_spec_validates_field_ranges(self):
        with pytest.raises(ValueError):
            CrcSpec("bad", 8, poly=0x1FF, init=0, refin=False,
                    refout=False, xorout=0, check=0, residue=0)

    def test_mask(self):
        assert CRC16_X25.mask == 0xFFFF
        assert CRC32.mask == 0xFFFFFFFF


class TestKnownValues:
    """The published check values are external ground truth."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_check_value_all_engines(self, spec):
        assert check_known_value(spec)

    def test_crc32_matches_zlib(self, rng):
        for n in (0, 1, 7, 64, 1000):
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            assert BitSerialCrc(CRC32).compute(data) == zlib.crc32(data)

    def test_empty_message(self):
        # CRC-32 of nothing is xorout ^ reflect(init) = 0x00000000 ^ ...
        assert BitSerialCrc(CRC32).compute(b"") == zlib.crc32(b"")


class TestBitSerial:
    def test_streaming_equals_one_shot(self):
        crc = BitSerialCrc(CRC32)
        crc.update(b"1234")
        crc.update(b"56789")
        assert crc.value() == BitSerialCrc(CRC32).compute(b"123456789")

    def test_reset(self):
        crc = BitSerialCrc(CRC32)
        crc.update(b"garbage")
        crc.reset()
        crc.update(b"123456789")
        assert crc.value() == CRC32.check

    def test_update_byte_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BitSerialCrc(CRC32).update_byte(256)

    def test_state_setter_validates(self):
        crc = BitSerialCrc(CRC16_X25)
        with pytest.raises(ValueError):
            crc.state = 0x10000

    def test_residue_property(self):
        """RFC 1662: CRC over message+FCS leaves the magic residue."""
        for spec in (CRC16_X25, CRC32):
            msg = b"residue test message"
            fcs = BitSerialCrc(spec).compute(msg)
            trailer = fcs.to_bytes(spec.width // 8, "little")
            crc = BitSerialCrc(spec)
            crc.update(msg + trailer)
            assert crc.residue_value() == spec.residue


class TestTable:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_agrees_with_bitserial(self, spec, rng):
        for n in (0, 1, 3, 100):
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            assert TableCrc(spec).compute(data) == BitSerialCrc(spec).compute(data)

    def test_streaming(self):
        crc = TableCrc(CRC16_X25)
        crc.update(b"12345").update(b"6789")
        assert crc.value() == CRC16_X25.check

    def test_residue(self):
        msg = b"abc"
        fcs = TableCrc(CRC32).compute(msg)
        crc = TableCrc(CRC32)
        crc.update(msg + fcs.to_bytes(4, "little"))
        assert crc.residue_value() == CRC32.residue


class TestParallel:
    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_agrees_with_bitserial(self, width, rng):
        for n in (1, 4, 5, 63, 64, 200):
            data = rng.integers(0, 256, n, dtype="uint8").tobytes()
            assert (
                ParallelCrc(CRC32, width).compute(data)
                == BitSerialCrc(CRC32).compute(data)
            )

    def test_step_requires_exact_word(self):
        crc = ParallelCrc(CRC32, 32)
        with pytest.raises(ValueError):
            crc.step(b"abc")

    def test_partial_step_bounds(self):
        crc = ParallelCrc(CRC32, 32)
        with pytest.raises(ValueError):
            crc.step_partial(b"abcd")   # full word is not partial
        with pytest.raises(ValueError):
            crc.step_partial(b"")

    def test_word_count(self):
        crc = ParallelCrc(CRC32, 32)
        crc.update(b"0123456789")      # 2 full words + 2-byte tail
        assert crc.words_absorbed == 3

    def test_fcs16_parallel(self, rng):
        data = rng.integers(0, 256, 77, dtype="uint8").tobytes()
        assert (
            ParallelCrc(CRC16_X25, 32).compute(data)
            == BitSerialCrc(CRC16_X25).compute(data)
        )

    def test_rejects_non_multiple_of_8(self):
        with pytest.raises(ValueError):
            ParallelCrc(CRC32, 12)


class TestCompareEngines:
    def test_comparison_structure(self, rng):
        data = rng.integers(0, 256, 50, dtype="uint8").tobytes()
        comparison = compare_engines(CRC32, data)
        assert comparison.consistent
        assert comparison.payload_len == 50
        assert dict(comparison.parallel_by_width)[32] == comparison.bitserial
