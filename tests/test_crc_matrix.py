"""Unit tests for the Pei–Zukowski matrix construction."""

import numpy as np
import pytest

from repro.crc import CRC16_X25, CRC32, BitSerialCrc, build_matrices
from repro.crc.matrix import CrcMatrices
from repro.crc.polynomial import CrcSpec


class TestConstruction:
    def test_dimensions_32bit_paper_case(self):
        """The paper's '32 x 32-bit parallel matrix' for the 32-bit P5."""
        m = build_matrices(CRC32, 32)
        assert m.h_matrix().shape == (32, 32)
        assert m.f_matrix().shape == (32, 32)

    def test_dimensions_8bit_paper_case(self):
        """The paper's '8 x 32-bit parallel matrix' for the 8-bit P5."""
        m = build_matrices(CRC32, 8)
        assert m.h_matrix().shape == (32, 8)
        assert m.f_matrix().shape == (32, 32)

    def test_rejects_non_byte_widths(self):
        with pytest.raises(ValueError):
            build_matrices(CRC32, 5)
        with pytest.raises(ValueError):
            build_matrices(CRC32, 0)

    def test_cached_instances_shared(self):
        assert build_matrices(CRC32, 32) is build_matrices(CRC32, 32)

    def test_unregistered_spec_still_works(self):
        custom = CrcSpec("custom-16", 16, 0x8005, 0, False, False, 0, 0xFEE8, 0)
        m = build_matrices(custom, 16)
        assert m.h_matrix().shape == (16, 16)


class TestLinearAlgebra:
    def test_f_matrix_invertible(self):
        """F must be invertible over GF(2): state history is recoverable."""
        f = build_matrices(CRC32, 32).f_matrix().astype(np.int64)
        # Gaussian elimination mod 2.
        mat = f.copy() % 2
        n = mat.shape[0]
        rank = 0
        for col in range(n):
            pivot_rows = np.nonzero(mat[rank:, col])[0]
            if pivot_rows.size == 0:
                continue
            pivot = pivot_rows[0] + rank
            mat[[rank, pivot]] = mat[[pivot, rank]]
            for r in range(n):
                if r != rank and mat[r, col]:
                    mat[r] ^= mat[rank]
            rank += 1
        assert rank == n

    def test_f_is_serial_step_power(self):
        """F_W must equal the serial transition applied W times."""
        m = build_matrices(CRC32, 8)
        ref = BitSerialCrc(CRC32)
        for j in (0, 5, 31):
            state = 1 << j
            for _ in range(8):
                state = ref.core_step(state, 0)
            assert state == m.f_columns[j]

    def test_step_linearity(self, rng):
        """step(s1^s2, d1^d2) == step(s1,d1) ^ step(s2,d2) ^ step(0,0)."""
        m = build_matrices(CRC32, 32)
        for _ in range(20):
            s1, s2 = (int(x) for x in rng.integers(0, 1 << 32, 2))
            d1, d2 = (int(x) for x in rng.integers(0, 1 << 32, 2))
            lhs = m.step(s1 ^ s2, d1 ^ d2)
            rhs = m.step(s1, d1) ^ m.step(s2, d2) ^ m.step(0, 0)
            assert lhs == rhs
            assert m.step(0, 0) == 0  # strictly linear, no affine part


class TestStepWord:
    @pytest.mark.parametrize("spec", [CRC32, CRC16_X25], ids=lambda s: s.name)
    @pytest.mark.parametrize("width", [8, 32])
    def test_step_word_equals_serial(self, spec, width, rng):
        m = build_matrices(spec, width)
        ref = BitSerialCrc(spec)
        state = spec.init
        serial_state = spec.init
        for _ in range(10):
            word = rng.integers(0, 256, width // 8, dtype="uint8").tobytes()
            state = m.step_word(state, word)
            ref.state = serial_state
            ref.update(word)
            serial_state = ref.state
            assert state == serial_state


class TestFaninAccounting:
    def test_fanin_shape(self):
        fanins = build_matrices(CRC32, 32).xor_fanin_per_output()
        assert fanins.shape == (32,)
        assert (fanins > 0).all()

    def test_fanin_grows_with_width(self):
        f8 = build_matrices(CRC32, 8).xor_fanin_per_output().sum()
        f32 = build_matrices(CRC32, 32).xor_fanin_per_output().sum()
        assert f32 > f8
