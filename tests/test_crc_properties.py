"""Property-based tests (hypothesis) for the CRC engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc import CRC16_X25, CRC32, BitSerialCrc, ParallelCrc, TableCrc

payloads = st.binary(min_size=0, max_size=400)


@given(data=payloads)
def test_all_engines_agree_crc32(data):
    expected = BitSerialCrc(CRC32).compute(data)
    assert TableCrc(CRC32).compute(data) == expected
    assert ParallelCrc(CRC32, 32).compute(data) == expected


@given(data=payloads)
def test_all_engines_agree_fcs16(data):
    expected = BitSerialCrc(CRC16_X25).compute(data)
    assert TableCrc(CRC16_X25).compute(data) == expected
    assert ParallelCrc(CRC16_X25, 8).compute(data) == expected


@given(data=st.binary(min_size=1, max_size=300))
def test_residue_invariant(data):
    """Appending the little-endian FCS always leaves the magic residue."""
    for spec in (CRC16_X25, CRC32):
        fcs = TableCrc(spec).compute(data)
        crc = TableCrc(spec)
        crc.update(data + fcs.to_bytes(spec.width // 8, "little"))
        assert crc.residue_value() == spec.residue


@given(data=st.binary(min_size=1, max_size=200),
       flip=st.integers(min_value=0))
def test_single_bit_error_always_detected(data, flip):
    """A CRC detects every single-bit error by construction."""
    bit = flip % (len(data) * 8)
    corrupted = bytearray(data)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    assert BitSerialCrc(CRC32).compute(data) != BitSerialCrc(CRC32).compute(
        bytes(corrupted)
    )


@given(a=payloads, b=payloads)
def test_streaming_split_invariance(a, b):
    """CRC(a||b) must not depend on how the stream was chunked.

    The parallel engine absorbs bytes at byte granularity (partial
    steps), so chunk boundaries — even mid-word — cannot change the
    result.
    """
    whole = BitSerialCrc(CRC32).compute(a + b)
    crc = ParallelCrc(CRC32, 32)
    crc.update(a)
    crc.update(b)
    assert crc.value() == whole


@given(data=st.binary(min_size=64, max_size=256))
@settings(max_examples=25)
def test_parallel_widths_consistent(data):
    values = {ParallelCrc(CRC32, w).compute(data) for w in (8, 16, 32, 64)}
    assert len(values) == 1
