"""Documentation consistency: everything the docs reference must exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_design_bench_index_files_exist():
    """Every `benchmarks/...py` named in DESIGN.md is a real file."""
    text = (ROOT / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/\w+\.py", text))
    assert referenced, "the experiment index must name bench files"
    for path in referenced:
        assert (ROOT / path).exists(), path


def test_experiments_bench_references_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for path in set(re.findall(r"benchmarks/\w+\.py", text)):
        assert (ROOT / path).exists(), path


def test_every_bench_file_is_indexed():
    """No orphan benchmarks: DESIGN.md's index covers the directory."""
    text = (ROOT / "DESIGN.md").read_text()
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        assert f"benchmarks/{bench.name}" in text, bench.name


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in set(re.findall(r"`(\w+\.py)`", text)):
        if name in ("quickstart.py",) or (ROOT / "examples" / name).exists():
            continue
        pytest.fail(f"README references missing example {name}")


def test_every_example_in_readme():
    text = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in text, f"{example.name} not documented in README"


def test_design_module_map_packages_exist():
    """Every `repro.<pkg>` named in DESIGN.md's inventory imports."""
    import importlib

    text = (ROOT / "DESIGN.md").read_text()
    for module in sorted(set(re.findall(r"`repro\.(\w+)`", text))):
        importlib.import_module(f"repro.{module}")


def test_docs_directory_files_mentioned_in_readme():
    text = (ROOT / "README.md").read_text()
    assert "docs/" in text
    for doc in (ROOT / "docs").glob("*.md"):
        assert doc.exists()


def test_version_single_source():
    from repro import __version__

    pyproject = (ROOT / "pyproject.toml").read_text()
    assert f'version = "{__version__}"' in pyproject


def _rule_catalogue_text() -> str:
    """The docs that together catalogue the rule registry: the DRC/AST
    rules live in linting.md, the static-timing rules in
    timing-analysis.md."""
    return (ROOT / "docs" / "linting.md").read_text() + (
        ROOT / "docs" / "timing-analysis.md"
    ).read_text()


def test_linting_docs_match_rule_registry():
    """The docs catalogue exactly the rules repro.lint exports."""
    from repro.lint import RULES

    documented = set(re.findall(r"\bP5[A-Z]\d{3}\b", _rule_catalogue_text()))
    registered = set(RULES)
    assert documented == registered, (
        f"rule docs drifted from repro.lint.RULES: "
        f"undocumented={sorted(registered - documented)}, "
        f"stale={sorted(documented - registered)}"
    )


def test_linting_docs_state_each_rule_name_and_severity():
    from repro.lint import RULES

    text = _rule_catalogue_text()
    for code, rule in RULES.items():
        row = re.search(rf"\|\s*{code}\s*\|([^|]+)\|([^|]+)\|", text)
        assert row, f"no catalogue row for {code}"
        assert rule.name in row.group(1), f"{code}: name drifted"
        assert rule.severity.value in row.group(2), f"{code}: severity drifted"


def test_linting_doc_linked_from_readme_and_architecture():
    assert "docs/linting.md" in (ROOT / "README.md").read_text()
    assert "linting.md" in (ROOT / "docs" / "architecture.md").read_text()


def test_timing_doc_cross_linked():
    assert "timing-analysis.md" in (ROOT / "docs" / "linting.md").read_text()
    assert "linting.md" in (ROOT / "docs" / "timing-analysis.md").read_text()
