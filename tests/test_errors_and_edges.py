"""Exception-hierarchy contracts and assorted edge branches."""

import pytest

from repro import ReproError
from repro.errors import (
    AbortError,
    BackpressureOverflow,
    ConfigError,
    DeviceCapacityError,
    FcsError,
    FramingError,
    LoopbackError,
    NegotiationError,
    OversizeFrameError,
    PointerError,
    ProtocolError,
    RuntFrameError,
    SimulationError,
    SonetError,
    SynthesisError,
)


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for exc in (
            ConfigError, FramingError, FcsError, AbortError,
            OversizeFrameError, RuntFrameError, ProtocolError,
            NegotiationError, LoopbackError, SonetError, PointerError,
            SimulationError, BackpressureOverflow, SynthesisError,
            DeviceCapacityError,
        ):
            assert issubclass(exc, ReproError), exc

    def test_framing_family(self):
        for exc in (FcsError, AbortError, OversizeFrameError, RuntFrameError):
            assert issubclass(exc, FramingError)

    def test_config_is_also_valueerror(self):
        """Callers using plain ValueError handling still catch it."""
        assert issubclass(ConfigError, ValueError)

    def test_fcs_error_payload(self):
        error = FcsError(0xDEAD, 0xBEEF)
        assert error.expected == 0xDEAD and error.actual == 0xBEEF
        assert "DEAD" in str(error) and "BEEF" in str(error)

    def test_single_catch_point(self):
        """One except clause covers any library failure."""
        from repro.hdlc import unstuff

        with pytest.raises(ReproError):
            unstuff(b"ab\x7e")


class TestConfigEdges:
    def test_describe_mentions_key_facts(self):
        from repro.core import P5Config

        text = P5Config.thirty_two_bit().describe()
        assert "32-bit" in text and "78.125" in text and "FCS-32" in text

    def test_bad_width(self):
        from repro.core import P5Config
        with pytest.raises(ConfigError):
            P5Config(width_bits=24)

    def test_bad_fcs(self):
        from repro.core import P5Config
        from repro.crc import CRC8
        with pytest.raises(ConfigError):
            P5Config(fcs=CRC8)

    def test_bad_clock(self):
        from repro.core import P5Config
        with pytest.raises(ConfigError):
            P5Config(clock_hz=0)

    def test_line_rate(self):
        from repro.core import P5Config
        assert P5Config(width_bits=64).line_rate_bps == pytest.approx(5e9)


class TestRtlEdges:
    def test_module_requires_clock_override(self):
        from repro.rtl import Module

        with pytest.raises(NotImplementedError):
            Module("abstract").on_cycle()

    def test_channel_repr_and_module_repr(self):
        from repro.rtl import Channel, SyncFifo

        ch = Channel("x", capacity=2)
        ch.push(1)
        assert "x" in repr(ch) and "1/2" in repr(ch)
        fifo = SyncFifo("f", Channel("a"), Channel("b"), depth=2)
        assert "SyncFifo" in repr(fifo)

    def test_stall_counters(self):
        from repro.rtl import Channel, StreamSource, beats_from_bytes, Simulator

        out = Channel("out", capacity=1)
        src = StreamSource("s", out, beats_from_bytes(bytes(12), 4))
        sim = Simulator([src], [out])
        sim.step(5)   # nobody drains: source stalls after the first push
        assert src.stalled_cycles >= 3


class TestWorkloadEdges:
    def test_custom_profile(self):
        from repro.workloads import ImixProfile

        profile = ImixProfile("jumbo", (9000,), (1,))
        assert profile.mean_size == 9000
        assert set(profile.sample(10, seed=1)) == {9000}

    def test_packet_stream_identification_increments(self):
        from repro.workloads import PacketStream

        datagrams = PacketStream(seed=1).datagrams(5)
        assert [d.header.identification for d in datagrams] == list(range(5))


class TestSynthEdges:
    def test_netlist_empty_depth(self):
        from repro.synth import Netlist

        assert Netlist("empty").depth == 0

    def test_timing_report_meets_pre_vs_post(self):
        from repro.core import P5Config
        from repro.synth import analyze_timing, get_device, system_area

        report = analyze_timing(
            system_area(P5Config.thirty_two_bit()), get_device("XCV600-4")
        )
        # Pre-layout optimism: passes pre, fails post.
        assert report.meets(78.125, post_layout=False)
        assert not report.meets(78.125, post_layout=True)

    def test_escape_detect_vs_generate_depth_equal(self):
        from repro.core import P5Config
        from repro.synth import escape_detect_area, escape_generate_area

        cfg = P5Config.thirty_two_bit()
        assert escape_detect_area(cfg).depth == escape_generate_area(cfg).depth
