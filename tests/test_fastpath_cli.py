"""The ``repro bench`` subcommand: JSON record, exit codes, flags."""

import json

from repro.cli import main
from repro.fastpath.bench import BENCH_SCHEMA


def test_smoke_writes_record_and_passes(tmp_path, capsys):
    out = tmp_path / "BENCH_fastpath.json"
    code = main(
        ["bench", "--smoke", "--frames", "10", "--workload", "imix",
         "--out", str(out)]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "PASS" in text and f"wrote {out}" in text
    payload = json.loads(out.read_text())
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["ok"] is True
    imix = payload["workloads"]["imix"]
    assert imix["differential_ok"] is True
    assert imix["speedup_frames_per_s"] > 1.0
    assert imix["fastpath"]["frames_per_s"] > imix["cycle"]["frames_per_s"]


def test_json_flag_prints_record_without_file(capsys):
    code = main(
        ["bench", "--frames", "6", "--workload", "random", "--out", "-",
         "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["workloads"]) == {"random"}
    assert payload["frames_per_workload"] == 6


def test_unmeetable_floor_fails(tmp_path, capsys):
    code = main(
        ["bench", "--frames", "6", "--workload", "imix",
         "--floor", "1e9", "--out", str(tmp_path / "b.json")]
    )
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_bad_frame_count_is_cli_error(capsys):
    assert main(["bench", "--frames", "0", "--out", "-"]) == 2
    assert "--frames must be >= 1" in capsys.readouterr().err
