"""Property-based differential: fastpath vs. cycle engine must agree.

These are the satellite-3 properties: random frame batches, random
ACCM escape sets, and adversarial wire streams (runts, aborts,
oversize bodies, flagless noise) all produce byte-identical line
streams, identical frame verdicts and identical OAM counters on the
two engines — up to the one documented force-close divergence that
``run_rx`` already excludes (see ``repro.fastpath.differential``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import P5Config
from repro.fastpath import DifferentialHarness, FastpathEngine
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET

# Cycle runs cost milliseconds per frame; keep batches honest but small.
frame_batches = st.lists(
    st.binary(min_size=1, max_size=48), min_size=1, max_size=4
)

_SETTINGS = dict(max_examples=12, deadline=None)


@settings(**_SETTINGS)
@given(contents=frame_batches)
def test_clean_loopback_agrees(contents):
    DifferentialHarness().run(contents).assert_ok()


@settings(**_SETTINGS)
@given(
    contents=frame_batches,
    accm_mask=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_agreement_holds_for_any_accm(contents, accm_mask):
    config = P5Config(accm_mask=accm_mask)
    DifferentialHarness(config).run(contents).assert_ok()


@settings(**_SETTINGS)
@given(data=st.data())
def test_rx_agreement_on_damaged_lines(data):
    """Crafted aborts, runts and noise decode identically on both RX."""
    engine = FastpathEngine()
    pieces = [bytes([FLAG_OCTET])]
    for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
        kind = data.draw(
            st.sampled_from(("good", "abort", "runt", "noise", "empty"))
        )
        if kind == "good":
            content = data.draw(st.binary(min_size=1, max_size=32))
            pieces.append(engine.encode_frame(content)[1:])
        elif kind == "abort":
            body = data.draw(st.binary(min_size=0, max_size=8))
            body = bytes(b for b in body if b not in (FLAG_OCTET, ESC_OCTET))
            pieces.append(body + bytes([ESC_OCTET, FLAG_OCTET]))
        elif kind == "runt":
            octets = data.draw(st.integers(min_value=1, max_value=4))
            pieces.append(b"\x01" * octets + bytes([FLAG_OCTET]))
        elif kind == "noise":
            raw = data.draw(st.binary(min_size=1, max_size=16))
            pieces.append(raw + bytes([FLAG_OCTET]))
        else:
            pieces.append(bytes([FLAG_OCTET]))
    DifferentialHarness().run_rx(b"".join(pieces)).assert_ok()


@settings(max_examples=6, deadline=None)
@given(contents=st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=3))
def test_oversize_frames_counted_identically(contents):
    config = P5Config(max_frame_octets=16)
    harness = DifferentialHarness(config)
    line = harness.engine.encode_frames(
        contents + [bytes(range(1, 41))]  # stuffs past the 16-octet cut
    ).line
    harness.run_rx(line).assert_ok()
