"""The frame-level fastpath engine: TX/RX kernels, SONET path, adapters."""

import pytest

from repro.core.config import P5Config
from repro.crc import CRC16_X25
from repro.fastpath import (
    FastpathEngine,
    SonetFastpath,
    build_fastpath_loopback,
)
from repro.hdlc import Accm, HdlcFramer
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.rtl.simulator import Simulator
from repro.workloads.packets import ppp_frame_contents

CONTENTS = [b"\xff\x03\x00\x21hello", b"\x7e\x7d\x7e\x7d", bytes(range(64))]


def test_tx_matches_behavioural_framer_back_to_back():
    engine = FastpathEngine()
    framer = HdlcFramer()
    line = engine.encode_frames(CONTENTS).line
    # The cycle TX wraps each frame in its own pair of flags.
    assert line == b"".join(framer.encode(c) for c in CONTENTS)


def test_tx_matches_framer_with_accm():
    mask = 0x0000_000B
    engine = FastpathEngine(P5Config(accm_mask=mask))
    framer = HdlcFramer(accm=Accm(mask))
    contents = [bytes([0, 1, 2, 3, 4]) * 10, b"\x7e\x00\x03"]
    assert engine.encode_frames(contents).line == b"".join(
        framer.encode(c) for c in contents
    )


def test_tx_counters():
    engine = FastpathEngine()
    tx = engine.encode_frames([b"\x7e\x7dAB"])
    assert tx.frames == 1
    assert tx.content_octets == 4
    # 2 escapable content octets; the FCS trailer may add more.
    assert tx.octets_escaped >= 2
    assert tx.line_octets == len(tx.line)


def test_tx_empty_batch_and_empty_frame():
    engine = FastpathEngine()
    assert engine.encode_frames([]).line == b""
    with pytest.raises(ValueError):
        engine.encode_frames([b""])


def test_loopback_recovers_everything():
    engine = FastpathEngine()
    contents = ppp_frame_contents(25, seed=3)
    tx, rx = engine.loopback(contents)
    assert rx.frames_ok == len(contents)
    assert rx.fcs_errors == 0
    assert rx.good_frames() == list(contents)
    # n frames wrapped individually -> n-1 empty inter-frame bodies.
    assert rx.empty_bodies == len(contents) - 1


def test_fcs16_path_uses_table_engine():
    engine = FastpathEngine(P5Config(fcs=CRC16_X25))
    _tx, rx = engine.loopback(CONTENTS)
    assert rx.good_frames() == CONTENTS


def test_rx_hunt_discards_and_open_tail():
    engine = FastpathEngine()
    frame = engine.encode_frame(b"data-frame-x")
    rx = engine.decode_stream(b"\x00\x01\x02" + frame + b"\x55\x66")
    assert rx.octets_discarded_hunting == 3
    assert rx.open_tail_octets == 2
    assert rx.frames_ok == 1


def test_rx_abort_runt_and_no_flag():
    engine = FastpathEngine()
    aborted = bytes([FLAG_OCTET, 0x41, 0x42, ESC_OCTET, FLAG_OCTET])
    rx = engine.decode_stream(aborted)
    assert rx.aborts == 1 and not rx.frames
    runt = bytes([FLAG_OCTET, 1, 2, 3, FLAG_OCTET])  # 3 octets <= FCS-32
    rx = engine.decode_stream(runt)
    assert rx.runt_frames == 1 and not rx.frames
    rx = engine.decode_stream(b"\x00" * 10)  # flagless noise
    assert rx.octets_discarded_hunting == 10 and not rx.frames


def test_rx_oversize_cut_matches_cycle_semantics():
    config = P5Config(max_frame_octets=32)
    engine = FastpathEngine(config)
    body = bytes(100)  # stuffs to itself; way past the 32-octet cut
    line = bytes([FLAG_OCTET]) + body + bytes([FLAG_OCTET])
    rx = engine.decode_stream(line)
    assert rx.oversize_drops == 1
    assert rx.octets_discarded_hunting == len(body) - (32 + 1)
    # The cut prefix is force-closed like the cycle model's: a 33-octet
    # frame that (here) fails its FCS.
    assert rx.frames == [(bytes(33 - 4), False)]
    assert rx.fcs_errors == 1


def test_rx_oversize_boundary_frame_still_decodes():
    """A frame whose stuffed body is exactly max+1 octets is counted
    oversize by the cycle delineator, yet the force-closed prefix is
    the complete frame — it must still FCS-check good."""
    config = P5Config(max_frame_octets=16)
    engine = FastpathEngine(config)
    content = bytes(13)
    line = engine.encode_frame(content)
    assert len(line) == 2 + 17  # no stuffing: 13 content + 4 FCS
    rx = engine.decode_stream(line)
    assert rx.oversize_drops == 1
    assert rx.frames_ok == 1
    assert rx.good_frames() == [content]


def test_destuff_chained_escapes_match_unstuff():
    from repro.hdlc import stuff, unstuff

    engine = FastpathEngine()
    payload = bytes([ESC_OCTET, ESC_OCTET, FLAG_OCTET, 0x00, ESC_OCTET])
    stuffed = stuff(payload)
    import numpy as np

    clear, deleted = engine._destuff(np.frombuffer(stuffed, dtype=np.uint8))
    assert clear == unstuff(stuffed) == payload
    assert deleted == len(stuffed) - len(payload)
    # Non-conforming 7D 7D decodes to 5D, like the cycle pipeline.
    raw = np.array([ESC_OCTET, ESC_OCTET], dtype=np.uint8)
    clear, deleted = engine._destuff(raw)
    assert clear == bytes([ESC_OCTET ^ 0x20])
    assert deleted == 1


def test_sonet_fastpath_roundtrip():
    path = SonetFastpath(n=12)
    contents = ppp_frame_contents(10, seed=1)
    result = path.roundtrip(contents)
    assert result.recovered == contents
    assert result.rx.fcs_errors == 0


def test_adapter_topology_matches_direct_engine_calls():
    config = P5Config()
    modules, channels = build_fastpath_loopback(config)
    source, _tx, rx_mod, sink = modules
    contents = ppp_frame_contents(8, seed=2)
    for content in contents:
        source.submit(content)
    sim = Simulator(modules, channels)
    sim.run_until(lambda: len(sink.frames) >= len(contents), timeout=10_000)
    assert sink.good_frames() == list(contents)
    direct = FastpathEngine(config).loopback(contents)[1]
    assert rx_mod.result.frames_ok == direct.frames_ok
    with pytest.raises(ValueError):
        source.submit(b"")
