"""Campaign runner: harness wiring, determinism, and the smoke gate."""

import pytest

from repro.core.config import P5Config
from repro.faults import (
    LAYERS,
    CampaignConfig,
    build_fault_harness,
    render_json,
    run_campaign,
)
from repro.faults.campaign import _fault_window_beats
from repro.faults.injectors import BeatFaultInjector


class TestHarness:
    def test_injector_sits_on_the_loopback_wire(self):
        system, injector, sim = build_fault_harness()
        assert isinstance(injector, BeatFaultInjector)
        assert injector.inp is system.tx.phy_out
        assert injector.out is system.rx.phy_in
        assert injector in sim.modules

    def test_clean_exchange_with_no_fault_armed(self, rng):
        system, _injector, sim = build_fault_harness(watchdog=2000)
        frames = [rng.integers(0, 256, n, dtype="uint8").tobytes()
                  for n in (24, 48, 72)]
        for frame in frames:
            system.submit(frame)
        sim.run_until(
            lambda: not system.tx.busy
            and not any(ch.can_pop for ch in system.channels)
            and system.rx.escape.idle,
            timeout=100_000,
        )
        assert system.rx.sink.good_frames() == frames
        # The observer serviced the OAM: the RX-frame IRQ is pending.
        assert system.oam.irq_asserted

    def test_fault_window_spares_the_recovery_probe(self):
        frames = [bytes(24)] * 6
        window = _fault_window_beats(frames, 4)
        # Window covers the first three frames' wire span only.
        assert window == 3 * (24 + 6) // 4
        # Degenerate: too few frames still yields a usable window.
        assert _fault_window_beats([bytes(8)], 4) == 1


class TestCampaign:
    def test_layers_rotate_round_robin(self):
        result = run_campaign(CampaignConfig(faults=8, seed=2))
        assert result.by_layer() == {layer: 2 for layer in LAYERS}
        assert [t.layer for t in result.trials[:4]] == list(LAYERS)

    def test_same_seed_is_bit_identical(self):
        cfg = CampaignConfig(faults=8, seed=5)
        assert render_json(run_campaign(cfg)) == render_json(run_campaign(cfg))

    def test_different_seeds_differ(self):
        a = run_campaign(CampaignConfig(faults=8, seed=1))
        b = run_campaign(CampaignConfig(faults=8, seed=2))
        assert render_json(a) != render_json(b)

    def test_trials_carry_reproduction_context(self):
        result = run_campaign(CampaignConfig(faults=4, seed=3))
        for trial in result.trials:
            assert trial.layer in LAYERS
            assert trial.kind != "none" or trial.layer == "backpressure"
            assert trial.cycles > 0
            assert trial.frames == result.config.frames_per_trial
            assert not trial.stalled
        line_trial = result.trials[0]
        assert line_trial.event is not None
        assert line_trial.event.layer == "line"

    def test_line_stats_aggregate_across_trials(self):
        result = run_campaign(CampaignConfig(faults=8, seed=4))
        flips = sum(
            t.event.detail.get("bits", 0)
            for t in result.trials
            if t.layer == "line" and t.event is not None
        )
        assert result.line_stats.bits_flipped == flips

    def test_narrow_datapath_campaign(self):
        result = run_campaign(CampaignConfig(faults=8, seed=6, width_bits=8))
        assert result.ok, [v.render() for v in result.violations]


class TestSmokeGate:
    def test_smoke_campaign_is_clean(self):
        """The acceptance gate: >= 200 faults over all four layers,
        zero invariant violations (the CI smoke configuration)."""
        result = run_campaign(CampaignConfig())
        assert result.config.faults >= 200
        assert all(count >= 50 for count in result.by_layer().values())
        assert result.ok, [v.render() for v in result.violations]
        assert not any(t.stalled for t in result.trials)
        # Line and beat faults really did damage frames (the campaign
        # is not vacuously clean) ...
        assert result.damaged_total() > 0
        # ... while the non-destructive layers damaged nothing.
        for trial in result.trials:
            if trial.layer in ("backpressure", "oam"):
                assert trial.damaged == 0


class TestConfigValidation:
    def test_oversize_bound_flows_into_p5config(self):
        cfg = CampaignConfig()
        assert cfg.max_frame_octets == 512
        assert P5Config(
            width_bits=cfg.width_bits, max_frame_octets=cfg.max_frame_octets
        ).max_frame_octets == 512

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            CampaignConfig().faults = 7
