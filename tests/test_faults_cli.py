"""The ``repro faults`` subcommand: exit codes and reporter output."""

import json

from repro.cli import main
from repro.faults import JSON_SCHEMA_VERSION, LAYERS


def test_quick_campaign_exits_zero(capsys):
    assert main(["faults", "--campaign", "quick"]) == 0
    out = capsys.readouterr().out
    assert "fault campaign: 24 faults" in out
    assert "clean: no invariant violations" in out


def test_explicit_fault_count_overrides_preset(capsys):
    assert main(["faults", "--faults", "8", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "8 faults, seed 3" in out


def test_zero_faults_is_a_clean_cli_error(capsys):
    assert main(["faults", "--faults", "0"]) == 2
    assert "--faults must be >= 1" in capsys.readouterr().err


def test_json_output_is_machine_parseable(capsys):
    assert main(["faults", "--faults", "8", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["config"]["faults"] == 8
    assert set(payload["layers"]) == set(LAYERS)
    for row in payload["layers"].values():
        assert set(row) == {"trials", "damaged_frames", "violations"}
    assert payload["line_stats"]["bits_sent"] > 0


def test_json_shorthand_flag(capsys):
    assert main(["faults", "--faults", "4", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True


def test_json_output_is_stable_across_runs(capsys):
    args = ["faults", "--faults", "8", "--seed", "9", "--json"]
    main(args)
    first = capsys.readouterr().out
    main(args)
    second = capsys.readouterr().out
    assert first == second


def test_json_reruns_reproduce_every_injector(capsys):
    """Same --seed ⇒ byte-identical reports down to the injector layer.

    The per-trial records carry the derived seeds and the concrete
    fault events, so this equality proves the whole injector chain —
    not just the aggregate counts — replays identically.
    """
    args = ["faults", "--faults", "8", "--seed", "21", "--json"]
    main(args)
    first = capsys.readouterr().out
    main(args)
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    trials = payload["trials"]
    assert len(trials) == 8
    for trial in trials:
        seeds = trial["derived_seeds"]
        assert isinstance(seeds["injector"], int)
        if trial["layer"] == "backpressure":
            assert isinstance(seeds["stall"], int)
        if trial["layer"] == "oam":
            assert isinstance(seeds["upset"], int)
    assert any(t["event"] is not None for t in trials)


def test_width_selects_the_datapath(capsys):
    assert main(["faults", "--faults", "4", "--width", "8", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["width_bits"] == 8
    assert payload["ok"] is True
