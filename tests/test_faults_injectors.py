"""The fault sources: BeatFaultInjector, storms, register upsets."""

import pytest

from repro.core.config import P5Config
from repro.core.oam import (
    ADDR_CTRL,
    ADDR_FRAMING,
    CTRL_RX_ENABLE,
    CTRL_TX_ENABLE,
)
from repro.core.p5 import P5System
from repro.faults import (
    MAX_BURST_BITS,
    BeatFaultInjector,
    OamRegisterUpset,
    backpressure_storm,
)
from repro.rtl.module import Channel
from repro.rtl.pipeline import StallPattern, StreamSink, StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator


def run_wire(data, *, width=4, arm=None, seed=0):
    """Drive ``data`` through an injector wire; returns (injector, sink)."""
    c_in = Channel("fi.in", 4)
    c_out = Channel("fi.out", 4)
    src = StreamSource("src", c_in, beats_from_bytes(data, width, frame_marks=False))
    fi = BeatFaultInjector("fi", c_in, c_out, seed=seed)
    if arm is not None:
        fi.arm(**arm)
    sink = StreamSink("sink", c_out)
    sim = Simulator([src, fi, sink], [c_in, c_out])
    sim.run_until(
        lambda: src.done and not c_in.can_pop and not c_out.can_pop,
        timeout=10_000,
        watchdog=500,
    )
    return fi, sink


def bit_diff(a, b):
    return bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")


class TestTransparentWire:
    def test_unarmed_wire_is_transparent(self, rng):
        data = rng.integers(0, 256, 64, dtype="uint8").tobytes()
        fi, sink = run_wire(data)
        assert sink.data() == data
        assert fi.faults_applied == 0
        assert fi.events == []
        assert fi.line.stats.bits_flipped == 0

    def test_capacity_needs_declares_the_dup_burst(self):
        c_in, c_out = Channel("a", 4), Channel("b", 4)
        fi = BeatFaultInjector("fi", c_in, c_out)
        ((chan, words, _reason),) = fi.capacity_needs()
        assert chan is c_out
        assert words == 2


class TestArmValidation:
    def setup_method(self):
        self.fi = BeatFaultInjector("fi", Channel("a", 4), Channel("b", 4))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            self.fi.arm("gamma-ray")

    def test_bits_bounded_by_crc32_burst_length(self):
        with pytest.raises(ValueError, match="CRC-32"):
            self.fi.arm("burst", bits=MAX_BURST_BITS + 1)
        with pytest.raises(ValueError):
            self.fi.arm("burst", bits=0)

    def test_double_arm_rejected(self):
        self.fi.arm("bit")
        with pytest.raises(ValueError, match="still armed"):
            self.fi.arm("drop")


class TestLineLayer:
    def test_single_bit_flip(self, rng):
        data = rng.integers(0, 256, 32, dtype="uint8").tobytes()
        fi, sink = run_wire(data, arm={"kind": "bit", "after_beats": 2})
        assert bit_diff(sink.data(), data) == 1
        assert fi.line.stats.bits_flipped == 1
        (event,) = fi.events
        assert event.layer == "line"
        assert event.kind == "bit"
        assert event.beat_index == 2
        assert event.detail["bits"] == 1

    def test_burst_spans_word_boundaries(self, rng):
        data = rng.integers(0, 256, 24, dtype="uint8").tobytes()
        fi, sink = run_wire(
            data, width=1, arm={"kind": "burst", "after_beats": 1, "bits": 20}
        )
        # A 20-bit burst cannot fit one 8-bit word: it must continue
        # across following beats and fully drain.
        assert fi.burst_bits_left == 0
        assert fi.line.stats.bits_flipped == 20
        assert bit_diff(sink.data(), data) == 20
        assert fi.beats_corrupted >= 3

    def test_burst_flips_are_contiguous(self):
        data = bytes(16)  # all zeros: flipped bits read back as ones
        fi, sink = run_wire(
            data, width=4, arm={"kind": "burst", "after_beats": 0, "bits": 12}
        )
        got = sink.data()
        ones = [i for i in range(8 * len(got))
                if got[i // 8] & (0x80 >> (i % 8))]
        assert len(ones) == 12
        assert ones == list(range(ones[0], ones[0] + 12))

    def test_line_stats_are_ground_truth(self, rng):
        data = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        fi, _ = run_wire(data, arm={"kind": "burst", "bits": 7})
        assert fi.line.stats.bursts >= 1
        assert fi.line.stats.bits_flipped == 7
        assert fi.line.stats.bits_sent > 0


class TestBeatLayer:
    def test_drop_deletes_one_word(self, rng):
        data = rng.integers(0, 256, 32, dtype="uint8").tobytes()
        fi, sink = run_wire(data, arm={"kind": "drop", "after_beats": 3})
        assert sink.data() == data[:12] + data[16:]
        assert fi.beats_dropped == 1
        assert fi.events[0].layer == "beat"

    def test_dup_delivers_the_word_twice(self, rng):
        data = rng.integers(0, 256, 32, dtype="uint8").tobytes()
        fi, sink = run_wire(data, arm={"kind": "dup", "after_beats": 1})
        assert sink.data() == data[:8] + data[4:8] + data[8:]
        assert fi.beats_duplicated == 1
        # Two pushes happened on the duplicated cycle.
        assert fi.words_moved == len(data) // 4 + 1

    def test_lane_upset_on_full_word_deletes_an_octet(self, rng):
        data = rng.integers(0, 256, 32, dtype="uint8").tobytes()
        fi, sink = run_wire(data, arm={"kind": "lane", "after_beats": 5})
        # Input lanes are all valid, so the toggle always invalidates.
        assert len(sink.data()) == len(data) - 1
        (event,) = fi.events
        assert event.detail["now_valid"] == 0
        assert 0 <= event.detail["lane"] < 4

    def test_exactly_one_fault_per_arming(self, rng):
        data = rng.integers(0, 256, 64, dtype="uint8").tobytes()
        fi, _ = run_wire(data, arm={"kind": "drop"})
        assert fi.faults_applied == 1
        assert fi.beats_dropped == 1
        assert len(fi.events) == 1


class TestBackpressureStorm:
    def test_returns_a_stall_pattern(self):
        assert isinstance(backpressure_storm(0.5, seed=1), StallPattern)

    @pytest.mark.parametrize("probability", [0.0, -0.1, 0.76, 1.0])
    def test_probability_bounds(self, probability):
        with pytest.raises(ValueError):
            backpressure_storm(probability)

    def test_burst_must_be_positive(self):
        with pytest.raises(ValueError):
            backpressure_storm(0.5, burst=0)


class TestOamRegisterUpset:
    def make(self, seed=7):
        system = P5System(P5Config.thirty_two_bit())
        return system, OamRegisterUpset(system.oam, seed=seed)

    def test_unknown_target_rejected(self):
        _, upset = self.make()
        with pytest.raises(ValueError, match="unknown upset target"):
            upset.inject(target="voltage")

    def test_counter_writes_bounce_off_readonly_map(self):
        system, upset = self.make()
        before = {a: system.oam.read(a) for a in OamRegisterUpset.COUNTER_ADDRS}
        for _ in range(20):
            upset.inject(target="counter")
        after = {a: system.oam.read(a) for a in OamRegisterUpset.COUNTER_ADDRS}
        assert before == after

    def test_ctrl_upset_preserves_enables(self):
        system, upset = self.make()
        for _ in range(10):
            upset.inject(target="ctrl")
            ctrl = system.oam.read(ADDR_CTRL)
            assert ctrl & CTRL_TX_ENABLE
            assert ctrl & CTRL_RX_ENABLE
        assert system.tx.source.enabled

    def test_framing_upset_is_the_ignored_nonsense_pattern(self):
        system, upset = self.make()
        flag = system.rx.delineator.flag_octet
        esc = system.rx.delineator.esc_octet
        for _ in range(10):
            upset.inject(target="framing")
            # The write lands in the rw register, but it always carries
            # flag == escape — the nonsense the datapath hook ignores.
            stored = system.oam.read(ADDR_FRAMING)
            assert stored & 0xFF == (stored >> 8) & 0xFF
        assert system.rx.delineator.flag_octet == flag
        assert system.rx.delineator.esc_octet == esc
        assert system.tx.flags.flag_octet == flag

    def test_events_record_the_write(self):
        _, upset = self.make()
        event = upset.inject(cycle=42, target="irq_mask")
        assert event.layer == "oam"
        assert event.kind == "irq_mask"
        assert event.cycle == 42
        assert event.beat_index == -1
        assert "address" in event.detail and "value" in event.detail
        assert upset.events == [event]

    def test_random_target_comes_from_the_menu(self):
        _, upset = self.make(seed=3)
        for _ in range(25):
            assert upset.inject().kind in OamRegisterUpset.TARGETS
