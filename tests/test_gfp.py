"""Unit tests for the GFP baseline framing (G.7041)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FcsError, FramingError
from repro.gfp import (
    GfpDelineator,
    GfpFrame,
    GfpState,
    GfpType,
    core_header,
    idle_frame,
)
from repro.gfp.frame import CORE_SCRAMBLE


class TestCoreHeader:
    def test_scrambled(self):
        # An all-zero PLI would otherwise produce an all-zero header.
        assert idle_frame() != bytes(4)
        raw = bytes(a ^ b for a, b in zip(idle_frame(), CORE_SCRAMBLE))
        assert raw[:2] == b"\x00\x00"

    def test_pli_range(self):
        with pytest.raises(ValueError):
            core_header(0x10000)

    def test_idle_is_4_bytes(self):
        assert len(idle_frame()) == 4


class TestFrameCodec:
    def test_constant_overhead(self):
        """GFP's defining property: overhead independent of content."""
        for payload in (b"x", bytes([0x7E]) * 100, bytes(1500)):
            frame = GfpFrame(payload)
            assert frame.wire_length == len(payload) + 12
            assert len(frame.encode()) == frame.wire_length

    def test_no_pfcs_variant(self):
        frame = GfpFrame(b"data", with_pfcs=False)
        assert frame.wire_length == 4 + 4 + 4

    def test_round_trip(self, rng):
        payload = rng.integers(0, 256, 200, dtype="uint8").tobytes()
        frame = GfpFrame(payload, upi=GfpType.PPP)
        area = frame.encode()[4:]
        decoded = GfpFrame.decode_payload_area(area)
        assert decoded.payload == payload and decoded.upi == GfpType.PPP

    def test_thec_protects_type(self):
        area = bytearray(GfpFrame(b"payload").encode()[4:])
        area[0] ^= 0x10
        with pytest.raises(FcsError):
            GfpFrame.decode_payload_area(bytes(area))

    def test_pfcs_protects_payload(self):
        area = bytearray(GfpFrame(b"payload").encode()[4:])
        area[6] ^= 0x01
        with pytest.raises(FcsError):
            GfpFrame.decode_payload_area(bytes(area))

    def test_truncated_area(self):
        with pytest.raises(FramingError):
            GfpFrame.decode_payload_area(b"\x00")


class TestDelineation:
    def _wire(self, payloads, idles=2):
        parts = [idle_frame()] * idles
        parts += [GfpFrame(p).encode() for p in payloads]
        return b"".join(parts)

    def test_sync_from_clean_start(self, rng):
        payloads = [rng.integers(0, 256, 50, dtype="uint8").tobytes()
                    for _ in range(5)]
        d = GfpDelineator()
        got = d.feed(self._wire(payloads))
        assert [g.payload for g in got] == payloads
        assert d.state is GfpState.SYNC

    def test_hunting_through_junk(self, rng):
        payloads = [b"hello gfp"] * 3
        junk = bytes([0x55, 0xAA, 0x01])
        d = GfpDelineator()
        got = d.feed(junk + self._wire(payloads))
        assert len(got) == 3
        assert d.stats.bytes_discarded_hunting >= len(junk)

    def test_chunked_feed_equivalent(self, rng):
        payloads = [rng.integers(0, 256, int(rng.integers(1, 200)),
                                 dtype="uint8").tobytes() for _ in range(8)]
        wire = self._wire(payloads)
        for chunk in (1, 3, 17, len(wire)):
            d = GfpDelineator()
            got = []
            for i in range(0, len(wire), chunk):
                got += d.feed(wire[i : i + chunk])
            assert [g.payload for g in got] == payloads, f"chunk={chunk}"

    def test_single_bit_header_error_corrected_in_sync(self, rng):
        payloads = [rng.integers(0, 256, 40, dtype="uint8").tobytes()
                    for _ in range(6)]
        wire = bytearray(self._wire(payloads, idles=4))
        # Flip one bit in the 4th data frame's core header.
        offset = 4 * 4 + sum(len(GfpFrame(p).encode()) for p in payloads[:3])
        wire[offset + 1] ^= 0x20
        d = GfpDelineator()
        got = d.feed(bytes(wire))
        assert len(got) == 6            # nothing lost
        assert d.stats.corrected_headers == 1
        assert d.stats.resyncs == 0

    def test_correction_disabled(self, rng):
        payloads = [b"abcdef"] * 6
        wire = bytearray(self._wire(payloads, idles=4))
        offset = 16 + len(GfpFrame(b"abcdef").encode()) * 2
        wire[offset] ^= 0x80
        d = GfpDelineator(correct_single_bit=False)
        got = d.feed(bytes(wire))
        assert d.stats.resyncs >= 1
        assert len(got) < 6             # the damaged frame (at least) lost

    def test_multibit_header_error_resyncs(self, rng):
        payloads = [rng.integers(0, 256, 30, dtype="uint8").tobytes()
                    for _ in range(6)]
        wire = bytearray(self._wire(payloads, idles=4))
        offset = 16 + len(GfpFrame(payloads[0]).encode())
        wire[offset] ^= 0xFF            # uncorrectable burst in header
        wire[offset + 1] ^= 0xFF
        d = GfpDelineator()
        got = d.feed(bytes(wire))
        assert d.stats.resyncs >= 1
        # It relocks and recovers the tail frames.
        assert got and got[-1].payload == payloads[-1]

    def test_client_error_counted_not_fatal(self, rng):
        payloads = [rng.integers(0, 256, 30, dtype="uint8").tobytes()
                    for _ in range(4)]
        wire = bytearray(self._wire(payloads, idles=2))
        # Corrupt a payload byte (not the header): pFCS catches it,
        # delineation keeps running.
        offset = 8 + 4 + 4 + 5
        wire[offset] ^= 0x01
        d = GfpDelineator()
        got = d.feed(bytes(wire))
        assert d.stats.client_errors == 1
        assert d.stats.resyncs == 0
        assert len(got) == 3

    def test_idle_fill_between_frames(self):
        d = GfpDelineator()
        wire = idle_frame() * 10 + GfpFrame(b"x").encode() + idle_frame() * 5
        got = d.feed(wire)
        assert len(got) == 1
        assert d.stats.idle_frames == 15


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=150), min_size=1, max_size=6),
    junk=st.binary(max_size=10),
)
def test_gfp_property_round_trip(payloads, junk):
    wire = junk + b"".join(
        [idle_frame() * 2] + [GfpFrame(p).encode() for p in payloads]
    )
    d = GfpDelineator()
    got = d.feed(wire)
    # Junk may eat into hunting, but once locked everything decodes;
    # recovered payloads are a suffix of what was sent.
    sent = [p for p in payloads]
    assert [g.payload for g in got] == sent[len(sent) - len(got):]
    assert len(got) >= len(sent) - 1   # at most the first frame lost
