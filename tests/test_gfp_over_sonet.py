"""Integration tests for GFP-mapped PPP over SONET (the baseline path)."""

import pytest

from repro.phy import BitErrorLine
from repro.sonet.path import GfpOverSonet, PppOverSonet
from repro.workloads import ppp_frame_contents


class TestGfpPath:
    def test_round_trip(self):
        path = GfpOverSonet(12)
        frames = ppp_frame_contents(20, seed=9)
        for frame in frames:
            path.queue_frame(frame)
        got = []
        for _ in range(8):
            got += path.receive_line(path.next_line_frame())
        assert got == frames
        assert path.gfp_stats.client_errors == 0

    def test_idle_line(self):
        path = GfpOverSonet(3)
        got = []
        for _ in range(3):
            got += path.receive_line(path.next_line_frame())
        assert got == []
        assert path.gfp_stats.idle_frames > 0

    def test_signal_label_differs_from_hdlc(self):
        """GFP and PPP/HDLC use different C2 path labels, so a
        mis-provisioned path is detectable at the SONET layer."""
        gfp = GfpOverSonet(3)
        hdlc = PppOverSonet(3)
        assert gfp.framer.c2 != hdlc.framer.c2
        # Feed the HDLC receiver a GFP line: C2 mismatch is counted.
        hdlc.receive_line(gfp.next_line_frame())
        hdlc.receive_line(gfp.next_line_frame())
        assert hdlc.sonet_counters.c2_mismatches >= 1

    def test_errored_line_frames_dropped_never_corrupted(self):
        path = GfpOverSonet(3)
        frames = ppp_frame_contents(30, seed=10)
        line = BitErrorLine(5e-5, seed=11)
        for frame in frames:
            path.queue_frame(frame)
        got = []
        for _ in range(25):
            got += path.receive_line(line.transmit(path.next_line_frame()))
            if not path.tx_backlog_frames:
                break
        assert all(g in frames for g in got)
        dropped = len(frames) - len(got)
        detected = (
            path.gfp_stats.client_errors
            + path.gfp_stats.header_errors
            + path.gfp_stats.resyncs
        )
        if dropped:
            assert detected > 0

    def test_backlog_drains(self):
        path = GfpOverSonet(3)
        big = [b"\xff\x03\x00\x21" + bytes(1200) for _ in range(8)]
        for frame in big:
            path.queue_frame(frame)
        got = []
        for _ in range(10):
            got += path.receive_line(path.next_line_frame())
        assert got == big
