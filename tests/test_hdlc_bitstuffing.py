"""Unit tests for bit-synchronous HDLC transparency."""

import numpy as np
import pytest

from repro.errors import AbortError, FramingError
from repro.hdlc import bit_stuff, bit_unstuff
from repro.utils.bits import bytes_to_bits


class TestBitStuff:
    def test_five_ones_get_a_zero(self):
        bits = np.array([1, 1, 1, 1, 1], dtype=np.uint8)
        assert list(bit_stuff(bits)) == [1, 1, 1, 1, 1, 0]

    def test_flag_pattern_destroyed(self):
        flag = bytes_to_bits(b"\x7e")  # 01111110
        stuffed = bit_stuff(np.tile(flag, 4))
        # No six consecutive ones can remain.
        run = 0
        for bit in stuffed:
            run = run + 1 if bit else 0
            assert run < 6

    def test_zeros_untouched(self):
        bits = np.zeros(64, dtype=np.uint8)
        assert bit_stuff(bits).size == 64

    def test_insertion_counts(self):
        bits = np.ones(15, dtype=np.uint8)
        assert bit_stuff(bits).size == 15 + 3  # a zero after each 5 ones


class TestBitUnstuff:
    def test_round_trip_random(self, rng):
        bits = rng.integers(0, 2, 2000).astype(np.uint8)
        assert np.array_equal(bit_unstuff(bit_stuff(bits)), bits)

    def test_round_trip_worst_case(self):
        bits = np.ones(500, dtype=np.uint8)
        assert np.array_equal(bit_unstuff(bit_stuff(bits)), bits)

    def test_flag_inside_body_rejected(self):
        flag = bytes_to_bits(b"\x7e")
        with pytest.raises(FramingError):
            bit_unstuff(np.concatenate([np.zeros(4, dtype=np.uint8), flag]))

    def test_trailing_ones_abort(self):
        with pytest.raises(AbortError):
            bit_unstuff(np.ones(5, dtype=np.uint8))

    def test_empty(self):
        assert bit_unstuff(np.array([], dtype=np.uint8)).size == 0
