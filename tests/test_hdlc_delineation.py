"""Unit tests for the streaming frame delineator."""

import pytest

from repro.crc import CRC32
from repro.hdlc import Delineator, HdlcFramer


@pytest.fixture
def framer():
    return HdlcFramer(CRC32)


@pytest.fixture
def delineator(framer):
    return Delineator(framer=framer)


class TestHunting:
    def test_starts_out_of_sync(self, delineator):
        assert not delineator.in_sync

    def test_discards_until_first_flag(self, delineator, framer):
        stream = b"\x55\xaa\x31" + framer.encode(b"\xff\x03ok")
        frames = delineator.push_bytes(stream)
        assert len(frames) == 1
        assert delineator.stats.octets_discarded_hunting == 3

    def test_syncs_on_flag(self, delineator):
        delineator.push(0x7E)
        assert delineator.in_sync

    def test_partial_frame_before_sync_not_decoded(self, delineator, framer):
        # Joining mid-frame: the tail of frame 1 is discarded while
        # hunting (its closing flag is the first flag ever seen), and
        # delineation picks up cleanly with frame 2.
        wire = framer.encode(b"\xff\x03first") + framer.encode(b"\xff\x03second")
        frames = delineator.push_bytes(wire[4:])   # skip into frame 1
        contents = [f.content for f in frames]
        assert contents == [b"\xff\x03second"]
        assert delineator.stats.fcs_errors == 0
        assert delineator.stats.octets_discarded_hunting > 0


class TestStreaming:
    def test_byte_at_a_time(self, delineator, framer):
        content = b"\xff\x03" + bytes(range(64))
        for octet in framer.encode(content):
            delineator.push(octet)
        assert [f.content for f in delineator.frames] == [content]

    def test_back_to_back_frames(self, delineator, framer):
        contents = [b"\xff\x03" + bytes([i]) * 10 for i in range(5)]
        stream = framer.encode_stream(contents)
        frames = delineator.push_bytes(stream)
        assert [f.content for f in frames] == contents
        assert delineator.stats.frames_ok == 5

    def test_idle_flags_are_not_frames(self, delineator):
        delineator.push_bytes(bytes([0x7E] * 32))
        assert delineator.stats.frames_ok == 0
        assert delineator.stats.total_errors() == 0

    def test_chunk_boundaries_irrelevant(self, framer, rng):
        content = b"\xff\x03" + rng.integers(0, 256, 300, dtype="uint8").tobytes()
        wire = framer.encode(content) * 3
        for chunk in (1, 2, 7, 64, len(wire)):
            d = Delineator(framer=HdlcFramer(CRC32))
            for off in range(0, len(wire), chunk):
                d.push_bytes(wire[off : off + chunk])
            assert d.stats.frames_ok == 3, f"chunk={chunk}"


class TestErrorAccounting:
    def test_fcs_error_counted(self, delineator, framer):
        wire = bytearray(framer.encode(b"\xff\x03payload"))
        wire[4] ^= 0x10
        delineator.push_bytes(bytes(wire))
        assert delineator.stats.fcs_errors == 1
        assert delineator.stats.frames_ok == 0

    def test_abort_counted(self, delineator):
        delineator.push_bytes(bytes([0x7E, 0x41, 0x42, 0x7D, 0x7E]))
        assert delineator.stats.aborts == 1

    def test_runt_counted(self, delineator):
        delineator.push_bytes(bytes([0x7E, 0x41, 0x42, 0x7E]))
        assert delineator.stats.runts == 1

    def test_flush_drops_partial(self, delineator, framer):
        wire = framer.encode(b"\xff\x03data")
        delineator.push_bytes(wire[:-3])
        delineator.flush()
        assert delineator.stats.framing_errors == 1
        assert not delineator.in_sync

    def test_flush_when_empty_is_clean(self, delineator):
        delineator.push(0x7E)
        delineator.flush()
        assert delineator.stats.framing_errors == 0

    def test_octet_accounting(self, delineator, framer):
        wire = framer.encode(b"\xff\x03x")
        delineator.push_bytes(wire)
        assert delineator.stats.octets_in == len(wire)
