"""Unit tests for whole-frame HDLC encode/decode."""

import pytest

from repro.crc import CRC16_X25, CRC32
from repro.errors import (
    AbortError,
    FcsError,
    FramingError,
    OversizeFrameError,
    RuntFrameError,
)
from repro.hdlc import FLAG_OCTET, HdlcFramer


@pytest.fixture(params=[CRC16_X25, CRC32], ids=["fcs16", "fcs32"])
def framer(request):
    return HdlcFramer(request.param)


class TestEncode:
    def test_flags_at_both_ends(self, framer):
        wire = framer.encode(b"\xff\x03hello")
        assert wire[0] == FLAG_OCTET and wire[-1] == FLAG_OCTET

    def test_no_leading_flag_option(self, framer):
        wire = framer.encode(b"\xff\x03hello", leading_flag=False)
        assert wire[0] != FLAG_OCTET or wire[0:1] != b"\x7e" or True
        assert not wire.startswith(bytes([FLAG_OCTET, FLAG_OCTET]))
        assert wire[-1] == FLAG_OCTET

    def test_body_has_no_bare_flags(self, framer):
        wire = framer.encode(bytes([0x7E] * 50))
        assert FLAG_OCTET not in wire[1:-1]

    def test_fcs_trailer_length(self):
        content = b"\xff\x03data"
        w16 = HdlcFramer(CRC16_X25).encode(content)
        w32 = HdlcFramer(CRC32).encode(content)
        # No escapable bytes in content or (by luck of this payload) FCS.
        assert len(w32) - len(w16) in (2, 3, 4)  # 2 + possible FCS escapes

    def test_encode_stream_shares_flags(self, framer):
        wire = framer.encode_stream([b"\xff\x03a", b"\xff\x03b"])
        # Shared flag: total flags = frames + 1.
        assert wire.count(FLAG_OCTET) == 3


class TestDecode:
    def test_round_trip(self, framer, rng):
        for n in (1, 2, 100, 1500):
            content = rng.integers(0, 256, n, dtype="uint8").tobytes()
            assert framer.decode(framer.encode(content)).content == content

    def test_wire_length_recorded(self, framer):
        content = b"\xff\x03payload"
        wire = framer.encode(content)
        assert framer.decode(wire).wire_length == len(wire)

    def test_fcs_value_exposed(self, framer):
        content = b"\xff\x03x"
        frame = framer.decode(framer.encode(content))
        assert frame.fcs == framer.compute_fcs(content)

    def test_corrupted_payload_fails_fcs(self, framer):
        wire = bytearray(framer.encode(b"\xff\x03hello world"))
        wire[5] ^= 0x01
        with pytest.raises(FcsError):
            framer.decode(bytes(wire))

    def test_corrupted_fcs_fails(self, framer):
        wire = bytearray(framer.encode(b"\xff\x03hello world"))
        wire[-2] ^= 0x40
        with pytest.raises(FcsError):
            framer.decode(bytes(wire))

    def test_fcs_error_reports_values(self):
        framer = HdlcFramer(CRC32)
        wire = bytearray(framer.encode(b"\xff\x03hello"))
        wire[3] ^= 0x01
        with pytest.raises(FcsError) as excinfo:
            framer.decode(bytes(wire))
        assert excinfo.value.expected != excinfo.value.actual

    def test_runt_rejected(self, framer):
        # A frame of just an FCS-sized body is a runt.
        with pytest.raises(RuntFrameError):
            framer.decode_body(bytes(framer.fcs_octets))

    def test_oversize_rejected(self):
        framer = HdlcFramer(CRC32, max_content=64)
        big = b"\xff\x03" + bytes(100)
        wire = HdlcFramer(CRC32).encode(big)
        with pytest.raises(OversizeFrameError):
            framer.decode(wire)

    def test_missing_flags_rejected(self, framer):
        with pytest.raises(FramingError):
            framer.decode(b"\x01\x02\x03")

    def test_abort_inside_frame(self, framer):
        # A frame body ending in 7D (escape) followed by the closing
        # flag is the abort sequence.
        wire = bytes([FLAG_OCTET]) + b"AB\x7d" + bytes([FLAG_OCTET])
        with pytest.raises(AbortError):
            framer.decode(wire)

    def test_invalid_fcs_width(self):
        from repro.crc import CRC8

        with pytest.raises(ValueError):
            HdlcFramer(CRC8)


class TestDecodeStream:
    def test_multiple_frames(self, framer):
        contents = [b"\xff\x03a", b"\xff\x03bb", b"\xff\x03" + bytes([0x7E] * 5)]
        wire = framer.encode_stream(contents)
        decoded = framer.decode_stream(wire)
        assert [f.content for f in decoded] == contents

    def test_idle_flags_skipped(self, framer):
        content = b"\xff\x03data"
        wire = bytes([FLAG_OCTET] * 5) + framer.encode(content) + bytes([FLAG_OCTET] * 3)
        decoded = framer.decode_stream(wire)
        assert len(decoded) == 1 and decoded[0].content == content

    def test_unterminated_stream_rejected(self, framer):
        wire = framer.encode(b"\xff\x03data")[:-1]  # drop closing flag
        with pytest.raises(FramingError):
            framer.decode_stream(wire)

    def test_empty_stream(self, framer):
        assert framer.decode_stream(b"") == []
