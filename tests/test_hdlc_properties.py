"""Property-based tests for HDLC framing layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc import CRC16_X25, CRC32
from repro.hdlc import Delineator, HdlcFramer, bit_stuff, bit_unstuff, stuff, unstuff
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET

payloads = st.binary(min_size=0, max_size=500)


@given(data=payloads)
def test_stuff_round_trip(data):
    assert unstuff(stuff(data)) == data


@given(data=payloads)
def test_stuffed_never_contains_bare_flag(data):
    assert FLAG_OCTET not in stuff(data)


@given(data=payloads)
def test_stuff_expansion_bounds(data):
    out = stuff(data)
    assert len(data) <= len(out) <= 2 * len(data)


@given(data=payloads)
def test_stuff_expansion_exact(data):
    specials = sum(1 for b in data if b in (FLAG_OCTET, ESC_OCTET))
    assert len(stuff(data)) == len(data) + specials


@given(data=st.binary(min_size=1, max_size=300))
def test_frame_round_trip_both_fcs(data):
    for spec in (CRC16_X25, CRC32):
        framer = HdlcFramer(spec)
        assert framer.decode(framer.encode(data)).content == data


@given(contents=st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=8))
@settings(max_examples=50)
def test_stream_round_trip(contents):
    framer = HdlcFramer(CRC32)
    decoded = framer.decode_stream(framer.encode_stream(contents))
    assert [f.content for f in decoded] == contents


@given(
    contents=st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=6),
    junk=st.binary(max_size=20),
)
@settings(max_examples=50)
def test_delineator_recovers_all_frames_after_junk(contents, junk):
    """Leading junk may cost hunting octets but never valid frames."""
    framer = HdlcFramer(CRC32)
    wire = junk.replace(bytes([FLAG_OCTET]), b"\x00") + framer.encode_stream(contents)
    delineator = Delineator(framer=HdlcFramer(CRC32))
    delineator.push_bytes(wire)
    got = [f.content for f in delineator.frames]
    assert got == contents


@given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=400))
def test_bit_stuff_round_trip(bits):
    arr = np.array(bits, dtype=np.uint8)
    assert np.array_equal(bit_unstuff(bit_stuff(arr)), arr)


@given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=400))
def test_bit_stuff_no_flag_pattern(bits):
    stuffed = bit_stuff(np.array(bits, dtype=np.uint8))
    run = 0
    for bit in stuffed:
        run = run + 1 if bit else 0
        assert run <= 5


# ------------------------------------------------- contract conformance
def _declared_stuffing_expansion():
    """The max_expansion the escape-generate unit's contract declares."""
    from repro.core.escape_pipeline import PipelinedEscapeGenerate
    from repro.rtl.module import Channel

    unit = PipelinedEscapeGenerate(
        "gen", Channel("in"), Channel("out"), width_bytes=4
    )
    (timing,) = unit.timing_contract().outputs
    return timing.max_expansion


@given(data=payloads)
def test_stuffing_never_exceeds_declared_max_expansion(data):
    """The x2 bound in the escape-generate timing contract is sound:
    no payload — including hypothesis-found adversarial ones — makes
    byte stuffing expand beyond it."""
    bound = _declared_stuffing_expansion()
    from repro.hdlc import stuffed_length

    assert len(stuff(data)) <= bound * max(len(data), 1)
    assert stuffed_length(data) == len(stuff(data))


def test_adversarial_payloads_reach_but_never_break_the_bound():
    """All-flag and all-escape payloads are the exact worst case the
    contract (and the framer's class-level declaration) must cover."""
    from repro.hdlc.framer import HdlcFramer as _Framer

    bound = _declared_stuffing_expansion()
    (framer_timing,) = _Framer.TIMING_CONTRACT.outputs
    assert framer_timing.max_expansion == bound == 2.0
    for octet in (FLAG_OCTET, ESC_OCTET):
        payload = bytes([octet]) * 256
        assert len(stuff(payload)) == int(bound * len(payload))
