"""Unit tests for octet-synchronous transparency (RFC 1662 §4.2)."""

import pytest

from repro.errors import AbortError, FramingError
from repro.hdlc import Accm, escape_set, stuff, stuffed_length, unstuff
from repro.hdlc.byte_stuffing import _stuff_scalar, _unstuff_scalar


class TestStuffBasics:
    def test_paper_example(self):
        """Section 2 of the paper: 31 33 7E 96 -> 31 33 7D 5E 96."""
        assert stuff(bytes([0x31, 0x33, 0x7E, 0x96])) == bytes(
            [0x31, 0x33, 0x7D, 0x5E, 0x96]
        )

    def test_flag_becomes_7d_5e(self):
        assert stuff(b"\x7e") == b"\x7d\x5e"

    def test_escape_becomes_7d_5d(self):
        assert stuff(b"\x7d") == b"\x7d\x5d"

    def test_plain_bytes_untouched(self):
        data = bytes(set(range(256)) - {0x7E, 0x7D})
        assert stuff(data) == data

    def test_empty(self):
        assert stuff(b"") == b""

    def test_all_flags_doubles(self):
        assert stuff(b"\x7e" * 100) == b"\x7d\x5e" * 100

    def test_stuffed_length_matches(self):
        for data in (b"", b"\x7e\x7d", bytes(range(256)) * 3):
            assert stuffed_length(data) == len(stuff(data))


class TestUnstuff:
    def test_round_trip_random(self, rng):
        data = rng.integers(0, 256, 5000, dtype="uint8").tobytes()
        assert unstuff(stuff(data)) == data

    def test_round_trip_small(self):
        for data in (b"", b"\x7e", b"\x7d", b"\x7e\x7d\x7e", b"ab\x7ecd"):
            assert unstuff(stuff(data)) == data

    def test_bare_flag_rejected(self):
        with pytest.raises(FramingError):
            unstuff(b"ab\x7ecd")

    def test_abort_sequence_raises(self):
        with pytest.raises(AbortError):
            unstuff(b"ab\x7d\x7e")

    def test_abort_in_large_buffer(self):
        data = bytes(1000).replace(b"\x00", b"\x01") + b"\x7d\x7e" + bytes(100)
        with pytest.raises(AbortError):
            unstuff(data)

    def test_dangling_escape_is_abort(self):
        # The body ends right before the closing flag, so a trailing
        # escape is the 7D-7E abort sequence.
        with pytest.raises(AbortError):
            unstuff(b"abc\x7d")

    def test_dangling_escape_is_abort_large(self):
        with pytest.raises(AbortError):
            unstuff(b"\x01" * 200 + b"\x7d")

    def test_chained_escape_strict_rejected(self):
        with pytest.raises(FramingError):
            unstuff(b"\x7d\x7d\x41")

    def test_chained_escape_lenient(self):
        # 7D 7D decodes as escaped 0x5D when strict checking is off.
        assert unstuff(b"\x7d\x7d", strict=False) == b"\x5d"

    def test_scalar_vector_agree(self, rng):
        """Both code paths must produce identical results."""
        data = rng.integers(0, 256, 600, dtype="uint8").tobytes()
        stuffed = stuff(data)
        assert _unstuff_scalar(stuffed, strict=True) == unstuff(stuffed)
        assert _stuff_scalar(data, escape_set()) == stuff(data)


class TestAccmInteraction:
    def test_accm_octets_escaped(self):
        accm = Accm.from_octets([0x11, 0x13])  # XON/XOFF
        out = stuff(b"\x11\x41\x13", accm)
        assert out == bytes([0x7D, 0x31, 0x41, 0x7D, 0x33])

    def test_accm_round_trip(self, rng):
        accm = Accm.for_async()
        data = rng.integers(0, 256, 1000, dtype="uint8").tobytes()
        assert unstuff(stuff(data, accm)) == data

    def test_escape_set_always_contains_mandatory(self):
        assert {0x7E, 0x7D} <= escape_set()
        assert {0x7E, 0x7D} <= escape_set(Accm(0))

    def test_async_default_escapes_all_controls(self):
        escapes = escape_set(Accm.for_async())
        assert all(c in escapes for c in range(32))

    def test_accm_rejects_wide_mask(self):
        with pytest.raises(ValueError):
            Accm(1 << 32)

    def test_accm_from_octets_rejects_high(self):
        with pytest.raises(ValueError):
            Accm.from_octets([64])

    def test_must_escape(self):
        accm = Accm.from_octets([3])
        assert accm.must_escape(0x7E)
        assert accm.must_escape(3)
        assert not accm.must_escape(4)
        assert not accm.must_escape(0x41)
