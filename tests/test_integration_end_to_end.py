"""Full-stack integration: IP -> PPP -> P5 datapath -> SONET -> line.

These tests wire together every subsystem the way a real OC-48 line
card deployment would, which is the scenario the paper's title
promises: *gigabit IP over SDH/SONET*.
"""

import pytest

from repro.core import P5Config, run_duplex_exchange
from repro.ipv4 import Ipv4Datagram
from repro.phy import BitErrorLine
from repro.ppp import (
    IpcpConfig,
    LcpConfig,
    PppEndpoint,
    PPPFrame,
    connect_endpoints,
)
from repro.ppp.ipcp import parse_ipv4
from repro.sonet import PppOverSonet
from repro.workloads import PacketStream


class TestIpOverP5:
    def test_checksummed_ip_through_cycle_accurate_datapath(self):
        """Real IPv4 datagrams through the 32-bit P5, byte-exact."""
        stream = PacketStream(seed=1)
        contents = stream.frame_contents(10)
        result = run_duplex_exchange(contents, [], timeout=400_000)
        assert result.all_good()
        for content, _ in result.b_received:
            frame = PPPFrame.decode(content)
            datagram = Ipv4Datagram.decode(frame.information)
            assert datagram.header.dst == parse_ipv4("10.0.0.2")


class TestPppOverSonetWithNegotiation:
    def _endpoints(self):
        a = PppEndpoint(
            "A",
            LcpConfig(),
            IpcpConfig(
                local_address=parse_ipv4("192.168.1.1"),
                assign_peer=parse_ipv4("192.168.1.2"),
            ),
            magic_seed=1,
        )
        b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=2)
        return a, b

    def test_lcp_over_real_sonet_path(self):
        """LCP/IPCP negotiation where the wire is an actual STS-12c."""
        a, b = self._endpoints()
        path_ab = PppOverSonet(12)
        path_ba = PppOverSonet(12)
        a.open(); b.open(); a.lower_up(); b.lower_up()
        for _ in range(30):
            for content_wire in [a.pump()]:
                if content_wire:
                    # Endpoint produces HDLC wire; re-queue the raw PPP
                    # contents so the SONET path frames them itself.
                    for frame in a.tx_framer.decode_stream(content_wire):
                        path_ab.queue_frame(frame.content)
            for recovered in path_ab.receive_line(path_ab.next_line_frame()):
                b.receive_wire(b.rx_framer.encode(recovered))
            wire = b.pump()
            if wire:
                for frame in b.tx_framer.decode_stream(wire):
                    path_ba.queue_frame(frame.content)
            for recovered in path_ba.receive_line(path_ba.next_line_frame()):
                a.receive_wire(a.rx_framer.encode(recovered))
            if a.network_ready() and b.network_ready():
                break
        assert a.network_ready() and b.network_ready()
        assert b.ipcp.local_address_str == "192.168.1.2"


class TestErroredLink:
    def test_ber_sweep_error_detection(self):
        """No corrupted frame is ever delivered as good across BERs."""
        path = PppOverSonet(3)
        frames = PacketStream(seed=3).frame_contents(30)
        line = BitErrorLine(1e-4, seed=4)
        for frame in frames:
            path.queue_frame(frame)
        delivered = []
        for _ in range(20):
            delivered += path.receive_line(line.transmit(path.next_line_frame()))
            if not path.tx_backlog_frames:
                break
        # Anything delivered must be byte-identical to something sent.
        assert all(d in frames for d in delivered)
        # At this BER, some frames must have been caught by FCS/BIP.
        total_errors = (
            path.hdlc_stats.total_errors()
            + path.sonet_counters.b1_errors
            + path.sonet_counters.b3_errors
        )
        assert total_errors > 0

    def test_clean_line_zero_errors(self):
        path = PppOverSonet(3)
        frames = PacketStream(seed=5).frame_contents(10)
        for frame in frames:
            path.queue_frame(frame)
        delivered = []
        for _ in range(10):
            delivered += path.receive_line(path.next_line_frame())
        assert delivered == frames
        assert path.hdlc_stats.total_errors() == 0
        assert path.sonet_counters.b1_errors == 0


class TestWidthEquivalence:
    """The 8-bit and 32-bit systems are behaviourally identical —
    only timing differs (the paper's design premise)."""

    def test_same_wire_bytes(self):
        from repro.core.tx import P5Transmitter
        from repro.rtl import Simulator, StreamSink

        contents = PacketStream(seed=6).frame_contents(3)
        wires = {}
        for width in (8, 32):
            tx = P5Transmitter(P5Config(width_bits=width))
            sink = StreamSink("s", tx.phy_out)
            sim = Simulator(tx.modules + [sink], tx.channels)
            for c in contents:
                tx.submit(c)
            sim.run_until(
                lambda: not tx.busy and not tx.phy_out.can_pop, timeout=400_000
            )
            wires[width] = sink.data()
        assert wires[8] == wires[32]
