"""Unit tests for the IPv4 codec."""

import pytest

from repro.errors import FramingError
from repro.ipv4 import Ipv4Datagram, Ipv4Header, internet_checksum


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 + 0xF203 + 0xF4F5 + 0xF6F7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)

    def test_zero_buffer(self):
        assert internet_checksum(bytes(8)) == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_verification_property(self, rng):
        """Inserting the checksum makes the total sum verify to 0."""
        data = bytearray(rng.integers(0, 256, 20, dtype="uint8").tobytes())
        data[10:12] = b"\x00\x00"
        checksum = internet_checksum(bytes(data))
        data[10:12] = checksum.to_bytes(2, "big")
        assert internet_checksum(bytes(data)) == 0


class TestHeader:
    def test_round_trip(self):
        header = Ipv4Header(
            src=0x0A000001, dst=0x0A000002, total_length=100,
            identification=7, ttl=3, protocol=6, dscp=10,
        )
        assert Ipv4Header.decode(header.encode()) == header

    def test_encoded_checksum_verifies(self):
        header = Ipv4Header(src=1, dst=2, total_length=20)
        assert internet_checksum(header.encode()) == 0

    def test_corruption_detected(self):
        raw = bytearray(Ipv4Header(src=1, dst=2, total_length=20).encode())
        raw[15] ^= 0x01
        with pytest.raises(FramingError):
            Ipv4Header.decode(bytes(raw))

    def test_version_check(self):
        raw = bytearray(Ipv4Header(src=1, dst=2, total_length=20).encode())
        raw[0] = (6 << 4) | 5
        with pytest.raises(FramingError):
            Ipv4Header.decode(bytes(raw))

    def test_options_unsupported(self):
        raw = bytearray(Ipv4Header(src=1, dst=2, total_length=24).encode())
        raw[0] = (4 << 4) | 6
        with pytest.raises(FramingError):
            Ipv4Header.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(FramingError):
            Ipv4Header.decode(bytes(10))

    def test_field_validation(self):
        with pytest.raises(ValueError):
            Ipv4Header(src=1, dst=2, total_length=10)   # < header
        with pytest.raises(ValueError):
            Ipv4Header(src=1, dst=2, total_length=20, ttl=300)

    def test_ttl_decrement(self):
        header = Ipv4Header(src=1, dst=2, total_length=20, ttl=2)
        assert header.decremented().ttl == 1
        with pytest.raises(ValueError):
            header.decremented().decremented().decremented()


class TestDatagram:
    def test_build_sets_length(self):
        d = Ipv4Datagram.build(1, 2, b"hello")
        assert d.header.total_length == 25
        assert len(d) == 25

    def test_round_trip(self, rng):
        payload = rng.integers(0, 256, 64, dtype="uint8").tobytes()
        d = Ipv4Datagram.build(0x0A000001, 0x0A000002, payload, protocol=17)
        decoded = Ipv4Datagram.decode(d.encode())
        assert decoded.payload == payload
        assert decoded.header == d.header

    def test_trailing_padding_ignored(self):
        d = Ipv4Datagram.build(1, 2, b"abc")
        decoded = Ipv4Datagram.decode(d.encode() + b"\x00\x00")
        assert decoded.payload == b"abc"

    def test_truncation_detected(self):
        d = Ipv4Datagram.build(1, 2, b"abcdef")
        with pytest.raises(FramingError):
            Ipv4Datagram.decode(d.encode()[:-3])
