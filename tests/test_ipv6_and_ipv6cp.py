"""Unit tests for the IPv6 codec and IPV6CP (dual-stack operation)."""

import pytest

from repro.errors import FramingError
from repro.ipv6 import Ipv6Datagram, Ipv6Header, format_ipv6
from repro.ppp import IpcpConfig, LcpConfig, PppEndpoint, connect_endpoints
from repro.ppp.ipcp import parse_ipv4
from repro.ppp.ipv6cp import Ipv6cp, Ipv6cpConfig
from repro.ppp.protocol_numbers import PROTO_IPV6


class TestIpv6Codec:
    def test_round_trip(self, rng):
        payload = rng.integers(0, 256, 100, dtype="uint8").tobytes()
        d = Ipv6Datagram.build(
            src=0xFE80 << 112 | 1, dst=0xFE80 << 112 | 2, payload=payload,
            hop_limit=3, traffic_class=7, flow_label=0x12345,
        )
        decoded = Ipv6Datagram.decode(d.encode())
        assert decoded == d
        assert len(d) == 40 + 100

    def test_version_enforced(self):
        raw = bytearray(Ipv6Datagram.build(1, 2, b"x").encode())
        raw[0] = 0x45
        with pytest.raises(FramingError):
            Ipv6Header.decode(bytes(raw))

    def test_truncation_detected(self):
        d = Ipv6Datagram.build(1, 2, b"abcdef")
        with pytest.raises(FramingError):
            Ipv6Datagram.decode(d.encode()[:-3])

    def test_field_limits(self):
        with pytest.raises(ValueError):
            Ipv6Header(src=1 << 128, dst=0, payload_length=0)
        with pytest.raises(ValueError):
            Ipv6Header(src=0, dst=0, payload_length=0, flow_label=1 << 20)

    def test_format(self):
        assert format_ipv6(0xFE80 << 112 | 0xABCD) == "fe80:0:0:0:0:0:0:abcd"


class TestIpv6cpNegotiation:
    def test_identifiers_exchanged(self):
        from repro.ppp.fsm import State

        a, b = Ipv6cp(seed=1), Ipv6cp(seed=2)
        a.fsm.open(); a.fsm.up()
        b.fsm.open(); b.fsm.up()
        for _ in range(4):
            for raw in a.drain_outbox():
                b.receive_packet(raw)
            for raw in b.drain_outbox():
                a.receive_packet(raw)
        assert a.state is State.OPENED and b.state is State.OPENED
        assert a.peer_interface_id == b.config.interface_id
        assert a.config.interface_id != b.config.interface_id

    def test_collision_naked(self):
        a = Ipv6cp(Ipv6cpConfig(interface_id=0x42), seed=3)
        from repro.ppp.options import ConfigOption

        verdict = a.judge_option(ConfigOption(1, (0x42).to_bytes(8, "big")))
        assert isinstance(verdict, tuple) and verdict[0] == "nak"

    def test_zero_identifier_assigned(self):
        a = Ipv6cp(seed=4)
        from repro.ppp.options import ConfigOption

        verdict = a.judge_option(ConfigOption(1, bytes(8)))
        assert isinstance(verdict, tuple) and verdict[0] == "nak"
        assert verdict[1].value_uint() != 0

    def test_link_local_address(self):
        a = Ipv6cp(Ipv6cpConfig(interface_id=0xAB), seed=5)
        assert format_ipv6(a.link_local_address()).startswith("fe80:")

    def test_random_id_nonzero(self):
        assert Ipv6cp(seed=6).config.interface_id != 0


class TestDualStack:
    def _link(self):
        a = PppEndpoint(
            "A", LcpConfig(),
            IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                       assign_peer=parse_ipv4("10.0.0.2")),
            magic_seed=1,
        )
        b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=2)
        v6a, v6b = a.add_ncp(Ipv6cp(seed=10)), b.add_ncp(Ipv6cp(seed=20))
        connect_endpoints(a, b)
        for _ in range(4):
            b.receive_wire(a.pump())
            a.receive_wire(b.pump())
        return a, b, v6a, v6b

    def test_both_ncps_open(self):
        a, b, v6a, v6b = self._link()
        assert a.network_ready()                     # IPv4
        assert a.protocol_ready(PROTO_IPV6)          # IPv6
        assert v6a.network_ready() and v6b.network_ready()

    def test_simultaneous_datagram_flow(self):
        """RFC 1661: 'simultaneous use of multiple network-layer
        protocols' over one P5-style link."""
        a, b, v6a, v6b = self._link()
        d6 = Ipv6Datagram.build(
            v6a.link_local_address(), v6b.link_local_address(), b"six"
        )
        assert a.send_datagram(b"E\x00four", 0x0021)
        assert a.send_datagram(d6.encode(), PROTO_IPV6)
        b.receive_wire(a.pump())
        received = list(b.datagrams_in)
        assert [p for p, _ in received] == [0x0021, PROTO_IPV6]
        assert Ipv6Datagram.decode(received[1][1]).payload == b"six"

    def test_ipv6_gated_until_its_ncp_opens(self):
        a = PppEndpoint(
            "A", LcpConfig(),
            IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                       assign_peer=parse_ipv4("10.0.0.2")),
            magic_seed=3,
        )
        b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=4)
        connect_endpoints(a, b)   # no IPV6CP registered
        assert a.network_ready()
        assert not a.protocol_ready(PROTO_IPV6)
        assert not a.send_datagram(b"six", PROTO_IPV6)

    def test_late_ncp_addition(self):
        """An NCP added after the link is up negotiates immediately."""
        a = PppEndpoint(
            "A", LcpConfig(),
            IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                       assign_peer=parse_ipv4("10.0.0.2")),
            magic_seed=5,
        )
        b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=6)
        connect_endpoints(a, b)
        v6a, v6b = a.add_ncp(Ipv6cp(seed=30)), b.add_ncp(Ipv6cp(seed=40))
        for _ in range(5):
            b.receive_wire(a.pump())
            a.receive_wire(b.pump())
        assert v6a.network_ready() and v6b.network_ready()
