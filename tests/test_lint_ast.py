"""AST discipline lint: good and bad fixtures per rule, suppressions."""

import pathlib

from repro.lint import RULES, lint_file, lint_paths, lint_source

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
SRC_TREE = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(findings):
    return sorted({f.code for f in findings})


# ------------------------------------------------------------- bad fixtures
def test_unguarded_push_fixture_fires_p5l001():
    findings = lint_file(FIXTURES / "bad_unguarded_push.py")
    assert codes(findings) == ["P5L001"]
    (finding,) = findings
    assert finding.subject == "UnguardedPusher"
    assert finding.line is not None and finding.file is not None


def test_unguarded_pop_fixture_fires_p5l002():
    findings = lint_file(FIXTURES / "bad_unguarded_pop.py")
    assert codes(findings) == ["P5L002"]
    assert len(findings) == 2      # both the peek and the pop


def test_bare_flag_fixture_fires_p5l003():
    findings = lint_file(FIXTURES / "bad_bare_flag.py")
    assert codes(findings) == ["P5L003"]
    assert {f.subject for f in findings} == {"0x7E", "0x7D"}


def test_foreign_channel_fixture_fires_p5l004():
    findings = lint_file(FIXTURES / "bad_foreign_channel.py")
    assert codes(findings) == ["P5L004"]


def test_good_fixture_is_clean():
    assert lint_file(FIXTURES / "good_module.py") == []


# --------------------------------------------------------- guard analysis
def test_guard_in_enclosing_if_dominates():
    source = """
class M:
    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())
"""
    assert lint_source(source) == []


def test_early_return_guard_dominates_rest_of_block():
    source = """
class M:
    def clock(self):
        if not self.inp.can_pop:
            return
        beat = self.inp.peek()
        self.inp.pop()
        del beat
"""
    assert lint_source(source) == []


def test_room_arithmetic_counts_as_push_guard():
    source = """
class M:
    def clock(self):
        if self.out.capacity - self.out.occupancy < 3:
            self.note_stall()
            return
        while self.carry:
            self.out.push(self.carry.pop(0))
"""
    assert lint_source(source) == []


def test_guard_on_wrong_channel_does_not_dominate():
    source = """
class M:
    def clock(self):
        if self.other.can_push:
            self.out.push(1)
"""
    assert codes(lint_source(source)) == ["P5L001"]


def test_non_terminating_early_if_does_not_guard_after():
    source = """
class M:
    def clock(self):
        if not self.out.can_push:
            self.note_stall()
        self.out.push(1)
"""
    assert codes(lint_source(source)) == ["P5L001"]


def test_only_clock_bodies_are_checked():
    source = """
class Helper:
    def flush(self):
        self.out.push(1)

def free_function(ch):
    ch.push(2)
"""
    assert lint_source(source) == []


def test_dict_pop_and_list_pop_with_args_ignored():
    source = """
class M:
    def clock(self):
        self.table.pop("key")
        self.items.pop(0)
"""
    assert lint_source(source) == []


def test_framing_literal_in_docstring_not_flagged():
    source = '''
def f():
    """Frames are delimited by 0x7E and escaped by 0x7D."""
    return 0
'''
    assert lint_source(source) == []


def test_decimal_125_and_126_not_flagged():
    """Only the hex spelling claims to be a framing octet: decimal 125
    is the SONET frame period in microseconds, not an escape octet."""
    source = "PERIOD_US = 125\nframes = 126\n"
    assert lint_source(source) == []
    assert codes(lint_source("FLAG = 0x7E\n")) == ["P5L003"]


def test_constants_module_may_define_the_octets():
    source = "FLAG_OCTET = 0x7E\nESC_OCTET = 0x7D\n"
    assert lint_source(source, "src/repro/hdlc/constants.py") == []
    assert codes(lint_source(source, "src/repro/other.py")) == ["P5L003"]


# ------------------------------------------------------------ suppressions
def test_line_suppression_by_code():
    source = "FLAG = 0x7E  # lint: ignore[P5L003]\n"
    assert lint_source(source) == []


def test_bare_suppression_silences_all_rules_on_line():
    source = """
class M:
    def clock(self):
        self.out.push(1)  # lint: ignore
"""
    assert lint_source(source) == []


def test_suppression_for_other_code_does_not_apply():
    source = "FLAG = 0x7E  # lint: ignore[P5L001]\n"
    assert codes(lint_source(source)) == ["P5L003"]


def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n", "broken.py")
    assert len(findings) == 1
    assert "does not parse" in findings[0].message


# -------------------------------------------------------------- whole tree
def test_full_shipped_tree_lints_clean():
    """The acceptance gate: the real source obeys its own discipline."""
    findings = lint_paths([SRC_TREE])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_examples_and_benchmarks_lint_clean():
    """Regression: the figure benches and examples spell the framing
    octets via repro.hdlc.constants, not bare hex literals."""
    root = SRC_TREE.parent.parent
    findings = lint_paths([root / "examples", root / "benchmarks"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_lint_paths_over_fixture_directory_finds_all_rules():
    findings = lint_paths([FIXTURES])
    assert {"P5L001", "P5L002", "P5L003", "P5L004"} <= set(codes(findings))


def test_every_ast_rule_is_registered():
    for code in ("P5L001", "P5L002", "P5L003", "P5L004"):
        assert code in RULES
        assert RULES[code].rationale
