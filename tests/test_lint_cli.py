"""The ``repro lint`` subcommand: exit codes and reporter output."""

import json
import pathlib

from repro.cli import main
from repro.lint import JSON_SCHEMA_VERSION, RULES

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"


def test_lint_shipped_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean: no findings" in out


def test_lint_bad_fixture_exits_nonzero_with_rule_code(capsys):
    code = main(["lint", "--no-graph",
                 "--path", str(FIXTURES / "bad_unguarded_push.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "P5L001" in out


def test_lint_each_bad_fixture_names_its_rule(capsys):
    expected = {
        "bad_unguarded_push.py": "P5L001",
        "bad_unguarded_pop.py": "P5L002",
        "bad_bare_flag.py": "P5L003",
        "bad_foreign_channel.py": "P5L004",
    }
    for fixture, rule_code in expected.items():
        code = main(["lint", "--no-graph", "--path", str(FIXTURES / fixture)])
        out = capsys.readouterr().out
        assert code == 1, fixture
        assert rule_code in out, fixture


def test_json_output_is_machine_parseable(capsys):
    assert main(["lint", "--no-graph", "--format", "json",
                 "--path", str(FIXTURES / "bad_bare_flag.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["counts"]["error"] == len(payload["findings"]) == 2
    for finding in payload["findings"]:
        assert finding["code"] in RULES
        assert finding["rule"] == RULES[finding["code"]].name
        assert finding["severity"] in ("error", "warning")
        assert finding["file"].endswith("bad_bare_flag.py")
        assert isinstance(finding["line"], int)


def test_json_output_is_stable_across_runs(capsys):
    args = ["lint", "--no-graph", "--format", "json", "--path", str(FIXTURES)]
    main(args)
    first = capsys.readouterr().out
    main(args)
    second = capsys.readouterr().out
    assert first == second
    findings = json.loads(first)["findings"]
    ordering = [(f["file"], f["line"], f["code"]) for f in findings]
    assert ordering == sorted(ordering)


def test_nonexistent_path_is_a_clean_cli_error(capsys):
    code = main(["lint", "--no-graph", "--path", "/nonexistent/file.py"])
    assert code == 2
    err = capsys.readouterr().err
    assert "no such path" in err and "/nonexistent/file.py" in err


def test_graph_only_run_is_clean(capsys):
    assert main(["lint", "--no-ast"]) == 0
    assert "clean" in capsys.readouterr().out


def test_ast_only_run_over_src_is_clean(capsys):
    assert main(["lint", "--no-graph"]) == 0
    assert "clean" in capsys.readouterr().out
