"""Graph DRC rules: one good and one bad topology per rule code."""

import pytest

from repro.core.config import P5Config
from repro.core.p5 import build_duplex
from repro.core.rx import WordDelineator
from repro.lint import RULES, Severity, lint_simulator, lint_topology
from repro.rtl.fifo import SyncFifo
from repro.rtl.module import Channel, Module
from repro.rtl.pipeline import StreamSink, StreamSource
from repro.rtl.simulator import Simulator


class Mover(Module):
    """Minimal well-behaved stage: one input, one output."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)

    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())


def codes(findings):
    return sorted({f.code for f in findings})


def chain(n=3):
    """source -> mover(s) -> sink over n+1 channels; returns (modules, channels)."""
    channels = [Channel(f"c{i}") for i in range(n)]
    modules = [StreamSource("src", channels[0], [])]
    for i in range(n - 1):
        modules.append(Mover(f"m{i}", channels[i], channels[i + 1]))
    modules.append(StreamSink("sink", channels[-1]))
    return modules, channels


# ------------------------------------------------------------------ clean
def test_clean_chain_has_no_findings():
    modules, channels = chain()
    assert lint_topology(modules, channels) == []


def test_shipped_duplex_is_clean_both_widths():
    for config in (P5Config.thirty_two_bit(), P5Config.eight_bit()):
        _a, _b, sim = build_duplex(config)
        assert lint_simulator(sim) == [], config.describe()


def test_fifo_self_loop_is_legal():
    c_in, c_out = Channel("in"), Channel("out")
    fifo = SyncFifo("fifo", c_in, c_out, depth=4)
    modules = [StreamSource("src", c_in, []), fifo, StreamSink("sink", c_out)]
    assert lint_topology(modules, [c_in, c_out, fifo.store]) == []


# ---------------------------------------------------------------- P5D001/2
def test_double_writer_channel_flagged():
    shared = Channel("shared")
    src_a = StreamSource("srcA", shared, [])
    src_b = StreamSource("srcB", shared, [])
    sink = StreamSink("sink", shared)
    findings = lint_topology([src_a, src_b, sink], [shared])
    assert "P5D001" in codes(findings)
    assert any("srcA" in f.message and "srcB" in f.message for f in findings)


def test_double_reader_channel_flagged():
    shared = Channel("shared")
    src = StreamSource("src", shared, [])
    sink_a = StreamSink("sinkA", shared)
    sink_b = StreamSink("sinkB", shared)
    findings = lint_topology([src, sink_a, sink_b], [shared])
    assert "P5D002" in codes(findings)


# ------------------------------------------------------------------ P5D003
def test_dangling_channel_flagged_both_ways():
    unread = Channel("unread")
    StreamSource("src", unread, [])
    unfed = Channel("unfed")
    sink = StreamSink("sink", unfed)
    findings = lint_topology([sink], [unread, unfed])
    dangling = [f for f in findings if f.code == "P5D003"]
    assert {f.subject for f in dangling} == {"unread", "unfed"}


# ------------------------------------------------------------------ P5D004
def test_unreachable_ring_flagged_as_warning():
    c_ab, c_ba = Channel("ab"), Channel("ba")
    a = Mover("a", c_ba, c_ab)
    b = Mover("b", c_ab, c_ba)
    findings = lint_topology([a, b], [c_ab, c_ba])
    unreachable = [f for f in findings if f.code == "P5D004"]
    assert {f.subject for f in unreachable} == {"a", "b"}
    assert all(f.severity is Severity.WARNING for f in unreachable)
    # A registered ring is NOT a combinational loop.
    assert "P5D007" not in codes(findings)


# ------------------------------------------------------------------ P5D005
def test_misordered_simulator_module_list_flagged():
    modules, channels = chain()
    findings = lint_topology(list(reversed(modules)), channels)
    assert "P5D005" in codes(findings)


def test_misordered_list_names_the_offending_pair():
    c = Channel("c")
    src = StreamSource("src", c, [])
    sink = StreamSink("sink", c)
    (finding,) = lint_topology([sink, src], [c])
    assert finding.code == "P5D005"
    assert "src" in finding.message and "sink" in finding.message


# ------------------------------------------------------------------ P5D006
def test_capacity_shortfall_flagged():
    inp = Channel("phy", capacity=4)
    out = Channel("body", capacity=2)      # delineator needs W+2 = 6
    delin = WordDelineator("delin", inp, out, width_bytes=4)
    findings = lint_topology(
        [StreamSource("src", inp, []), delin, StreamSink("sink", out)],
        [inp, out],
    )
    assert "P5D006" in codes(findings)
    (shortfall,) = [f for f in findings if f.code == "P5D006"]
    assert "6" in shortfall.message and "2" in shortfall.message


def test_adequate_capacity_not_flagged():
    inp = Channel("phy", capacity=4)
    out = Channel("body", capacity=12)
    delin = WordDelineator("delin", inp, out, width_bytes=4)
    findings = lint_topology(
        [StreamSource("src", inp, []), delin, StreamSink("sink", out)],
        [inp, out],
    )
    assert "P5D006" not in codes(findings)


# ------------------------------------------------------------------ P5D007
def test_combinational_loop_flagged():
    c_ab = Channel("ab", registered=False)
    c_ba = Channel("ba", registered=False)
    a = Mover("a", c_ba, c_ab)
    b = Mover("b", c_ab, c_ba)
    findings = lint_topology([a, b], [c_ab, c_ba])
    assert "P5D007" in codes(findings)


def test_loop_with_one_registered_channel_is_legal():
    c_ab = Channel("ab", registered=False)
    c_ba = Channel("ba", registered=True)
    a = Mover("a", c_ba, c_ab)
    b = Mover("b", c_ab, c_ba)
    findings = lint_topology([a, b], [c_ab, c_ba])
    assert "P5D007" not in codes(findings)


# ------------------------------------------------------------------ P5D008
def test_unclocked_endpoint_flagged():
    modules, channels = chain()
    missing = modules.pop(1)           # wired but never handed to the sim
    findings = lint_topology(modules, channels)
    assert "P5D008" in codes(findings)
    assert any(missing.name in f.message for f in findings)


# ------------------------------------------------------- simulator facade
def test_lint_simulator_sees_the_module_order():
    modules, channels = chain()
    sim = Simulator(list(reversed(modules)), channels)
    assert "P5D005" in codes(lint_simulator(sim))


def test_every_graph_rule_is_registered():
    for code in ("P5D001", "P5D002", "P5D003", "P5D004",
                 "P5D005", "P5D006", "P5D007", "P5D008"):
        assert code in RULES
        assert RULES[code].rationale


def test_registration_is_observational():
    """Wiring bookkeeping must not change simulation behaviour."""
    modules, channels = chain()
    src = modules[0]
    src.extend([])
    sim = Simulator(modules, channels)
    sim.step(5)
    assert sim.cycle == 5
    assert channels[0].producers == [src]
    assert pytest.approx(channels[0].pushes) == 0
