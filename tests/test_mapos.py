"""Unit tests for MAPOS framing, addresses and the switch."""

import pytest

from repro.errors import ConfigError, FramingError
from repro.hdlc import HdlcFramer
from repro.mapos import (
    BROADCAST_ADDRESS,
    MAPOS_PROTO_IP,
    MAPOS_PROTO_NSP,
    MaposFrame,
    MaposSwitch,
    group_address,
    is_broadcast,
    is_group,
    station_address,
    unpack_address,
)


class TestAddresses:
    def test_station_encoding(self):
        """nnnnnnn1: LSB always set so addresses never alias the flag."""
        assert station_address(1) == 0x03
        assert station_address(5) == 0x0B
        for n in range(1, 64):
            assert station_address(n) & 1 == 1
            assert station_address(n) != 0x7E

    def test_station_bounds(self):
        for bad in (0, 64, -1):
            with pytest.raises(ValueError):
                station_address(bad)

    def test_group_encoding(self):
        addr = group_address(3)
        assert addr & 0x80 and addr & 1
        assert is_group(addr)

    def test_broadcast(self):
        assert is_broadcast(BROADCAST_ADDRESS)
        assert not is_group(BROADCAST_ADDRESS)

    def test_unpack_round_trip(self):
        for n in (1, 17, 63):
            number, grp, bcast = unpack_address(station_address(n))
            assert (number, grp, bcast) == (n, False, False)

    def test_unpack_rejects_even(self):
        with pytest.raises(ValueError):
            unpack_address(0x7E)


class TestFrame:
    def test_encode_layout(self):
        frame = MaposFrame(station_address(5), MAPOS_PROTO_IP, b"ip!")
        assert frame.encode() == bytes([0x0B, 0x03, 0x00, 0x21]) + b"ip!"

    def test_round_trip(self):
        frame = MaposFrame(station_address(9), MAPOS_PROTO_NSP, b"assign")
        assert MaposFrame.decode(frame.encode()) == frame

    def test_short_frame_rejected(self):
        with pytest.raises(FramingError):
            MaposFrame.decode(b"\x03\x03")

    def test_invalid_address_rejected(self):
        with pytest.raises(ValueError):
            MaposFrame(0x7E, MAPOS_PROTO_IP)

    def test_hdlc_transport(self):
        """MAPOS frames ride the same HDLC framing as PPP (paper's
        programmable-address compatibility claim)."""
        framer = HdlcFramer()
        frame = MaposFrame(station_address(2), MAPOS_PROTO_IP, bytes([0x7E] * 9))
        wire = framer.encode(frame.encode())
        assert MaposFrame.decode(framer.decode(wire).content) == frame


class TestSwitch:
    def _network(self, n=4):
        switch = MaposSwitch()
        ports = {i: switch.attach(i) for i in range(1, n + 1)}
        return switch, ports

    def test_address_assignment(self):
        switch, ports = self._network()
        assert ports[1].address == station_address(1)
        assert ports[3].address == station_address(3)

    def test_unicast_forwarding(self):
        switch, ports = self._network()
        frame = MaposFrame(ports[2].address, MAPOS_PROTO_IP, b"to 2")
        delivered = switch.ingress(1, frame)
        assert delivered == [2]
        assert ports[2].inbox.popleft() == frame
        assert not ports[3].inbox

    def test_broadcast_excludes_sender(self):
        switch, ports = self._network()
        frame = MaposFrame(BROADCAST_ADDRESS, MAPOS_PROTO_IP, b"all")
        delivered = switch.ingress(2, frame)
        assert sorted(delivered) == [1, 3, 4]

    def test_group_forwarding(self):
        switch, ports = self._network()
        group = group_address(7)
        switch.join_group(1, group)
        switch.join_group(3, group)
        frame = MaposFrame(group, MAPOS_PROTO_IP, b"multicast")
        delivered = switch.ingress(4, frame)
        assert sorted(delivered) == [1, 3]

    def test_unknown_unicast_dropped(self):
        switch, ports = self._network()
        frame = MaposFrame(station_address(60), MAPOS_PROTO_IP, b"nobody")
        assert switch.ingress(1, frame) == []
        assert switch.frames_dropped == 1

    def test_self_addressed_dropped(self):
        switch, ports = self._network()
        frame = MaposFrame(ports[1].address, MAPOS_PROTO_IP, b"self")
        assert switch.ingress(1, frame) == []

    def test_duplicate_port_rejected(self):
        switch, _ = self._network()
        with pytest.raises(ConfigError):
            switch.attach(1)

    def test_join_group_validates(self):
        switch, _ = self._network()
        with pytest.raises(ConfigError):
            switch.join_group(1, station_address(2))

    def test_unknown_port_rejected(self):
        switch, _ = self._network()
        with pytest.raises(KeyError):
            switch.ingress(99, MaposFrame(BROADCAST_ADDRESS, MAPOS_PROTO_IP))

    def test_counters(self):
        switch, ports = self._network()
        switch.ingress(1, MaposFrame(ports[2].address, MAPOS_PROTO_IP))
        assert switch.frames_switched == 1
        assert ports[2].frames_forwarded == 1
