"""The paper's quantitative claims, each as an executable assertion.

One test per claim in EXPERIMENTS.md (C1, C2, C3, C4); the T1-T3
table anchors live in test_synth_model.py.
"""

import pytest

from repro.analysis import measure_escape_latency, measure_escape_throughput
from repro.core import P5Config, run_duplex_exchange
from repro.synth import analyze_timing, get_device, system_area
from repro.workloads import ppp_frame_contents, random_payload


class TestClaimC1Throughput:
    """§1/§5: 625 Mbps (8-bit) / 2.5 Gbps (32-bit) at 78.125 MHz, with
    W bits processed every clock cycle."""

    def test_8bit_625mbps(self):
        report = measure_escape_throughput(
            random_payload(30_000, seed=1), P5Config.eight_bit()
        )
        assert report.line_gbps == pytest.approx(0.625, rel=0.02)

    def test_32bit_2_5gbps(self):
        report = measure_escape_throughput(
            random_payload(30_000, seed=1), P5Config.thirty_two_bit()
        )
        assert report.line_gbps == pytest.approx(2.5, rel=0.02)

    def test_32_bits_every_cycle(self):
        report = measure_escape_throughput(
            random_payload(30_000, seed=1), P5Config.thirty_two_bit()
        )
        assert report.utilization > 0.99

    def test_clock_requirement_is_78_125mhz(self):
        assert P5Config.thirty_two_bit().clock_hz == pytest.approx(78.125e6)
        assert P5Config.thirty_two_bit().line_rate_bps == pytest.approx(2.5e9)


class TestClaimC2Latency:
    """§3: 4 pipeline stages, first data delayed 4 cycles ~ 50 ns,
    continuous flow thereafter."""

    def test_fill_is_exactly_4_cycles(self):
        assert measure_escape_latency(P5Config.thirty_two_bit()).fill_cycles == 4

    def test_fill_is_about_50ns(self):
        report = measure_escape_latency(P5Config.thirty_two_bit())
        assert report.fill_ns == pytest.approx(51.2, abs=1.0)

    def test_flow_continuous_after_fill(self):
        report = measure_escape_throughput(
            random_payload(40_000, seed=2), P5Config.thirty_two_bit()
        )
        # Fill cost amortises: within 1% of one word per cycle.
        assert report.output_bytes_per_cycle > 0.99 * 4


class TestClaimC3AreaRatio:
    """§4/§5: the 32-bit system is ~11x the 8-bit system, 'mainly due
    to the byte sorter and buffering mechanisms'."""

    def test_system_ratio(self):
        ratio = (
            system_area(P5Config.thirty_two_bit()).luts
            / system_area(P5Config.eight_bit()).luts
        )
        assert 9 <= ratio <= 13

    def test_growth_is_superlinear_in_width(self):
        luts = {
            w: system_area(P5Config(width_bits=w)).luts for w in (8, 16, 32, 64)
        }
        # Each doubling of width more than doubles the area.
        assert luts[16] > 2 * luts[8] * 0.9
        assert luts[32] > 2 * luts[16]
        assert luts[64] > 2 * luts[32]


class TestClaimC4CriticalPath:
    """§4: 6 LUT levels on both families; the Virtex-II speedup is
    technology, not placement."""

    def test_six_levels(self):
        assert system_area(P5Config.thirty_two_bit()).depth == 6

    def test_same_depth_both_families(self):
        netlist = system_area(P5Config.thirty_two_bit())
        assert (
            analyze_timing(netlist, get_device("XCV600-4")).levels
            == analyze_timing(netlist, get_device("XC2V1000-6")).levels
        )

    def test_virtex_ii_speedup_from_lut_delay(self):
        netlist = system_area(P5Config.thirty_two_bit())
        v1 = analyze_timing(netlist, get_device("XCV600-4"))
        v2 = analyze_timing(netlist, get_device("XC2V1000-6"))
        assert v2.fmax_post_mhz > 1.3 * v1.fmax_post_mhz


class TestClaimC2Static:
    """C2 again, but *statically*: the 4-cycle/~50 ns sorter fill and
    the end-to-end first-word latencies fall out of the declared
    timing contracts alone — no cycle is clocked."""

    def _bound(self, config, index):
        from repro.core.p5 import build_duplex
        from repro.sta import latency_between, paper_budgets

        a, _b, sim = build_duplex(config)
        budget = paper_budgets(a.tx, a.rx)[index]
        return budget, latency_between(
            sim.modules, sim.channels, source=budget.source, sink=budget.sink
        )

    def test_sorter_fill_is_statically_4_cycles_51ns(self):
        from repro.sta import cycles_to_ns

        budget, bound = self._bound(P5Config.thirty_two_bit(), 0)
        assert bound.cycles == budget.max_cycles == 4
        assert cycles_to_ns(bound.cycles, 78.125e6) == pytest.approx(51.2)

    def test_sorter_fill_8bit_is_2_cycles(self):
        _budget, bound = self._bound(P5Config.eight_bit(), 0)
        assert bound.cycles == 2

    def test_tx_end_to_end_bounds(self):
        for config, cycles in (
            (P5Config.thirty_two_bit(), 7), (P5Config.eight_bit(), 5)
        ):
            budget, bound = self._bound(config, 1)
            assert bound.cycles == cycles <= budget.max_cycles

    def test_rx_end_to_end_bounds(self):
        for config, cycles in (
            (P5Config.thirty_two_bit(), 13), (P5Config.eight_bit(), 11)
        ):
            budget, bound = self._bound(config, 2)
            assert bound.cycles == cycles <= budget.max_cycles

    def test_static_and_measured_fill_agree(self):
        _budget, bound = self._bound(P5Config.thirty_two_bit(), 0)
        assert bound.cycles == measure_escape_latency(
            P5Config.thirty_two_bit()
        ).fill_cycles

    def test_analyzer_holds_the_duplex_to_every_budget(self):
        from repro.sta import canonical_findings

        assert canonical_findings() == []


class TestEndToEndRateScaling:
    """The whole-system consequence of C1: wall-clock cycles scale
    inversely with width for the same traffic."""

    def test_cycle_scaling(self):
        frames = ppp_frame_contents(5, seed=7)
        cycles = {
            w: run_duplex_exchange(
                frames, [], P5Config(width_bits=w), timeout=600_000
            ).cycles
            for w in (8, 32)
        }
        assert 3.0 <= cycles[8] / cycles[32] <= 4.5
