"""Unit tests for the PHY models (BER line, serdes)."""

import pytest

from repro.phy import (
    BitErrorLine,
    LineStats,
    deserialize,
    make_beat_corruptor,
    serialize,
)
from repro.rtl.pipeline import WordBeat


class TestBitErrorLine:
    def test_zero_ber_is_transparent(self, rng):
        line = BitErrorLine(0.0)
        data = rng.integers(0, 256, 1000, dtype="uint8").tobytes()
        assert line.transmit(data) == data
        assert line.bits_flipped == 0

    def test_observed_ber_tracks_nominal(self):
        line = BitErrorLine(1e-2, seed=1)
        data = bytes(100_000)
        line.transmit(data)
        assert line.observed_ber == pytest.approx(1e-2, rel=0.15)

    def test_ber_one_flips_everything(self):
        line = BitErrorLine(1.0, seed=1)
        assert line.transmit(bytes(10)) == b"\xff" * 10

    def test_deterministic_with_seed(self):
        data = bytes(range(256))
        out1 = BitErrorLine(0.01, seed=42).transmit(data)
        out2 = BitErrorLine(0.01, seed=42).transmit(data)
        assert out1 == out2

    def test_burst_error(self):
        line = BitErrorLine(0.0)
        out = line.burst(bytes(4), start_bit=8, length_bits=8)
        assert out == b"\x00\xff\x00\x00"
        assert line.bits_flipped == 8

    def test_burst_clamps_at_end(self):
        line = BitErrorLine(0.0)
        out = line.burst(bytes(2), start_bit=12, length_bits=100)
        assert out == b"\x00\x0f"

    def test_invalid_ber(self):
        with pytest.raises(ValueError):
            BitErrorLine(1.5)

    def test_empty_buffer(self):
        assert BitErrorLine(0.5, seed=1).transmit(b"") == b""


class TestBeatCorruptor:
    def test_only_valid_lanes_touched(self):
        corrupt = make_beat_corruptor(1.0, seed=1)
        beat = WordBeat((0x00, 0x00, 0x00, 0x00),
                        (True, False, True, False))
        out = corrupt(beat)
        assert out.lanes[0] == 0xFF and out.lanes[2] == 0xFF
        assert out.lanes[1] == 0x00 and out.lanes[3] == 0x00
        assert out.valid == beat.valid

    def test_marks_preserved(self):
        corrupt = make_beat_corruptor(0.5, seed=2)
        beat = WordBeat.from_bytes(b"\x01\x02", 4, sof=True, eof=True)
        out = corrupt(beat)
        assert out.sof and out.eof

    def test_stats_exposed(self):
        corrupt = make_beat_corruptor(1.0, seed=3)
        corrupt(WordBeat.from_bytes(b"\x00\x00\x00\x00", 4))
        assert corrupt.line.bits_flipped == 32


class TestLineStats:
    def test_burst_accounts_bits_sent_like_transmit(self):
        line = BitErrorLine(0.0)
        line.transmit(bytes(10))
        line.burst(bytes(10), start_bit=0, length_bits=4)
        assert line.stats.bits_sent == 160
        assert line.stats.transmits == 1
        assert line.stats.bursts == 1

    def test_observed_ber_meaningful_under_mixed_traffic(self):
        line = BitErrorLine(0.0)
        line.transmit(bytes(16))          # 128 clean bits
        line.burst(bytes(16), 8, 4)       # 128 more bits, 4 flipped
        assert line.observed_ber == pytest.approx(4 / 256)

    def test_merge_is_elementwise_sum(self):
        a = LineStats(bits_sent=100, bits_flipped=3, transmits=2, bursts=1)
        b = LineStats(bits_sent=60, bits_flipped=1, transmits=1, bursts=4)
        merged = a.merge(b)
        assert merged == LineStats(
            bits_sent=160, bits_flipped=4, transmits=3, bursts=5
        )
        # merge() returns a fresh value; the operands are untouched.
        assert a.bits_sent == 100 and b.bits_sent == 60

    def test_as_dict_round_trip(self):
        stats = LineStats(bits_sent=8, bits_flipped=1, transmits=1, bursts=0)
        assert stats.as_dict() == {
            "bits_sent": 8, "bits_flipped": 1, "transmits": 1, "bursts": 0,
        }
        assert LineStats(**stats.as_dict()) == stats

    def test_empty_stats_have_zero_ber(self):
        assert LineStats().observed_ber == 0.0


class TestSerdes:
    def test_round_trip(self, rng):
        data = rng.integers(0, 256, 101, dtype="uint8").tobytes()
        beats = deserialize(data, 4)
        assert serialize(beats) == data

    def test_deserialize_no_frame_marks(self, rng):
        beats = deserialize(bytes(16), 4)
        assert not any(b.sof or b.eof for b in beats)

    def test_ragged_tail(self):
        beats = deserialize(bytes(5), 4)
        assert beats[-1].n_valid == 1
