"""Unit tests for CHAP (RFC 1994) and its session integration."""

import hashlib

import pytest

from repro.errors import NegotiationError, ProtocolError
from repro.ppp import IpcpConfig, LcpConfig, LinkPhase, PppEndpoint, connect_endpoints
from repro.ppp.chap import (
    ChapAuthenticator,
    ChapCode,
    ChapPeer,
    chap_response_value,
)
from repro.ppp.ipcp import parse_ipv4


class TestHash:
    def test_rfc_formula(self):
        """MD5(id || secret || challenge), straight from RFC 1994 §2."""
        value = chap_response_value(7, b"secret", b"challenge!")
        assert value == hashlib.md5(b"\x07" + b"secret" + b"challenge!").digest()
        assert len(value) == 16

    def test_id_binding(self):
        """Different identifiers give different responses (replay guard)."""
        assert chap_response_value(1, b"s", b"c") != chap_response_value(2, b"s", b"c")


class TestHandshake:
    def _pair(self, secret_client=b"s3cret", **kw):
        server = ChapAuthenticator({b"router9": b"s3cret"}, seed=1, **kw)
        peer = ChapPeer(b"router9", secret_client)
        return server, peer

    def _exchange(self, server, peer, rounds=4):
        server.start()
        for _ in range(rounds):
            for raw in server.drain_outbox():
                peer.receive_packet(raw)
            for raw in peer.drain_outbox():
                server.receive_packet(raw)

    def test_success(self):
        server, peer = self._pair()
        self._exchange(server, peer)
        assert server.done and server.authenticated == b"router9"
        assert peer.done

    def test_secret_never_on_wire(self):
        server, peer = self._pair()
        server.start()
        wire = []
        for _ in range(3):
            for raw in server.drain_outbox():
                wire.append(raw)
                peer.receive_packet(raw)
            for raw in peer.drain_outbox():
                wire.append(raw)
                server.receive_packet(raw)
        assert all(b"s3cret" not in raw for raw in wire)

    def test_wrong_secret_fails(self):
        server, peer = self._pair(secret_client=b"wrong")
        self._exchange(server, peer, rounds=6)
        assert not server.done and peer.failed
        assert server.failures >= 1

    def test_unknown_name_fails(self):
        server = ChapAuthenticator({b"other": b"x"}, seed=2)
        peer = ChapPeer(b"router9", b"x")
        self._exchange(server, peer)
        assert not server.done

    def test_fresh_challenge_after_failure(self):
        server, peer = self._pair(secret_client=b"wrong")
        server.start()
        first = server.drain_outbox()[0]
        peer.receive_packet(first)
        for raw in peer.drain_outbox():
            server.receive_packet(raw)
        out = server.drain_outbox()
        challenges = [raw for raw in out if raw[0] == ChapCode.CHALLENGE]
        assert challenges and challenges[0][5:21] != first[5:21]

    def test_stale_response_ignored(self):
        server, peer = self._pair()
        server.start()
        challenge = server.drain_outbox()[0]
        peer.receive_packet(challenge)
        response = bytearray(peer.drain_outbox()[0])
        response[1] ^= 0x55   # wrong identifier
        server.receive_packet(bytes(response))
        assert not server.done

    def test_replayed_response_rejected_after_rechallenge(self):
        """A captured response is useless against a new challenge."""
        server, peer = self._pair()
        self._exchange(server, peer)
        server.rechallenge()
        challenge = server.drain_outbox()[0]
        # Replay an old response value: compute against the OLD state.
        old = chap_response_value(1, b"s3cret", b"not-the-challenge")
        fake = bytes([ChapCode.RESPONSE, challenge[1]]) + (
            4 + 1 + 16 + 7
        ).to_bytes(2, "big") + bytes([16]) + old + b"router9"
        server.receive_packet(fake)
        assert not server.done

    def test_truncated_packet_raises(self):
        server, _ = self._pair()
        server.start()
        server.drain_outbox()
        with pytest.raises(ProtocolError):
            server.receive_packet(bytes([ChapCode.RESPONSE, 1, 0, 10, 50]))

    def test_challenge_retransmission(self):
        server, _ = self._pair()
        server.start()
        first = server.drain_outbox()
        server.tick()
        second = server.drain_outbox()
        assert first == second   # same challenge value retransmitted


class TestSessionIntegration:
    def _endpoints(self, secret=b"s3cret"):
        server = PppEndpoint(
            "srv",
            LcpConfig(),
            IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                       assign_peer=parse_ipv4("10.0.0.7")),
            magic_seed=1,
            auth_server=ChapAuthenticator({b"router9": b"s3cret"}, seed=9),
        )
        client = PppEndpoint(
            "cli",
            LcpConfig(),
            IpcpConfig(local_address=0),
            magic_seed=2,
            auth_client=ChapPeer(b"router9", secret),
        )
        return server, client

    def test_chap_bring_up(self):
        server, client = self._endpoints()
        rounds = connect_endpoints(server, client)
        assert rounds < 20
        assert server.phase is LinkPhase.NETWORK
        assert server.auth_server.authenticated == b"router9"

    def test_chap_failure_blocks(self):
        server, client = self._endpoints(secret=b"WRONG")
        with pytest.raises(NegotiationError):
            connect_endpoints(server, client, max_rounds=12)
        assert not client.network_ready()

    def test_lcp_advertises_chap_with_md5(self):
        server, _ = self._endpoints()
        options = server.lcp.desired_options()
        auth = [o for o in options if o.type == 3]
        assert auth and auth[0].data == b"\xc2\x23\x05"
